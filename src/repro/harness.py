"""High-level experiment harness shared by examples and benchmarks.

Wraps the end-to-end flow every experiment needs: generate a trace, render
ground truth, build baselines / MetaSapiens variants / foveated models, and
measure FPS + quality.  All sizes are explicit so benchmarks can pick their
own speed/fidelity point.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from .baselines import BaselineModel, build_baselines
from .core.ce import compute_ce
from .core.pruning import prune_lowest_ce
from .core.variants import VariantResult, build_variant, mean_psnr
from .foveation import (
    FoveatedModel,
    FRTrainConfig,
    RegionLayout,
    build_foveated_model,
    render_foveated_batch,
)
from .hvs.metrics import lpips_proxy, psnr, ssim
from .perf import (
    DEFAULT_GPU,
    FrameWorkload,
    GPUModel,
    mean_workload,
    workload_from_fr,
    workload_from_render,
)
from .scenes import generate_scene, trace_cameras
from .splat import Camera, GaussianModel, RenderConfig, ViewCache, render, render_batch

# Region boundaries used throughout the repo's experiments.  The paper's
# 0/18/27/33° assume a ~106°+ headset FOV; our evaluation cameras use 70°,
# so the boundaries are scaled to keep the same relative region areas.
EVAL_REGION_LAYOUT = RegionLayout(boundaries_deg=(0.0, 12.0, 20.0, 28.0), blend_band_deg=1.5)

# Default per-level point budgets for foveated hierarchies.
EVAL_LEVEL_FRACTIONS = (1.0, 0.45, 0.22, 0.10)


@dataclasses.dataclass
class TraceSetup:
    """A trace ready for experiments: scene, poses, ground-truth images."""

    name: str
    scene: GaussianModel
    train_cameras: list[Camera]
    eval_cameras: list[Camera]
    train_targets: list[np.ndarray]
    eval_targets: list[np.ndarray]


def setup_trace(
    name: str,
    n_points: int = 1500,
    width: int = 128,
    height: int = 96,
    n_train: int = 4,
    n_eval: int = 2,
    fov_x_deg: float = 70.0,
    seed: int = 0,
    backend: str | None = None,
) -> TraceSetup:
    """Generate a trace and its ground-truth renders.

    ``backend`` selects the rasterization engine for the ground-truth
    renders (``None`` defers to the process default / ``REPRO_BACKEND``).
    """
    scene = generate_scene(name, n_points=n_points)
    train, eval_cams = trace_cameras(
        name, n_train=n_train, n_eval=n_eval, width=width, height=height,
        fov_x_deg=fov_x_deg, seed=seed,
    )
    config = RenderConfig(backend=backend)
    train_targets = [render(scene, c, config).image for c in train]
    eval_targets = [render(scene, c, config).image for c in eval_cams]
    return TraceSetup(
        name=name,
        scene=scene,
        train_cameras=train,
        eval_cameras=eval_cams,
        train_targets=train_targets,
        eval_targets=eval_targets,
    )


# ----------------------------------------------------------------------
# Measurement helpers
# ----------------------------------------------------------------------
@dataclasses.dataclass
class MethodMeasurement:
    """FPS + objective quality of one method on one trace."""

    name: str
    fps: float
    psnr: float
    ssim: float
    lpips: float
    workload: FrameWorkload


def measure_baseline(
    baseline: BaselineModel,
    setup: TraceSetup,
    gpu: GPUModel | None = None,
    view_cache: ViewCache | None = None,
    batch_size: int | None = None,
) -> MethodMeasurement:
    """Render a baseline over the eval poses; report mean FPS and quality.

    All eval poses go through one batched rasterization pass; ``view_cache``
    additionally shares the projection/tiling/sorting prefix across repeated
    measurements of the same (model, pose).
    """
    gpu = gpu or DEFAULT_GPU
    results = render_batch(
        baseline.model,
        setup.eval_cameras,
        baseline.render_config,
        batch_size=batch_size,
        cache=view_cache,
    )
    workloads, psnrs, ssims, lpipss = [], [], [], []
    for result, target in zip(results, setup.eval_targets):
        workloads.append(workload_from_render(result, baseline.render_config))
        psnrs.append(psnr(target, result.image))
        ssims.append(ssim(target, result.image))
        lpipss.append(lpips_proxy(target, result.image))
    workload = mean_workload(workloads)
    return MethodMeasurement(
        name=baseline.name,
        fps=gpu.fps(workload),
        psnr=float(np.mean([p for p in psnrs if np.isfinite(p)] or [np.inf])),
        ssim=float(np.mean(ssims)),
        lpips=float(np.mean(lpipss)),
        workload=workload,
    )


def measure_foveated(
    name: str,
    fmodel: FoveatedModel,
    setup: TraceSetup,
    gpu: GPUModel | None = None,
    gaze: tuple[float, float] | None = None,
    backend: str | None = None,
    view_cache: ViewCache | None = None,
) -> MethodMeasurement:
    """Render a foveated model over the eval poses; quality is measured on
    the foveal (level-1) region as in the paper's Fig 13 protocol.

    All eval poses render through one batched foveated pass
    (:func:`repro.foveation.render_foveated_batch`); ``view_cache``
    additionally shares the base model's view-preparation prefix across
    repeated measurements of the same pose (the foveated pipeline projects
    only the L1 point set, once per pose).
    """
    gpu = gpu or DEFAULT_GPU
    from .foveation.regions import region_masks

    config = RenderConfig(backend=backend)
    results = render_foveated_batch(
        fmodel, setup.eval_cameras, gazes=gaze, config=config, cache=view_cache
    )
    workloads, psnrs, ssims, lpipss = [], [], [], []
    for camera, target, result in zip(
        setup.eval_cameras, setup.eval_targets, results
    ):
        workloads.append(workload_from_fr(result.stats))
        fovea = region_masks(camera, fmodel.layout, gaze)[0]
        ref = np.where(fovea[:, :, None], target, 0.0)
        img = np.where(fovea[:, :, None], result.image, 0.0)
        psnrs.append(psnr(ref, img))
        ssims.append(ssim(ref, img))
        lpipss.append(lpips_proxy(ref, img))
    workload = mean_workload(workloads)
    return MethodMeasurement(
        name=name,
        fps=gpu.fps(workload),
        psnr=float(np.mean([p for p in psnrs if np.isfinite(p)] or [np.inf])),
        ssim=float(np.mean(ssims)),
        lpips=float(np.mean(lpipss)),
        workload=workload,
    )


# ----------------------------------------------------------------------
# MetaSapiens model construction (fast path for experiments)
# ----------------------------------------------------------------------
@dataclasses.dataclass
class MetaSapiensModels:
    """Everything a MetaSapiens variant produces for one trace."""

    variant: VariantResult
    foveated: FoveatedModel
    hvsq_per_level: list[float]


def build_metasapiens(
    setup: TraceSetup,
    variant: str = "H",
    dense: BaselineModel | None = None,
    layout: RegionLayout | None = None,
    level_fractions: Sequence[float] | None = None,
    prune_rounds: int = 6,
    finetune_levels: bool = True,
    finetune_iterations: int = 4,
) -> MetaSapiensModels:
    """Build a MetaSapiens variant: L1 via CE pruning + the FR hierarchy."""
    layout = layout or EVAL_REGION_LAYOUT
    fractions = tuple(level_fractions or EVAL_LEVEL_FRACTIONS)
    if dense is None:
        dense = build_baselines(setup.scene, setup.train_cameras, names=("Mini-Splatting-D",))[
            "Mini-Splatting-D"
        ]

    variant_result = build_variant(
        dense.model,
        setup.train_cameras,
        setup.train_targets,
        variant=variant,
        max_rounds=prune_rounds,
    )

    fr_result = build_foveated_model(
        variant_result.model,
        setup.train_cameras,
        setup.train_targets,
        layout=layout,
        config=FRTrainConfig(
            level_fractions=fractions,
            finetune_iterations=finetune_iterations,
        ),
        finetune=finetune_levels,
    )
    return MetaSapiensModels(
        variant=variant_result,
        foveated=fr_result.model,
        hvsq_per_level=fr_result.hvsq_per_level,
    )


def quick_l1_model(
    setup: TraceSetup,
    dense: BaselineModel,
    keep_fraction: float = 0.35,
) -> GaussianModel:
    """One-shot CE pruning (no re-training) — a fast stand-in for the full
    Fig 6 loop when an experiment only needs a plausibly pruned L1 model."""
    ce = compute_ce(dense.model, setup.train_cameras, dense.render_config)
    n_keep = max(1, int(dense.model.num_points * keep_fraction))
    order = np.argsort(-ce.ce, kind="stable")
    return dense.model.subset(np.sort(order[:n_keep]))


__all__ = [
    "EVAL_LEVEL_FRACTIONS",
    "EVAL_REGION_LAYOUT",
    "MetaSapiensModels",
    "MethodMeasurement",
    "TraceSetup",
    "build_metasapiens",
    "measure_baseline",
    "measure_foveated",
    "mean_psnr",
    "quick_l1_model",
    "setup_trace",
]
