"""Hardened environment-knob parsing, one policy for the whole stack.

Every performance knob that can arrive through the environment
(``REPRO_BATCH_SPAN_BUDGET``, ``REPRO_SERVE_SHARDS``, ``REPRO_SERVE_WORKERS``,
``REPRO_FRAME_CACHE_BYTES``, ...) goes through these helpers and shares one
failure policy: a malformed or out-of-range value **warns and falls back**
to the caller-supplied default instead of raising.  A typo in a deployment
manifest must never crash the render or serve path — these are tuning
knobs, and the safe interpretation of a bad tuning knob is "untuned".

The fallback the caller passes is the *next* step of the resolution
precedence (persisted host profile, then built-in default — see
:mod:`repro.tune.profile`), so the warning names the value actually used.
"""

from __future__ import annotations

import os
import warnings

__all__ = ["env_flag", "env_float", "env_int"]


def _warn(name: str, raw: str, problem: str, fallback: object) -> None:
    warnings.warn(
        f"ignoring {problem} {name}={raw!r}; using the default of {fallback}",
        RuntimeWarning,
        stacklevel=3,
    )


def env_int(
    name: str,
    fallback: int,
    *,
    minimum: int | None = None,
) -> int:
    """Integer knob ``name``, or ``fallback`` when unset/blank/malformed.

    ``minimum`` (inclusive) bounds the accepted range; values below it warn
    and fall back like non-integers do.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return fallback
    try:
        value = int(raw)
    except ValueError:
        _warn(name, raw, "non-integer", fallback)
        return fallback
    if minimum is not None and value < minimum:
        problem = "non-positive" if minimum == 1 else f"out-of-range (< {minimum})"
        _warn(name, raw, problem, fallback)
        return fallback
    return value


_TRUE_WORDS = frozenset({"1", "true", "yes", "on"})
_FALSE_WORDS = frozenset({"0", "false", "no", "off"})


def env_flag(name: str, fallback: bool = False) -> bool:
    """Boolean knob ``name``, or ``fallback`` when unset/blank/malformed.

    Accepts the usual spellings case-insensitively (``1/true/yes/on`` and
    ``0/false/no/off``); anything else warns and falls back, like the
    numeric knobs.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return fallback
    word = raw.strip().lower()
    if word in _TRUE_WORDS:
        return True
    if word in _FALSE_WORDS:
        return False
    _warn(name, raw, "non-boolean", fallback)
    return fallback


def env_float(
    name: str,
    fallback: float,
    *,
    minimum: float | None = None,
) -> float:
    """Float knob ``name``, or ``fallback`` when unset/blank/malformed.

    ``minimum`` is inclusive; NaN never passes a ``minimum`` check.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return fallback
    try:
        value = float(raw)
    except ValueError:
        _warn(name, raw, "non-numeric", fallback)
        return fallback
    if minimum is not None and not value >= minimum:
        _warn(name, raw, f"out-of-range (< {minimum})", fallback)
        return fallback
    return value
