"""Cache-geometry cost model: *predict* the span-budget knee.

The measured story (PR 2, ``bench_batch_render``): one batched scan's
temporaries are ``(tile_size, R)`` matrices, and once their combined
working set outgrows the last-level cache every whole-batch operation
streams from DRAM at ~2x the cache-resident per-element cost.  The span
chunk budget is therefore a *residency* knob, and its knee is predictable
from first principles — the application-specific cache-simulation
methodology of PAPERS.md (arXiv:1406.5000) rather than sweep-only tuning:

    knee ≈ residency_fraction · LLC_bytes / bytes_per_span

``bytes_per_span`` is the peak live scan footprint of one span column
(:func:`repro.splat.backends.kernels.batch_scan_bytes_per_span`);
``residency_fraction`` discounts the LLC for everything else contending
for it (pair tables, the images being scattered into, other processes).

This module mirrors ``accel/dram.py``: a small frozen dataclass holding
the geometry, pure-function estimates on top, and zero hard dependencies —
cache detection reads sysfs and degrades to ``None`` on hosts without it
(macOS, containers masking ``/sys``), in which case prediction is
unavailable and the sweep stands alone.  :mod:`repro.tune.sweep` measures
the real knee; ``benchmarks/bench_tune.py`` reports the predicted-vs-
measured gap as a paper-style result.
"""

from __future__ import annotations

import dataclasses
import functools
import os

__all__ = [
    "CacheLevel",
    "DEFAULT_RESIDENCY_FRACTION",
    "SpanCostModel",
    "detect_cache_levels",
    "llc_bytes",
    "span_cost_model",
]

_SYSFS_CACHE_ROOT = "/sys/devices/system/cpu/cpu0/cache"

# Fraction of the LLC one chunk's scan temporaries may claim.  The other
# half covers the batch pair tables, the destination frames, and whatever
# else is warm; 0.5 reproduces the hand-measured 8k-span default within
# ~2x on the 12–32 MB LLCs it was measured on.
DEFAULT_RESIDENCY_FRACTION = 0.5


@dataclasses.dataclass(frozen=True)
class CacheLevel:
    """One detected CPU cache level (data or unified)."""

    level: int
    size_bytes: int
    kind: str  # "Data" | "Unified" | "Instruction"


def _parse_size(raw: str) -> int | None:
    raw = raw.strip()
    if not raw:
        return None
    mult = 1
    if raw[-1] in "kK":
        mult, raw = 1024, raw[:-1]
    elif raw[-1] in "mM":
        mult, raw = 1024 * 1024, raw[:-1]
    try:
        return int(raw) * mult
    except ValueError:
        return None


@functools.lru_cache(maxsize=4)
def detect_cache_levels(root: str = _SYSFS_CACHE_ROOT) -> tuple[CacheLevel, ...]:
    """CPU cache hierarchy from sysfs, empty on hosts that don't expose it.

    Reads ``cpu0``'s ``cache/index*/{level,size,type}`` — the per-core view
    is what residency tuning wants (the budget is per render process, and a
    process runs on one core's slice of the hierarchy at a time).
    """
    levels: list[CacheLevel] = []
    try:
        entries = sorted(os.listdir(root))
    except OSError:
        return ()
    for entry in entries:
        if not entry.startswith("index"):
            continue
        path = os.path.join(root, entry)
        try:
            with open(os.path.join(path, "level")) as f:
                level = int(f.read().strip())
            with open(os.path.join(path, "size")) as f:
                size = _parse_size(f.read())
            with open(os.path.join(path, "type")) as f:
                kind = f.read().strip()
        except (OSError, ValueError):
            continue
        if size:
            levels.append(CacheLevel(level=level, size_bytes=size, kind=kind))
    return tuple(levels)


def llc_bytes(root: str = _SYSFS_CACHE_ROOT) -> int | None:
    """Size of the last-level data/unified cache, ``None`` if undetectable."""
    data = [c for c in detect_cache_levels(root) if c.kind != "Instruction"]
    if not data:
        return None
    top = max(c.level for c in data)
    return max(c.size_bytes for c in data if c.level == top)


@dataclasses.dataclass(frozen=True)
class SpanCostModel:
    """Residency model of one batched span scan on a concrete host."""

    llc_bytes: int
    bytes_per_span: int
    residency_fraction: float = DEFAULT_RESIDENCY_FRACTION

    @property
    def predicted_span_budget(self) -> int:
        """Spans whose scan working set fills the LLC's residency share."""
        raw = int(self.llc_bytes * self.residency_fraction / self.bytes_per_span)
        return max(raw, 1)

    def working_set_bytes(self, num_spans: int) -> int:
        """Peak scan working set of a chunk of ``num_spans`` spans."""
        return num_spans * self.bytes_per_span

    def overflows_llc(self, num_spans: int, margin: float = 1.25) -> bool:
        """Whether a whole-frame scan of ``num_spans`` spans exceeds the LLC.

        ``margin`` guards the boundary region where streaming and residency
        costs blend — the cache-tiled backend's benefit gate uses it to skip
        informationally on hosts where the LLC isn't the bottleneck.
        """
        return self.working_set_bytes(num_spans) > margin * self.llc_bytes


def span_cost_model(
    tile_size: int = 16,
    residency_fraction: float = DEFAULT_RESIDENCY_FRACTION,
    root: str = _SYSFS_CACHE_ROOT,
) -> SpanCostModel | None:
    """The host's span-residency model, ``None`` where caches are opaque."""
    llc = llc_bytes(root)
    if llc is None:
        return None
    from ..splat.backends.kernels import batch_scan_bytes_per_span

    return SpanCostModel(
        llc_bytes=llc,
        bytes_per_span=batch_scan_bytes_per_span(tile_size),
        residency_fraction=residency_fraction,
    )
