"""Seeded micro-benchmark sweeps: measure each knob's knee on *this* host.

MILC-style per-machine tuning (PAPERS.md, hep-lat/0112038): short,
deterministic workloads sweep one knob at a time, a knee fit
(:mod:`repro.tune.fit`) picks the leanest setting within tolerance of peak
throughput, and :func:`autotune` persists the selections as the host's
:class:`~repro.tune.profile.HostProfile` — which the render and serve
paths then consult at startup (env vars and explicit args still win).

Swept knobs and their representative workloads:

- ``span_budget`` — multi-view ``render_batch`` over a synthetic trace
  (the PR 2 chunking workload), budget forced per candidate through
  ``REPRO_BATCH_SPAN_BUDGET``.
- ``tile_spans`` — single *large-frame* forward through the
  ``packed-tiled`` backend, tile extent per candidate; the knee is where
  sub-chunk scans stop paying (frame fits the LLC) or start amortizing
  (it doesn't).
- ``batch_size`` — ``render_batch``'s views-per-scan cap (informational:
  it is an explicit API argument, so the selection lands in the profile's
  ``meta``, not in a resolved knob).
- ``batch_budget`` / ``batch_deadline_s`` — cache-disabled serve replay of
  a seeded Zipf multi-client trace (batching is the only lever, so the
  knee is the batching knee, not the cache's).
- ``cache_max_bytes`` — the same replay with the cache enabled, byte
  budget per candidate.
- ``shm_bytes`` — the transport sweep: a cache-disabled *worker-pool*
  replay at frames large enough that moving them dominates (candidate
  ``0`` is the pickle path, so "pickle wins on this host" persists as a
  tuned ``shm_bytes = 0``).

Every sweep is seeded and sized for seconds, not minutes (``quick=True``
shrinks further for CI); measurements use best-of-``reps`` wall clock,
the same discipline as ``benchmarks/``.
"""

from __future__ import annotations

import contextlib
import dataclasses
import datetime
import os
import time
from typing import Callable, Sequence

from .fit import DEFAULT_TOLERANCE, KneeFit, fit_knee
from .model import SpanCostModel, span_cost_model
from .profile import HostProfile, host_fingerprint, save_host_profile

__all__ = [
    "SweepResult",
    "TuneReport",
    "autotune",
    "sweep_batch_budget",
    "sweep_batch_deadline",
    "sweep_batch_size",
    "sweep_cache_bytes",
    "sweep_shm_bytes",
    "sweep_span_budget",
    "sweep_tile_spans",
]


@contextlib.contextmanager
def _env(name: str, value: object):
    """Temporarily pin an env knob (the sweep's per-candidate override)."""
    old = os.environ.get(name)
    os.environ[name] = str(value)
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = old


def _best_of(fn: Callable[[], object], reps: int) -> float:
    """Best wall-clock seconds of ``reps`` runs (the bench idiom: the
    minimum estimates the noise floor, not the scheduler)."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """One knob's sweep: samples, knee fit, optional model prediction."""

    knob: str
    unit: str
    settings: tuple[float, ...]
    metrics: tuple[float, ...]  # throughput in ``unit``/s terms, higher = better
    fit: KneeFit
    predicted: int | None = None  # cost-model prediction, where one exists

    @property
    def selected(self) -> float:
        return self.fit.selected

    @property
    def prediction_gap(self) -> float | None:
        """``predicted / measured`` knee ratio (1.0 = perfect prediction)."""
        if self.predicted is None or not self.fit.selected:
            return None
        return self.predicted / self.fit.selected

    def lines(self) -> list[str]:
        fmt = "{:>12} {:>12.2f} {}"
        out = [f"{self.knob} ({self.unit}; knee tolerance {self.fit.tolerance:.0%}):"]
        for setting, metric in zip(self.settings, self.metrics):
            marks = []
            if setting == self.fit.selected:
                marks.append("<- selected")
            if setting == self.fit.best:
                marks.append("(peak)")
            out.append(fmt.format(_fmt_setting(setting), metric, " ".join(marks)))
        if self.predicted is not None:
            gap = self.prediction_gap
            out.append(
                f"{'model':>12} predicts {self.predicted} "
                f"({gap:.2f}x the measured knee)"
            )
        return out


def _fmt_setting(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:g}"


def _run_sweep(
    knob: str,
    unit: str,
    candidates: Sequence[float],
    measure: Callable[[float], float],
    tolerance: float,
    predicted: int | None = None,
) -> SweepResult:
    """Measure throughput per candidate (after one warmup at the first
    candidate, so arena/cache warmup is not charged to it) and fit the knee."""
    measure(candidates[0])
    metrics = [measure(c) for c in candidates]
    return SweepResult(
        knob=knob,
        unit=unit,
        settings=tuple(float(c) for c in candidates),
        metrics=tuple(metrics),
        fit=fit_knee(candidates, metrics, tolerance),
        predicted=predicted,
    )


# ----------------------------------------------------------------------
# Render-side sweeps
# ----------------------------------------------------------------------


def _render_workload(n_points: int, size: int, n_views: int, seed: int):
    """A deterministic multi-view workload with realistic splat footprints."""
    import numpy as np

    from ..scenes import generate_scene, trace_cameras
    from ..splat import ViewCache, render_batch

    scene = generate_scene("kitchen", n_points=n_points, seed=seed)
    # The synthetic generator sizes splats for tiny eval frames; rescale to
    # the few-pixel screen footprints real captures exhibit at this size.
    scene.log_scales += np.log(0.15 * size / 256.0)
    train, evals = trace_cameras(
        "kitchen", n_train=n_views, n_eval=n_views, width=size,
        height=int(size * 0.75), seed=seed,
    )
    cameras = (train + evals)[:n_views]
    cache = ViewCache()
    render_batch(scene, cameras, cache=cache)  # warm the prepared views
    return scene, cameras, cache


def sweep_span_budget(
    quick: bool = False,
    seed: int = 0,
    tolerance: float = DEFAULT_TOLERANCE,
    candidates: Sequence[int] | None = None,
) -> SweepResult:
    """Sweep ``REPRO_BATCH_SPAN_BUDGET`` over a multi-view batched render."""
    from ..splat import render_batch
    from ..splat.backends.packed import SPAN_BUDGET_ENV

    if candidates is None:
        candidates = (
            [2048, 8192, 32768]
            if quick
            else [1024, 2048, 4096, 8192, 16384, 32768, 65536]
        )
    n_views = 6 if quick else 8
    scene, cameras, cache = _render_workload(
        n_points=400 if quick else 1000,
        size=160 if quick else 256,
        n_views=n_views,
        seed=seed,
    )
    reps = 2 if quick else 3

    def measure(budget: float) -> float:
        with _env(SPAN_BUDGET_ENV, int(budget)):
            secs = _best_of(
                lambda: render_batch(scene, cameras, cache=cache), reps
            )
        return n_views / secs

    model = span_cost_model()
    return _run_sweep(
        "span_budget", "views/s", candidates, measure, tolerance,
        predicted=model.predicted_span_budget if model else None,
    )


def sweep_batch_size(
    quick: bool = False,
    seed: int = 0,
    tolerance: float = DEFAULT_TOLERANCE,
    candidates: Sequence[int] | None = None,
) -> SweepResult:
    """Sweep ``render_batch``'s views-per-scan cap (informational knob)."""
    from ..splat import render_batch

    if candidates is None:
        candidates = [1, 4, 8] if quick else [1, 2, 4, 8, 16]
    n_views = 8 if quick else 16
    scene, cameras, cache = _render_workload(
        n_points=400 if quick else 800,
        size=128 if quick else 192,
        n_views=n_views,
        seed=seed,
    )
    reps = 2 if quick else 3

    def measure(batch_size: float) -> float:
        secs = _best_of(
            lambda: render_batch(
                scene, cameras, batch_size=int(batch_size), cache=cache
            ),
            reps,
        )
        return n_views / secs

    return _run_sweep("batch_size", "views/s", candidates, measure, tolerance)


def sweep_tile_spans(
    quick: bool = False,
    seed: int = 0,
    tolerance: float = DEFAULT_TOLERANCE,
    candidates: Sequence[int] | None = None,
) -> SweepResult:
    """Sweep the ``packed-tiled`` tile extent over one large-frame forward.

    The workload must *be* the regime the knob tunes for: a frame whose
    span working set overflows the LLC.  A sweep on a cache-resident
    frame would measure per-chunk fixed overheads instead of cache
    residency and select a uselessly fine tile — so this sweep always
    runs at 1024², the same scale ``bench_tune`` gates at.
    """
    import numpy as np

    from ..scenes import generate_scene, trace_cameras
    from ..splat import prepare_view
    from ..splat.backends.packed import TiledPackedBackend

    size = 1024
    scene = generate_scene("kitchen", n_points=2048, seed=seed)
    scene.log_scales += np.log(0.15 * size / 256.0)
    train, _ = trace_cameras(
        "kitchen", n_train=1, n_eval=1, width=size, height=size, seed=seed
    )
    pv = prepare_view(scene, train[0])
    background = np.zeros(3)
    frame_spans = _frame_spans(pv)
    if candidates is None:
        base = (
            [8192, 32768, 131072]
            if quick
            else [8192, 16384, 32768, 65536, 131072, 262144]
        )
        # Always include "no tiling" (the packed whole-frame scan) as the
        # top candidate so the fit can conclude tiling does not pay here.
        candidates = [c for c in base if c < frame_spans] + [frame_spans]
    backend = TiledPackedBackend()
    reps = 1 if quick else 3

    def measure(tile_spans: float) -> float:
        backend.tile_spans = int(tile_spans)
        secs = _best_of(
            lambda: backend.forward(
                pv.projected, pv.assignment, scene.num_points, background,
                False, False,
            ),
            reps,
        )
        return 1.0 / secs

    model = span_cost_model()
    result = _run_sweep(
        "tile_spans", "frames/s", candidates, measure, tolerance,
        predicted=(
            min(model.predicted_span_budget, 1 << 20) if model else None
        ),
    )
    backend.tile_spans = None
    return result


def _frame_spans(pv) -> int:
    """Span count of one prepared view (the tile-sweep's workload size)."""
    from ..splat.backends.segments import build_row_spans, build_segments

    return build_row_spans(pv.projected, build_segments(pv.assignment)).num_spans


# ----------------------------------------------------------------------
# Serve-side sweeps
# ----------------------------------------------------------------------


def _serve_workload(quick: bool, seed: int):
    """A small foveated model plus a seeded Zipf multi-client trace."""
    from ..baselines import make_mini_splatting_d
    from ..foveation import uniform_foveated_model
    from ..harness import (
        EVAL_LEVEL_FRACTIONS,
        EVAL_REGION_LAYOUT,
        quick_l1_model,
        setup_trace,
    )
    from ..scenes import trace_cameras
    from ..serve import WorkloadSpec, generate_serve_trace

    setup = setup_trace(
        "kitchen", n_points=400 if quick else 800, width=96, height=72,
        n_train=4, n_eval=2, seed=seed,
    )
    dense = make_mini_splatting_d(setup.scene, seed=seed)
    l1 = quick_l1_model(setup, dense, keep_fraction=0.4)
    fmodel = uniform_foveated_model(l1, EVAL_REGION_LAYOUT, EVAL_LEVEL_FRACTIONS)
    _, poses = trace_cameras(
        "kitchen", n_train=4, n_eval=4 if quick else 6, width=96, height=72,
        seed=seed,
    )
    spec = WorkloadSpec(
        n_clients=3 if quick else 4,
        frames_per_client=8 if quick else 16,
        zipf_s=1.1,
        seed=seed,
    )
    return fmodel, generate_serve_trace(poses, spec)


def _replay_throughput(fmodel, trace, serve_config) -> float:
    from ..serve import replay_trace

    _, report = replay_trace(fmodel, trace, serve_config=serve_config)
    return trace.n_requests / report.wall_s if report.wall_s > 0 else float("inf")


def sweep_batch_budget(
    quick: bool = False,
    seed: int = 0,
    tolerance: float = DEFAULT_TOLERANCE,
    candidates: Sequence[int] | None = None,
    workload=None,
) -> SweepResult:
    """Sweep ``ServeConfig.batch_budget`` on a cache-disabled serve replay."""
    from ..serve import ServeConfig

    if candidates is None:
        candidates = [1, 4, 16] if quick else [1, 2, 4, 8, 16, 32]
    fmodel, trace = workload or _serve_workload(quick, seed)

    def measure(budget: float) -> float:
        return _replay_throughput(
            fmodel, trace,
            ServeConfig(batch_budget=int(budget), cache_max_bytes=None),
        )

    return _run_sweep(
        "batch_budget", "requests/s", candidates, measure, tolerance
    )


def sweep_batch_deadline(
    quick: bool = False,
    seed: int = 0,
    tolerance: float = DEFAULT_TOLERANCE,
    candidates: Sequence[float] | None = None,
    workload=None,
) -> SweepResult:
    """Sweep the batcher's fill deadline on a cache-disabled serve replay.

    On a drain-as-fast-as-possible replay, waiting can only trade latency
    for batch size; the knee fit keeps the smallest deadline on the
    throughput plateau (usually 0 — the deterministic-replay setting).
    """
    from ..serve import ServeConfig

    if candidates is None:
        candidates = [0.0, 0.0005, 0.002] if quick else [0.0, 0.0005, 0.002, 0.008]
    fmodel, trace = workload or _serve_workload(quick, seed)

    def measure(deadline: float) -> float:
        return _replay_throughput(
            fmodel, trace,
            ServeConfig(batch_deadline_s=float(deadline), cache_max_bytes=None),
        )

    return _run_sweep(
        "batch_deadline_s", "requests/s", candidates, measure, tolerance
    )


def sweep_cache_bytes(
    quick: bool = False,
    seed: int = 0,
    tolerance: float = DEFAULT_TOLERANCE,
    candidates: Sequence[int] | None = None,
    workload=None,
) -> SweepResult:
    """Sweep the frame cache's byte budget on the Zipf serve replay.

    The knee is where the hot set fits: bigger budgets stop adding hits,
    and the fit keeps the smallest budget on the plateau — bytes a
    multi-tenant host can hand to another tenant.
    """
    from ..serve import ServeConfig

    if candidates is None:
        mb = 1 << 20
        candidates = (
            [mb // 4, mb, 16 * mb] if quick else [mb // 4, mb, 4 * mb, 16 * mb, 64 * mb]
        )
    fmodel, trace = workload or _serve_workload(quick, seed)

    def measure(max_bytes: float) -> float:
        return _replay_throughput(
            fmodel, trace, ServeConfig(cache_max_bytes=int(max_bytes))
        )

    return _run_sweep(
        "cache_max_bytes", "requests/s", candidates, measure, tolerance
    )


def _transport_workload(quick: bool, seed: int):
    """A *large-frame* serve workload where frame transport is the lever.

    Unlike :func:`_serve_workload` (sized so batching/caching dominate),
    this one renders few splats at a big viewport: per-frame compute stays
    small while each result carries megabytes of planes — the regime the
    ``shm_bytes`` knob exists for.
    """
    import numpy as np

    from ..foveation import uniform_foveated_model
    from ..harness import EVAL_LEVEL_FRACTIONS, EVAL_REGION_LAYOUT
    from ..scenes import trace_cameras
    from ..serve import WorkloadSpec, generate_serve_trace
    from ..splat import random_model

    size = 256 if quick else 512
    fmodel = uniform_foveated_model(
        random_model(64, np.random.default_rng(seed)),
        EVAL_REGION_LAYOUT,
        EVAL_LEVEL_FRACTIONS,
    )
    _, poses = trace_cameras(
        "kitchen", n_train=2, n_eval=2, width=size,
        height=int(size * 0.75), seed=seed,
    )
    spec = WorkloadSpec(
        n_clients=2 if quick else 3,
        frames_per_client=4 if quick else 8,
        zipf_s=1.1,
        seed=seed,
    )
    return fmodel, generate_serve_trace(poses, spec)


def sweep_shm_bytes(
    quick: bool = False,
    seed: int = 0,
    tolerance: float = DEFAULT_TOLERANCE,
    candidates: Sequence[int] | None = None,
    workload=None,
) -> SweepResult:
    """Sweep the worker-pool transport arena on a large-frame replay.

    Candidate ``0`` disables the arena (every frame pickles through the
    executor pipe); the knee fit keeps the smallest arena on the
    throughput plateau, so a host where pickle is within tolerance of the
    arena peak tunes to ``shm_bytes = 0`` and skips the segment entirely.
    """
    from ..serve import ServeConfig

    if candidates is None:
        mb = 1 << 20
        candidates = (
            [0, 64 * mb] if quick else [0, 32 * mb, 128 * mb, 256 * mb]
        )
    fmodel, trace = workload or _transport_workload(quick, seed)

    def measure(shm_bytes: float) -> float:
        return _replay_throughput(
            fmodel, trace,
            ServeConfig(
                workers=1, cache_max_bytes=None, shm_bytes=int(shm_bytes)
            ),
        )

    return _run_sweep("shm_bytes", "requests/s", candidates, measure, tolerance)


# ----------------------------------------------------------------------
# The orchestrator
# ----------------------------------------------------------------------


@dataclasses.dataclass
class TuneReport:
    """Everything one ``autotune`` run measured, plus the profile it built."""

    results: dict[str, SweepResult]
    profile: HostProfile
    path: str | None = None  # where the profile was saved (None = not saved)
    cost_model: SpanCostModel | None = None

    def lines(self) -> list[str]:
        out = [f"host: {self.profile.host}"]
        if self.cost_model is not None:
            out.append(
                f"cost model: LLC {self.cost_model.llc_bytes >> 20} MiB, "
                f"{self.cost_model.bytes_per_span} B/span -> "
                f"predicted span knee {self.cost_model.predicted_span_budget}"
            )
        else:
            out.append("cost model: cache geometry not detectable on this host")
        for result in self.results.values():
            out.extend(result.lines())
        knobs = self.profile.knobs()
        out.append(
            "selected: "
            + ", ".join(f"{k}={_fmt_setting(v)}" for k, v in sorted(knobs.items()))
        )
        if self.path is not None:
            out.append(f"profile: {self.path}")
        return out


def autotune(
    quick: bool = False,
    seed: int = 0,
    tolerance: float = DEFAULT_TOLERANCE,
    save: bool = True,
    path: str | None = None,
    include_serve: bool = True,
) -> TuneReport:
    """Run every sweep, fit the knees, and persist the host profile.

    ``quick=True`` is the CI-sized run (seconds); ``include_serve=False``
    restricts to the render-side knobs (span budget, tile extent, batch
    size).  ``save=False`` measures and reports without touching disk.
    """
    results: dict[str, SweepResult] = {}
    results["span_budget"] = sweep_span_budget(quick, seed, tolerance)
    results["tile_spans"] = sweep_tile_spans(quick, seed, tolerance)
    results["batch_size"] = sweep_batch_size(quick, seed, tolerance)
    if include_serve:
        workload = _serve_workload(quick, seed)
        results["batch_budget"] = sweep_batch_budget(
            quick, seed, tolerance, workload=workload
        )
        results["batch_deadline_s"] = sweep_batch_deadline(
            quick, seed, tolerance, workload=workload
        )
        results["cache_max_bytes"] = sweep_cache_bytes(
            quick, seed, tolerance, workload=workload
        )
        results["shm_bytes"] = sweep_shm_bytes(quick, seed, tolerance)

    def selected(knob: str) -> float | None:
        return results[knob].fit.selected if knob in results else None

    meta = {
        "quick": quick,
        "seed": seed,
        "tolerance": tolerance,
        "batch_size": selected("batch_size"),
        "sweeps": {
            name: {
                "settings": list(r.settings),
                "metrics": [round(m, 3) for m in r.metrics],
                "predicted": r.predicted,
            }
            for name, r in results.items()
        },
    }
    profile = HostProfile(
        span_budget=int(selected("span_budget")),
        tile_spans=int(selected("tile_spans")),
        batch_budget=(
            int(selected("batch_budget")) if "batch_budget" in results else None
        ),
        batch_deadline_s=selected("batch_deadline_s"),
        cache_max_bytes=(
            int(selected("cache_max_bytes"))
            if "cache_max_bytes" in results
            else None
        ),
        shm_bytes=(
            int(selected("shm_bytes")) if "shm_bytes" in results else None
        ),
        host=host_fingerprint(),
        created=datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        source=f"repro.cli tune{' --quick' if quick else ''} (seed {seed})",
        meta=meta,
    )
    saved_path = save_host_profile(profile, path) if save else None
    return TuneReport(
        results=results,
        profile=profile,
        path=saved_path,
        cost_model=span_cost_model(),
    )
