"""Persisted per-host tuning profiles.

The tuner (:mod:`repro.tune.sweep`) measures each hot-path knob's knee on
the machine it runs on and writes the selections to a small JSON file
keyed by a **host fingerprint** under ``~/.cache/repro/``.  The consumers
— :func:`repro.splat.backends.packed.span_chunk_budget` /
``tile_span_budget``, :class:`repro.serve.regions.FrameCache` and
:class:`repro.serve.scheduler.ServeConfig` — consult the profile at
resolution time with one precedence everywhere:

    explicit argument  >  environment variable  >  host profile  >  default

``REPRO_TUNE_PROFILE`` overrides the profile *path* (useful for CI and
tests); the values ``off`` / ``none`` / ``0`` disable profile consultation
entirely.  A corrupted or partially-invalid profile warns and degrades:
unreadable files resolve as "no profile", individually invalid knobs are
dropped while the valid ones still apply.  Loads are memoized on the
file's ``(mtime, size, inode)`` so per-request resolution never re-reads
or re-parses; :func:`save_host_profile` and
:func:`invalidate_profile_cache` drop the memo.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import warnings
from typing import Any

from .model import llc_bytes

__all__ = [
    "PROFILE_ENV",
    "PROFILE_VERSION",
    "HostProfile",
    "default_profile_path",
    "host_fingerprint",
    "invalidate_profile_cache",
    "load_host_profile",
    "profile_path",
    "profile_source",
    "profile_value",
    "save_host_profile",
]

PROFILE_ENV = "REPRO_TUNE_PROFILE"
PROFILE_VERSION = 1
_DISABLED = {"off", "none", "0"}

# Tuned knobs a profile may carry: name -> (type, inclusive minimum).
# Anything else in the file's "knobs" table is ignored (forward
# compatibility); values of the wrong type or below the minimum are
# dropped with a warning while the rest of the profile still applies.
_KNOBS: dict[str, tuple[type, float]] = {
    "span_budget": (int, 1),
    "tile_spans": (int, 1),
    "cache_max_bytes": (int, 1),
    "batch_budget": (int, 1),
    "batch_deadline_s": (float, 0.0),
    # Serve worker-pool transport/worker knobs (PR 9): shm_bytes = 0 is a
    # meaningful tuned value ("pickle beats the arena on this host").
    "shm_bytes": (int, 0),
    "worker_viewcache": (int, 1),
}


@dataclasses.dataclass(frozen=True)
class HostProfile:
    """One host's tuned knob selections (``None`` = not tuned here)."""

    span_budget: int | None = None
    tile_spans: int | None = None
    cache_max_bytes: int | None = None
    batch_budget: int | None = None
    batch_deadline_s: float | None = None
    shm_bytes: int | None = None
    worker_viewcache: int | None = None
    host: str = ""
    created: str = ""
    source: str = ""
    meta: dict = dataclasses.field(default_factory=dict)

    def knobs(self) -> dict[str, int | float]:
        """The tuned knobs as a plain dict (``None`` entries omitted)."""
        out: dict[str, int | float] = {}
        for name in _KNOBS:
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out


def host_fingerprint() -> str:
    """A stable identifier of the tuning-relevant hardware.

    OS, ISA, core count and LLC size — the quantities the tuned knobs
    actually depend on — so a profile follows the *machine shape*, not the
    hostname: re-imaged machines keep their profile, and a home directory
    shared across different machines keeps one profile per shape.
    """
    llc = llc_bytes() or 0
    return "-".join(
        [
            platform.system().lower() or "unknown",
            platform.machine().lower() or "unknown",
            f"c{os.cpu_count() or 1}",
            f"llc{llc >> 10}k",
        ]
    )


def default_profile_path() -> str:
    """``$XDG_CACHE_HOME/repro/tune-<host fingerprint>.json``."""
    cache_home = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(cache_home, "repro", f"tune-{host_fingerprint()}.json")


def profile_path() -> str | None:
    """The active profile path, or ``None`` when disabled.

    ``REPRO_TUNE_PROFILE`` overrides the default per-host path; setting it
    to ``off`` / ``none`` / ``0`` (or whitespace) disables the profile.
    """
    raw = os.environ.get(PROFILE_ENV)
    if raw is None:
        return default_profile_path()
    raw = raw.strip()
    if not raw or raw.lower() in _DISABLED:
        return None
    return raw


# path -> (stat signature, parsed profile or None)
_cache: dict[str, tuple[tuple, HostProfile | None]] = {}


def invalidate_profile_cache() -> None:
    """Drop memoized profile loads (tests, after external file edits)."""
    _cache.clear()


def _stat_signature(path: str) -> tuple | None:
    try:
        st = os.stat(path)
    except OSError:
        return None
    return (st.st_mtime_ns, st.st_size, st.st_ino)


def _coerce_knob(name: str, value: Any) -> int | float | None:
    kind, minimum = _KNOBS[name]
    # bool is an int subclass but never a meaningful knob value.
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    if kind is int and not isinstance(value, int):
        return None
    if value < minimum:
        return None
    return kind(value)


def _parse(path: str, data: Any) -> HostProfile:
    if not isinstance(data, dict):
        raise ValueError("profile root must be a JSON object")
    raw_knobs = data.get("knobs", {})
    if not isinstance(raw_knobs, dict):
        raise ValueError("profile 'knobs' must be a JSON object")
    fields: dict[str, Any] = {}
    for name in _KNOBS:
        if name not in raw_knobs or raw_knobs[name] is None:
            continue
        value = _coerce_knob(name, raw_knobs[name])
        if value is None:
            warnings.warn(
                f"dropping invalid knob {name}={raw_knobs[name]!r} from "
                f"tuning profile {path}",
                RuntimeWarning,
                stacklevel=4,
            )
            continue
        fields[name] = value
    meta = data.get("meta", {})
    return HostProfile(
        host=str(data.get("host", "")),
        created=str(data.get("created", "")),
        source=str(data.get("source", "")),
        meta=meta if isinstance(meta, dict) else {},
        **fields,
    )


def load_host_profile(path: str | None = None) -> HostProfile | None:
    """The persisted profile at ``path`` (default: the active path).

    Returns ``None`` when the profile is disabled, absent, or unreadable —
    unreadable/corrupted files warn once per file version (the memo caches
    the ``None``) and never raise: a damaged tuning cache must degrade to
    "untuned", not break the render path.
    """
    if path is None:
        path = profile_path()
    if path is None:
        return None
    sig = _stat_signature(path)
    if sig is None:
        return None
    cached = _cache.get(path)
    if cached is not None and cached[0] == sig:
        return cached[1]
    profile: HostProfile | None
    try:
        with open(path) as f:
            data = json.load(f)
        profile = _parse(path, data)
    except (OSError, ValueError) as exc:
        warnings.warn(
            f"ignoring unreadable tuning profile {path}: {exc}",
            RuntimeWarning,
            stacklevel=2,
        )
        profile = None
    _cache[path] = (sig, profile)
    return profile


def save_host_profile(profile: HostProfile, path: str | None = None) -> str:
    """Write ``profile`` as JSON (creating directories), return the path."""
    if path is None:
        path = profile_path() or default_profile_path()
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    payload = {
        "version": PROFILE_VERSION,
        "host": profile.host or host_fingerprint(),
        "created": profile.created,
        "source": profile.source,
        "knobs": profile.knobs(),
        "meta": profile.meta,
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    os.replace(tmp, path)
    _cache.pop(path, None)
    return path


def profile_value(name: str) -> int | float | None:
    """Knob ``name`` from the active profile, ``None`` when untuned.

    This is the hook the consumers call in their resolution chains; it is
    cheap (one memoized stat) and never raises.
    """
    if name not in _KNOBS:
        raise KeyError(f"unknown tuning knob {name!r}; known: {sorted(_KNOBS)}")
    profile = load_host_profile()
    if profile is None:
        return None
    return getattr(profile, name)


def profile_source() -> str:
    """Where knob defaults come from right now (for bench-report stamps)."""
    path = profile_path()
    if path is None:
        return "off"
    if load_host_profile(path) is None:
        return "none"
    return path
