"""Knee fitting: the smallest setting within tolerance of peak throughput.

Every knob the tuner sweeps has the same shape: throughput rises (batching
amortizes fixed costs, caches absorb reuse) and then flattens or falls
(working sets outgrow the cache, batching adds latency).  Picking the
argmax would chase measurement noise along the plateau and always prefer
the most resource-hungry setting; the MILC-style methodology (PAPERS.md,
hep-lat/0112038) instead reports the *knee* — the cheapest setting whose
throughput is within a small tolerance of the best observed.  That is
what :func:`fit_knee` returns, preferring smaller settings on ties so
budgets and byte caps stay as lean as the plateau allows.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

__all__ = ["DEFAULT_TOLERANCE", "KneeFit", "fit_knee"]

DEFAULT_TOLERANCE = 0.05


@dataclasses.dataclass(frozen=True)
class KneeFit:
    """Outcome of one knee fit over ``(setting, throughput)`` samples."""

    settings: tuple[float, ...]  # sorted ascending
    metrics: tuple[float, ...]  # aligned with ``settings``
    tolerance: float
    selected: float
    selected_metric: float
    best: float
    best_metric: float

    @property
    def relative(self) -> float:
        """Selected throughput as a fraction of the best observed."""
        return self.selected_metric / self.best_metric if self.best_metric else 1.0


def fit_knee(
    settings: Sequence[float],
    metrics: Sequence[float],
    tolerance: float = DEFAULT_TOLERANCE,
) -> KneeFit:
    """Pick the smallest ``setting`` whose ``metric`` is within ``tolerance``
    of the peak.

    ``metrics`` are throughputs (higher is better).  Samples are sorted by
    setting; duplicate settings keep their best metric.  By construction
    the selection satisfies ``selected_metric >= (1 - tolerance) *
    best_metric`` — the ≥0.95x-of-best guarantee ``bench_tune`` gates at
    the default tolerance.
    """
    if len(settings) != len(metrics):
        raise ValueError(
            f"need one metric per setting, got {len(metrics)} metrics "
            f"for {len(settings)} settings"
        )
    if not settings:
        raise ValueError("need at least one (setting, metric) sample")
    if not 0.0 <= tolerance < 1.0:
        raise ValueError("tolerance must be in [0, 1)")
    best_of: dict[float, float] = {}
    for setting, metric in zip(settings, metrics):
        setting, metric = float(setting), float(metric)
        if setting not in best_of or metric > best_of[setting]:
            best_of[setting] = metric
    ordered = sorted(best_of)
    values = [best_of[s] for s in ordered]
    best_metric = max(values)
    best = ordered[values.index(best_metric)]
    cut = (1.0 - tolerance) * best_metric
    selected, selected_metric = next(
        (s, m) for s, m in zip(ordered, values) if m >= cut
    )
    return KneeFit(
        settings=tuple(ordered),
        metrics=tuple(values),
        tolerance=tolerance,
        selected=selected,
        selected_metric=selected_metric,
        best=best,
        best_metric=best_metric,
    )
