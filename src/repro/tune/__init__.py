"""Per-host autotuning of kernel, cache and scheduler knobs.

MILC-style (PAPERS.md, hep-lat/0112038): short seeded micro-benchmarks
(:mod:`.sweep`) measure each hot-path knob's throughput curve on the
machine at hand, a knee fit (:mod:`.fit`) picks the leanest setting
within tolerance of peak, and the selections persist as a JSON
:class:`~repro.tune.profile.HostProfile` keyed by host fingerprint
(:mod:`.profile`).  An analytic LLC cost model (:mod:`.model`) predicts
the span-budget knee from cache geometry, cross-checked against the
measured knee in ``benchmarks/bench_tune.py``.

Consumers resolve knobs with one precedence everywhere::

    explicit argument  >  environment variable  >  host profile  >  default

Run the tuner with ``python -m repro.cli tune`` (``--quick`` for the
CI-sized variant); point consumers at a specific profile with
``REPRO_TUNE_PROFILE=/path/to/profile.json`` (or ``off`` to disable).

The sweep module imports the render and serve stacks, so it is loaded
lazily — ``import repro.tune`` stays cheap for the hot-path consumers
that only need :func:`profile_value`.
"""

from __future__ import annotations

from .fit import DEFAULT_TOLERANCE, KneeFit, fit_knee
from .model import (
    CacheLevel,
    SpanCostModel,
    detect_cache_levels,
    llc_bytes,
    span_cost_model,
)
from .profile import (
    PROFILE_ENV,
    HostProfile,
    default_profile_path,
    host_fingerprint,
    invalidate_profile_cache,
    load_host_profile,
    profile_path,
    profile_source,
    profile_value,
    save_host_profile,
)

__all__ = [
    "DEFAULT_TOLERANCE",
    "CacheLevel",
    "HostProfile",
    "KneeFit",
    "PROFILE_ENV",
    "SweepResult",
    "TuneReport",
    "autotune",
    "default_profile_path",
    "detect_cache_levels",
    "fit_knee",
    "host_fingerprint",
    "invalidate_profile_cache",
    "llc_bytes",
    "load_host_profile",
    "profile_path",
    "profile_source",
    "profile_value",
    "save_host_profile",
    "span_cost_model",
    "sweep_batch_budget",
    "sweep_batch_deadline",
    "sweep_batch_size",
    "sweep_cache_bytes",
    "sweep_span_budget",
    "sweep_tile_spans",
]

_SWEEP_NAMES = {
    "SweepResult",
    "TuneReport",
    "autotune",
    "sweep_batch_budget",
    "sweep_batch_deadline",
    "sweep_batch_size",
    "sweep_cache_bytes",
    "sweep_span_budget",
    "sweep_tile_spans",
}


def __getattr__(name: str):
    if name in _SWEEP_NAMES:
        from . import sweep

        return getattr(sweep, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
