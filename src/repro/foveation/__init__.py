"""MetaSapiens contribution #2: foveated rendering for PBNR (paper Sec 4)."""

from .baselines import make_mmfr, make_smfr, mmfr_storage_bytes, smfr_storage_bytes
from .fr_renderer import (
    FRRenderResult,
    FRRenderStats,
    render_foveated,
    render_foveated_batch,
    render_multi_model,
)
from .hierarchy import MULTI_VERSIONED_PARAMS, FoveatedModel, uniform_foveated_model
from .regions import (
    PAPER_REGION_BOUNDARIES_DEG,
    RegionLayout,
    RegionMaps,
    compute_region_maps,
    region_masks,
    region_pixel_fractions,
)
from .training import (
    FRTrainConfig,
    FRTrainResult,
    build_foveated_model,
    finetune_level,
    measure_level_hvsq,
)

__all__ = [
    "FRRenderResult",
    "FRRenderStats",
    "FRTrainConfig",
    "FRTrainResult",
    "FoveatedModel",
    "MULTI_VERSIONED_PARAMS",
    "PAPER_REGION_BOUNDARIES_DEG",
    "RegionLayout",
    "RegionMaps",
    "build_foveated_model",
    "compute_region_maps",
    "finetune_level",
    "make_mmfr",
    "make_smfr",
    "measure_level_hvsq",
    "mmfr_storage_bytes",
    "region_masks",
    "region_pixel_fractions",
    "render_foveated",
    "render_foveated_batch",
    "render_multi_model",
    "smfr_storage_bytes",
    "uniform_foveated_model",
]
