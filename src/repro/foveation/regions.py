"""Quality regions for foveated rendering (Sec 4.1 / Sec 6).

The image is divided into N eccentricity annuli around the gaze; region k is
rendered by quality level k (1 = foveal, highest quality).  The paper uses
four regions starting at 0°, 18°, 27° and 33° of eccentricity, covering
roughly 13% / 17% / 21% / 49% of pixels on their headset.

Blending: each region renders slightly past its outer boundary, and pixels
inside the transition band are rendered by *both* adjacent levels and
interpolated, eliminating the visible seam (a form of anti-aliasing across
quality levels).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..splat.camera import Camera
from ..splat.tiling import TileGrid

PAPER_REGION_BOUNDARIES_DEG = (0.0, 18.0, 27.0, 33.0)


@dataclasses.dataclass(frozen=True)
class RegionLayout:
    """Eccentricity region division plus the blending band width."""

    boundaries_deg: tuple[float, ...] = PAPER_REGION_BOUNDARIES_DEG
    blend_band_deg: float = 1.5

    def __post_init__(self) -> None:
        b = self.boundaries_deg
        if len(b) < 1 or b[0] != 0.0:
            raise ValueError("boundaries must start at 0 degrees")
        if any(b[i] >= b[i + 1] for i in range(len(b) - 1)):
            raise ValueError("boundaries must be strictly increasing")
        if self.blend_band_deg < 0:
            raise ValueError("blend band must be non-negative")

    @property
    def num_levels(self) -> int:
        return len(self.boundaries_deg)

    def level_of(self, eccentricity_deg: np.ndarray) -> np.ndarray:
        """Quality level (1-based) of each eccentricity value."""
        ecc = np.asarray(eccentricity_deg, dtype=np.float64)
        level = np.ones(ecc.shape, dtype=np.int64)
        for boundary in self.boundaries_deg[1:]:
            level += (ecc >= boundary).astype(np.int64)
        return level

    def blend_weights(self, eccentricity_deg: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Blend factor toward the *next* level inside transition bands.

        Returns ``(needs_blend (bool), weight_next (float in [0, 1]))``:
        pixels in the band ``[b_k − h, b_k + h]`` around boundary ``b_k`` mix
        level k and level k+1, with ``weight_next`` ramping 0 → 1 across the
        band (each region renders slightly beyond its boundary, and the
        doubly-rendered pixels are interpolated — Sec 4.1).
        """
        ecc = np.asarray(eccentricity_deg, dtype=np.float64)
        needs_blend = np.zeros(ecc.shape, dtype=bool)
        weight_next = np.zeros(ecc.shape, dtype=np.float64)
        h = self.blend_band_deg
        if h == 0:
            return needs_blend, weight_next
        for boundary in self.boundaries_deg[1:]:
            in_band = (ecc >= boundary - h) & (ecc < boundary + h)
            needs_blend |= in_band
            w = (ecc - (boundary - h)) / (2.0 * h)  # 0 → 1 across the band
            weight_next = np.where(in_band, np.clip(w, 0.0, 1.0), weight_next)
        return needs_blend, weight_next


@dataclasses.dataclass
class RegionMaps:
    """Precomputed per-pixel and per-tile foveation maps for one view.

    Following the paper, a tile is assigned **one** quality level from its
    eccentricity (we use the tile centre); only tiles containing blend-band
    pixels are rendered at a second level, and only those pixels are
    composited twice (~25% of pixels at headset scale).
    """

    pixel_level: np.ndarray  # (H, W) 1-based quality level of each pixel
    needs_blend: np.ndarray  # (H, W) pixels rendered twice
    weight_next: np.ndarray  # (H, W) blend factor toward the outer level
    band_level: np.ndarray  # (H, W) inner level k of the band a pixel is in (0 = none)
    tile_level: np.ndarray  # (T,) the level each tile is rendered at
    tile_second_level: np.ndarray  # (T,) extra level for blending (0 = none)
    eccentricity: np.ndarray  # (H, W) degrees

    @property
    def blend_fraction(self) -> float:
        """Fraction of pixels rendered twice (the paper reports ≈ 25%)."""
        return float(self.needs_blend.mean())


def compute_region_maps(
    camera: Camera,
    grid: TileGrid,
    layout: RegionLayout,
    gaze: tuple[float, float] | None = None,
) -> RegionMaps:
    """Per-pixel levels / blend weights and per-tile render levels."""
    ecc = camera.pixel_eccentricity(gaze)
    pixel_level = layout.level_of(ecc)
    needs_blend, weight_next = layout.blend_weights(ecc)

    # Which boundary's band each blend pixel belongs to (inner level k).
    band_level = np.zeros(ecc.shape, dtype=np.int64)
    h = layout.blend_band_deg
    for k, boundary in enumerate(layout.boundaries_deg[1:], start=1):
        in_band = (ecc >= boundary - h) & (ecc < boundary + h)
        band_level[in_band] = k

    # Tile level from the tile-centre eccentricity (one level per tile).
    centers = grid.tile_centers()
    cx = np.clip(centers[:, 0].astype(np.int64), 0, grid.width - 1)
    cy = np.clip(centers[:, 1].astype(np.int64), 0, grid.height - 1)
    tile_level = pixel_level[cy, cx]

    tile_second_level = np.zeros(grid.num_tiles, dtype=np.int64)
    for tile_id in range(grid.num_tiles):
        x0, y0, x1, y1 = grid.tile_pixel_bounds(tile_id)
        bands = band_level[y0:y1, x0:x1]
        bands = bands[bands > 0]
        if bands.size == 0:
            continue
        # Dominant band in the tile decides the second render level: the
        # band mixes levels (k, k+1); the tile's primary covers one of them.
        k = int(np.bincount(bands).argmax())
        primary = int(tile_level[tile_id])
        if primary <= k:
            tile_second_level[tile_id] = min(k + 1, layout.num_levels)
        else:
            tile_second_level[tile_id] = k
        if tile_second_level[tile_id] == primary:
            tile_second_level[tile_id] = 0

    return RegionMaps(
        pixel_level=pixel_level,
        needs_blend=needs_blend,
        weight_next=weight_next,
        band_level=band_level,
        tile_level=tile_level,
        tile_second_level=tile_second_level,
        eccentricity=ecc,
    )


def region_masks(
    camera: Camera,
    layout: RegionLayout,
    gaze: tuple[float, float] | None = None,
) -> list[np.ndarray]:
    """Boolean pixel mask of each quality region (for per-region HVSQ)."""
    ecc = camera.pixel_eccentricity(gaze)
    level = layout.level_of(ecc)
    return [level == k for k in range(1, layout.num_levels + 1)]


def region_pixel_fractions(
    camera: Camera,
    layout: RegionLayout,
    gaze: tuple[float, float] | None = None,
) -> np.ndarray:
    """Fraction of image pixels in each region (paper: 13/17/21/49%)."""
    masks = region_masks(camera, layout, gaze)
    return np.asarray([m.mean() for m in masks])
