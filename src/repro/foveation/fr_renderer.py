"""The foveated rendering pipeline (Fig 7, panel E).

Augments the standard PBNR pipeline with two stages:

- **Filtering** (after projection): a tile at quality level ``t`` only
  rasterizes points whose quality bound ``m ≥ t``.
- **Blending** (after rasterization): pixels in the transition band between
  two regions are rendered at *both* adjacent levels and interpolated.
  Only the band pixels are rendered twice (~25% of pixels in the paper);
  the second-level pass runs on exactly those pixel columns.

Thanks to subsetting, Projection / Tiling / Sorting run **once** for the
whole frame (the level-t point set is a subset of the level-1 set, so the
sorted level-1 tile lists serve every level).  The multi-model baseline
(MMFR) has no such sharing and re-runs projection per level —
:func:`render_multi_model` charges that cost explicitly.

All entry points are thin orchestrators: the pixel work is delegated to the
rasterization backend selected by ``config.backend`` (see
:mod:`repro.splat.backends`), which reuses the frame's packed intersection
segments for level filtering and band blending instead of a per-tile loop.
Multi-frame foveated consumers (gaze trajectories, the harness, FPS
benchmarks) render through :func:`render_foveated_batch`, which shares each
pose's view-preparation prefix across its gaze samples and hands whole
batches of frames to backends implementing ``foveated_frame_batch``.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from ..splat.backends import get_backend, supports_foveated_batch
from ..splat.backends.segments import RowSpans
from ..splat.camera import Camera
from ..splat.gaussians import GaussianModel
from ..splat.renderer import PreparedView, RenderConfig, ViewCache, prepare_view
from .hierarchy import FoveatedModel
from .regions import RegionLayout, RegionMaps, compute_region_maps


@dataclasses.dataclass
class FRRenderStats:
    """Workload statistics of one foveated frame (drive perf/accel models)."""

    sort_intersections_per_tile: np.ndarray  # (T,) splats sorted per tile
    raster_intersections_per_tile: np.ndarray  # (T,) effective raster work
    tile_levels: np.ndarray  # (T,)
    blend_pixels: int  # pixels rendered twice
    num_projected: int  # splats through Projection+Filtering
    projection_runs: int  # 1 with subsetting; num_levels for MMFR
    num_points: int

    @property
    def total_raster_intersections(self) -> int:
        return int(self.raster_intersections_per_tile.sum())

    @property
    def total_sort_intersections(self) -> int:
        return int(self.sort_intersections_per_tile.sum())


@dataclasses.dataclass
class FRRenderResult:
    """One foveated frame: clipped image, workload stats, region maps.

    ``level_spans`` surfaces the per-level filtered row-span lists the
    backend actually rasterized (span-based engines only; ``None`` on the
    ``reference`` oracle) — the real foveated workload
    :func:`repro.accel.spans_to_tile_counts` consumes.
    """

    image: np.ndarray  # (H, W, 3)
    stats: FRRenderStats
    maps: RegionMaps
    level_spans: dict[int, RowSpans] | None = None


def _level_tables(
    fmodel: FoveatedModel,
) -> tuple[dict[int, np.ndarray], dict[int, np.ndarray]]:
    """The multi-versioned per-level parameter tables every frame shares."""
    n_levels = fmodel.num_levels
    level_opacity = {t: fmodel.level_opacities(t) for t in range(1, n_levels + 1)}
    level_delta = {t: fmodel.level_color_delta(t) for t in range(1, n_levels + 1)}
    return level_opacity, level_delta


def _frame_result(
    fmodel: FoveatedModel, prepared: PreparedView, maps: RegionMaps, frame
) -> FRRenderResult:
    """Assemble the public result from one backend frame."""
    stats = FRRenderStats(
        sort_intersections_per_tile=frame.sort_intersections_per_tile,
        raster_intersections_per_tile=frame.raster_intersections_per_tile,
        tile_levels=maps.tile_level,
        blend_pixels=frame.blend_pixels,
        num_projected=prepared.projected.num_visible,
        projection_runs=1,
        num_points=fmodel.num_points,
    )
    return FRRenderResult(
        image=np.clip(frame.image, 0.0, 1.0),
        stats=stats,
        maps=maps,
        level_spans=frame.level_spans,
    )


def render_foveated(
    fmodel: FoveatedModel,
    camera: Camera,
    gaze: tuple[float, float] | None = None,
    config: RenderConfig | None = None,
    prepared: PreparedView | None = None,
) -> FRRenderResult:
    """Render one foveated frame from a hierarchical subset model.

    ``prepared`` reuses a cached view prefix for ``fmodel.base`` (e.g. a
    :class:`repro.splat.ViewCache` entry) instead of re-projecting.
    """
    config = config or RenderConfig()
    background = np.asarray(config.background, dtype=np.float64)

    # Projection + tiling + sorting run once on the full (L1) point set.
    if prepared is None:
        prepared = prepare_view(fmodel.base, camera, config)
    projected, assignment = prepared
    maps = compute_region_maps(camera, assignment.grid, fmodel.layout, gaze)
    level_opacity, level_delta = _level_tables(fmodel)

    engine = get_backend(config.backend)
    frame = engine.foveated_frame(
        projected,
        assignment,
        maps,
        fmodel.quality_bounds,
        level_opacity,
        level_delta,
        background,
    )
    return _frame_result(fmodel, prepared, maps, frame)


def _is_single_gaze(gazes) -> bool:
    """A bare ``(x, y)`` point rather than a sequence of per-frame gazes.

    Any 2-element run of scalars counts — tuple, list or 1-D array — so a
    gaze that :func:`render_foveated` accepts is never misread as two
    frames' worth of coordinates.  A 1-D array of any other length is an
    error rather than silently becoming a gaze point.
    """
    if isinstance(gazes, np.ndarray):
        if gazes.ndim != 1:
            return False
        if gazes.shape[0] != 2:
            raise ValueError(
                f"a gaze point needs 2 coordinates, got {gazes.shape[0]}"
            )
        return True
    if isinstance(gazes, (tuple, list)) and len(gazes) == 2:
        return all(isinstance(v, (int, float, np.integer, np.floating)) for v in gazes)
    return False


def _normalize_frames(cameras, gazes) -> tuple[list[Camera], list]:
    """Broadcast cameras/gazes into aligned per-frame lists.

    A single camera fans out across a gaze trajectory (the batched-serve
    shape); a single gaze (or ``None``) broadcasts across a camera list;
    two sequences must agree in length.
    """
    cam_list = [cameras] if isinstance(cameras, Camera) else list(cameras)
    if gazes is None or _is_single_gaze(gazes):
        gaze = None if gazes is None else tuple(float(v) for v in gazes)
        return cam_list, [gaze] * len(cam_list)
    gaze_list = [
        None if g is None else tuple(float(v) for v in g) for g in gazes
    ]
    if len(cam_list) == 1 and len(gaze_list) != 1:
        cam_list = cam_list * len(gaze_list)
    elif len(gaze_list) == 1 and len(cam_list) != 1:
        gaze_list = gaze_list * len(cam_list)
    elif len(cam_list) != len(gaze_list):
        raise ValueError(
            f"got {len(cam_list)} cameras but {len(gaze_list)} gazes; "
            "lengths must match (or one side must be a single item)"
        )
    return cam_list, gaze_list


def render_foveated_batch(
    fmodel: FoveatedModel,
    cameras: Camera | Sequence[Camera],
    gazes=None,
    config: RenderConfig | None = None,
    batch_size: int | None = None,
    cache: ViewCache | None = None,
) -> list[FRRenderResult]:
    """Render many foveated frames — gaze samples and/or poses — batched.

    The public multi-frame foveated entry point: frame ``i`` renders
    ``cameras[i]`` at ``gazes[i]``, with single-item broadcasting on either
    side (one camera across a gaze trajectory is the canonical workload).
    Each distinct camera's Projection/Tiling/Sorting prefix is prepared
    once per chunk and shared by all of its gaze samples (``cache``
    additionally shares it across calls); backends implementing
    ``foveated_frame_batch`` then run whole chunks of frames through one
    concatenated span scan, while other backends are looped per frame.
    ``batch_size`` caps how many frames share one dispatch (``None``
    batches everything).

    Guarantees: a batch of one frame is **bit-identical** to
    :func:`render_foveated`, and multi-frame batches match the per-frame
    ``reference`` oracle within 1e-10 (``tests/test_foveated_batch.py``).
    """
    config = config or RenderConfig()
    if batch_size is not None and batch_size <= 0:
        raise ValueError("batch_size must be positive")
    cam_list, gaze_list = _normalize_frames(cameras, gazes)
    if not cam_list:
        return []

    background = np.asarray(config.background, dtype=np.float64)
    level_opacity, level_delta = _level_tables(fmodel)
    engine = get_backend(config.backend)
    batched = supports_foveated_batch(engine)

    results: list[FRRenderResult] = []
    step = batch_size or len(cam_list)
    # One PreparedView per distinct camera object: a gaze trajectory
    # re-uses its pose's prefix instead of re-projecting per sample, even
    # when ``batch_size`` splits the trajectory across chunks.  Prefixes
    # are dropped once no later frame needs them, so ``batch_size`` still
    # bounds the prepared working set for many-pose batches (cf.
    # ``render_batch``).  ``cache`` extends the sharing across calls and
    # de-duplicates content-equal cameras that are distinct objects; its
    # lookups go through ``get_batch`` per chunk so the O(parameter-bytes)
    # model fingerprint is computed once per chunk, not once per camera.
    prepared: dict[int, PreparedView] = {}
    uses: dict[int, int] = {}
    for camera in cam_list:
        uses[id(camera)] = uses.get(id(camera), 0) + 1
    for i in range(0, len(cam_list), step):
        chunk_cams = cam_list[i : i + step]
        chunk_gazes = gaze_list[i : i + step]
        new_cams: list[Camera] = []
        seen: set[int] = set()
        for camera in chunk_cams:
            key = id(camera)
            if key not in prepared and key not in seen:
                seen.add(key)
                new_cams.append(camera)
        if new_cams:
            new_views = (
                cache.get_batch(fmodel.base, new_cams, config)
                if cache is not None
                else [prepare_view(fmodel.base, c, config) for c in new_cams]
            )
            prepared.update(
                {id(camera): view for camera, view in zip(new_cams, new_views)}
            )
        views = [prepared[id(camera)] for camera in chunk_cams]
        maps_list = [
            compute_region_maps(camera, view.assignment.grid, fmodel.layout, gaze)
            for camera, view, gaze in zip(chunk_cams, views, chunk_gazes)
        ]
        view_tuples = [(v.projected, v.assignment) for v in views]
        if batched:
            frames = engine.foveated_frame_batch(
                view_tuples, maps_list, fmodel.quality_bounds, level_opacity,
                level_delta, background,
            )
        else:
            frames = [
                engine.foveated_frame(
                    projected, assignment, maps, fmodel.quality_bounds,
                    level_opacity, level_delta, background,
                )
                for (projected, assignment), maps in zip(view_tuples, maps_list)
            ]
        results.extend(
            _frame_result(fmodel, view, maps, frame)
            for view, maps, frame in zip(views, maps_list, frames)
        )
        for camera in chunk_cams:
            key = id(camera)
            uses[key] -= 1
            if uses[key] == 0:
                prepared.pop(key, None)
    return results


def render_multi_model(
    level_models: list[GaussianModel],
    layout: RegionLayout,
    camera: Camera,
    gaze: tuple[float, float] | None = None,
    config: RenderConfig | None = None,
    cache: ViewCache | None = None,
    prepared_views: Sequence[PreparedView] | None = None,
) -> FRRenderResult:
    """MMFR: independent models per level, projection re-run for each.

    This is the Fov-NeRF-style baseline (Sec 6): same region layout, but the
    level models share no points or parameters, so every level pays its own
    Projection/Filtering and the storage is the sum of all models.

    ``cache`` memoizes each level model's view prefix per (model, pose), so
    repeated frames of one pose stop re-projecting identical per-level views
    — the *measured* workload statistics still charge every level its own
    projection run, which is exactly MMFR's cost story.  ``prepared_views``
    hands the per-level prefixes in directly (one per level model,
    outranking ``cache``); the caller is responsible for them matching
    (models, camera, config).
    """
    config = config or RenderConfig()
    if len(level_models) != layout.num_levels:
        raise ValueError(f"need {layout.num_levels} level models")
    background = np.asarray(config.background, dtype=np.float64)

    if prepared_views is not None:
        if len(prepared_views) != len(level_models):
            raise ValueError(
                f"need {len(level_models)} prepared views, got {len(prepared_views)}"
            )
        views = list(prepared_views)
    elif cache is not None:
        views = [cache.get(m, camera, config) for m in level_models]
    else:
        views = [prepare_view(m, camera, config) for m in level_models]
    grid = views[0][1].grid
    maps = compute_region_maps(camera, grid, layout, gaze)

    engine = get_backend(config.backend)
    frame = engine.multi_model_frame(views, maps, background)

    stats = FRRenderStats(
        sort_intersections_per_tile=frame.sort_intersections_per_tile,
        raster_intersections_per_tile=frame.raster_intersections_per_tile,
        tile_levels=maps.tile_level,
        blend_pixels=frame.blend_pixels,
        num_projected=sum(v[0].num_visible for v in views),
        projection_runs=layout.num_levels,
        num_points=sum(m.num_points for m in level_models),
    )
    return FRRenderResult(image=np.clip(frame.image, 0.0, 1.0), stats=stats, maps=maps)
