"""The foveated rendering pipeline (Fig 7, panel E).

Augments the standard PBNR pipeline with two stages:

- **Filtering** (after projection): a tile at quality level ``t`` only
  rasterizes points whose quality bound ``m ≥ t``.
- **Blending** (after rasterization): pixels in the transition band between
  two regions are rendered at *both* adjacent levels and interpolated.
  Only the band pixels are rendered twice (~25% of pixels in the paper);
  the second-level pass runs on exactly those pixel columns.

Thanks to subsetting, Projection / Tiling / Sorting run **once** for the
whole frame (the level-t point set is a subset of the level-1 set, so the
sorted level-1 tile lists serve every level).  The multi-model baseline
(MMFR) has no such sharing and re-runs projection per level —
:func:`render_multi_model` charges that cost explicitly.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..splat.camera import Camera
from ..splat.gaussians import GaussianModel
from ..splat.projection import ALPHA_EPS
from ..splat.rasterizer import ALPHA_CLAMP, composite, splat_alphas, tile_pixel_centers
from ..splat.renderer import RenderConfig, prepare_view
from .hierarchy import FoveatedModel
from .regions import RegionLayout, RegionMaps, compute_region_maps


@dataclasses.dataclass
class FRRenderStats:
    """Workload statistics of one foveated frame (drive perf/accel models)."""

    sort_intersections_per_tile: np.ndarray  # (T,) splats sorted per tile
    raster_intersections_per_tile: np.ndarray  # (T,) effective raster work
    tile_levels: np.ndarray  # (T,)
    blend_pixels: int  # pixels rendered twice
    num_projected: int  # splats through Projection+Filtering
    projection_runs: int  # 1 with subsetting; num_levels for MMFR
    num_points: int

    @property
    def total_raster_intersections(self) -> int:
        return int(self.raster_intersections_per_tile.sum())

    @property
    def total_sort_intersections(self) -> int:
        return int(self.sort_intersections_per_tile.sum())


@dataclasses.dataclass
class FRRenderResult:
    image: np.ndarray  # (H, W, 3)
    stats: FRRenderStats
    maps: RegionMaps


def _tile_blend_mask(
    maps: RegionMaps, primary: int, second: int, bounds: tuple[int, int, int, int]
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Pixels of a tile that blend two levels.

    Returns ``(mix mask (h, w), weight toward the outer level, lo, hi)``.
    """
    x0, y0, x1, y1 = bounds
    lo, hi = (primary, second) if second > primary else (second, primary)
    band = maps.band_level[y0:y1, x0:x1]
    mix = (band == lo) & maps.needs_blend[y0:y1, x0:x1]
    weight = maps.weight_next[y0:y1, x0:x1]
    return mix, weight, lo, hi


def _composite_masked(
    base_exp: np.ndarray,
    opacities: np.ndarray,
    splat_mask: np.ndarray,
    colors: np.ndarray,
    background: np.ndarray,
    pixel_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Composite one quality level, optionally over a pixel subset."""
    exp_term = base_exp if pixel_mask is None else base_exp[:, pixel_mask]
    alphas = opacities[:, None] * exp_term
    alphas = np.where(alphas < ALPHA_EPS, 0.0, np.minimum(alphas, ALPHA_CLAMP))
    alphas = alphas * splat_mask[:, None]
    pixel_colors, _, _ = composite(alphas, colors, background)
    return pixel_colors


def render_foveated(
    fmodel: FoveatedModel,
    camera: Camera,
    gaze: tuple[float, float] | None = None,
    config: RenderConfig | None = None,
) -> FRRenderResult:
    """Render one foveated frame from a hierarchical subset model."""
    config = config or RenderConfig()
    background = np.asarray(config.background, dtype=np.float64)

    # Projection + tiling + sorting run once on the full (L1) point set.
    projected, assignment = prepare_view(fmodel.base, camera, config)
    grid = assignment.grid
    maps = compute_region_maps(camera, grid, fmodel.layout, gaze)

    bounds = fmodel.quality_bounds
    n_levels = fmodel.num_levels
    level_opacity = {t: fmodel.level_opacities(t) for t in range(1, n_levels + 1)}
    level_delta = {t: fmodel.level_color_delta(t) for t in range(1, n_levels + 1)}

    image = np.empty((grid.height, grid.width, 3))
    sort_ints = np.zeros(grid.num_tiles, dtype=np.int64)
    raster_ints = np.zeros(grid.num_tiles, dtype=np.float64)
    blend_pixels = 0
    tile_pixels = grid.tile_size**2

    for tile_id in range(grid.num_tiles):
        splat_idx = assignment.splats_in_tile(tile_id)
        x0, y0, x1, y1 = grid.tile_pixel_bounds(tile_id)
        pixels = tile_pixel_centers(grid, tile_id)
        t = int(maps.tile_level[tile_id])
        second = int(maps.tile_second_level[tile_id])

        if splat_idx.size == 0:
            image[y0:y1, x0:x1] = background
            continue

        pids = projected.point_ids[splat_idx]
        # Filtering stage: points with quality bound below a level never
        # reach sorting/rasterization for that level.
        mask_primary = bounds[pids] >= t
        sort_level = min(t, second) if second else t
        sort_ints[tile_id] = int((bounds[pids] >= sort_level).sum())
        raster_ints[tile_id] = float(mask_primary.sum())

        _, quad = splat_alphas(projected, splat_idx, pixels)
        base_exp = np.exp(-0.5 * quad)
        shared_colors = projected.colors[splat_idx]

        primary_img = _composite_masked(
            base_exp,
            level_opacity[t][pids],
            mask_primary,
            shared_colors + level_delta[t][pids],
            background,
        ).reshape(y1 - y0, x1 - x0, 3)

        out = primary_img
        if second:
            mix, weight, lo, hi = _tile_blend_mask(maps, t, second, (x0, y0, x1, y1))
            if mix.any():
                mask_second = bounds[pids] >= second
                second_img = _composite_masked(
                    base_exp,
                    level_opacity[second][pids],
                    mask_second,
                    shared_colors + level_delta[second][pids],
                    background,
                    pixel_mask=mix.ravel(),
                )
                lo_img = primary_img[mix] if t == lo else second_img
                hi_img = second_img if t == lo else primary_img[mix]
                w = weight[mix][:, None]
                out = primary_img.copy()
                out[mix] = (1.0 - w) * lo_img + w * hi_img
                blend_pixels += int(mix.sum())
                # Second-level pass touches only the band pixels.
                raster_ints[tile_id] += mask_second.sum() * mix.sum() / tile_pixels
        image[y0:y1, x0:x1] = out

    stats = FRRenderStats(
        sort_intersections_per_tile=sort_ints,
        raster_intersections_per_tile=raster_ints,
        tile_levels=maps.tile_level,
        blend_pixels=blend_pixels,
        num_projected=projected.num_visible,
        projection_runs=1,
        num_points=fmodel.num_points,
    )
    return FRRenderResult(image=np.clip(image, 0.0, 1.0), stats=stats, maps=maps)


def render_multi_model(
    level_models: list[GaussianModel],
    layout: RegionLayout,
    camera: Camera,
    gaze: tuple[float, float] | None = None,
    config: RenderConfig | None = None,
) -> FRRenderResult:
    """MMFR: independent models per level, projection re-run for each.

    This is the Fov-NeRF-style baseline (Sec 6): same region layout, but the
    level models share no points or parameters, so every level pays its own
    Projection/Filtering and the storage is the sum of all models.
    """
    config = config or RenderConfig()
    if len(level_models) != layout.num_levels:
        raise ValueError(f"need {layout.num_levels} level models")
    background = np.asarray(config.background, dtype=np.float64)

    views = [prepare_view(m, camera, config) for m in level_models]
    grid = views[0][1].grid
    maps = compute_region_maps(camera, grid, layout, gaze)

    image = np.empty((grid.height, grid.width, 3))
    sort_ints = np.zeros(grid.num_tiles, dtype=np.int64)
    raster_ints = np.zeros(grid.num_tiles, dtype=np.float64)
    blend_pixels = 0
    tile_pixels = grid.tile_size**2

    for tile_id in range(grid.num_tiles):
        x0, y0, x1, y1 = grid.tile_pixel_bounds(tile_id)
        pixels = tile_pixel_centers(grid, tile_id)
        t = int(maps.tile_level[tile_id])
        second = int(maps.tile_second_level[tile_id])

        def _level_image(level: int, pixel_mask: np.ndarray | None) -> tuple[np.ndarray, int]:
            projected, assignment = views[level - 1]
            splat_idx = assignment.splats_in_tile(tile_id)
            if splat_idx.size == 0:
                n_px = pixels.shape[0] if pixel_mask is None else int(pixel_mask.sum())
                return np.broadcast_to(background, (n_px, 3)).copy(), 0
            px = pixels if pixel_mask is None else pixels[pixel_mask]
            alphas, _ = splat_alphas(projected, splat_idx, px)
            colors, _, _ = composite(alphas, projected.colors[splat_idx], background)
            return colors, splat_idx.size

        primary_flat, n_primary = _level_image(t, None)
        sort_ints[tile_id] = n_primary
        raster_ints[tile_id] = float(n_primary)
        primary_img = primary_flat.reshape(y1 - y0, x1 - x0, 3)

        out = primary_img
        if second:
            mix, weight, lo, hi = _tile_blend_mask(maps, t, second, (x0, y0, x1, y1))
            if mix.any():
                second_flat, n_second = _level_image(second, mix.ravel())
                lo_img = primary_img[mix] if t == lo else second_flat
                hi_img = second_flat if t == lo else primary_img[mix]
                w = weight[mix][:, None]
                out = primary_img.copy()
                out[mix] = (1.0 - w) * lo_img + w * hi_img
                blend_pixels += int(mix.sum())
                raster_ints[tile_id] += n_second * mix.sum() / tile_pixels
        image[y0:y1, x0:x1] = out

    stats = FRRenderStats(
        sort_intersections_per_tile=sort_ints,
        raster_intersections_per_tile=raster_ints,
        tile_levels=maps.tile_level,
        blend_pixels=blend_pixels,
        num_projected=sum(v[0].num_visible for v in views),
        projection_runs=layout.num_levels,
        num_points=sum(m.num_points for m in level_models),
    )
    return FRRenderResult(image=np.clip(image, 0.0, 1.0), stats=stats, maps=maps)
