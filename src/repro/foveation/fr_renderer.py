"""The foveated rendering pipeline (Fig 7, panel E).

Augments the standard PBNR pipeline with two stages:

- **Filtering** (after projection): a tile at quality level ``t`` only
  rasterizes points whose quality bound ``m ≥ t``.
- **Blending** (after rasterization): pixels in the transition band between
  two regions are rendered at *both* adjacent levels and interpolated.
  Only the band pixels are rendered twice (~25% of pixels in the paper);
  the second-level pass runs on exactly those pixel columns.

Thanks to subsetting, Projection / Tiling / Sorting run **once** for the
whole frame (the level-t point set is a subset of the level-1 set, so the
sorted level-1 tile lists serve every level).  The multi-model baseline
(MMFR) has no such sharing and re-runs projection per level —
:func:`render_multi_model` charges that cost explicitly.

Both functions are thin orchestrators: the pixel work is delegated to the
rasterization backend selected by ``config.backend`` (see
:mod:`repro.splat.backends`), which reuses the frame's packed intersection
segments for level filtering and band blending instead of a per-tile loop.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..splat.backends import get_backend
from ..splat.camera import Camera
from ..splat.gaussians import GaussianModel
from ..splat.renderer import PreparedView, RenderConfig, prepare_view
from .hierarchy import FoveatedModel
from .regions import RegionLayout, RegionMaps, compute_region_maps


@dataclasses.dataclass
class FRRenderStats:
    """Workload statistics of one foveated frame (drive perf/accel models)."""

    sort_intersections_per_tile: np.ndarray  # (T,) splats sorted per tile
    raster_intersections_per_tile: np.ndarray  # (T,) effective raster work
    tile_levels: np.ndarray  # (T,)
    blend_pixels: int  # pixels rendered twice
    num_projected: int  # splats through Projection+Filtering
    projection_runs: int  # 1 with subsetting; num_levels for MMFR
    num_points: int

    @property
    def total_raster_intersections(self) -> int:
        return int(self.raster_intersections_per_tile.sum())

    @property
    def total_sort_intersections(self) -> int:
        return int(self.sort_intersections_per_tile.sum())


@dataclasses.dataclass
class FRRenderResult:
    image: np.ndarray  # (H, W, 3)
    stats: FRRenderStats
    maps: RegionMaps


def render_foveated(
    fmodel: FoveatedModel,
    camera: Camera,
    gaze: tuple[float, float] | None = None,
    config: RenderConfig | None = None,
    prepared: PreparedView | None = None,
) -> FRRenderResult:
    """Render one foveated frame from a hierarchical subset model.

    ``prepared`` reuses a cached view prefix for ``fmodel.base`` (e.g. a
    :class:`repro.splat.ViewCache` entry) instead of re-projecting.
    """
    config = config or RenderConfig()
    background = np.asarray(config.background, dtype=np.float64)

    # Projection + tiling + sorting run once on the full (L1) point set.
    if prepared is None:
        prepared = prepare_view(fmodel.base, camera, config)
    projected, assignment = prepared
    grid = assignment.grid
    maps = compute_region_maps(camera, grid, fmodel.layout, gaze)

    n_levels = fmodel.num_levels
    level_opacity = {t: fmodel.level_opacities(t) for t in range(1, n_levels + 1)}
    level_delta = {t: fmodel.level_color_delta(t) for t in range(1, n_levels + 1)}

    engine = get_backend(config.backend)
    frame = engine.foveated_frame(
        projected,
        assignment,
        maps,
        fmodel.quality_bounds,
        level_opacity,
        level_delta,
        background,
    )

    stats = FRRenderStats(
        sort_intersections_per_tile=frame.sort_intersections_per_tile,
        raster_intersections_per_tile=frame.raster_intersections_per_tile,
        tile_levels=maps.tile_level,
        blend_pixels=frame.blend_pixels,
        num_projected=projected.num_visible,
        projection_runs=1,
        num_points=fmodel.num_points,
    )
    return FRRenderResult(image=np.clip(frame.image, 0.0, 1.0), stats=stats, maps=maps)


def render_multi_model(
    level_models: list[GaussianModel],
    layout: RegionLayout,
    camera: Camera,
    gaze: tuple[float, float] | None = None,
    config: RenderConfig | None = None,
) -> FRRenderResult:
    """MMFR: independent models per level, projection re-run for each.

    This is the Fov-NeRF-style baseline (Sec 6): same region layout, but the
    level models share no points or parameters, so every level pays its own
    Projection/Filtering and the storage is the sum of all models.
    """
    config = config or RenderConfig()
    if len(level_models) != layout.num_levels:
        raise ValueError(f"need {layout.num_levels} level models")
    background = np.asarray(config.background, dtype=np.float64)

    views = [prepare_view(m, camera, config) for m in level_models]
    grid = views[0][1].grid
    maps = compute_region_maps(camera, grid, layout, gaze)

    engine = get_backend(config.backend)
    frame = engine.multi_model_frame(views, maps, background)

    stats = FRRenderStats(
        sort_intersections_per_tile=frame.sort_intersections_per_tile,
        raster_intersections_per_tile=frame.raster_intersections_per_tile,
        tile_levels=maps.tile_level,
        blend_pixels=frame.blend_pixels,
        num_projected=sum(v[0].num_visible for v in views),
        projection_runs=layout.num_levels,
        num_points=sum(m.num_points for m in level_models),
    )
    return FRRenderResult(image=np.clip(frame.image, 0.0, 1.0), stats=stats, maps=maps)
