"""The two FR baselines of Table 1: SMFR and MMFR (Sec 6).

- **SMFR** (Single-Model FR): one dense model; lower-quality regions are
  rendered with *randomly sampled* point subsets.  Structurally this is our
  representation with strict subsetting and **no** multi-versioning — fast
  and storage-free, but peripheral quality collapses (its L4 HVSQ is ~10×
  worse in the paper).
- **MMFR** (Multi-Model FR, Fov-NeRF style): each level is an independently
  pruned and fine-tuned model — every parameter is effectively
  multi-versioned.  Best peripheral HVSQ, but pays N× projection cost and
  ~1.9× storage.

Both match our method's per-level point budgets, as in the paper.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.ce import compute_ce
from ..splat.camera import Camera
from ..splat.gaussians import GaussianModel
from ..splat.renderer import RenderConfig
from ..train.trainer import TrainConfig, finetune
from .hierarchy import FoveatedModel, uniform_foveated_model
from .regions import RegionLayout


def make_smfr(
    l1_model: GaussianModel,
    layout: RegionLayout | None = None,
    level_fractions: tuple[float, ...] = (1.0, 0.55, 0.3, 0.17),
    seed: int = 0,
) -> FoveatedModel:
    """SMFR: random subsetting, shared parameters (no multi-versioning)."""
    layout = layout or RegionLayout()
    rng = np.random.default_rng(seed)
    order = rng.permutation(l1_model.num_points)
    return uniform_foveated_model(
        l1_model.copy(), layout, level_fractions=level_fractions, order=order
    )


def smfr_storage_bytes(model: FoveatedModel) -> int:
    """SMFR stores just the single model plus per-point quality bounds."""
    return model.base.storage_bytes() + model.num_points


def make_mmfr(
    l1_model: GaussianModel,
    cameras: Sequence[Camera],
    targets: Sequence[np.ndarray],
    layout: RegionLayout | None = None,
    level_fractions: tuple[float, ...] = (1.0, 0.55, 0.3, 0.17),
    finetune_iterations: int = 5,
    render_config: RenderConfig | None = None,
) -> list[GaussianModel]:
    """MMFR: one independent model per level, each pruned from L1 and
    fine-tuned with *all* trainable parameters free."""
    layout = layout or RegionLayout()
    if len(level_fractions) != layout.num_levels:
        raise ValueError(f"need {layout.num_levels} level fractions")

    models = [l1_model.copy()]
    n = l1_model.num_points
    for level in range(2, layout.num_levels + 1):
        budget = max(1, int(round(n * level_fractions[level - 1])))
        ce = compute_ce(l1_model, cameras, render_config)
        order = np.argsort(-ce.ce, kind="stable")
        level_model = l1_model.subset(np.sort(order[:budget]))
        if finetune_iterations > 0 and cameras:
            finetune(
                level_model,
                cameras,
                targets,
                TrainConfig(iterations=finetune_iterations),
            )
        models.append(level_model)
    return models


def mmfr_storage_bytes(models: Sequence[GaussianModel]) -> int:
    """MMFR stores every level model in full."""
    return sum(m.storage_bytes() for m in models)
