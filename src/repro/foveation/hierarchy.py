"""Hierarchical subset representation with selective multi-versioning (Sec 4.2).

The FR data representation: one point set (the L1 / highest-quality set),
where each point carries a **quality bound** ``m`` — the highest (coarsest)
level that still uses it.  Level ``t`` renders the subset ``{i : m_i ≥ t}``,
so L4 ⊂ L3 ⊂ L2 ⊂ L1 by construction and total storage equals the L1 model
(no N-model duplication).

Selective multi-versioning: a point keeps ``m`` versions of exactly two
parameters — opacity and the SH DC colour — one per level it participates
in; all other parameters (position, rotation, scales, higher-order SH) are
shared across levels.  The paper finds these four scalars (1 opacity + 3 DC)
to affect pixel colours the most, at ~6% storage overhead.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..splat.gaussians import BYTES_PER_FLOAT, GaussianModel
from ..splat.sh import SH_C0
from .regions import RegionLayout

# Parameters that are multi-versioned per level: opacity + SH_DC (3 channels).
MULTI_VERSIONED_PARAMS = 4


@dataclasses.dataclass
class FoveatedModel:
    """An FR-ready model: base parameters + per-level subsets and versions."""

    base: GaussianModel
    quality_bounds: np.ndarray  # (N,) int in [1, num_levels]
    mv_opacity_logits: np.ndarray  # (N, L); column t-1 used at level t
    mv_sh_dc: np.ndarray  # (N, L, 3)
    layout: RegionLayout

    def __post_init__(self) -> None:
        n = self.base.num_points
        levels = self.layout.num_levels
        self.quality_bounds = np.ascontiguousarray(self.quality_bounds, dtype=np.int64)
        self.mv_opacity_logits = np.ascontiguousarray(self.mv_opacity_logits, dtype=np.float64)
        self.mv_sh_dc = np.ascontiguousarray(self.mv_sh_dc, dtype=np.float64)
        if self.quality_bounds.shape != (n,):
            raise ValueError(f"quality_bounds must be (N,), got {self.quality_bounds.shape}")
        if self.quality_bounds.min(initial=1) < 1 or self.quality_bounds.max(initial=1) > levels:
            raise ValueError("quality bounds must lie in [1, num_levels]")
        if self.mv_opacity_logits.shape != (n, levels):
            raise ValueError(
                f"mv_opacity_logits must be (N, {levels}), got {self.mv_opacity_logits.shape}"
            )
        if self.mv_sh_dc.shape != (n, levels, 3):
            raise ValueError(f"mv_sh_dc must be (N, {levels}, 3), got {self.mv_sh_dc.shape}")

    # ------------------------------------------------------------------
    # Level structure
    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        return self.layout.num_levels

    @property
    def num_points(self) -> int:
        return self.base.num_points

    def level_mask(self, level: int) -> np.ndarray:
        """Boolean mask of points used at quality level ``level`` (1-based)."""
        self._check_level(level)
        return self.quality_bounds >= level

    def level_point_count(self, level: int) -> int:
        return int(self.level_mask(level).sum())

    def level_counts(self) -> np.ndarray:
        """Point counts of all levels, ``(L,)`` — non-increasing by design."""
        return np.asarray([self.level_point_count(t) for t in range(1, self.num_levels + 1)])

    def _check_level(self, level: int) -> None:
        if not 1 <= level <= self.num_levels:
            raise ValueError(f"level must be in [1, {self.num_levels}], got {level}")

    # ------------------------------------------------------------------
    # Per-level parameter views
    # ------------------------------------------------------------------
    def level_opacity_logits(self, level: int) -> np.ndarray:
        """Full-length ``(N,)`` opacity logits for rendering level ``level``."""
        self._check_level(level)
        return self.mv_opacity_logits[:, level - 1]

    def level_opacities(self, level: int) -> np.ndarray:
        from ..splat.gaussians import sigmoid

        return sigmoid(self.level_opacity_logits(level))

    def level_sh_dc(self, level: int) -> np.ndarray:
        """Full-length ``(N, 3)`` DC coefficients for level ``level``."""
        self._check_level(level)
        return self.mv_sh_dc[:, level - 1, :]

    def level_color_delta(self, level: int) -> np.ndarray:
        """RGB offset of level ``level`` relative to the base DC, ``(N, 3)``.

        Because SH evaluation is linear in the coefficients, swapping the DC
        component shifts the rendered colour by ``SH_C0 · (dc_level − dc_base)``
        — the foveated renderer applies this delta to shared projected
        colours instead of re-evaluating SH per level.
        """
        return SH_C0 * (self.level_sh_dc(level) - self.base.sh_dc)

    def level_model(self, level: int) -> GaussianModel:
        """Materialize level ``level`` as a standalone model (for analysis)."""
        mask = self.level_mask(level)
        model = self.base.subset(mask)
        model.opacity_logits[:] = self.level_opacity_logits(level)[mask]
        model.sh[:, 0, :] = self.level_sh_dc(level)[mask]
        return model

    # ------------------------------------------------------------------
    # Storage accounting (Table 1)
    # ------------------------------------------------------------------
    def storage_bytes(self) -> int:
        """Base model + the extra multi-versioned copies.

        A point with quality bound ``m`` stores ``m − 1`` extra copies of the
        4 multi-versioned scalars (its level-1 copy lives in the base model),
        plus one byte-packed quality bound per point (counted as 1 byte).
        """
        extra_versions = int(np.sum(self.quality_bounds - 1))
        extra = extra_versions * MULTI_VERSIONED_PARAMS * BYTES_PER_FLOAT
        bounds = self.num_points  # 1 byte each
        return self.base.storage_bytes() + extra + bounds

    def storage_overhead_fraction(self) -> float:
        """Multi-versioning overhead relative to the base model (~6%)."""
        base = self.base.storage_bytes()
        return (self.storage_bytes() - base) / base if base else 0.0


    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Persist the full FR bundle (base model + hierarchy) as .npz."""
        import io

        buf = io.BytesIO()
        np.savez(
            buf,
            positions=self.base.positions.astype(np.float32),
            log_scales=self.base.log_scales.astype(np.float32),
            rotations=self.base.rotations.astype(np.float32),
            opacity_logits=self.base.opacity_logits.astype(np.float32),
            sh=self.base.sh.astype(np.float32),
            quality_bounds=self.quality_bounds.astype(np.uint8),
            mv_opacity_logits=self.mv_opacity_logits.astype(np.float32),
            mv_sh_dc=self.mv_sh_dc.astype(np.float32),
            boundaries_deg=np.asarray(self.layout.boundaries_deg),
            blend_band_deg=np.asarray([self.layout.blend_band_deg]),
        )
        with open(path, "wb") as f:
            f.write(buf.getvalue())

    @staticmethod
    def load(path: str) -> "FoveatedModel":
        with np.load(path) as arrays:
            base = GaussianModel(
                positions=arrays["positions"],
                log_scales=arrays["log_scales"],
                rotations=arrays["rotations"],
                opacity_logits=arrays["opacity_logits"],
                sh=arrays["sh"],
            )
            layout = RegionLayout(
                boundaries_deg=tuple(float(b) for b in arrays["boundaries_deg"]),
                blend_band_deg=float(arrays["blend_band_deg"][0]),
            )
            return FoveatedModel(
                base=base,
                quality_bounds=arrays["quality_bounds"].astype(np.int64),
                mv_opacity_logits=arrays["mv_opacity_logits"],
                mv_sh_dc=arrays["mv_sh_dc"],
                layout=layout,
            )


def uniform_foveated_model(
    base: GaussianModel,
    layout: RegionLayout,
    level_fractions: tuple[float, ...] | None = None,
    order: np.ndarray | None = None,
) -> FoveatedModel:
    """Build a subset hierarchy by rank: top fraction of points per level.

    ``order`` ranks points by importance (descending keep-priority); defaults
    to index order.  ``level_fractions`` gives each level's point budget as a
    fraction of the base (must be non-increasing, first entry 1.0).
    """
    n = base.num_points
    levels = layout.num_levels
    if level_fractions is None:
        # Geometric decay toward the paper's level sizes.
        level_fractions = tuple(0.55**k for k in range(levels))
    if len(level_fractions) != levels:
        raise ValueError(f"need {levels} level fractions")
    if abs(level_fractions[0] - 1.0) > 1e-9:
        raise ValueError("level 1 must use all points (fraction 1.0)")
    if any(level_fractions[i] < level_fractions[i + 1] for i in range(levels - 1)):
        raise ValueError("level fractions must be non-increasing")

    if order is None:
        order = np.arange(n)
    order = np.asarray(order)
    if order.shape != (n,):
        raise ValueError("order must rank all points")

    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n)

    bounds = np.ones(n, dtype=np.int64)
    for level in range(2, levels + 1):
        budget = int(round(n * level_fractions[level - 1]))
        bounds[rank < budget] = level

    mv_opacity = np.repeat(base.opacity_logits[:, None], levels, axis=1)
    mv_dc = np.repeat(base.sh_dc[:, None, :], levels, axis=1)
    return FoveatedModel(
        base=base,
        quality_bounds=bounds,
        mv_opacity_logits=mv_opacity,
        mv_sh_dc=mv_dc,
        layout=layout,
    )
