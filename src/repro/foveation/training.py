"""HVS-guided training of the foveated hierarchy (Sec 4.3).

Levels are built top-down: the L1 model (itself produced by efficiency-aware
pruning, Sec 3) is CE-pruned to give L2's subset, L2 to L3, and so on.  After
each subsetting step, the new level's **multi-versioned parameters only**
(opacity + SH DC) are fine-tuned against the reference, with the photometric
gradient restricted to the level's eccentricity region; scale decay is *not*
applied (scales are shared, not multi-versioned).  Quality is controlled with
the region-restricted HVSQ metric: the goal is HVSQ(level k, region k) ≈
HVSQ(L1, region 1), i.e. uniform perceived quality across the visual field.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from ..core.ce import compute_ce
from ..hvs.hvsq import hvsq
from ..splat.camera import Camera
from ..splat.gaussians import GaussianModel, sigmoid
from ..splat.rasterizer import rasterize, rasterize_backward
from ..splat.renderer import RenderConfig, prepare_view
from ..splat.sh import SH_C0
from ..train.optimizer import Adam
from .hierarchy import FoveatedModel
from .regions import RegionLayout, region_masks


@dataclasses.dataclass
class FRTrainConfig:
    """Hyper-parameters of foveated level construction."""

    level_fractions: tuple[float, ...] = (1.0, 0.55, 0.3, 0.17)
    finetune_iterations: int = 10
    lr_opacity: float = 0.05
    lr_sh_dc: float = 0.01
    render: RenderConfig = dataclasses.field(default_factory=RenderConfig)


@dataclasses.dataclass
class FRTrainResult:
    """The trained foveated model plus per-level quality bookkeeping."""

    model: FoveatedModel
    hvsq_per_level: list[float]  # HVSQ of level k measured on region k
    level_counts: np.ndarray


def _level_region_grad_mask(
    camera: Camera,
    layout: RegionLayout,
    level: int,
    gaze: tuple[float, float] | None,
) -> np.ndarray:
    """Pixel mask where level ``level``'s quality loss is evaluated."""
    masks = region_masks(camera, layout, gaze)
    return masks[level - 1]


def finetune_level(
    fmodel: FoveatedModel,
    level: int,
    cameras: Sequence[Camera],
    targets: Sequence[np.ndarray],
    config: FRTrainConfig,
    gaze: tuple[float, float] | None = None,
) -> None:
    """Fine-tune one level's multi-versioned opacity + DC in place.

    Renders the level's subset model, restricts the photometric gradient to
    the level's eccentricity region, and backpropagates through the
    rasterizer into the level's parameter versions only.
    """
    mask = fmodel.level_mask(level)
    sub_idx = np.flatnonzero(mask)
    if sub_idx.size == 0:
        raise ValueError(f"level {level} has no points")

    # Working copies of this level's versions, restricted to the subset.
    opacity_logits = fmodel.mv_opacity_logits[sub_idx, level - 1].copy()
    sh_dc = fmodel.mv_sh_dc[sub_idx, level - 1, :].copy()
    base_subset = fmodel.base.subset(sub_idx)

    optimizer = Adam({"opacity_logits": config.lr_opacity, "sh_dc": config.lr_sh_dc})
    background = np.asarray(config.render.background, dtype=np.float64)

    for _ in range(config.finetune_iterations):
        grad_op = np.zeros_like(opacity_logits)
        grad_dc = np.zeros_like(sh_dc)
        for camera, target in zip(cameras, targets):
            model = base_subset.copy()
            model.opacity_logits[:] = opacity_logits
            model.sh[:, 0, :] = sh_dc
            projected, assignment = prepare_view(model, camera, config.render)
            image, _ = rasterize(
                projected,
                assignment,
                num_points=model.num_points,
                background=background,
                collect_stats=False,
                backend=config.render.backend,
            )
            region = _level_region_grad_mask(camera, fmodel.layout, level, gaze)
            diff = image - target
            grad_image = np.where(region[:, :, None], np.sign(diff), 0.0) / max(
                region.sum() * 3, 1
            )
            grads = rasterize_backward(
                projected,
                assignment,
                num_points=model.num_points,
                grad_image=grad_image,
                background=background,
                backend=config.render.backend,
            )
            opac = model.opacities
            grad_op += grads.opacity * opac * (1.0 - opac) / len(cameras)
            grad_dc += grads.color * SH_C0 / len(cameras)

        params = {"opacity_logits": opacity_logits, "sh_dc": sh_dc}
        optimizer.step(params, {"opacity_logits": grad_op, "sh_dc": grad_dc})

    fmodel.mv_opacity_logits[sub_idx, level - 1] = opacity_logits
    fmodel.mv_sh_dc[sub_idx, level - 1, :] = sh_dc


def measure_level_hvsq(
    fmodel: FoveatedModel,
    level: int,
    cameras: Sequence[Camera],
    targets: Sequence[np.ndarray],
    config: RenderConfig | None = None,
    gaze: tuple[float, float] | None = None,
) -> float:
    """Mean HVSQ of level ``level``'s rendering over its own region."""
    from ..splat.renderer import render

    model = fmodel.level_model(level)
    values = []
    for camera, target in zip(cameras, targets):
        image = render(model, camera, config).image
        masks = region_masks(camera, fmodel.layout, gaze)
        result = hvsq(target, image, camera, gaze=gaze, region_mask=masks[level - 1])
        values.append(result.value)
    return float(np.mean(values))


def build_foveated_model(
    l1_model: GaussianModel,
    cameras: Sequence[Camera],
    targets: Sequence[np.ndarray],
    layout: RegionLayout | None = None,
    config: FRTrainConfig | None = None,
    gaze: tuple[float, float] | None = None,
    finetune: bool = True,
) -> FRTrainResult:
    """Construct and train a full foveated hierarchy from an L1 model.

    Subsets are built level by level with CE pruning (each level's CE is
    measured on its parent level's model, so scale/occlusion changes
    propagate), then each level's multi-versioned parameters are fine-tuned
    on its own region.
    """
    layout = layout or RegionLayout()
    config = config or FRTrainConfig()
    fractions = config.level_fractions
    if len(fractions) != layout.num_levels:
        raise ValueError(
            f"need {layout.num_levels} level fractions, got {len(fractions)}"
        )

    n = l1_model.num_points
    bounds = np.ones(n, dtype=np.int64)
    current_idx = np.arange(n)  # indices (into l1) of the current level's subset
    current_model = l1_model

    for level in range(2, layout.num_levels + 1):
        budget = max(1, int(round(n * fractions[level - 1])))
        ce = compute_ce(current_model, cameras, config.render)
        order = np.argsort(-ce.ce, kind="stable")  # best first
        keep_local = np.sort(order[:budget])
        current_idx = current_idx[keep_local]
        bounds[current_idx] = level
        current_model = l1_model.subset(current_idx)

    mv_opacity = np.repeat(l1_model.opacity_logits[:, None], layout.num_levels, axis=1)
    mv_dc = np.repeat(l1_model.sh_dc[:, None, :], layout.num_levels, axis=1)
    fmodel = FoveatedModel(
        base=l1_model.copy(),
        quality_bounds=bounds,
        mv_opacity_logits=mv_opacity,
        mv_sh_dc=mv_dc,
        layout=layout,
    )

    hvsq_per_level = []
    for level in range(1, layout.num_levels + 1):
        if finetune and level >= 2:
            finetune_level(fmodel, level, cameras, targets, config, gaze)
        hvsq_per_level.append(
            measure_level_hvsq(fmodel, level, cameras, targets, config.render, gaze)
        )

    return FRTrainResult(
        model=fmodel,
        hvsq_per_level=hvsq_per_level,
        level_counts=fmodel.level_counts(),
    )
