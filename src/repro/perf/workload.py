"""Frame workload descriptors: what a frame costs, in pipeline counts.

Both the GPU latency model and the accelerator simulator consume the same
abstract counts, extracted from real renders:

- points through Projection (× number of projection runs — MMFR pays one
  per level),
- per-tile sorting work (``n log n`` compare ops),
- rasterization work in splat×pixel units (intersections × tile pixels),
- pixels blended across quality levels.

Latency claims in the paper hinge on these counts — Fig 4 shows latency
tracks tile–ellipse intersections, not point count — so all performance
numbers in this repo are functions of *measured* counts, never of the method
name.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..foveation.fr_renderer import FRRenderStats
from ..splat.renderer import RenderConfig, RenderResult
from ..splat.sorting import sort_cost_ops


@dataclasses.dataclass(frozen=True)
class FrameWorkload:
    """Abstract cost profile of rendering one frame."""

    num_projected: int  # splats through projection per run
    projection_runs: int  # 1 normally; num_levels for MMFR
    sort_ops: float  # total n·log2(n) compare ops over tiles
    raster_splat_pixels: float  # Σ_tiles intersections × pixels-per-tile
    blend_pixels: int  # FR blending work
    per_pixel_sort: bool = False  # StopThePop pays extra sorting

    @property
    def total_intersections(self) -> float:
        return self.raster_splat_pixels  # raw proxy; see extractors for exact


def workload_from_render(result: RenderResult, config: RenderConfig | None = None) -> FrameWorkload:
    """Extract the workload of a standard (non-foveated) render."""
    config = config or RenderConfig()
    stats = result.stats
    if stats is None:
        raise ValueError("render was executed with collect_stats=False")
    per_tile = stats.intersections_per_tile
    tile_pixels = result.assignment.grid.tile_size**2
    return FrameWorkload(
        num_projected=stats.num_projected,
        projection_runs=1,
        sort_ops=sort_cost_ops(per_tile, per_pixel=config.per_pixel_sort),
        raster_splat_pixels=float(per_tile.sum()) * tile_pixels,
        blend_pixels=0,
        per_pixel_sort=config.per_pixel_sort,
    )


def workload_from_fr(stats: FRRenderStats, tile_size: int = 16) -> FrameWorkload:
    """Extract the workload of a foveated render (ours, SMFR or MMFR)."""
    tile_pixels = tile_size**2
    return FrameWorkload(
        num_projected=stats.num_projected,
        projection_runs=stats.projection_runs,
        sort_ops=sort_cost_ops(stats.sort_intersections_per_tile),
        raster_splat_pixels=float(stats.raster_intersections_per_tile.sum()) * tile_pixels,
        blend_pixels=stats.blend_pixels,
        per_pixel_sort=False,
    )


def mean_workload(workloads: list[FrameWorkload]) -> FrameWorkload:
    """Average several frames' workloads (for trajectory-level FPS)."""
    if not workloads:
        raise ValueError("need at least one workload")
    return FrameWorkload(
        num_projected=int(np.mean([w.num_projected for w in workloads])),
        projection_runs=workloads[0].projection_runs,
        sort_ops=float(np.mean([w.sort_ops for w in workloads])),
        raster_splat_pixels=float(np.mean([w.raster_splat_pixels for w in workloads])),
        blend_pixels=int(np.mean([w.blend_pixels for w in workloads])),
        per_pixel_sort=workloads[0].per_pixel_sort,
    )
