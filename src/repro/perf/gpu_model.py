"""Analytic latency / energy model of the mobile Volta GPU (Jetson Xavier).

**This is a model, not a measurement** (DESIGN.md substitution table).  The
paper measures on the Jetson AGX Xavier; offline we model per-stage costs
and calibrate the coefficients so that the *absolute* FPS of the dense 3DGS
workloads lands in the paper's reported band (< 10 FPS on Mip-NeRF-360-class
scenes at our evaluation scale).  Every *relative* number — which method is
faster and by how much — then follows from measured pipeline counts
(projection size, sort ops, tile–ellipse intersections, blend pixels), which
is exactly the structural claim of the paper's Fig 4.

Calibration story for the defaults below, at the repo's evaluation scale
(≈ 96×128 px, a few thousand splats):  a dense render produces ≈ 1–1.5 M
splat×pixel rasterization ops; at 140 ns/op that is ≈ 150–200 ms/frame
(≈ 5–7 FPS), matching Fig 3's dense-model band.  Projection and sorting
coefficients keep their stages at the few-percent level the paper profiles
(up to 18% for projection+filtering under FR).
"""

from __future__ import annotations

import dataclasses

from .workload import FrameWorkload

MS_PER_NS = 1e-6


@dataclasses.dataclass(frozen=True)
class GPUModel:
    """Per-stage cost coefficients of the mobile GPU."""

    base_ms: float = 1.5  # kernel launch / frame setup overhead
    projection_ns: float = 1800.0  # per point per projection run
    sort_ns: float = 90.0  # per n·log2(n) compare op
    raster_ns: float = 140.0  # per splat×pixel op
    blend_ns: float = 500.0  # per blended pixel
    per_pixel_sort_factor: float = 4.0  # StopThePop resorting overhead
    # Energy: mobile-GPU average power during rendering (Xavier ~15-20 W
    # under load; rendering kernels draw roughly this band).
    power_w: float = 15.0

    def latency_ms(self, workload: FrameWorkload) -> float:
        """Predicted per-frame latency in milliseconds."""
        sort_factor = self.per_pixel_sort_factor if workload.per_pixel_sort else 1.0
        proj = workload.num_projected * workload.projection_runs * self.projection_ns
        sort = workload.sort_ops * self.sort_ns * sort_factor
        raster = workload.raster_splat_pixels * self.raster_ns
        blend = workload.blend_pixels * self.blend_ns
        return self.base_ms + (proj + sort + raster + blend) * MS_PER_NS

    def fps(self, workload: FrameWorkload) -> float:
        return 1000.0 / self.latency_ms(workload)

    def energy_mj(self, workload: FrameWorkload) -> float:
        """Per-frame energy in millijoules (power × latency)."""
        return self.power_w * self.latency_ms(workload)


DEFAULT_GPU = GPUModel()


def fps_of(workload: FrameWorkload, gpu: GPUModel | None = None) -> float:
    return (gpu or DEFAULT_GPU).fps(workload)


def latency_ms_of(workload: FrameWorkload, gpu: GPUModel | None = None) -> float:
    return (gpu or DEFAULT_GPU).latency_ms(workload)
