"""Mobile-GPU performance model (calibrated; see gpu_model docstring)."""

from .gpu_model import DEFAULT_GPU, GPUModel, fps_of, latency_ms_of
from .workload import FrameWorkload, mean_workload, workload_from_fr, workload_from_render

__all__ = [
    "DEFAULT_GPU",
    "FrameWorkload",
    "GPUModel",
    "fps_of",
    "latency_ms_of",
    "mean_workload",
    "workload_from_fr",
    "workload_from_render",
]
