"""Deterministic trace replay: serve cluster configurations vs naive serving.

``replay_trace`` drives a :class:`~repro.serve.workload.ServeTrace`
through a :class:`~repro.serve.scheduler.ServeLoop` and reduces the
responses to a :class:`ReplayReport` — throughput, latency percentiles,
cache hit rate, batch-size histogram, and a frame checksum that makes
"same trace, same frames" a one-line assertion.  ``replay_trace_sharded``
is the multi-shard simulator: the same trace through a
:class:`~repro.serve.sharding.ShardRouter` of N consistent-hash shards
(optionally over a shared render-worker pool), with per-shard hit rates,
max queue depths and the shard-imbalance factor folded into the report.
``replay_naive`` is the pre-serve baseline every speedup is measured
against: one synchronous :func:`repro.foveation.render_foveated` call per
request, re-running the pose's projection prefix every time, no cache, no
batching.

Replays are deterministic: the workload is seed-generated, requests are
submitted in time order, and frames are bit-exact functions of (model,
camera, gaze, config) — so two replays of one trace produce identical
checksums, and a served checksum differs from the naive one only through
cache hits (frames rendered for an earlier gaze in the same region).
Determinism survives worker pools and sharding in the throughput setting
(``time_scale=0``): every client enqueues before the first batch renders,
shard routing is a pure key function, and per-key request order — the
only order cache outcomes depend on — is preserved within each shard.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import time

import numpy as np

from ..foveation import FRRenderResult, render_foveated
from ..foveation.hierarchy import FoveatedModel
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from ..splat.renderer import RenderConfig
from .scheduler import FrameRequest, FrameResponse, ServeConfig, ServeLoop
from .sharding import ShardRouter
from .workload import ServeTrace


@dataclasses.dataclass
class ReplayReport:
    """Aggregate serving metrics of one replay (one row of a comparison)."""

    name: str
    n_requests: int
    wall_s: float
    throughput_rps: float
    latency_mean_ms: float
    latency_p50_ms: float
    latency_p90_ms: float
    latency_p99_ms: float
    cache_hit_rate: float
    batch_histogram: dict[int, int]
    frames_checksum: str
    cache_stats: dict | None = None
    shard_stats: dict | None = None  # ShardRouter.stats() of a sharded replay
    # Deadline metrics: None when the trace carried no deadlines (best-effort
    # replay), rates over the deadline-carrying responses otherwise.
    deadline_miss_rate: float | None = None
    degraded_rate: float | None = None
    prefetch_stats: dict | None = None  # ServeLoop.prefetch_stats() when enabled
    # RenderWorkerPool.transport_stats() of a worker-pool replay: bytes
    # moved over the executor pipe vs via the shared-memory arena.
    transport_stats: dict | None = None
    # Per-stage latency breakdown (queue/render/total) from the loop's
    # log-bucket histograms; sharded replays merge the shards' histograms
    # before taking percentiles (never averaging per-shard percentiles).
    stage_breakdown: dict | None = None
    # repro.obs.MetricsRegistry.snapshot() taken at the end of the replay
    # when a registry was attached (reports ride the registry).
    metrics: dict | None = None

    @property
    def mean_batch_size(self) -> float:
        total = sum(size * count for size, count in self.batch_histogram.items())
        renders = sum(self.batch_histogram.values())
        return total / renders if renders else 0.0

    def lines(self) -> list[str]:
        """Human-readable summary lines (shared by the CLI and benchmarks)."""
        out = [
            f"{self.name}: {self.n_requests} requests in {self.wall_s * 1e3:.1f} ms "
            f"({self.throughput_rps:.1f} req/s)",
            f"  latency ms: mean {self.latency_mean_ms:.2f}  "
            f"p50 {self.latency_p50_ms:.2f}  p90 {self.latency_p90_ms:.2f}  "
            f"p99 {self.latency_p99_ms:.2f}",
        ]
        if self.batch_histogram:
            histogram = "  ".join(
                f"{size}:{count}"
                for size, count in sorted(self.batch_histogram.items())
            )
            out.append(
                f"  batches (size:count): {histogram}  "
                f"(mean {self.mean_batch_size:.2f})"
            )
        if self.stage_breakdown:
            for stage in ("queue", "render", "total"):
                s = self.stage_breakdown.get(stage)
                if s is None or not s["count"]:
                    continue
                out.append(
                    f"  stage {stage:6s} ms: mean {s['mean_ms']:.2f}  "
                    f"p50 {s['p50_ms']:.2f}  p90 {s['p90_ms']:.2f}  "
                    f"p99 {s['p99_ms']:.2f}  (n={s['count']})"
                )
        if self.deadline_miss_rate is not None:
            degraded = (
                f"  degraded {self.degraded_rate:.1%}"
                if self.degraded_rate is not None
                else ""
            )
            out.append(
                f"  deadlines: miss rate {self.deadline_miss_rate:.1%}{degraded}"
            )
        if self.prefetch_stats is not None:
            s = self.prefetch_stats
            out.append(
                f"  prefetch: enqueued={s['enqueued']} rendered={s['rendered']} "
                f"dropped={s['dropped']} useful={s['useful']}"
            )
        if self.transport_stats is not None:
            s = self.transport_stats
            out.append(
                f"  transport ({s['transport']}): "
                f"shm {s['bytes_via_shm'] / 1e6:.1f} MB"
                f"/{s['frames_via_shm']} frames  "
                f"pipe {s['bytes_via_pipe'] / 1e6:.1f} MB"
                f"/{s['frames_via_pipe']} frames  "
                f"fallbacks {s['shm_fallbacks']}"
            )
        if self.cache_stats is not None:
            s = self.cache_stats
            out.append(
                f"  cache-stats: hits={s['hits']} misses={s['misses']} "
                f"evictions={s['evictions']} entries={s['entries']} "
                f"bytes={s['bytes']} (hit rate {self.cache_hit_rate:.0%})"
            )
        if self.shard_stats is not None:
            s = self.shard_stats
            out.append(
                f"  shards: {s['n_shards']} "
                f"(imbalance {s['imbalance_factor']:.2f}x)"
            )
            for shard in s["shards"]:
                out.append(
                    f"    shard {shard['shard']}: {shard['requests']:4d} req  "
                    f"hit {shard['hit_rate']:.0%}  "
                    f"max-queue {shard['max_queue_depth']}  "
                    f"entries {shard['cache_entries']}"
                )
        return out


def frames_checksum(images) -> str:
    """Order-sensitive digest of a sequence of frames (bit-exactness probe)."""
    digest = hashlib.blake2b(digest_size=16)
    for image in images:
        digest.update(np.ascontiguousarray(image).tobytes())
    return digest.hexdigest()


def _latency_report(
    name: str,
    latencies_s: list[float],
    wall_s: float,
    hit_rate: float,
    batch_histogram: dict[int, int],
    checksum: str,
    cache_stats: dict | None,
) -> ReplayReport:
    latencies_ms = np.asarray(latencies_s) * 1e3
    return ReplayReport(
        name=name,
        n_requests=len(latencies_s),
        wall_s=wall_s,
        throughput_rps=len(latencies_s) / wall_s if wall_s > 0 else float("inf"),
        latency_mean_ms=float(latencies_ms.mean()) if latencies_ms.size else 0.0,
        latency_p50_ms=float(np.percentile(latencies_ms, 50)) if latencies_ms.size else 0.0,
        latency_p90_ms=float(np.percentile(latencies_ms, 90)) if latencies_ms.size else 0.0,
        latency_p99_ms=float(np.percentile(latencies_ms, 99)) if latencies_ms.size else 0.0,
        cache_hit_rate=hit_rate,
        batch_histogram=batch_histogram,
        frames_checksum=checksum,
        cache_stats=cache_stats,
    )


def _deadline_rates(
    responses: list[FrameResponse],
) -> tuple[float | None, float | None]:
    """(deadline-miss rate, degraded rate) over deadline-carrying responses.

    ``(None, None)`` when no response carried a deadline (a best-effort
    replay keeps its report columns empty instead of printing fake zeros).
    """
    with_deadline = [r for r in responses if r.deadline_s is not None]
    if not with_deadline:
        return None, None
    n = len(with_deadline)
    misses = sum(1 for r in with_deadline if r.deadline_missed)
    degraded = sum(1 for r in with_deadline if r.degraded)
    return misses / n, degraded / n


def replay_trace(
    fmodel: FoveatedModel,
    trace: ServeTrace,
    config: RenderConfig | None = None,
    serve_config: ServeConfig | None = None,
    time_scale: float = 0.0,
    tracer: Tracer | None = None,
    clock=None,
    registry: MetricsRegistry | None = None,
) -> tuple[list[FrameResponse], ReplayReport]:
    """Serve a whole trace through a fresh :class:`ServeLoop`.

    Every request is submitted as its own client task in trace order;
    ``time_scale`` stretches the trace's timestamps into real waits (0 —
    the default — replays as fast as the loop can drain, which is the
    throughput-measurement mode).  Responses come back in request order.

    ``tracer`` (or ``serve_config.trace``) records the request lifecycle
    into a Chrome-trace-exportable span buffer; ``clock`` substitutes the
    loop's monotonic clock (deterministic tests); ``registry`` attaches
    the loop's counters/gauges/histograms to a
    :class:`~repro.obs.metrics.MetricsRegistry` and stores its snapshot
    on the report.
    """
    if time_scale < 0:
        raise ValueError("time_scale must be non-negative")

    async def _run() -> None:
        async with ServeLoop(
            fmodel,
            config=config,
            serve_config=serve_config,
            tracer=tracer,
            clock=clock,
        ) as loop:
            if registry is not None:
                loop.register_metrics(registry)
            aio = asyncio.get_running_loop()
            t0 = aio.time()

            async def client(request) -> FrameResponse:
                if time_scale > 0:
                    delay = request.time_s * time_scale - (aio.time() - t0)
                    if delay > 0:
                        await asyncio.sleep(delay)
                return await loop.submit(
                    FrameRequest(
                        client_id=request.client_id,
                        camera=trace.camera_of(request),
                        gaze=request.gaze,
                        deadline_s=request.deadline_s,
                    )
                )

            tasks = [asyncio.create_task(client(r)) for r in trace.requests]
            responses = list(await asyncio.gather(*tasks))
            # Parked in ``out`` instead of returned: on Python 3.11 the
            # asyncio.Runner teardown ends up repr()ing the task result
            # (via the SIGINT-handler uninstall), and repr of a response
            # list renders every frame array — seconds of pure overhead.
            # Transport stats are captured before the context exit: a loop
            # that owns its pool drops the pool (and its counters) on close.
            out["loop"] = loop
            out["responses"] = responses
            out["transport"] = loop.transport_stats()

    out: dict = {}
    t_start = time.perf_counter()
    asyncio.run(_run())
    wall_s = time.perf_counter() - t_start
    loop, responses, transport = out["loop"], out["responses"], out["transport"]

    histogram: dict[int, int] = {}
    for size in loop.batch_sizes:
        histogram[size] = histogram.get(size, 0) + 1
    hits = sum(1 for r in responses if r.cache_hit)
    report = _latency_report(
        name="serve-loop (batched+cached)",
        latencies_s=[r.latency_s for r in responses],
        wall_s=wall_s,
        hit_rate=hits / len(responses) if responses else 0.0,
        batch_histogram=histogram,
        checksum=frames_checksum(r.result.image for r in responses),
        cache_stats=loop.frame_cache.stats() if loop.frame_cache else None,
    )
    report.deadline_miss_rate, report.degraded_rate = _deadline_rates(responses)
    report.transport_stats = transport
    if loop.predictor is not None:
        report.prefetch_stats = loop.prefetch_stats()
    report.stage_breakdown = loop.stage_breakdown()
    if registry is not None:
        report.metrics = registry.snapshot()
    return responses, report


def replay_trace_sharded(
    fmodel: FoveatedModel,
    trace: ServeTrace,
    config: RenderConfig | None = None,
    serve_config: ServeConfig | None = None,
    n_shards: int = 2,
    vnodes: int = 64,
    time_scale: float = 0.0,
    tracer: Tracer | None = None,
    clock=None,
    registry: MetricsRegistry | None = None,
) -> tuple[list[FrameResponse], ReplayReport]:
    """Serve a whole trace through a fresh N-shard :class:`ShardRouter`.

    The multi-shard simulator: requests route by consistent-hashed
    ``(camera fp, gaze region)`` onto ``n_shards`` serve loops — sharing
    one render-worker pool when ``serve_config.workers > 0`` — and the
    report carries per-shard hit rates, max queue depths and the
    shard-imbalance factor alongside the usual aggregate metrics.  The
    aggregate batch histogram and hit rate are summed across shards;
    because routing granularity equals cache-key granularity, an
    eviction-free trace's hit pattern (and frame checksum) matches the
    single-loop replay exactly, for any shard count.

    Stage latency percentiles in the report come from the shards' *merged*
    log-bucket histograms (``router.stage_breakdown()``) — never from
    averaging per-shard percentiles, which is wrong whenever shards see
    different load.  ``tracer``/``clock``/``registry`` behave as in
    :func:`replay_trace`; all shards share one tracer, with per-shard
    batcher lanes.
    """
    if time_scale < 0:
        raise ValueError("time_scale must be non-negative")

    async def _run() -> None:
        async with ShardRouter(
            fmodel,
            config=config,
            serve_config=serve_config,
            n_shards=n_shards,
            vnodes=vnodes,
            tracer=tracer,
            clock=clock,
        ) as router:
            if registry is not None:
                router.register_metrics(registry)
            aio = asyncio.get_running_loop()
            t0 = aio.time()

            async def client(request) -> FrameResponse:
                if time_scale > 0:
                    delay = request.time_s * time_scale - (aio.time() - t0)
                    if delay > 0:
                        await asyncio.sleep(delay)
                return await router.submit(
                    FrameRequest(
                        client_id=request.client_id,
                        camera=trace.camera_of(request),
                        gaze=request.gaze,
                        deadline_s=request.deadline_s,
                    )
                )

            tasks = [asyncio.create_task(client(r)) for r in trace.requests]
            responses = list(await asyncio.gather(*tasks))
            # Parked, not returned: see replay_trace for why returning the
            # responses from the asyncio.run task repr()s every frame.
            out["router"] = router
            out["responses"] = responses
            out["transport"] = router.transport_stats()

    out: dict = {}
    t_start = time.perf_counter()
    asyncio.run(_run())
    wall_s = time.perf_counter() - t_start
    router, responses, transport = out["router"], out["responses"], out["transport"]

    histogram: dict[int, int] = {}
    for shard in router.shards:
        for size in shard.batch_sizes:
            histogram[size] = histogram.get(size, 0) + 1
    hits = sum(1 for r in responses if r.cache_hit)
    workers = router.serve_config.workers
    report = _latency_report(
        name=(
            f"serve-sharded ({n_shards} shards, "
            f"{workers} worker{'s' if workers != 1 else ''})"
            if workers
            else f"serve-sharded ({n_shards} shards, inline)"
        ),
        latencies_s=[r.latency_s for r in responses],
        wall_s=wall_s,
        hit_rate=hits / len(responses) if responses else 0.0,
        batch_histogram=histogram,
        checksum=frames_checksum(r.result.image for r in responses),
        cache_stats=None,
    )
    report.shard_stats = router.stats()
    report.transport_stats = transport
    report.deadline_miss_rate, report.degraded_rate = _deadline_rates(responses)
    if router.serve_config.prefetch is not None:
        totals: dict[str, int] = {}
        for shard in router.shards:
            for field, value in shard.prefetch_stats().items():
                totals[field] = totals.get(field, 0) + value
        report.prefetch_stats = totals
    report.stage_breakdown = router.stage_breakdown()
    if registry is not None:
        report.metrics = registry.snapshot()
    return responses, report


def replay_naive(
    fmodel: FoveatedModel,
    trace: ServeTrace,
    config: RenderConfig | None = None,
) -> tuple[list[FRRenderResult], ReplayReport]:
    """The pre-serve baseline: synchronous per-request ``render_foveated``.

    No view cache, no frame cache, no batching — each request pays the full
    Projection/Tiling/Sorting prefix plus its own rasterization pass, which
    is exactly what a consumer loop over ``render_foveated`` did before the
    serve tier existed.
    """
    results: list[FRRenderResult] = []
    latencies: list[float] = []
    t_start = time.perf_counter()
    for request in trace.requests:
        t0 = time.perf_counter()
        results.append(
            render_foveated(
                fmodel,
                trace.camera_of(request),
                gaze=request.gaze,
                config=config,
            )
        )
        latencies.append(time.perf_counter() - t0)
    wall_s = time.perf_counter() - t_start
    report = _latency_report(
        name="naive per-request",
        latencies_s=latencies,
        wall_s=wall_s,
        hit_rate=0.0,
        batch_histogram={},
        checksum=frames_checksum(r.image for r in results),
        cache_stats=None,
    )
    return results, report
