"""Exhaustive batch-schedule oracle for tiny traces: how good is the greedy loop?

The serve scheduler is a greedy heuristic: coalesce whatever is pending
(earliest deadline first), render, repeat.  Following the
buffered-processing-unit scheduling literature (ASP-encoded optimal
schedules compared against heuristics on small instances — see PAPERS.md),
this module grounds that heuristic against the true optimum on traces
small enough to enumerate: every **ordered partition of the requests into
batches** is simulated under an abstract cost model, and the best schedule
(fewest deadline misses, then least total latency) is reported next to
what the greedy policy would have done.

The cost model mirrors the real loop's structure, not its constants:

- rendering a batch pays one pose-preparation cost per pose whose
  projection prefix is not yet in the view cache, plus a per-frame render
  cost per *distinct uncached key* (in-batch duplicates dedup, exactly as
  the scheduler's follower logic does);
- a key rendered by an earlier batch is a frame-cache hit: zero render
  cost for later requests of that key;
- a batch starts when the server is free and all its members have
  arrived; every member completes when the batch completes (the resolve
  barrier of one batching cycle).

Ordered partitions of ``n`` requests grow like the ordered Bell numbers
(545 835 at ``n = 8``), so problems are capped at
:data:`MAX_ORACLE_REQUESTS`; branch-and-bound on the incumbent keeps the
search fast in practice.
"""

from __future__ import annotations

import dataclasses
import itertools

from .regions import GazeGridSpec, quantize_gaze
from .workload import ServeTrace

__all__ = [
    "MAX_ORACLE_REQUESTS",
    "OracleRequest",
    "OracleCostModel",
    "ScheduleOutcome",
    "simulate_schedule",
    "exhaustive_schedule",
    "greedy_schedule",
    "schedule_gap",
    "oracle_problem_from_trace",
]

MAX_ORACLE_REQUESTS = 8


@dataclasses.dataclass(frozen=True)
class OracleRequest:
    """One abstract request: arrival, cache key, pose group, deadline.

    ``key`` and ``pose`` are opaque ids — two requests share a rendered
    frame iff their keys are equal, and share a projection prefix iff
    their poses are equal.  ``deadline_s`` is absolute (same clock as
    ``arrival_s``); ``None`` means best-effort.
    """

    arrival_s: float
    key: int
    pose: int
    deadline_s: float | None = None


@dataclasses.dataclass(frozen=True)
class OracleCostModel:
    """Abstract serving costs (units are arbitrary but shared)."""

    prepare_s: float = 1.0  # pose projection prefix, paid once per pose ever
    render_s: float = 0.25  # one frame's rasterization passes
    batch_s: float = 0.05  # fixed per-batch dispatch overhead


@dataclasses.dataclass(frozen=True)
class ScheduleOutcome:
    """What one simulated schedule did to the requests."""

    batches: tuple[tuple[int, ...], ...]  # request indices per batch, in order
    completion_s: tuple[float, ...]  # per request, indexed like the problem
    deadline_misses: int
    total_latency_s: float

    @property
    def objective(self) -> tuple[int, float]:
        """Lexicographic objective: misses first, then total latency."""
        return (self.deadline_misses, self.total_latency_s)


def simulate_schedule(
    requests: list[OracleRequest],
    batches: list[tuple[int, ...]],
    cost: OracleCostModel,
) -> ScheduleOutcome:
    """Run one ordered batch partition through the abstract server."""
    completion = [0.0] * len(requests)
    rendered_keys: set[int] = set()
    prepared_poses: set[int] = set()
    clock = 0.0
    misses = 0
    total_latency = 0.0
    for batch in batches:
        start = max(clock, max(requests[i].arrival_s for i in batch))
        work = cost.batch_s
        for i in batch:
            request = requests[i]
            if request.key in rendered_keys:
                continue  # frame-cache hit: no render
            if request.pose not in prepared_poses:
                work += cost.prepare_s
                prepared_poses.add(request.pose)
            work += cost.render_s
            rendered_keys.add(request.key)
        clock = start + work
        for i in batch:
            completion[i] = clock
            latency = clock - requests[i].arrival_s
            total_latency += latency
            deadline = requests[i].deadline_s
            if deadline is not None and clock > deadline:
                misses += 1
    return ScheduleOutcome(
        batches=tuple(tuple(b) for b in batches),
        completion_s=tuple(completion),
        deadline_misses=misses,
        total_latency_s=total_latency,
    )


def _ordered_partitions(items: tuple[int, ...]):
    """Yield every ordered partition (sequence of non-empty batches)."""
    if not items:
        yield []
        return
    n = len(items)
    first = items[0]
    rest = items[1:]
    # Choose the members of the first batch (always containing items[0]),
    # then recurse on the remainder.
    for r in range(len(rest) + 1):
        for combo in itertools.combinations(rest, r):
            chosen = (first,) + combo
            remaining = tuple(i for i in rest if i not in combo)
            for tail in _ordered_partitions(remaining):
                yield [chosen] + tail
    _ = n  # (documentational: complexity is the ordered Bell number of n)


def exhaustive_schedule(
    requests: list[OracleRequest],
    cost: OracleCostModel | None = None,
) -> ScheduleOutcome:
    """The optimal schedule by exhaustive search (``len(requests) <= 8``).

    Enumerates ordered partitions of the request set into batches (order
    within a batch does not matter — the simulator dedups by key and sums
    costs), simulating each and keeping the lexicographically best
    ``(deadline misses, total latency)``.  The incumbent prunes nothing
    mid-partition (schedules are cheap to simulate at this size), but the
    request cap keeps the enumeration's ordered-Bell growth bounded.
    """
    if len(requests) > MAX_ORACLE_REQUESTS:
        raise ValueError(
            f"exhaustive oracle is capped at {MAX_ORACLE_REQUESTS} requests "
            f"(got {len(requests)}); ordered partitions grow like the "
            "ordered Bell numbers"
        )
    if not requests:
        raise ValueError("need at least one request")
    cost = cost or OracleCostModel()
    # Enumerate in arrival order: batches that mix a late arrival into an
    # early batch just delay the batch start, and the simulator handles it,
    # so ordering the items canonically only dedups symmetric partitions.
    order = tuple(
        sorted(range(len(requests)), key=lambda i: (requests[i].arrival_s, i))
    )
    best: ScheduleOutcome | None = None
    for partition in _ordered_partitions(order):
        outcome = simulate_schedule(requests, partition, cost)
        if best is None or outcome.objective < best.objective:
            best = outcome
    assert best is not None
    return best


def greedy_schedule(
    requests: list[OracleRequest],
    cost: OracleCostModel | None = None,
    batch_budget: int = 8,
) -> ScheduleOutcome:
    """The serve loop's policy on the abstract model: drain, EDF, render.

    Mirrors ``ServeLoop._collect`` in drain mode: when the server frees
    up, take everything that has arrived (up to ``batch_budget``, earliest
    deadline first, arrival as the tie-break), render it as one batch; if
    nothing is pending, sleep until the next arrival.
    """
    cost = cost or OracleCostModel()
    pending = sorted(range(len(requests)), key=lambda i: requests[i].arrival_s)
    batches: list[tuple[int, ...]] = []
    clock = 0.0
    # Replay the simulator's cost bookkeeping to know when the server frees.
    rendered_keys: set[int] = set()
    prepared_poses: set[int] = set()
    while pending:
        arrived = [i for i in pending if requests[i].arrival_s <= clock]
        if not arrived:
            clock = requests[pending[0]].arrival_s
            arrived = [i for i in pending if requests[i].arrival_s <= clock]
        arrived.sort(
            key=lambda i: (
                requests[i].deadline_s
                if requests[i].deadline_s is not None
                else float("inf"),
                requests[i].arrival_s,
                i,
            )
        )
        batch = tuple(arrived[:batch_budget])
        batches.append(batch)
        work = cost.batch_s
        for i in batch:
            request = requests[i]
            if request.key in rendered_keys:
                continue
            if request.pose not in prepared_poses:
                work += cost.prepare_s
                prepared_poses.add(request.pose)
            work += cost.render_s
            rendered_keys.add(request.key)
        clock = max(clock, max(requests[i].arrival_s for i in batch)) + work
        batch_set = set(batch)
        pending = [i for i in pending if i not in batch_set]
    return simulate_schedule(requests, batches, cost)


def schedule_gap(
    requests: list[OracleRequest],
    cost: OracleCostModel | None = None,
    batch_budget: int = 8,
) -> dict:
    """Optimal-vs-heuristic comparison of one tiny problem (a report row).

    Returns both outcomes plus the miss and latency gaps.  ``latency_gap``
    is relative to the optimum's total latency (0.0 = the greedy schedule
    is optimal on latency too).
    """
    optimal = exhaustive_schedule(requests, cost)
    heuristic = greedy_schedule(requests, cost, batch_budget=batch_budget)
    latency_gap = (
        (heuristic.total_latency_s - optimal.total_latency_s)
        / optimal.total_latency_s
        if optimal.total_latency_s > 0
        else 0.0
    )
    return {
        "n_requests": len(requests),
        "optimal": optimal,
        "heuristic": heuristic,
        "optimal_misses": optimal.deadline_misses,
        "heuristic_misses": heuristic.deadline_misses,
        "miss_gap": heuristic.deadline_misses - optimal.deadline_misses,
        "latency_gap": latency_gap,
    }


def oracle_problem_from_trace(
    trace: ServeTrace,
    n_requests: int = 6,
    deadline_s: float | None = None,
    spec: GazeGridSpec | None = None,
) -> list[OracleRequest]:
    """Abstract the first ``n_requests`` of a real trace into an oracle problem.

    Keys are ``(pose index, gaze region)`` — the same sharing granularity
    as the real frame cache under a fixed model and config — and poses are
    the trace's pose indices.  ``deadline_s`` (relative to each arrival)
    stamps every request; the trace's own per-request ``deadline_s`` wins
    when present.
    """
    if n_requests > MAX_ORACLE_REQUESTS:
        raise ValueError(
            f"oracle problems are capped at {MAX_ORACLE_REQUESTS} requests"
        )
    spec = spec or GazeGridSpec()
    head = trace.requests[:n_requests]
    if not head:
        raise ValueError("trace has no requests")
    key_ids: dict[tuple, int] = {}
    out: list[OracleRequest] = []
    for request in head:
        region = quantize_gaze(trace.camera_of(request), request.gaze, spec)
        key = (request.pose_index, region)
        key_id = key_ids.setdefault(key, len(key_ids))
        relative = (
            request.deadline_s
            if getattr(request, "deadline_s", None) is not None
            else deadline_s
        )
        out.append(
            OracleRequest(
                arrival_s=request.time_s,
                key=key_id,
                pose=request.pose_index,
                deadline_s=(
                    request.time_s + relative if relative is not None else None
                ),
            )
        )
    return out
