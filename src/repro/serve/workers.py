"""Off-loop render workers: a process pool behind the serve scheduler.

The PR 5 :class:`~repro.serve.scheduler.ServeLoop` rendered misses inline
on the event loop — every miss blocked ``submit()`` for the full render
time and the whole tier was pinned to one core.  This module moves the
render hot path into a ``concurrent.futures.ProcessPoolExecutor`` whose
workers are *stateful*:

- each worker process holds the foveated model, its derived per-level
  tables, and a private :class:`~repro.splat.renderer.ViewCache` of pose
  prefixes, all installed **once** by the pool initializer — per render
  call only ``(camera, gazes)`` tuples travel to the worker and rendered
  frames travel back, never model parameters;
- the backend's persistent span workspace (segment structure, Gaussian
  exp tables) warms up inside each worker and stays resident across
  batches, exactly as it does for the inline path;
- renders stay **bit-identical** to the inline path: workers run the same
  :func:`repro.foveation.render_foveated_batch` with the same
  batch-of-one chunking discipline (``exact_frames``), and frames are
  pure functions of ``(model, camera, gaze, config)`` — crossing a
  process boundary changes nothing about the pixels.

Workers snapshot the model when the pool starts its processes.  The
scheduler's fingerprint-keyed caches detect in-place model mutation, but a
pool cannot re-snapshot — so every render call carries the caller's model
fingerprint and a worker whose snapshot disagrees raises
:class:`StaleWorkerModelError` instead of silently rendering old
parameters.  Mutating a model mid-serve therefore *fails loudly* under a
worker pool (restart the pool — or serve with ``workers=0`` — to pick up
the mutation).

Rendered frames travel back over the **shared-memory transport**
(:mod:`repro.serve.shm`) when the pool's ``shm_bytes`` knob is non-zero:
workers write frame planes into a leased arena slot and return only a
small :class:`~repro.serve.shm.FrameHandle`; the parent maps the planes
as zero-copy numpy views.  When the arena is exhausted (or SHM is
unavailable) a frame falls back to the classic pickle path — identical
pixels, just slower — and the pool counts the fallback in
:meth:`RenderWorkerPool.transport_stats`.

The start method defaults to ``fork`` where available (workers inherit
the model without pickling it; the pool forks lazily on first render) and
falls back to ``spawn``; ``REPRO_SERVE_MP_START`` overrides.
``REPRO_SERVE_WORKERS`` sets the default worker count for the CLI and
benchmarks (0 = render inline on the event loop);
``REPRO_WORKER_VIEWCACHE`` sizes each worker's private pose-prefix
:class:`~repro.splat.renderer.ViewCache` (arg > env > tune profile >
default 64, like every other knob).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from ..envknobs import env_int
from ..foveation.hierarchy import FoveatedModel
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_SPAN, Tracer, set_active_tracer
from ..splat.camera import Camera
from ..splat.renderer import RenderConfig
from .shm import (
    ArenaExhausted,
    FrameHandle,
    ShmTransportError,
    SlabArena,
    export_result,
    materialize_handle,
    resolved_shm_bytes,
)

__all__ = [
    "BrokenProcessPool",
    "RenderWorkerPool",
    "StaleWorkerModelError",
    "default_workers",
    "resolved_worker_viewcache",
]

WORKERS_ENV = "REPRO_SERVE_WORKERS"
MP_START_ENV = "REPRO_SERVE_MP_START"
VIEWCACHE_ENV = "REPRO_WORKER_VIEWCACHE"
DEFAULT_WORKER_VIEWCACHE = 64


class StaleWorkerModelError(RuntimeError):
    """A worker's model snapshot no longer matches the caller's fingerprint.

    Raised by the worker (and re-raised to the awaiting ``submit()``
    callers) when the serve-side model mutated after the pool's processes
    snapshotted it.  The error is the contract: a pool never serves frames
    of a superseded model as if they were fresh.
    """


def default_workers() -> int:
    """The ``REPRO_SERVE_WORKERS`` default (0 = inline rendering).

    A malformed or negative env value warns and falls back to 0 — the
    same degrade-don't-crash contract as every other env knob
    (:mod:`repro.envknobs`).
    """
    return env_int(WORKERS_ENV, 0, minimum=0)


def resolved_worker_viewcache(maxsize: int | None = None) -> int:
    """The effective per-worker ``ViewCache`` capacity (pose prefixes).

    Precedence: explicit ``maxsize`` > ``$REPRO_WORKER_VIEWCACHE`` > the
    host tuning profile's ``worker_viewcache`` > the built-in default
    (64).  A malformed or out-of-range env value warns and falls through;
    an explicit out-of-range argument raises.
    """
    if maxsize is not None:
        if maxsize < 1:
            raise ValueError("worker viewcache maxsize must be at least 1")
        return int(maxsize)
    from ..tune.profile import profile_value

    fallback = profile_value("worker_viewcache") or DEFAULT_WORKER_VIEWCACHE
    return env_int(VIEWCACHE_ENV, int(fallback), minimum=1)


def _mp_context(start: str | None = None):
    """The multiprocessing context the pool forks/spawns workers from."""
    start = start or os.environ.get(MP_START_ENV) or None
    if start is None:
        methods = multiprocessing.get_all_start_methods()
        start = "fork" if "fork" in methods else "spawn"
    return multiprocessing.get_context(start)


# ----------------------------------------------------------------------
# Worker-process side.  Module-level state + top-level functions: the
# executor pickles callables by qualified name, and the initializer
# installs everything a render needs exactly once per worker process.
# ----------------------------------------------------------------------
_WORKER_STATE: dict | None = None


def _worker_init(
    fmodel: FoveatedModel,
    config: RenderConfig,
    exact_frames: bool,
    viewcache: int = DEFAULT_WORKER_VIEWCACHE,
    shm_name: str | None = None,
    shm_lock=None,
) -> None:
    from ..splat.renderer import ViewCache
    from .regions import foveated_model_fingerprint

    # The viewcache size arrives resolved by the parent (arg > env > tune
    # profile > default), so workers never consult env/profile themselves
    # — spawn-started workers see the pool creator's knobs, not their own.
    arena = None
    if shm_name is not None and shm_lock is not None:
        try:
            arena = SlabArena.attach(shm_name, shm_lock)
        except Exception:
            # SHM transport degraded for this worker only: it renders and
            # returns results over the pickle path; the parent counts the
            # fallbacks.  Never fail worker startup over a transport knob.
            arena = None
    global _WORKER_STATE
    _WORKER_STATE = {
        "fmodel": fmodel,
        "config": config,
        "exact_frames": exact_frames,
        "cache": ViewCache(maxsize=viewcache),
        "model_fp": foveated_model_fingerprint(fmodel),
        "arena": arena,
    }


def _worker_render(camera: Camera, gazes: tuple, model_fp: tuple | None, trace: bool = False):
    """Render one pose group; frames ride the arena when there is room.

    Returns ``(payload, spans)``.  ``payload`` has one entry per gaze: a
    :class:`~repro.serve.shm.FrameHandle` for frames whose planes landed
    in the shared arena, or the raw ``FRRenderResult`` (pickled through
    the executor pipe) when the arena is absent or full — per frame, so a
    momentarily full arena degrades one frame, not the whole batch.

    When ``trace`` is set, ``spans`` is ``(worker_pid, compact_spans)``
    piggybacked on the result pickle: the worker records its render and
    shm-export spans (plus the backend-internal prepare/alpha-scan/
    composite spans, via the active-tracer seam) into a transient
    :class:`~repro.obs.trace.Tracer` and drains them to compact tuples.
    ``time.perf_counter`` is ``CLOCK_MONOTONIC`` on Linux — one clock
    domain across fork *and* spawn — so the parent stitches them into its
    trace without any clock translation.  With ``trace`` off, ``spans``
    is ``None`` and the only cost is returning a 2-tuple.
    """
    if _WORKER_STATE is None:  # pragma: no cover - initializer always runs
        raise RuntimeError("render worker used before initialization")
    if model_fp is not None and model_fp != _WORKER_STATE["model_fp"]:
        raise StaleWorkerModelError(
            "serve model mutated after the worker pool snapshotted it; "
            "restart the pool (or serve inline with workers=0) to pick up "
            "the new parameters"
        )
    from ..foveation import render_foveated_batch

    tracer = Tracer(capacity=1024) if trace else None
    prev = set_active_tracer(tracer) if trace else None
    try:
        with tracer.span("render", args={"gazes": len(gazes)}) if trace else NULL_SPAN:
            results = render_foveated_batch(
                _WORKER_STATE["fmodel"],
                camera,
                gazes=list(gazes),
                config=_WORKER_STATE["config"],
                batch_size=1 if _WORKER_STATE["exact_frames"] else None,
                cache=_WORKER_STATE["cache"],
            )
        arena = _WORKER_STATE["arena"]
        if arena is None:
            payload = list(results)
        else:
            payload = []
            with tracer.span("shm-export") if trace else NULL_SPAN:
                for result in results:
                    try:
                        payload.append(export_result(arena, result))
                    except (ArenaExhausted, ShmTransportError):
                        payload.append(result)
    finally:
        if trace:
            set_active_tracer(prev)
    spans = (os.getpid(), tracer.drain_compact()) if trace else None
    return payload, spans


# ----------------------------------------------------------------------
# Serve-loop side.
# ----------------------------------------------------------------------
class RenderWorkerPool:
    """A process pool rendering pose-grouped gaze batches off the event loop.

    One pool serves one ``(fmodel, config, exact_frames)`` triple — the
    :class:`~repro.serve.scheduler.ServeLoop` that owns it (or the
    :class:`~repro.serve.sharding.ShardRouter` sharing it across shards)
    dispatches each pose group via :meth:`render`, which awaits the
    executor future without blocking the loop, so ``submit()`` latency
    decouples from render time and concurrent pose groups land on
    distinct cores.
    """

    def __init__(
        self,
        fmodel: FoveatedModel,
        config: RenderConfig | None = None,
        workers: int = 1,
        exact_frames: bool = True,
        mp_start: str | None = None,
        shm_bytes: int | None = None,
        worker_viewcache: int | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.fmodel = fmodel
        self.render_config = config or RenderConfig()
        self.workers = workers
        self.exact_frames = exact_frames
        ctx = _mp_context(mp_start)
        self.shm_bytes = resolved_shm_bytes(shm_bytes)
        self._arena: SlabArena | None = None
        shm_name = shm_lock = None
        if self.shm_bytes > 0:
            try:
                shm_lock = ctx.Lock()
                self._arena = SlabArena.create(self.shm_bytes, shm_lock)
                shm_name = self._arena.name
            except Exception as exc:
                warnings.warn(
                    f"shared-memory frame transport unavailable ({exc}); "
                    "worker frames will ride the pickle path",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self._arena = None
                shm_name = shm_lock = None
        self._executor: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=ctx,
            initializer=_worker_init,
            initargs=(
                self.fmodel,
                self.render_config,
                exact_frames,
                resolved_worker_viewcache(worker_viewcache),
                shm_name,
                shm_lock,
            ),
        )
        self.renders_dispatched = 0
        self.frames_via_shm = 0
        self.frames_via_pipe = 0
        self.bytes_via_shm = 0
        self.bytes_via_pipe = 0
        self.shm_fallbacks = 0

    async def render(
        self,
        camera: Camera,
        gazes,
        model_fp: tuple | None = None,
        tracer: Tracer | None = None,
    ):
        """Render one pose group ``(camera, gazes)`` in a worker process.

        Returns the worker's ``list[FRRenderResult]`` (one per gaze, in
        order).  Raises :class:`StaleWorkerModelError` if ``model_fp``
        (the caller's fingerprint of the model it *thinks* it is serving)
        disagrees with the worker's snapshot, and
        :class:`BrokenProcessPool` if the pool's processes died.

        With a ``tracer``, the worker's render/export spans (compact
        tuples piggybacked on the result pickle) are stitched into it
        under the worker's pid, and the parent-side handle materialization
        is recorded too — one coherent timeline across the pipe.
        """
        if self._executor is None:
            raise RuntimeError("RenderWorkerPool is closed")
        self.renders_dispatched += 1
        loop = asyncio.get_running_loop()
        payload, spans = await loop.run_in_executor(
            self._executor, _worker_render, camera, tuple(gazes), model_fp,
            tracer is not None,
        )
        if tracer is not None and spans is not None:
            worker_pid, compact = spans
            tracer.adopt(compact, pid=worker_pid, process_label=f"render-worker {worker_pid}")
        if tracer is None:
            return [self._receive(item) for item in payload]
        with tracer.span("materialize", args={"frames": len(payload)}):
            return [self._receive(item) for item in payload]

    def _receive(self, item):
        """Turn one worker payload entry into a result, counting transport.

        A :class:`~repro.serve.shm.FrameHandle` maps to zero-copy views of
        the arena (its lease is released when the rebuilt result is
        collected); anything else already crossed the pipe as pickled
        arrays.  Pipe bytes are counted as plane nbytes — the same measure
        as the arena side — so the two columns compare transport volume,
        not pickle framing overhead.
        """
        if isinstance(item, FrameHandle):
            assert self._arena is not None
            result = materialize_handle(self._arena, item)
            self.frames_via_shm += 1
            self.bytes_via_shm += item.nbytes
            return result
        from .regions import result_nbytes

        self.frames_via_pipe += 1
        self.bytes_via_pipe += result_nbytes(item)
        if self._arena is not None:
            self.shm_fallbacks += 1
        return item

    def worker_pids(self) -> list[int]:
        """PIDs of the live worker processes (spawned lazily on first render).

        Reads the executor's (private) process table defensively: if a
        future stdlib moves it, this degrades to ``[]`` instead of
        crashing ``stats()`` or a shutdown path.
        """
        executor = self._executor
        if executor is None:
            return []
        try:
            processes = executor._processes
            if not processes:
                return []
            return [p.pid for p in processes.values() if p.pid]
        except (AttributeError, TypeError):  # pragma: no cover - stdlib drift
            return []

    def transport_stats(self) -> dict:
        """Frame-transport accounting: bytes over the pipe vs via the arena.

        ``transport`` is the pool's configured path (``"shm"`` when an
        arena is live, else ``"pipe"``); ``shm_fallbacks`` counts frames
        that had to ride the pipe *despite* a live arena (exhaustion).
        ``arena`` carries the allocator occupancy, or ``None``.
        """
        return {
            "transport": "shm" if self._arena is not None else "pipe",
            "shm_bytes": self.shm_bytes,
            "frames_via_shm": self.frames_via_shm,
            "frames_via_pipe": self.frames_via_pipe,
            "bytes_via_shm": self.bytes_via_shm,
            "bytes_via_pipe": self.bytes_via_pipe,
            "shm_fallbacks": self.shm_fallbacks,
            "arena": self._arena.stats() if self._arena is not None else None,
        }

    def register_metrics(self, registry: MetricsRegistry, **labels: str) -> None:
        """Attach transport accounting (and arena occupancy) to ``registry``.

        Callback gauges over the live attributes — ``transport_stats()``
        stays the thin dict view over the same numbers.
        """
        for name, attr in (
            ("worker_renders_dispatched", "renders_dispatched"),
            ("worker_frames_via_shm", "frames_via_shm"),
            ("worker_frames_via_pipe", "frames_via_pipe"),
            ("worker_bytes_via_shm", "bytes_via_shm"),
            ("worker_bytes_via_pipe", "bytes_via_pipe"),
            ("worker_shm_fallbacks", "shm_fallbacks"),
        ):
            registry.gauge_fn(name, lambda a=attr: getattr(self, a), **labels)
        if self._arena is not None:
            self._arena.register_metrics(registry, **labels)

    def close(self) -> None:
        """Shut the pool down, joining (or reaping) every worker process.

        Safe to call on a broken pool and idempotent; pending render
        futures are cancelled, so a closing serve loop never hangs on a
        worker that will not answer.  The transport arena is unlinked
        unconditionally afterwards — clean, broken and crash-unwound pools
        all release their ``/dev/shm`` segment here (frames already
        materialized stay valid: their views pin the mapping, not the
        name).
        """
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        if self._arena is not None:
            self._arena.close()
            self._arena = None

    def __enter__(self) -> "RenderWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
