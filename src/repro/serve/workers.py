"""Off-loop render workers: a process pool behind the serve scheduler.

The PR 5 :class:`~repro.serve.scheduler.ServeLoop` rendered misses inline
on the event loop — every miss blocked ``submit()`` for the full render
time and the whole tier was pinned to one core.  This module moves the
render hot path into a ``concurrent.futures.ProcessPoolExecutor`` whose
workers are *stateful*:

- each worker process holds the foveated model, its derived per-level
  tables, and a private :class:`~repro.splat.renderer.ViewCache` of pose
  prefixes, all installed **once** by the pool initializer — per render
  call only ``(camera, gazes)`` tuples travel to the worker and rendered
  frames travel back, never model parameters;
- the backend's persistent span workspace (segment structure, Gaussian
  exp tables) warms up inside each worker and stays resident across
  batches, exactly as it does for the inline path;
- renders stay **bit-identical** to the inline path: workers run the same
  :func:`repro.foveation.render_foveated_batch` with the same
  batch-of-one chunking discipline (``exact_frames``), and frames are
  pure functions of ``(model, camera, gaze, config)`` — crossing a
  process boundary changes nothing about the pixels.

Workers snapshot the model when the pool starts its processes.  The
scheduler's fingerprint-keyed caches detect in-place model mutation, but a
pool cannot re-snapshot — so every render call carries the caller's model
fingerprint and a worker whose snapshot disagrees raises
:class:`StaleWorkerModelError` instead of silently rendering old
parameters.  Mutating a model mid-serve therefore *fails loudly* under a
worker pool (restart the pool — or serve with ``workers=0`` — to pick up
the mutation).

The start method defaults to ``fork`` where available (workers inherit
the model without pickling it; the pool forks lazily on first render) and
falls back to ``spawn``; ``REPRO_SERVE_MP_START`` overrides.
``REPRO_SERVE_WORKERS`` sets the default worker count for the CLI and
benchmarks (0 = render inline on the event loop).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from ..envknobs import env_int
from ..foveation.hierarchy import FoveatedModel
from ..splat.camera import Camera
from ..splat.renderer import RenderConfig

__all__ = [
    "BrokenProcessPool",
    "RenderWorkerPool",
    "StaleWorkerModelError",
    "default_workers",
]

WORKERS_ENV = "REPRO_SERVE_WORKERS"
MP_START_ENV = "REPRO_SERVE_MP_START"


class StaleWorkerModelError(RuntimeError):
    """A worker's model snapshot no longer matches the caller's fingerprint.

    Raised by the worker (and re-raised to the awaiting ``submit()``
    callers) when the serve-side model mutated after the pool's processes
    snapshotted it.  The error is the contract: a pool never serves frames
    of a superseded model as if they were fresh.
    """


def default_workers() -> int:
    """The ``REPRO_SERVE_WORKERS`` default (0 = inline rendering).

    A malformed or negative env value warns and falls back to 0 — the
    same degrade-don't-crash contract as every other env knob
    (:mod:`repro.envknobs`).
    """
    return env_int(WORKERS_ENV, 0, minimum=0)


def _mp_context(start: str | None = None):
    """The multiprocessing context the pool forks/spawns workers from."""
    start = start or os.environ.get(MP_START_ENV) or None
    if start is None:
        methods = multiprocessing.get_all_start_methods()
        start = "fork" if "fork" in methods else "spawn"
    return multiprocessing.get_context(start)


# ----------------------------------------------------------------------
# Worker-process side.  Module-level state + top-level functions: the
# executor pickles callables by qualified name, and the initializer
# installs everything a render needs exactly once per worker process.
# ----------------------------------------------------------------------
_WORKER_STATE: dict | None = None


def _worker_init(fmodel: FoveatedModel, config: RenderConfig, exact_frames: bool) -> None:
    from ..splat.renderer import ViewCache
    from .regions import foveated_model_fingerprint

    global _WORKER_STATE
    _WORKER_STATE = {
        "fmodel": fmodel,
        "config": config,
        "exact_frames": exact_frames,
        "cache": ViewCache(maxsize=64),
        "model_fp": foveated_model_fingerprint(fmodel),
    }


def _worker_render(camera: Camera, gazes: tuple, model_fp: tuple | None):
    if _WORKER_STATE is None:  # pragma: no cover - initializer always runs
        raise RuntimeError("render worker used before initialization")
    if model_fp is not None and model_fp != _WORKER_STATE["model_fp"]:
        raise StaleWorkerModelError(
            "serve model mutated after the worker pool snapshotted it; "
            "restart the pool (or serve inline with workers=0) to pick up "
            "the new parameters"
        )
    from ..foveation import render_foveated_batch

    return render_foveated_batch(
        _WORKER_STATE["fmodel"],
        camera,
        gazes=list(gazes),
        config=_WORKER_STATE["config"],
        batch_size=1 if _WORKER_STATE["exact_frames"] else None,
        cache=_WORKER_STATE["cache"],
    )


# ----------------------------------------------------------------------
# Serve-loop side.
# ----------------------------------------------------------------------
class RenderWorkerPool:
    """A process pool rendering pose-grouped gaze batches off the event loop.

    One pool serves one ``(fmodel, config, exact_frames)`` triple — the
    :class:`~repro.serve.scheduler.ServeLoop` that owns it (or the
    :class:`~repro.serve.sharding.ShardRouter` sharing it across shards)
    dispatches each pose group via :meth:`render`, which awaits the
    executor future without blocking the loop, so ``submit()`` latency
    decouples from render time and concurrent pose groups land on
    distinct cores.
    """

    def __init__(
        self,
        fmodel: FoveatedModel,
        config: RenderConfig | None = None,
        workers: int = 1,
        exact_frames: bool = True,
        mp_start: str | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.fmodel = fmodel
        self.render_config = config or RenderConfig()
        self.workers = workers
        self.exact_frames = exact_frames
        self._executor: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_mp_context(mp_start),
            initializer=_worker_init,
            initargs=(self.fmodel, self.render_config, exact_frames),
        )
        self.renders_dispatched = 0

    async def render(self, camera: Camera, gazes, model_fp: tuple | None = None):
        """Render one pose group ``(camera, gazes)`` in a worker process.

        Returns the worker's ``list[FRRenderResult]`` (one per gaze, in
        order).  Raises :class:`StaleWorkerModelError` if ``model_fp``
        (the caller's fingerprint of the model it *thinks* it is serving)
        disagrees with the worker's snapshot, and
        :class:`BrokenProcessPool` if the pool's processes died.
        """
        if self._executor is None:
            raise RuntimeError("RenderWorkerPool is closed")
        self.renders_dispatched += 1
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, _worker_render, camera, tuple(gazes), model_fp
        )

    def worker_pids(self) -> list[int]:
        """PIDs of the live worker processes (spawned lazily on first render)."""
        if self._executor is None or self._executor._processes is None:
            return []
        return [p.pid for p in self._executor._processes.values() if p.pid]

    def close(self) -> None:
        """Shut the pool down, joining (or reaping) every worker process.

        Safe to call on a broken pool and idempotent; pending render
        futures are cancelled, so a closing serve loop never hangs on a
        worker that will not answer.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "RenderWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
