"""Predictive gaze extrapolation: where each client will look next.

VR traffic is periodic (a 72/90/120 Hz client asks for one frame per
refresh) and gaze scanpaths have momentum: fixations dwell with sub-degree
drift, saccades travel ballistically for several frames
(:mod:`repro.scenes.gaze`).  Both regimes are predictable one or two
frames out — which is exactly the window the serve tier needs to turn a
cold :class:`~repro.serve.regions.FrameCache` miss (full render latency)
into a hit (no render at all): speculatively render the *next* likely
gaze regions while the client is still displaying the current frame.

:class:`GazePredictor` keeps a short per-client gaze history and
extrapolates it:

- **constant-velocity** (``saccade_aware=False``): the next positions
  continue the last inter-frame step linearly — the classic dead-reckoning
  predictor;
- **saccade-aware** (default): the last step is classified against
  ``saccade_px`` (the same threshold as
  :func:`repro.scenes.gaze.saccade_frames`).  A *fixation* step is ocular
  drift — zero-mean noise whose linear extrapolation is itself noise — so
  the prediction **holds** the current position.  A *saccade* step is
  ballistic and keeps its velocity for tens of milliseconds, so the
  prediction continues it linearly.

The predictor deals only in gaze pixels; the scheduler quantizes
predictions onto the gaze grid, drops the ones that collapse onto
already-cached (or already-pending) regions, and enqueues the rest as
low-priority prefetch requests that real misses preempt
(:mod:`repro.serve.scheduler`).
"""

from __future__ import annotations

import collections
import dataclasses

__all__ = ["PredictorConfig", "GazePredictor"]


@dataclasses.dataclass(frozen=True)
class PredictorConfig:
    """Knobs of the speculative-prefetch policy.

    ``horizon`` is how many future frames are extrapolated per observed
    request (each yields at most one prefetch candidate); ``history``
    bounds the per-client gaze samples retained; ``saccade_px`` splits
    fixation drift from ballistic saccades (only meaningful when
    ``saccade_aware``); ``max_backlog`` caps the number of prefetch
    requests allowed to sit in the scheduler's low-priority queue — the
    speculation budget that keeps a burst of predictions from starving
    real work.
    """

    horizon: int = 2
    history: int = 4
    saccade_aware: bool = True
    saccade_px: float = 4.0
    max_backlog: int = 16

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise ValueError("horizon must be at least 1")
        if self.history < 2:
            raise ValueError("history must be at least 2 (velocity needs two samples)")
        if self.saccade_px <= 0:
            raise ValueError("saccade_px must be positive")
        if self.max_backlog < 1:
            raise ValueError("max_backlog must be at least 1")


class GazePredictor:
    """Per-client gaze history + extrapolation (pure pixel-space, no render).

    ``observe`` feeds one served request's gaze; ``predict`` returns up to
    ``config.horizon`` future gaze pixels, clamped to the display.  A
    client with fewer than two observations has no velocity estimate and
    predicts nothing.  State is per ``client_id``: clients' scanpaths are
    independent, and a client hopping poses keeps its gaze momentum (the
    scanpath lives in screen space).
    """

    def __init__(self, config: PredictorConfig | None = None) -> None:
        self.config = config or PredictorConfig()
        self._history: dict[int, collections.deque] = {}

    def observe(self, client_id: int, gaze: tuple[float, float] | None) -> None:
        """Record one served gaze sample for ``client_id`` (``None`` ignored)."""
        if gaze is None:
            return
        history = self._history.get(client_id)
        if history is None:
            history = collections.deque(maxlen=self.config.history)
            self._history[client_id] = history
        history.append((float(gaze[0]), float(gaze[1])))

    def velocity(self, client_id: int) -> tuple[float, float] | None:
        """Last inter-frame gaze step ``(dx, dy)`` in pixels, or ``None``."""
        history = self._history.get(client_id)
        if history is None or len(history) < 2:
            return None
        (x0, y0), (x1, y1) = history[-2], history[-1]
        return (x1 - x0, y1 - y0)

    def predict(
        self, client_id: int, width: int, height: int
    ) -> list[tuple[float, float]]:
        """Up to ``horizon`` future gaze pixels for ``client_id``, clamped.

        Constant-velocity mode extrapolates the last step ``k`` frames
        out; saccade-aware mode holds position during fixations (drift is
        noise, not signal) and extrapolates only ballistic steps.  A held
        prediction is returned once (duplicates carry no information — the
        scheduler would drop them against the cache anyway).
        """
        velocity = self.velocity(client_id)
        if velocity is None:
            return []
        x, y = self._history[client_id][-1]
        dx, dy = velocity
        if self.config.saccade_aware:
            step = (dx * dx + dy * dy) ** 0.5
            if step <= self.config.saccade_px:
                # Fixation: the best next-frame estimate is "still here".
                return [_clamp(x, y, width, height)]
        out = []
        for k in range(1, self.config.horizon + 1):
            out.append(_clamp(x + dx * k, y + dy * k, width, height))
        return out

    def forget(self, client_id: int) -> None:
        """Drop a client's history (its session ended)."""
        self._history.pop(client_id, None)


def _clamp(x: float, y: float, width: int, height: int) -> tuple[float, float]:
    return (
        min(max(x, 0.0), float(width - 1)),
        min(max(y, 0.0), float(height - 1)),
    )
