"""Consistent-hash sharded serve front-end: N loops, disjoint hot key ranges.

One :class:`~repro.serve.scheduler.ServeLoop` is one core's worth of serve
capacity with one in-process cache.  The :class:`ShardRouter` scales that
out: it runs N serve shards and routes every request by consistent-hashing
its ``(camera fingerprint, gaze region)`` — exactly the granularity at
which cached frames are shareable, since the frame-cache key is
``(model fp, camera fp, region, config fp)`` and model/config are fixed
per cluster.  Consequences:

- **every request that could share a cached frame lands on the same
  shard**, so sharding never costs hit rate: for an eviction-free trace
  the hit/miss outcome of each request — and therefore the served frame
  bytes — is *identical* to a single loop's (pinned in
  ``tests/test_serve_sharding.py``);
- each shard's ``FrameCache`` / ``ViewCache`` stays hot on a **disjoint
  key range** — shards never duplicate entries, so N shards hold N caches'
  worth of distinct frames;
- shard assignment is a pure function of the key on a **virtual-node hash
  ring** (:class:`HashRing`): deterministic across processes and
  sessions, near-uniform in expectation, and *stable under resizing* —
  growing N → N+1 shards remaps only ~1/(N+1) of the keys instead of
  reshuffling everything, which is what keeps warm caches warm through a
  scale-out (and what the version-vector coherence work will lean on when
  shards start exchanging frames).

With ``serve_config.workers > 0`` the router starts **one shared**
:class:`~repro.serve.workers.RenderWorkerPool` and hands it to every
shard: shards' pose groups from concurrent batches interleave on the same
worker processes, so render parallelism is bounded by the pool size, not
the shard count, and N shards do not cost N pools of processes.
"""

from __future__ import annotations

import bisect
import hashlib

from ..envknobs import env_int
from ..foveation.hierarchy import FoveatedModel
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from ..splat.cachekey import fingerprint_bytes
from ..splat.renderer import RenderConfig
from .regions import FrameCache
from .scheduler import (
    FrameRequest,
    FrameResponse,
    ServeConfig,
    ServeLoop,
    request_cache_key,
)
from .workers import RenderWorkerPool

__all__ = ["HashRing", "ShardRouter", "default_shards"]

SHARDS_ENV = "REPRO_SERVE_SHARDS"


def default_shards() -> int:
    """The ``REPRO_SERVE_SHARDS`` default (1 = a single un-sharded loop).

    A malformed or out-of-range env value warns and falls back to 1 —
    the same degrade-don't-crash contract as every other env knob
    (:mod:`repro.envknobs`).
    """
    return env_int(SHARDS_ENV, 1, minimum=1)


def _ring_hash(data: bytes) -> int:
    """64-bit ring position of ``data`` (keyed BLAKE2 — stable everywhere)."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


class HashRing:
    """A consistent-hash ring over ``n_shards`` with virtual nodes.

    Each shard owns ``vnodes`` points on a 64-bit ring (hash of
    ``shard:vnode``); a key routes to the owner of the first ring point at
    or after the key's own hash (wrapping).  Virtual nodes smooth the
    per-shard load toward uniform (the imbalance of the largest arc decays
    like ``1/sqrt(vnodes)``), and because every shard's points are a pure
    function of its index, adding shard N+1 only claims the arcs its own
    new points cut — in expectation a ``1/(N+1)`` fraction of the key
    space — leaving every other key's owner untouched.
    """

    def __init__(self, n_shards: int, vnodes: int = 64) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        if vnodes < 1:
            raise ValueError("vnodes must be at least 1")
        self.n_shards = n_shards
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for shard in range(n_shards):
            for vnode in range(vnodes):
                points.append(
                    (_ring_hash(f"shard:{shard}:vnode:{vnode}".encode()), shard)
                )
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [s for _, s in points]

    def route_bytes(self, data: bytes) -> int:
        """The shard owning ``data``'s ring position."""
        index = bisect.bisect_right(self._hashes, _ring_hash(data))
        if index == len(self._hashes):
            index = 0
        return self._owners[index]

    def route(self, key) -> int:
        """The shard owning a structured key (canonically encoded first)."""
        return self.route_bytes(fingerprint_bytes(key))


class ShardRouter:
    """Runs N serve shards and routes requests onto disjoint key ranges.

    Mirrors the :class:`ServeLoop` surface — an async context manager with
    ``submit()`` — so replay harnesses and clients can drive a sharded
    cluster exactly like a single loop::

        async with ShardRouter(fmodel, n_shards=4, serve_config=cfg) as router:
            response = await router.submit(FrameRequest(0, camera, gaze))

    ``submit`` computes the request's cache key once (memoized on the
    request), routes on its ``(camera fp, region)`` elements, and
    delegates to the owning shard — which reuses the memoized key instead
    of re-hashing the model.  Per-shard request counters and
    :meth:`stats` (hit rates, queue depths, the imbalance factor) feed the
    multi-shard replay report.
    """

    def __init__(
        self,
        fmodel: FoveatedModel,
        config: RenderConfig | None = None,
        serve_config: ServeConfig | None = None,
        n_shards: int = 2,
        vnodes: int = 64,
        worker_pool: RenderWorkerPool | None = None,
        tracer: Tracer | None = None,
        clock=None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        self.fmodel = fmodel
        self.render_config = config or RenderConfig()
        self.serve_config = serve_config or ServeConfig()
        # One tracer for the whole cluster: every shard records into the
        # same ring (each on its own batcher lane), so a sharded replay
        # exports a single coherent timeline.
        if tracer is None and self.serve_config.trace:
            tracer = Tracer(clock=clock) if clock is not None else Tracer()
        self.tracer = tracer
        self._clock = clock
        self.ring = HashRing(n_shards, vnodes=vnodes)
        self._pool = worker_pool
        self._owns_pool = False
        if self._pool is None and self.serve_config.workers > 0:
            # One pool — and therefore ONE transport arena — shared by all
            # shards: render parallelism and shm capacity are bounded by
            # the pool, not multiplied by the shard count.
            self._pool = RenderWorkerPool(
                fmodel,
                self.render_config,
                workers=self.serve_config.workers,
                exact_frames=self.serve_config.exact_frames,
                shm_bytes=self.serve_config.shm_bytes,
            )
            self._owns_pool = True
        self.shards = [
            ServeLoop(
                fmodel,
                config=self.render_config,
                serve_config=self.serve_config,
                worker_pool=self._pool,
                tracer=self.tracer,
                clock=self._clock,
                trace_tid=index,
            )
            for index in range(n_shards)
        ]
        # Key computation only (cache entries live on the shards); the
        # explicit max_bytes keeps it constructible when the resolved
        # frame-cache budget is "disabled".  Shares the grid spec so
        # router keys equal shard keys.
        self._keyer = FrameCache(max_bytes=1, spec=self.serve_config.grid)
        self.shard_requests = [0] * n_shards

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        for shard in self.shards:
            await shard.start()

    async def close(self) -> None:
        """Drain and stop every shard, then the shared worker pool."""
        for shard in self.shards:
            await shard.close()
        if self._owns_pool and self._pool is not None:
            self._pool.close()
            self._pool = None
            self._owns_pool = False

    async def __aenter__(self) -> "ShardRouter":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def shard_of(self, request: FrameRequest) -> int:
        """The shard owning this request's ``(camera fp, gaze region)``.

        Keying the request here memoizes its fingerprints, so the owning
        shard's ``submit`` reuses them for the cache lookup — one model
        hash per request, shared by routing and caching.
        """
        key = request_cache_key(
            self._keyer, self.fmodel, request, self.render_config
        )
        return self.ring.route((key[1], key[2]))

    async def submit(self, request: FrameRequest) -> FrameResponse:
        shard = self.shard_of(request)
        self.shard_requests[shard] += 1
        return await self.shards[shard].submit(request)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def requests_routed(self) -> int:
        return sum(self.shard_requests)

    @property
    def imbalance_factor(self) -> float:
        """Hottest shard's request share over the uniform share (1.0 = even).

        ``max(shard requests) / mean(shard requests)`` — the standard
        consistent-hashing load metric: 1.0 is a perfectly even split, N
        is everything on one of N shards.
        """
        total = self.requests_routed
        if total == 0:
            return 1.0
        mean = total / len(self.shards)
        return max(self.shard_requests) / mean

    def transport_stats(self) -> dict | None:
        """The shared pool's frame-transport accounting (``None`` inline)."""
        return self._pool.transport_stats() if self._pool is not None else None

    def merged_stage_histograms(self) -> dict:
        """Cluster-wide stage histograms: the shards' merged, not averaged.

        Log-bucket histograms merge exactly (bucket counts add), so the
        percentiles of the merged distribution are the cluster's true
        percentiles — averaging per-shard percentiles has no such meaning.
        Returns fresh :class:`~repro.obs.Histogram` objects per stage.
        """
        from ..obs.metrics import Histogram

        merged: dict = {}
        for stage in ("queue", "render", "total"):
            merged[stage] = Histogram.merged(
                shard.stage_histograms[stage] for shard in self.shards
            )
        return merged

    def stage_breakdown(self) -> dict[str, dict[str, float]]:
        """Per-stage latency summary over the merged shard histograms
        (same shape as :meth:`ServeLoop.stage_breakdown`, values in ms)."""
        out = {}
        for stage, hist in self.merged_stage_histograms().items():
            out[stage] = {
                "count": hist.count,
                "mean_ms": hist.mean() * 1e3,
                "p50_ms": hist.percentile(50.0) * 1e3,
                "p90_ms": hist.percentile(90.0) * 1e3,
                "p99_ms": hist.percentile(99.0) * 1e3,
            }
        return out

    def register_metrics(self, registry: MetricsRegistry, **labels: str) -> None:
        """Attach every shard's live metrics (labelled ``shard=<i>``) plus
        the shared pool's transport counters onto ``registry``."""
        for index, shard in enumerate(self.shards):
            shard.register_metrics(registry, shard=str(index), **labels)
        if self._pool is not None:
            self._pool.register_metrics(registry, **labels)
        registry.gauge_fn("shard_imbalance_factor", lambda: self.imbalance_factor, **labels)

    def stats(self) -> dict:
        """Per-shard serving counters plus the cluster imbalance factor."""
        per_shard = []
        for index, (shard, routed) in enumerate(
            zip(self.shards, self.shard_requests)
        ):
            per_shard.append(
                {
                    "shard": index,
                    "requests": routed,
                    "served": shard.requests_served,
                    "hit_rate": (
                        shard.frame_cache.hit_rate if shard.frame_cache else 0.0
                    ),
                    "max_queue_depth": shard.max_queue_depth,
                    "cache_entries": (
                        len(shard.frame_cache) if shard.frame_cache else 0
                    ),
                    "deadline_misses": shard.deadline_misses,
                    "degraded_served": shard.degraded_served,
                    "prefetch_useful": shard.prefetch_useful,
                }
            )
        served = sum(shard.requests_served for shard in self.shards)
        misses = sum(shard.deadline_misses for shard in self.shards)
        return {
            "n_shards": len(self.shards),
            "imbalance_factor": self.imbalance_factor,
            "shards": per_shard,
            # Cluster-wide deadline accounting: deadlines ride the
            # FrameRequest through routing untouched, so the shard counters
            # sum to exactly what a single loop would have recorded.
            "requests_served": served,
            "deadline_misses": misses,
            "deadline_miss_rate": misses / served if served else 0.0,
            "degraded_served": sum(s.degraded_served for s in self.shards),
        }
