"""Zero-copy shared-memory frame transport for the render worker pool.

A worker-pool miss used to pay the full executor result pipeline for every
rendered frame: pickle the multi-megabyte ``FRRenderResult`` (image, stat
and span arrays) in the worker, stream it through the result pipe, and
unpickle a fresh copy in the parent — at 512²+ frames the transport, not
the render, becomes the serve ceiling.  This module replaces the frame
*payload* on that path with a :class:`SlabArena`: one
``multiprocessing.shared_memory.SharedMemory`` segment sized by the
``shm_bytes`` knob, carved into fixed blocks by a free-list allocator that
lives *inside the segment* so parent and workers allocate from the same
block table under one cross-process lock.

The protocol per rendered frame:

1. the **worker** leases a contiguous block run (:meth:`SlabArena.lease`),
   copies every array of the result tree into the slot, and returns a
   small :class:`FrameHandle` through the executor pipe — segment name,
   slot offset, a generation stamp, per-plane ``(offset, shape, dtype)``
   specs, a CRC-32 of the plane bytes, and the result "skeleton" (the
   dataclass tree with each array swapped for a plane index);
2. the **parent** maps each plane as a read-only zero-copy numpy view over
   the same segment, verifies the checksum, rebuilds the result tree
   around the views, and ties the lease to the rebuilt result with
   ``weakref.finalize`` — the slot returns to the free list when the last
   consumer (frame cache entry, response, follower) drops the frame, which
   is reference counting by the host language instead of a second ledger.

Generation stamps make release safe against every unwind path: a slot is
owned by the generation that leased it, ``release`` with a stale
generation is a no-op, and a double release cannot free a re-leased slot.
When the arena cannot serve a lease (exhausted, or SHM is unavailable on
the platform) the worker falls back to returning the rendered results
themselves — the classic pickle path — so transport is a performance
knob, never a correctness one.  Frames are bit-identical either way.

Lifetime: the parent (pool) owns the segment and **always unlinks it** in
:meth:`SlabArena.close` — clean shutdown, broken-pool shutdown and crash
unwinding all converge there, so ``/dev/shm`` never accumulates segments.
Unlinking only removes the name; the *mapping* must outlive the arena,
because numpy views do not keep a PEP-3118 export on the segment buffer
(``ndarray.base`` pins the mmap object, but ``SharedMemory.close`` would
still unmap it under the view).  ``close`` therefore retires the mapping
— keeps it referenced for the rest of the process — whenever any view
was handed out, so handle-backed frames stay valid after the pool that
rendered them is gone.

Knob precedence (repo-wide convention): explicit ``shm_bytes`` argument >
``$REPRO_SERVE_SHM`` > the host tuning profile's ``shm_bytes`` (the
transport sweep in :mod:`repro.tune.sweep`) > the built-in 64 MiB
default; ``0`` at any level disables the arena and serves every frame
over the pickle path.
"""

from __future__ import annotations

import dataclasses
import glob
import os
import secrets
import weakref
import zlib
from multiprocessing.shared_memory import SharedMemory

import numpy as np

from ..envknobs import env_int

__all__ = [
    "ArenaExhausted",
    "DEFAULT_SHM_BYTES",
    "FrameHandle",
    "SEGMENT_PREFIX",
    "SHM_ENV",
    "ShmTransportError",
    "SlabArena",
    "active_segments",
    "export_result",
    "materialize_handle",
    "resolved_shm_bytes",
    "shm_available",
]

SHM_ENV = "REPRO_SERVE_SHM"
DEFAULT_SHM_BYTES = 64 << 20

#: Every arena segment's name starts with this, so tests and benchmarks can
#: assert "zero leaked segments" by listing ``/dev/shm``.
SEGMENT_PREFIX = "repro-serve-"

#: Mappings kept alive after :meth:`SlabArena.close` because zero-copy
#: frame views may still point into them (see ``close`` for why the
#: interpreter cannot tell us when the last view dies).  Segments land
#: here already unlinked, so this retains address space, not /dev/shm.
_RETIRED_SEGMENTS: list[SharedMemory] = []

_MAGIC = 0x52505348  # "RPSH"
_ALIGN = 64  # slot/plane alignment: cache line, and safe for any dtype
_HEADER_WORDS = 5  # magic, next generation, n_blocks, block_size, data_offset
_TARGET_BLOCK = 256 << 10  # aim for ~256 KiB blocks; clamp the block count
_MIN_BLOCKS = 8
_MAX_BLOCKS = 2048


class ArenaExhausted(RuntimeError):
    """No contiguous free block run can hold the requested lease."""


class ShmTransportError(RuntimeError):
    """A handle could not be materialized (checksum/layout mismatch)."""


def _profile_knob(name: str):
    """Tuned knob from the active host profile (lazy: tune is optional)."""
    from ..tune.profile import profile_value

    return profile_value(name)


def resolved_shm_bytes(shm_bytes: int | None = None) -> int:
    """The effective transport arena size in bytes (``0`` = pickle only).

    Precedence: explicit ``shm_bytes`` > ``$REPRO_SERVE_SHM`` > the host
    tuning profile's ``shm_bytes`` > the built-in default (64 MiB).  A
    malformed or negative env value warns and falls through; an explicit
    negative argument raises.
    """
    if shm_bytes is not None:
        if shm_bytes < 0:
            raise ValueError("shm_bytes must be non-negative (0 disables)")
        return int(shm_bytes)
    fallback = _profile_knob("shm_bytes")
    if fallback is None:
        fallback = DEFAULT_SHM_BYTES
    return env_int(SHM_ENV, int(fallback), minimum=0)


def shm_available() -> bool:
    """Whether POSIX shared memory works here (probed with a tiny segment)."""
    try:
        probe = SharedMemory(create=True, size=_ALIGN)
    except (OSError, ValueError):  # pragma: no cover - platform-dependent
        return False
    try:
        probe.unlink()
    finally:
        try:
            probe.close()
        except BufferError:  # pragma: no cover - no views on the probe
            pass
    return True


def active_segments() -> list[str]:
    """Arena segment names currently present in ``/dev/shm``.

    The leak probe for tests and benchmarks: after every pool/arena close
    this must be empty.  Returns ``[]`` on platforms without a visible
    ``/dev/shm`` (the probe is then vacuous, not failing).
    """
    return sorted(
        os.path.basename(p)
        for p in glob.glob(os.path.join("/dev/shm", f"{SEGMENT_PREFIX}*"))
    )


# ----------------------------------------------------------------------
# Arena
# ----------------------------------------------------------------------
class SlabArena:
    """A slab of shared memory with an in-segment free-list block allocator.

    The segment layout (all bookkeeping lives in shared memory, so parent
    and workers see one allocator state)::

        u64[5]          magic, next generation, n_blocks, block_size, data_offset
        u64[n_blocks]   owner      0 = free, else the generation that leased it
        u64[n_blocks]   run_len    lease length in blocks, stored at the run head
        ...             data       n_blocks * block_size bytes, 64-byte aligned

    ``lock`` must be one cross-process lock shared by every party (the
    pool creates it from its multiprocessing context and ships it to the
    workers through the executor initializer).  Allocation is a first-fit
    scan for a contiguous free run; a lease is ``(offset, generation)``
    and release validates the generation, so stale or duplicate releases
    are no-ops instead of corruption.
    """

    def __init__(self, shm: SharedMemory, lock, owner: bool) -> None:
        self._shm = shm
        self._lock = lock
        self._owner = owner
        self._closed = False
        self._views_out = False
        self._words = np.ndarray((_HEADER_WORDS,), np.uint64, buffer=shm.buf)
        if not owner and int(self._words[0]) != _MAGIC:
            raise ShmTransportError(
                f"segment {shm.name!r} is not a repro serve arena"
            )
        self.n_blocks = int(self._words[2])
        self.block_size = int(self._words[3])
        self.data_offset = int(self._words[4])
        table = _HEADER_WORDS * 8
        self._block_owner = np.ndarray(
            (self.n_blocks,), np.uint64, buffer=shm.buf, offset=table
        )
        self._run_len = np.ndarray(
            (self.n_blocks,), np.uint64, buffer=shm.buf, offset=table + 8 * self.n_blocks
        )

    # -- construction ---------------------------------------------------
    @staticmethod
    def _geometry(data_bytes: int) -> tuple[int, int, int]:
        """(n_blocks, block_size, data_offset) for a requested data size."""
        n_blocks = max(_MIN_BLOCKS, min(_MAX_BLOCKS, -(-data_bytes // _TARGET_BLOCK)))
        block_size = -(-max(data_bytes, 1) // n_blocks)
        block_size = -(-block_size // _ALIGN) * _ALIGN
        table_end = _HEADER_WORDS * 8 + 16 * n_blocks
        data_offset = -(-table_end // _ALIGN) * _ALIGN
        return n_blocks, block_size, data_offset

    @classmethod
    def create(cls, data_bytes: int, lock) -> "SlabArena":
        """Create (and own) a fresh segment sized to hold ``data_bytes``."""
        if data_bytes < 1:
            raise ValueError("data_bytes must be positive")
        n_blocks, block_size, data_offset = cls._geometry(int(data_bytes))
        total = data_offset + n_blocks * block_size
        name = f"{SEGMENT_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"
        shm = SharedMemory(name=name, create=True, size=total)
        words = np.ndarray((_HEADER_WORDS,), np.uint64, buffer=shm.buf)
        words[:] = (_MAGIC, 1, n_blocks, block_size, data_offset)
        table = _HEADER_WORDS * 8
        np.ndarray((2 * n_blocks,), np.uint64, buffer=shm.buf, offset=table)[:] = 0
        return cls(shm, lock, owner=True)

    @classmethod
    def attach(cls, name: str, lock) -> "SlabArena":
        """Attach to an existing arena segment by name (worker side)."""
        return cls(SharedMemory(name=name), lock, owner=False)

    # -- properties -----------------------------------------------------
    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def data_bytes(self) -> int:
        return self.n_blocks * self.block_size

    def ndarray(self, shape, dtype, offset: int) -> np.ndarray:
        """A numpy view over the segment at ``offset`` (no copy)."""
        a = np.ndarray(shape, np.dtype(dtype), buffer=self._shm.buf, offset=offset)
        end = offset + a.nbytes
        if offset < self.data_offset or end > self.data_offset + self.data_bytes:
            raise ShmTransportError(
                f"plane [{offset}, {end}) outside arena data region"
            )
        self._views_out = True
        return a

    # -- allocator ------------------------------------------------------
    def lease(self, nbytes: int) -> tuple[int, int]:
        """Lease a contiguous slot of at least ``nbytes``.

        Returns ``(byte offset, generation)``; raises :class:`ArenaExhausted`
        when no contiguous free run is large enough.
        """
        if self._closed:
            raise ShmTransportError("arena is closed")
        blocks = max(1, -(-int(nbytes) // self.block_size))
        if blocks > self.n_blocks:
            raise ArenaExhausted(
                f"lease of {nbytes} B exceeds the whole arena "
                f"({self.data_bytes} B)"
            )
        with self._lock:
            free = self._block_owner == 0
            if blocks == 1:
                heads = np.flatnonzero(free)
            else:
                csum = np.cumsum(free, dtype=np.int64)
                window = csum[blocks - 1 :].copy()
                window[1:] -= csum[: -blocks]
                heads = np.flatnonzero(window == blocks)
            if heads.size == 0:
                raise ArenaExhausted(
                    f"no contiguous {blocks}-block run free for a "
                    f"{nbytes} B lease ({int(free.sum())}/{self.n_blocks} "
                    f"blocks free)"
                )
            head = int(heads[0])
            generation = int(self._words[1])
            self._words[1] = generation + 1
            self._block_owner[head : head + blocks] = generation
            self._run_len[head] = blocks
        return self.data_offset + head * self.block_size, generation

    def release(self, offset: int, generation: int) -> bool:
        """Return a lease to the free list; stale generations are no-ops."""
        if self._closed:
            return False
        head, rem = divmod(offset - self.data_offset, self.block_size)
        if rem or not (0 <= head < self.n_blocks):
            return False
        with self._lock:
            if int(self._block_owner[head]) != generation:
                return False
            run = int(self._run_len[head])
            if run == 0:
                return False
            self._block_owner[head : head + run] = 0
            self._run_len[head] = 0
        return True

    def stats(self) -> dict:
        """Allocator occupancy (for ``transport_stats`` and reports)."""
        if self._closed:
            return {"segment": self.name, "closed": True}
        owner = self._block_owner
        free = int((owner == 0).sum())
        return {
            "segment": self.name,
            "data_bytes": self.data_bytes,
            "block_size": self.block_size,
            "blocks_total": self.n_blocks,
            "blocks_free": free,
            "leases_active": int((self._run_len > 0).sum()),
        }

    def register_metrics(self, registry, **labels: str) -> None:
        """Attach allocator occupancy to a :class:`repro.obs.MetricsRegistry`.

        Callback gauges over :meth:`stats` — a closed arena reads as fully
        free rather than raising at scrape time.
        """

        def _stat(key: str) -> int:
            stats = self.stats()
            return int(stats.get(key, 0))

        registry.gauge_fn("arena_blocks_total", lambda: _stat("blocks_total"), **labels)
        registry.gauge_fn("arena_blocks_free", lambda: _stat("blocks_free"), **labels)
        registry.gauge_fn("arena_leases_active", lambda: _stat("leases_active"), **labels)

    # -- lifetime -------------------------------------------------------
    def close(self) -> None:
        """Unlink (owner) and detach.  Idempotent; never raises.

        The owner unlinks *first*, unconditionally — the name leaves
        ``/dev/shm`` even when handle-backed frames are still alive.  The
        mapping needs more care: numpy views built over ``shm.buf`` do
        *not* hold a buffer export on it (numpy captures the pointer and
        releases the ``Py_buffer``), so ``SharedMemory.close`` would
        succeed and unmap the slab under any live frame view — a reliable
        segfault on the next pixel read.  If any view was ever handed out
        the segment is therefore *retired* instead of closed: a strong
        reference keeps the (already unlinked, hence invisible) mapping
        alive for the rest of the process, which is the price of zero-copy
        without per-view export tracking.  Arenas that never produced a
        view unmap immediately.
        """
        if self._closed:
            return
        self._closed = True
        if self._owner:
            try:
                self._shm.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass
        self._words = self._block_owner = self._run_len = None
        if self._views_out:
            _RETIRED_SEGMENTS.append(self._shm)
        else:
            try:
                self._shm.close()
            except (BufferError, OSError):  # pragma: no cover
                pass

    def __del__(self):  # pragma: no cover - backstop, close() is the API
        try:
            self.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# Frame export / materialization
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class _PlaneRef:
    """Skeleton leaf: 'this array lives at plane ``index`` of the handle'."""

    index: int


@dataclasses.dataclass(frozen=True)
class _PlaneSpec:
    offset: int  # relative to the handle's slot offset
    shape: tuple
    dtype: str


@dataclasses.dataclass(frozen=True)
class FrameHandle:
    """The small descriptor a worker returns instead of frame arrays.

    ``skeleton`` is the rendered result tree with every numpy array
    replaced by a :class:`_PlaneRef`; everything else (scalars, spec
    dataclasses, dict keys) pickles as-is.  ``checksum`` is a CRC-32 over
    the plane bytes in spec order — the parent verifies it at map time, so
    an allocator bug or torn slot surfaces as :class:`ShmTransportError`,
    never as silently wrong pixels.
    """

    segment: str
    offset: int
    generation: int
    nbytes: int
    checksum: int
    planes: tuple
    skeleton: object


def _map_leaves(obj, leaf_type, fn):
    """Rebuild ``obj`` with ``fn`` applied to every ``leaf_type`` leaf.

    Walks dataclasses (rebuilt via ``dataclasses.replace``), dicts, lists
    and tuples (incl. namedtuples); anything else passes through untouched.
    Subtrees without leaves are returned by identity, so shared structure
    stays shared.
    """
    if isinstance(obj, leaf_type):
        return fn(obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        changed = {}
        for f in dataclasses.fields(obj):
            value = getattr(obj, f.name)
            new = _map_leaves(value, leaf_type, fn)
            if new is not value:
                changed[f.name] = new
        return dataclasses.replace(obj, **changed) if changed else obj
    if isinstance(obj, dict):
        items = {k: _map_leaves(v, leaf_type, fn) for k, v in obj.items()}
        return items if any(items[k] is not obj[k] for k in obj) else obj
    if isinstance(obj, (list, tuple)):
        items = [_map_leaves(v, leaf_type, fn) for v in obj]
        if all(new is old for new, old in zip(items, obj)):
            return obj
        if isinstance(obj, tuple):
            cls = type(obj)
            return cls(*items) if hasattr(obj, "_fields") else cls(items)
        return items
    return obj


def export_result(arena: SlabArena, result) -> FrameHandle:
    """Copy every array of ``result`` into a leased slot (worker side).

    Returns the :class:`FrameHandle` describing the slot; raises
    :class:`ArenaExhausted` when the arena has no room (the caller then
    falls back to returning ``result`` itself over the pickle path).
    Arrays referenced from several places in the tree are stored once.
    """
    planes: list[np.ndarray] = []
    memo: dict[int, _PlaneRef] = {}

    def capture(a: np.ndarray) -> _PlaneRef:
        ref = memo.get(id(a))
        if ref is None:
            if a.dtype.hasobject:
                raise ShmTransportError("object arrays cannot ride shared memory")
            ref = _PlaneRef(len(planes))
            memo[id(a)] = ref
            planes.append(np.ascontiguousarray(a))
        return ref

    skeleton = _map_leaves(result, np.ndarray, capture)
    offsets: list[int] = []
    cursor = 0
    for a in planes:
        cursor = -(-cursor // _ALIGN) * _ALIGN
        offsets.append(cursor)
        cursor += a.nbytes
    offset, generation = arena.lease(max(cursor, 1))
    try:
        checksum = 0
        specs = []
        for a, rel in zip(planes, offsets):
            view = arena.ndarray(a.shape, a.dtype, offset + rel)
            np.copyto(view, a, casting="no")
            checksum = zlib.crc32(view, checksum)
            specs.append(_PlaneSpec(rel, tuple(a.shape), a.dtype.str))
        return FrameHandle(
            segment=arena.name,
            offset=offset,
            generation=generation,
            nbytes=cursor,
            checksum=checksum,
            planes=tuple(specs),
            skeleton=skeleton,
        )
    except BaseException:
        arena.release(offset, generation)
        raise


def materialize_handle(arena: SlabArena, handle: FrameHandle):
    """Rebuild a result around zero-copy views of ``handle``'s slot (parent).

    The plane checksum is verified before any view escapes.  The lease is
    tied to the rebuilt result object: when the last reference to it drops
    (cache eviction + response teardown), ``weakref.finalize`` returns the
    slot to the free list — host-language reference counting is the
    arena's refcount.
    """
    if handle.segment != arena.name:
        raise ShmTransportError(
            f"handle for segment {handle.segment!r} offered to {arena.name!r}"
        )
    views: list[np.ndarray] = []
    checksum = 0
    for spec in handle.planes:
        view = arena.ndarray(spec.shape, spec.dtype, handle.offset + spec.offset)
        checksum = zlib.crc32(view, checksum)
        view.flags.writeable = False
        views.append(view)
    if checksum != handle.checksum:
        arena.release(handle.offset, handle.generation)
        raise ShmTransportError(
            f"plane checksum mismatch materializing {handle.segment!r} "
            f"@{handle.offset} (gen {handle.generation})"
        )
    result = _map_leaves(handle.skeleton, _PlaneRef, lambda ref: views[ref.index])
    try:
        weakref.finalize(result, arena.release, handle.offset, handle.generation)
    except TypeError:  # pragma: no cover - result trees are dataclasses
        # Non-weakrefable result root: hold the lease until arena close.
        pass
    return result
