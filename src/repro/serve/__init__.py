"""The async foveated serve subsystem (the heavy-traffic north star's tier).

The first layer above the render dispatchers that treats frames as
*requests* from many concurrent clients:

- :mod:`repro.serve.regions` — deterministic gaze-region quantization on
  an eccentricity-aware polar grid, plus :class:`FrameCache`, the
  byte-budgeted LRU of rendered frames keyed on (model fingerprint,
  camera, gaze region, config);
- :mod:`repro.serve.scheduler` — :class:`ServeLoop`, the asyncio
  micro-batching scheduler coalescing pending requests into
  :func:`repro.foveation.render_foveated_batch` calls, with per-request
  deadlines (EDF batching, drop-or-degrade under pressure) and a
  two-class queue where real misses preempt speculative prefetches;
- :mod:`repro.serve.predictor` — :class:`GazePredictor`, the
  constant-velocity / saccade-aware scanpath extrapolator behind
  speculative gaze-region prefetch;
- :mod:`repro.serve.oracle` — the exhaustive batch-schedule oracle on
  tiny traces (≤8 requests) the greedy scheduler is compared against;
- :mod:`repro.serve.workers` — :class:`RenderWorkerPool`, the process
  pool that renders pose groups off the event loop (``workers > 0``):
  stateful workers hold the model and a private view cache, only
  ``(camera, gazes)`` and frames cross the pipe, frames stay
  bit-identical to inline rendering;
- :mod:`repro.serve.shm` — :class:`SlabArena` and :class:`FrameHandle`,
  the zero-copy shared-memory frame transport under the worker pool:
  workers write frame planes into leased arena slots and ship tiny
  handles; the parent maps read-only views and leases free by reference
  counting (``shm_bytes`` knob, automatic pickle fallback);
- :mod:`repro.serve.sharding` — :class:`ShardRouter` and
  :class:`HashRing`: N serve shards on a virtual-node consistent-hash
  ring over ``(camera fp, gaze region)``, disjoint hot cache ranges per
  shard, ~1/(N+1) key movement on scale-out;
- :mod:`repro.serve.workload` / :mod:`repro.serve.replay` — seeded
  multi-client trace generation (Zipf pose popularity × gaze scanpaths)
  and the deterministic replay harness — single-loop and multi-shard —
  that measures throughput, latency percentiles, hit rate, batch sizes,
  per-shard load and imbalance against the naive per-request baseline.

See ``src/repro/serve/README.md`` for the request lifecycle and the cache
key contract; ``repro.cli serve-sim`` and
``benchmarks/bench_serve_throughput.py`` drive the whole tier end to end.
"""

from .regions import (
    FrameCache,
    GazeGridSpec,
    GazeRegionKey,
    foveated_model_fingerprint,
    gaze_polar,
    polar_gaze,
    quantize_gaze,
    region_bounds,
    region_center,
    resolved_cache_bytes,
    ring_area_deg2,
    ring_edges,
    ring_width_deg,
)
from .oracle import (
    MAX_ORACLE_REQUESTS,
    OracleCostModel,
    OracleRequest,
    ScheduleOutcome,
    exhaustive_schedule,
    greedy_schedule,
    oracle_problem_from_trace,
    schedule_gap,
    simulate_schedule,
)
from .predictor import GazePredictor, PredictorConfig
from .replay import (
    ReplayReport,
    frames_checksum,
    replay_naive,
    replay_trace,
    replay_trace_sharded,
)
from .scheduler import (
    FrameRequest,
    FrameResponse,
    ServeConfig,
    ServeLoop,
    request_cache_key,
    resolved_batch_budget,
    resolved_batch_deadline,
)
from .sharding import HashRing, ShardRouter, default_shards
from .shm import (
    ArenaExhausted,
    FrameHandle,
    ShmTransportError,
    SlabArena,
    active_segments,
    resolved_shm_bytes,
    shm_available,
)
from .workers import (
    BrokenProcessPool,
    RenderWorkerPool,
    StaleWorkerModelError,
    default_workers,
    resolved_worker_viewcache,
)
from .workload import (
    ServeTrace,
    TraceRequest,
    WorkloadSpec,
    generate_serve_trace,
    pose_request_counts,
    zipf_weights,
)

__all__ = [
    "ArenaExhausted",
    "BrokenProcessPool",
    "FrameCache",
    "FrameHandle",
    "FrameRequest",
    "FrameResponse",
    "GazeGridSpec",
    "GazePredictor",
    "GazeRegionKey",
    "HashRing",
    "MAX_ORACLE_REQUESTS",
    "OracleCostModel",
    "OracleRequest",
    "PredictorConfig",
    "RenderWorkerPool",
    "ReplayReport",
    "ScheduleOutcome",
    "ServeConfig",
    "ServeLoop",
    "ServeTrace",
    "ShardRouter",
    "ShmTransportError",
    "SlabArena",
    "StaleWorkerModelError",
    "TraceRequest",
    "WorkloadSpec",
    "active_segments",
    "default_shards",
    "default_workers",
    "exhaustive_schedule",
    "foveated_model_fingerprint",
    "frames_checksum",
    "gaze_polar",
    "generate_serve_trace",
    "greedy_schedule",
    "oracle_problem_from_trace",
    "polar_gaze",
    "pose_request_counts",
    "quantize_gaze",
    "region_bounds",
    "region_center",
    "replay_naive",
    "replay_trace",
    "replay_trace_sharded",
    "request_cache_key",
    "resolved_batch_budget",
    "resolved_batch_deadline",
    "resolved_cache_bytes",
    "resolved_shm_bytes",
    "resolved_worker_viewcache",
    "shm_available",
    "ring_area_deg2",
    "ring_edges",
    "ring_width_deg",
    "schedule_gap",
    "simulate_schedule",
    "zipf_weights",
]
