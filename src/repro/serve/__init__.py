"""The async foveated serve subsystem (the heavy-traffic north star's tier).

The first layer above the render dispatchers that treats frames as
*requests* from many concurrent clients:

- :mod:`repro.serve.regions` — deterministic gaze-region quantization on
  an eccentricity-aware polar grid, plus :class:`FrameCache`, the
  byte-budgeted LRU of rendered frames keyed on (model fingerprint,
  camera, gaze region, config);
- :mod:`repro.serve.scheduler` — :class:`ServeLoop`, the asyncio
  micro-batching scheduler coalescing pending requests into
  :func:`repro.foveation.render_foveated_batch` calls;
- :mod:`repro.serve.workload` / :mod:`repro.serve.replay` — seeded
  multi-client trace generation (Zipf pose popularity × gaze scanpaths)
  and the deterministic replay harness that measures throughput, latency
  percentiles, hit rate and batch sizes against the naive per-request
  baseline.

See ``src/repro/serve/README.md`` for the request lifecycle and the cache
key contract; ``repro.cli serve-sim`` and
``benchmarks/bench_serve_throughput.py`` drive the whole tier end to end.
"""

from .regions import (
    FrameCache,
    GazeGridSpec,
    GazeRegionKey,
    foveated_model_fingerprint,
    gaze_polar,
    polar_gaze,
    quantize_gaze,
    region_bounds,
    region_center,
    ring_area_deg2,
    ring_edges,
    ring_width_deg,
)
from .replay import ReplayReport, frames_checksum, replay_naive, replay_trace
from .scheduler import (
    FrameRequest,
    FrameResponse,
    ServeConfig,
    ServeLoop,
)
from .workload import (
    ServeTrace,
    TraceRequest,
    WorkloadSpec,
    generate_serve_trace,
    pose_request_counts,
    zipf_weights,
)

__all__ = [
    "FrameCache",
    "FrameRequest",
    "FrameResponse",
    "GazeGridSpec",
    "GazeRegionKey",
    "ReplayReport",
    "ServeConfig",
    "ServeLoop",
    "ServeTrace",
    "TraceRequest",
    "WorkloadSpec",
    "foveated_model_fingerprint",
    "frames_checksum",
    "gaze_polar",
    "generate_serve_trace",
    "polar_gaze",
    "pose_request_counts",
    "quantize_gaze",
    "region_bounds",
    "region_center",
    "replay_naive",
    "replay_trace",
    "ring_area_deg2",
    "ring_edges",
    "ring_width_deg",
    "zipf_weights",
]
