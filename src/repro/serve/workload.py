"""Multi-client serve workloads: who looks where, when.

Generates the request stream the serve tier is measured on: ``n_clients``
clients, each dwelling on poses drawn from a **Zipf-skewed popularity**
distribution over a shared pose set (a few poses are hot, the tail is
cold — the regime where an application-level cache pays for itself) and
sweeping a human gaze scanpath (:func:`repro.scenes.gaze_trajectory`:
fixations with drift, ballistic saccades) across each dwell.

Everything is a pure function of the spec's seed: two calls produce the
same :class:`ServeTrace` request for request, which is what makes replay
comparisons (batched+cached vs naive) apples-to-apples.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..scenes.gaze import GazeModel, gaze_trajectory
from ..splat.camera import Camera


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """Shape of a multi-client trace (all fields drive the same RNG seed).

    ``zipf_s`` is the popularity exponent: pose ``k`` (0-based rank) is
    drawn with probability ``∝ 1/(k+1)^zipf_s``.  ``pose_dwell_frames``
    bounds how long a client stays on one pose before re-drawing — dwells
    give the trace the temporal locality real viewers have.

    ``refresh_hz`` models the clients' display refresh: when set, every
    request is stamped with a ``deadline_s`` frame budget of one refresh
    period (``1/refresh_hz``), which the serve scheduler's deadline policy
    consumes.  ``None`` (default) leaves requests best-effort.
    """

    n_clients: int = 4
    frames_per_client: int = 32
    fps: float = 30.0
    zipf_s: float = 1.1
    pose_dwell_frames: tuple[int, int] = (4, 12)
    gaze_model: GazeModel = GazeModel()
    refresh_hz: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ValueError("n_clients must be at least 1")
        if self.frames_per_client < 1:
            raise ValueError("frames_per_client must be at least 1")
        lo, hi = self.pose_dwell_frames
        if lo < 1 or hi < lo:
            raise ValueError("pose_dwell_frames must be 1 <= lo <= hi")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be non-negative")
        if self.refresh_hz is not None and self.refresh_hz <= 0:
            raise ValueError("refresh_hz must be positive")


@dataclasses.dataclass(frozen=True)
class TraceRequest:
    """One timestamped request: client ``client_id`` wants pose ``pose_index``
    with its gaze at ``gaze`` at simulated time ``time_s``.

    ``deadline_s`` is the request's frame budget in seconds from
    submission (``None`` = best-effort), stamped from the workload's
    ``refresh_hz`` when set.
    """

    time_s: float
    client_id: int
    frame_index: int
    pose_index: int
    gaze: tuple[float, float]
    deadline_s: float | None = None


@dataclasses.dataclass
class ServeTrace:
    """A replayable workload: the shared pose set + the time-sorted requests."""

    cameras: list[Camera]
    requests: list[TraceRequest]
    spec: WorkloadSpec

    @property
    def n_requests(self) -> int:
        return len(self.requests)

    def camera_of(self, request: TraceRequest) -> Camera:
        return self.cameras[request.pose_index]


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalized Zipf popularity of ``n`` ranks: ``p(k) ∝ 1/(k+1)^s``."""
    if n < 1:
        raise ValueError("need at least one rank")
    weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), s)
    return weights / weights.sum()


def generate_serve_trace(
    cameras: list[Camera],
    spec: WorkloadSpec | None = None,
) -> ServeTrace:
    """Build the deterministic multi-client request stream over ``cameras``.

    Pose rank equals pose index (``cameras[0]`` is the hottest), so tests
    and reports can reason about popularity without carrying a permutation
    around.  Each client runs its own gaze scanpath (seeded per client) and
    emits one request per frame at ``spec.fps`` with a per-client phase
    offset; the merged stream is sorted by time with ``(client, frame)`` as
    the deterministic tie-break.
    """
    spec = spec or WorkloadSpec()
    if not cameras:
        raise ValueError("need at least one camera")
    weights = zipf_weights(len(cameras), spec.zipf_s)
    width, height = cameras[0].width, cameras[0].height
    deadline_s = 1.0 / spec.refresh_hz if spec.refresh_hz is not None else None

    requests: list[TraceRequest] = []
    for client in range(spec.n_clients):
        rng = np.random.default_rng(spec.seed + 7919 * client)
        gazes = gaze_trajectory(
            width,
            height,
            spec.frames_per_client,
            fps=spec.fps,
            model=spec.gaze_model,
            seed=spec.seed + 104729 * client,
        )
        phase = float(rng.uniform(0.0, 1.0 / spec.fps))
        frame = 0
        while frame < spec.frames_per_client:
            pose = int(rng.choice(len(cameras), p=weights))
            lo, hi = spec.pose_dwell_frames
            dwell = int(rng.integers(lo, hi + 1))
            for _ in range(min(dwell, spec.frames_per_client - frame)):
                requests.append(
                    TraceRequest(
                        time_s=phase + frame / spec.fps,
                        client_id=client,
                        frame_index=frame,
                        pose_index=pose,
                        gaze=(float(gazes[frame, 0]), float(gazes[frame, 1])),
                        deadline_s=deadline_s,
                    )
                )
                frame += 1
    requests.sort(key=lambda r: (r.time_s, r.client_id, r.frame_index))
    return ServeTrace(cameras=list(cameras), requests=requests, spec=spec)


def pose_request_counts(trace: ServeTrace) -> np.ndarray:
    """How many requests each pose received, ``(n_poses,)`` (skew checks)."""
    counts = np.zeros(len(trace.cameras), dtype=np.int64)
    for request in trace.requests:
        counts[request.pose_index] += 1
    return counts
