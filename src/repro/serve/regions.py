"""Gaze-region quantization and the serve tier's rendered-frame cache.

A foveated frame is a function of *where the user looks*, but two gazes a
fraction of a degree apart produce perceptually (and, for coarse tile
grids, often literally) interchangeable frames.  The serve tier therefore
keys cached frames not on the raw gaze pixel but on a **gaze region**: a
deterministic quantization of the gaze point onto an eccentricity-aware
polar grid.

The grid follows the same visual-acuity falloff the HVS model uses
(:class:`repro.hvs.eccentricity.PoolingModel`): ring widths grow with the
ring's eccentricity from the screen centre, so cells are fine where foveal
placement matters (a small gaze move changes which tiles are foveal) and
coarse in the periphery (where the region layout barely moves).  Each ring
is split into a fixed number of angular sectors; ring 0 — the central
foveal disc — is a single cell.

:class:`FrameCache` sits on top: an LRU over rendered
:class:`~repro.foveation.FRRenderResult` frames keyed on
``(foveated-model fingerprint, camera fingerprint, gaze region, render
config)`` with a byte budget, built from the same
:mod:`repro.splat.cachekey` helpers as :class:`repro.splat.ViewCache` so
the two caches cannot drift on fingerprint semantics.
"""

from __future__ import annotations

import dataclasses
import functools

import numpy as np

from ..envknobs import env_int
from ..foveation.hierarchy import FoveatedModel
from ..obs.metrics import Counter, MetricsRegistry
from ..hvs.eccentricity import PoolingModel
from ..splat.cachekey import (
    camera_fingerprint,
    content_fingerprint,
    model_fingerprint,
    render_config_fingerprint,
)
from ..splat.camera import Camera
from ..splat.renderer import RenderConfig

# A gaze pixel's ray is always strictly less than 90° off the optical axis
# (`atan` of a finite tangent-plane radius), so rings are generated up to
# this bound and no further: every ring :func:`quantize_gaze` can return
# has its inner edge below it, which keeps the tangent-plane inverse
# (:func:`polar_gaze`) well-defined for representative in-ring points.
MAX_GAZE_ECC_DEG = 90.0


@dataclasses.dataclass(frozen=True)
class GazeGridSpec:
    """The eccentricity-aware polar grid gaze points are quantized onto.

    ``ring_gain`` scales the HVS pooling diameter into a ring width: ring
    ``i`` starting at eccentricity ``e`` is ``ring_gain · d(e)`` degrees
    wide, with ``d`` the pooling-diameter falloff — so ring widths (and
    per-cell areas) grow monotonically toward the periphery.
    ``n_sectors`` angular sectors split every ring except the central
    foveal disc (ring 0), which is always one cell.
    """

    ring_gain: float = 2.0
    n_sectors: int = 12
    pooling: PoolingModel = PoolingModel()

    def __post_init__(self) -> None:
        if self.ring_gain <= 0:
            raise ValueError("ring_gain must be positive")
        if self.n_sectors < 1:
            raise ValueError("n_sectors must be at least 1")


@dataclasses.dataclass(frozen=True)
class GazeRegionKey:
    """One cell of the gaze grid: ring index + angular sector (hashable)."""

    ring: int
    sector: int


@functools.lru_cache(maxsize=64)
def _ring_edges(spec: GazeGridSpec, max_ecc_deg: float) -> np.ndarray:
    edges = [0.0]
    while edges[-1] < max_ecc_deg:
        edges.append(edges[-1] + spec.ring_gain * float(spec.pooling.diameter_deg(edges[-1])))
    out = np.asarray(edges)
    out.setflags(write=False)  # the cached array is shared across callers
    return out


def ring_edges(spec: GazeGridSpec, max_ecc_deg: float = MAX_GAZE_ECC_DEG) -> np.ndarray:
    """Ring boundary eccentricities ``[0, e_1, e_2, ...]`` covering ``max_ecc_deg``.

    Boundaries are generated iteratively — each ring is ``ring_gain ·
    d(inner edge)`` degrees wide — so the sequence is a pure function of
    the spec: quantization is deterministic across processes and sessions.
    Memoized per (spec, bound): every request quantizes at least one gaze,
    and the grid never changes under a spec.  The returned array is
    read-only (shared).
    """
    return _ring_edges(spec, max_ecc_deg)


def ring_width_deg(spec: GazeGridSpec, ring: int) -> float:
    """Width of ring ``ring`` in degrees (strictly increasing with ``ring``)."""
    if ring < 0:
        raise ValueError("ring must be non-negative")
    edges = ring_edges(spec)
    if ring + 1 >= edges.shape[0]:
        raise ValueError(f"ring {ring} lies beyond {MAX_GAZE_ECC_DEG} degrees")
    return float(edges[ring + 1] - edges[ring])


def ring_area_deg2(spec: GazeGridSpec, ring: int) -> float:
    """Solid area of ring ``ring`` in square degrees (flat-field approximation).

    ``π(e_out² − e_in²)`` — strictly increasing with the ring index, which
    is the "coarser in the periphery" contract the property tests pin.
    """
    edges = ring_edges(spec)
    if ring + 1 >= edges.shape[0]:
        raise ValueError(f"ring {ring} lies beyond {MAX_GAZE_ECC_DEG} degrees")
    e_in, e_out = float(edges[ring]), float(edges[ring + 1])
    return float(np.pi * (e_out * e_out - e_in * e_in))


def gaze_polar(camera: Camera, gaze: tuple[float, float] | None) -> tuple[float, float]:
    """A gaze pixel as ``(eccentricity°, angle rad)`` from the screen centre.

    Uses the same visual-angle geometry as
    :meth:`Camera.pixel_eccentricity`: the eccentricity is the angle
    between the gaze ray and the optical axis.  ``None`` (centre gaze) maps
    to ``(0, 0)``.
    """
    if gaze is None:
        return 0.0, 0.0
    gx = (float(gaze[0]) - camera.cx) / camera.fx
    gy = (float(gaze[1]) - camera.cy) / camera.fy
    ecc = float(np.rad2deg(np.arctan(np.hypot(gx, gy))))
    angle = float(np.arctan2(gy, gx))
    return ecc, angle


def polar_gaze(camera: Camera, ecc_deg: float, angle: float) -> tuple[float, float]:
    """Inverse of :func:`gaze_polar`: ``(ecc°, angle)`` → gaze pixel ``(x, y)``."""
    r = np.tan(np.deg2rad(ecc_deg))
    gx = r * np.cos(angle)
    gy = r * np.sin(angle)
    return (float(gx * camera.fx + camera.cx), float(gy * camera.fy + camera.cy))


def quantize_gaze(
    camera: Camera,
    gaze: tuple[float, float] | None,
    spec: GazeGridSpec | None = None,
) -> GazeRegionKey:
    """The grid cell a gaze point falls in (deterministic).

    Ring from the gaze's eccentricity against the spec's ring edges, sector
    from its polar angle; ring 0 is a single cell (sector 0) so the
    angularly-ambiguous neighbourhood of the exact centre quantizes
    stably.
    """
    spec = spec or GazeGridSpec()
    ecc, angle = gaze_polar(camera, gaze)
    edges = ring_edges(spec)
    ring = int(np.searchsorted(edges, min(ecc, MAX_GAZE_ECC_DEG), side="right") - 1)
    ring = min(ring, edges.shape[0] - 2)
    if ring == 0:
        return GazeRegionKey(ring=0, sector=0)
    sector = int((angle + np.pi) / (2.0 * np.pi) * spec.n_sectors) % spec.n_sectors
    return GazeRegionKey(ring=ring, sector=sector)


def region_bounds(
    spec: GazeGridSpec, key: GazeRegionKey
) -> tuple[float, float, float, float]:
    """``(ecc_lo, ecc_hi, angle_lo, angle_hi)`` of a cell, degrees/radians.

    Ring 0 spans the full circle.
    """
    edges = ring_edges(spec)
    if key.ring + 1 >= edges.shape[0]:
        raise ValueError(f"ring {key.ring} lies beyond {MAX_GAZE_ECC_DEG} degrees")
    ecc_lo, ecc_hi = float(edges[key.ring]), float(edges[key.ring + 1])
    if key.ring == 0:
        return ecc_lo, ecc_hi, -np.pi, np.pi
    sector_width = 2.0 * np.pi / spec.n_sectors
    angle_lo = -np.pi + key.sector * sector_width
    return ecc_lo, ecc_hi, angle_lo, angle_lo + sector_width


def region_center(
    camera: Camera, spec: GazeGridSpec, key: GazeRegionKey
) -> tuple[float, float]:
    """A gaze pixel interior to a cell (quantizes back to ``key``).

    The outermost ring's generated outer edge can overshoot 90° (ring
    widths are added whole); its representative eccentricity is clamped
    below :data:`MAX_GAZE_ECC_DEG` so the tangent-plane inverse stays on
    the gaze's side of the image plane — any ring reachable by
    :func:`quantize_gaze` has its inner edge below the bound, so the
    midpoint remains interior.
    """
    ecc_lo, ecc_hi, angle_lo, angle_hi = region_bounds(spec, key)
    ecc = 0.5 * (ecc_lo + min(ecc_hi, MAX_GAZE_ECC_DEG))
    return polar_gaze(camera, ecc, 0.5 * (angle_lo + angle_hi))


# ----------------------------------------------------------------------
# Frame cache
# ----------------------------------------------------------------------
def foveated_model_fingerprint(fmodel: FoveatedModel) -> tuple:
    """Content fingerprint of everything a foveated frame reads from the model.

    The base model's parameters (via the shared
    :func:`repro.splat.cachekey.model_fingerprint`) plus the hierarchy:
    quality bounds, the multi-versioned per-level tables, and the region
    layout.  Mutating any of them — e.g. finetuning a level mid-serve —
    changes the fingerprint, so no cache keyed on it can serve stale
    frames.
    """
    return (
        model_fingerprint(fmodel.base),
        content_fingerprint(
            fmodel.quality_bounds, fmodel.mv_opacity_logits, fmodel.mv_sh_dc
        ),
        tuple(fmodel.layout.boundaries_deg),
        fmodel.layout.blend_band_deg,
    )


def result_nbytes(obj) -> int:
    """Approximate in-memory footprint of a cached result (array bytes).

    This is *true plane nbytes*: a handle-backed frame from the worker
    pool's shared-memory transport (:mod:`repro.serve.shm`) is a tree of
    zero-copy views over the arena, and each view's ``nbytes`` is the
    plane's real size — so the cache budget charges shm-resident frames
    exactly what they pin, the same as heap-resident ones.
    """
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return sum(
            result_nbytes(getattr(obj, f.name)) for f in dataclasses.fields(obj)
        )
    if isinstance(obj, dict):
        return sum(result_nbytes(v) for v in obj.values())
    if isinstance(obj, (list, tuple)):
        return sum(result_nbytes(v) for v in obj)
    return 0


DEFAULT_FRAME_CACHE_BYTES = 64 << 20
FRAME_CACHE_BYTES_ENV = "REPRO_FRAME_CACHE_BYTES"


def _profile_knob(name: str):
    """Tuned knob from the active host profile (lazy: tune is optional)."""
    from ..tune.profile import profile_value

    return profile_value(name)


def resolved_cache_bytes(max_bytes: int | None = None) -> int | None:
    """The effective frame-cache byte budget (``None`` = cache disabled).

    Precedence: explicit ``max_bytes`` > ``$REPRO_FRAME_CACHE_BYTES`` >
    the host tuning profile's ``cache_max_bytes`` (:mod:`repro.tune`) >
    the built-in default (64 MiB).  An env value ``<= 0`` disables the
    cache (returns ``None``); a malformed env value warns and falls
    through to the profile-or-default.
    """
    if max_bytes is not None:
        return int(max_bytes)
    fallback = _profile_knob("cache_max_bytes") or DEFAULT_FRAME_CACHE_BYTES
    value = env_int(FRAME_CACHE_BYTES_ENV, int(fallback))
    return None if value <= 0 else value


class FrameCache:
    """Byte-budgeted LRU of rendered foveated frames, keyed by gaze region.

    Keys are ``(foveated-model fingerprint, camera fingerprint, gaze
    region, render-config fingerprint)`` — see :func:`frame_key`.  A hit
    returns the frame rendered for an *earlier gaze in the same region*
    (the LOD-cache approximation the grid granularity controls); an exact
    key match is required, so a mutated model or a different backend never
    serves a stale frame.

    Eviction is LRU under ``max_bytes`` of cached array payload (a hit
    refreshes recency); ``hits`` / ``misses`` / ``evictions`` and
    :meth:`stats` make behaviour observable for benchmarks and the CLI.
    """

    def __init__(
        self,
        max_bytes: int | None = None,
        spec: GazeGridSpec | None = None,
    ) -> None:
        if max_bytes is None:
            max_bytes = resolved_cache_bytes()
            if max_bytes is None:
                raise ValueError(
                    f"frame cache disabled by {FRAME_CACHE_BYTES_ENV} <= 0; "
                    "serve without one via ServeConfig(cache_max_bytes=None) "
                    "or pass an explicit max_bytes"
                )
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = max_bytes
        self.spec = spec or GazeGridSpec()
        # Int-like metric objects (repro.obs) so existing `cache.hits += 1`
        # call sites and int comparisons keep working while a registry can
        # attach to the live values via register_metrics().
        self.hits = Counter()
        self.misses = Counter()
        self.evictions = Counter()
        self.current_bytes = 0
        self._entries: dict[tuple, tuple[object, int]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def key(
        self,
        fmodel: FoveatedModel,
        camera: Camera,
        gaze: tuple[float, float] | None,
        config: RenderConfig | None = None,
        model_fp: tuple | None = None,
    ) -> tuple:
        """The cache key of one request.

        ``model_fp`` lets a caller that knows its model cannot have
        mutated since it last fingerprinted it (e.g. a replay over a
        frozen model) skip the O(parameter-bytes) hash.  The serve loop
        deliberately does *not* use it: hashing per request is the
        mechanism that detects in-place model mutation, so no stale frame
        is ever served.
        """
        config = config or RenderConfig()
        if model_fp is None:
            model_fp = foveated_model_fingerprint(fmodel)
        return (
            model_fp,
            camera_fingerprint(camera),
            quantize_gaze(camera, gaze, self.spec),
            render_config_fingerprint(config),
        )

    def get(self, key: tuple):
        """The cached frame for ``key`` (refreshing recency), or ``None``."""
        result = self.peek(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def peek(self, key: tuple):
        """Like :meth:`get` but counter-neutral (recency still refreshes).

        The scheduler re-checks queued requests against the cache right
        before rendering; that second look must not double-count the miss
        already recorded at submit time.
        """
        entry = self._entries.pop(key, None)
        if entry is None:
            return None
        self._entries[key] = entry
        return entry[0]

    def contains(self, key: tuple) -> bool:
        """Membership test that is both counter- and recency-neutral.

        The scheduler's prefetch dedup probes the cache for keys it merely
        *considers* speculating on; those probes must neither count as
        lookups nor promote entries in the LRU order.
        """
        return key in self._entries

    def degraded_alternate(self, key: tuple):
        """The best cached frame of the same pose at *another* gaze region.

        The degrade policy's lookup: when a deadline-pressed request cannot
        render in time, a frame rendered for a neighbouring region of the
        same (model, camera, config) still covers the requested gaze — just
        in that frame's peripheral, coarser LOD.  Candidates share every
        key element except the gaze region; the nearest region wins (ring
        distance first, then circular sector distance, then a deterministic
        index tie-break).  Counter- and recency-neutral like
        :meth:`contains` — a degraded serve is neither a hit nor a miss of
        the exact key, and must not perturb LRU order.  Returns the cached
        frame or ``None``.
        """
        model_fp, camera_fp, region, config_fp = key
        n_sectors = self.spec.n_sectors
        best = None
        best_rank: tuple | None = None
        for other, (result, _) in self._entries.items():
            if (
                other[0] != model_fp
                or other[1] != camera_fp
                or other[3] != config_fp
            ):
                continue
            other_region = other[2]
            if other_region == region:
                continue  # the exact key is a hit, not a degrade
            ring_d = abs(other_region.ring - region.ring)
            if other_region.ring == 0 or region.ring == 0:
                # The foveal disc has a single sector spanning all angles.
                sector_d = 0
            else:
                raw = abs(other_region.sector - region.sector)
                sector_d = min(raw, n_sectors - raw)
            rank = (ring_d, sector_d, other_region.ring, other_region.sector)
            if best_rank is None or rank < best_rank:
                best, best_rank = result, rank
        return best

    def put(self, key: tuple, result) -> None:
        """Insert a rendered frame, evicting LRU entries past the budget.

        A frame larger than the whole budget is not cached (storing it
        would evict everything for an entry that can never be amortized).

        Handle-backed frames (zero-copy views over the worker pool's
        shared-memory arena) are stored as-is — no materializing copy;
        evicting one drops the cache's reference, and the arena slot frees
        when the last consumer lets go (the lease is tied to the result by
        ``weakref.finalize``).
        """
        nbytes = result_nbytes(result)
        if nbytes > self.max_bytes:
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self.current_bytes -= old[1]
        self._entries[key] = (result, nbytes)
        self.current_bytes += nbytes
        while self.current_bytes > self.max_bytes and len(self._entries) > 1:
            # Dict order is insertion order and every access re-inserts, so
            # the first key is the LRU entry (same discipline as ViewCache).
            _, evicted_bytes = self._entries.pop(next(iter(self._entries)))
            self.current_bytes -= evicted_bytes
            self.evictions += 1

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Counters snapshot for reports: hits/misses/evictions/bytes/entries.

        A thin view over the same :class:`~repro.obs.metrics.Counter`
        objects :meth:`register_metrics` exposes — plain ints here, so
        the dict stays JSON-safe and cannot drift from the registry.
        """
        return {
            "hits": int(self.hits),
            "misses": int(self.misses),
            "evictions": int(self.evictions),
            "entries": len(self._entries),
            "bytes": self.current_bytes,
            "hit_rate": self.hit_rate,
        }

    def register_metrics(self, registry: MetricsRegistry, **labels: str) -> None:
        """Attach this cache's live counters/gauges onto ``registry``.

        The counters are the very objects :meth:`get`/:meth:`put` mutate
        (no copies, no polling), plus callback gauges for occupancy.
        """
        registry.register("frame_cache_hits", self.hits, help="frame-cache exact-key hits", **labels)
        registry.register("frame_cache_misses", self.misses, help="frame-cache misses", **labels)
        registry.register(
            "frame_cache_evictions", self.evictions, help="frame-cache LRU evictions", **labels
        )
        registry.gauge_fn(
            "frame_cache_bytes", lambda: self.current_bytes, help="cached frame payload bytes", **labels
        )
        registry.gauge_fn(
            "frame_cache_entries", lambda: len(self._entries), help="cached frame count", **labels
        )
