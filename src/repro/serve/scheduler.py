"""The async serve loop: request coalescing over ``render_foveated_batch``.

The first layer above the render dispatchers that treats frames as
*requests*.  Clients ``await ServeLoop.submit(FrameRequest)``; the loop

1. serves exact-key :class:`~repro.serve.regions.FrameCache` hits
   synchronously (no queueing, no render),
2. queues misses for the batcher task, which coalesces everything pending
   — up to ``batch_budget`` requests, waiting at most ``batch_deadline_s``
   for the batch to fill — and dispatches each **pose's** requests as one
   :func:`repro.foveation.render_foveated_batch` call (the pose's
   projection prefix is prepared once; its gaze samples' level passes
   ride one concatenated span scan, which is exact per frame),
3. de-duplicates requests that collapse onto the same cache key inside a
   batch: the key's first request is rendered at *its* gaze, later ones are
   served from that frame as hits.

Guarantees: in the default ``exact_frames`` mode a cache-miss response is
**bit-identical** to a per-request :func:`repro.foveation.render_foveated`
call at the request's own camera and gaze (batch-of-one dispatch is exact;
``exact_frames=False`` trades that for one concatenated scan per pose
group at 1e-10 equivalence); a hit
returns a frame previously rendered for the same (model, pose, gaze
region, config) key — never across model mutations, backends, or poses.

Per-request latency, batch sizes and cache counters are recorded on the
loop for the replay harness and benchmarks.  With ``workers=0`` (the
default) rendering runs inline on the event loop — the simulation
measures scheduling and cache policy, not OS thread handoff.  With
``workers>0`` each pose group is dispatched to a
:class:`~repro.serve.workers.RenderWorkerPool` process via
``run_in_executor``: ``submit()`` latency decouples from render time
(hits are served and new misses queue while renders are in flight) and
concurrent pose groups render on distinct cores, with frames still
bit-identical to the inline path.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from typing import Sequence

from ..foveation import FRRenderResult, render_foveated_batch
from ..foveation.hierarchy import FoveatedModel
from ..splat.camera import Camera
from ..splat.renderer import RenderConfig, ViewCache
from .regions import FrameCache, GazeGridSpec
from .workers import RenderWorkerPool


@dataclasses.dataclass(frozen=True)
class FrameRequest:
    """One client's ask for a foveated frame at a pose and gaze.

    A request is a single submission's value object: its cache key (model,
    camera and gaze-region fingerprints) is computed once on first use —
    by the shard router or by ``ServeLoop.submit`` — and memoized on the
    instance, so routing and cache lookup never hash the model twice for
    one request.  Build a fresh ``FrameRequest`` per submission; re-using
    an object across an in-place model mutation would reuse its memoized
    key.
    """

    client_id: int
    camera: Camera
    gaze: tuple[float, float] | None = None


def request_cache_key(
    keyer: FrameCache,
    fmodel: FoveatedModel,
    request: FrameRequest,
    config: RenderConfig,
) -> tuple:
    """The request's frame-cache key, memoized on the request object.

    The key is ``(model fp, camera fp, gaze region, config fp)`` — the
    model fingerprint is the expensive part (one BLAKE2 pass over the
    parameter bytes), and before memoization the shard router and the
    shard's own ``submit`` each recomputed it.  The memo is validated
    against the exact ``(fmodel, config, grid spec)`` it was computed for
    (object identity for the mutable model/config, equality for the frozen
    spec), so a request keyed by a router is only ever reused by a shard
    serving the same model and configuration.
    """
    memo = request.__dict__.get("_key_memo")
    if (
        memo is not None
        and memo[0] is fmodel
        and memo[1] is config
        and memo[2] == keyer.spec
    ):
        return memo[3]
    key = keyer.key(fmodel, request.camera, request.gaze, config)
    object.__setattr__(request, "_key_memo", (fmodel, config, keyer.spec, key))
    return key


@dataclasses.dataclass(repr=False)
class FrameResponse:
    """A served frame plus how it was produced (for reports and tests)."""

    request: FrameRequest
    result: FRRenderResult
    cache_hit: bool
    batch_size: int  # distinct renders in the batch that produced it (0 = pure hit)
    latency_s: float

    def __repr__(self) -> str:
        # Compact on purpose: the default dataclass repr would stringify the
        # frame's pixel and map arrays — asyncio reprs task results during
        # teardown, which made *printing* responses cost more than
        # rendering them.
        return (
            f"FrameResponse(client={self.request.client_id}, "
            f"cache_hit={self.cache_hit}, batch_size={self.batch_size}, "
            f"latency_ms={self.latency_s * 1e3:.3f})"
        )


@dataclasses.dataclass(frozen=True)
class ServeConfig:
    """Scheduler knobs (see ``serve/README.md`` for the tuning story).

    ``batch_budget`` caps how many queued requests coalesce into one
    batching cycle; ``batch_deadline_s`` is the longest the batcher waits
    for the batch to fill once it holds a request (0 = batch only what is
    already pending — the deterministic replay setting).  ``cache_max_bytes
    = None`` disables the frame cache entirely (every request renders).

    ``exact_frames`` picks the miss-render dispatch: ``True`` (default)
    chunks each pose group to batch-of-one inside its
    ``render_foveated_batch`` call — every served frame is **bit-identical**
    to a per-request ``render_foveated``, and the pose preparation is still
    shared across the group.  ``False`` rides the whole pose group on one
    concatenated span scan — highest throughput, but concatenation perturbs
    last-bit rounding across frames, so frames only match per-request
    renders to the backend-equivalence tolerance (1e-10).

    ``workers`` moves miss rendering off the event loop: ``0`` (default)
    renders inline, ``N > 0`` starts a ``RenderWorkerPool`` of N processes
    and dispatches each pose group to a worker — same frames (workers run
    the identical dispatch, bit-identical in ``exact_frames`` mode), but
    ``submit()`` stays responsive during renders and pose groups
    parallelize across cores.
    """

    batch_budget: int = 8
    batch_deadline_s: float = 0.0
    cache_max_bytes: int | None = 64 << 20
    grid: GazeGridSpec = GazeGridSpec()
    exact_frames: bool = True
    workers: int = 0

    def __post_init__(self) -> None:
        if self.batch_budget < 1:
            raise ValueError("batch_budget must be at least 1")
        if self.batch_deadline_s < 0:
            raise ValueError("batch_deadline_s must be non-negative")
        if self.workers < 0:
            raise ValueError("workers must be non-negative")


@dataclasses.dataclass
class _Pending:
    request: FrameRequest
    key: tuple
    future: asyncio.Future
    t_submit: float


class ServeLoop:
    """Accepts per-client frame requests, serves them cached and batched.

    Use as an async context manager (or ``start()`` / ``close()``)::

        async with ServeLoop(fmodel, config) as loop:
            response = await loop.submit(FrameRequest(0, camera, gaze))

    ``close()`` drains the queue before returning, so every submitted
    request is answered — render failures (including a crashed worker
    pool) resolve their requests' futures with the exception rather than
    hanging the drain.  One ``ViewCache`` (shared or private) memoizes
    pose prefixes across batches; the ``FrameCache`` holds whole frames per
    gaze region.  ``worker_pool`` lets several loops (the shard router's
    shards) share one pool; a loop only owns — creates and closes — a pool
    it built itself from ``serve_config.workers``.
    """

    def __init__(
        self,
        fmodel: FoveatedModel,
        config: RenderConfig | None = None,
        serve_config: ServeConfig | None = None,
        frame_cache: FrameCache | None = None,
        view_cache: ViewCache | None = None,
        worker_pool: RenderWorkerPool | None = None,
    ) -> None:
        self.fmodel = fmodel
        self.render_config = config or RenderConfig()
        self.serve_config = serve_config or ServeConfig()
        if frame_cache is not None:
            self.frame_cache: FrameCache | None = frame_cache
        elif self.serve_config.cache_max_bytes is not None:
            self.frame_cache = FrameCache(
                max_bytes=self.serve_config.cache_max_bytes,
                spec=self.serve_config.grid,
            )
        else:
            self.frame_cache = None
        # Key computation lives on a FrameCache even when caching is
        # disabled (keys still drive in-batch dedup).
        self._keyer = self.frame_cache or FrameCache(spec=self.serve_config.grid)
        self.view_cache = view_cache or ViewCache(maxsize=256)
        self.latencies_s: list[float] = []
        self.batch_sizes: list[int] = []
        self.requests_served = 0
        self.max_queue_depth = 0
        self._queue: asyncio.Queue[_Pending] | None = None
        self._batcher: asyncio.Task | None = None
        self._pool = worker_pool
        self._owns_pool = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._batcher is not None:
            raise RuntimeError("ServeLoop already started")
        if self._pool is None and self.serve_config.workers > 0:
            self._pool = RenderWorkerPool(
                self.fmodel,
                self.render_config,
                workers=self.serve_config.workers,
                exact_frames=self.serve_config.exact_frames,
            )
            self._owns_pool = True
        self._queue = asyncio.Queue()
        self._batcher = asyncio.create_task(self._run())

    async def close(self) -> None:
        """Drain every queued request, then stop the batcher and its pool.

        Render errors never stall the drain: failed renders resolve their
        futures with the exception inside the batcher, and if the batcher
        task itself dies (a scheduler bug — nothing would ever drain the
        queue) the remaining queued requests are failed here with the
        batcher's exception instead of deadlocking ``close()``.
        """
        if self._batcher is None:
            return
        drain = asyncio.ensure_future(self._queue.join())
        await asyncio.wait(
            {drain, self._batcher}, return_when=asyncio.FIRST_COMPLETED
        )
        if self._batcher.done() and not drain.done():
            drain.cancel()
            if self._batcher.cancelled():
                exc: BaseException = RuntimeError(
                    "ServeLoop batcher was cancelled while requests were queued"
                )
            else:
                exc = self._batcher.exception() or RuntimeError(
                    "ServeLoop batcher exited while requests were queued"
                )
            while not self._queue.empty():
                pending = self._queue.get_nowait()
                if not pending.future.done():
                    pending.future.set_exception(exc)
                self._queue.task_done()
        self._batcher.cancel()
        try:
            await self._batcher
        except asyncio.CancelledError:
            pass
        self._batcher = None
        self._queue = None
        if self._owns_pool and self._pool is not None:
            self._pool.close()
            self._pool = None
            self._owns_pool = False

    async def __aenter__(self) -> "ServeLoop":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def _request_key(self, request: FrameRequest) -> tuple:
        return request_cache_key(
            self._keyer, self.fmodel, request, self.render_config
        )

    async def submit(self, request: FrameRequest) -> FrameResponse:
        """Serve one request: synchronously on a cache hit, batched otherwise."""
        if self._queue is None:
            raise RuntimeError("ServeLoop is not running (use `async with`)")
        t0 = time.perf_counter()
        key = self._request_key(request)
        if self.frame_cache is not None:
            # Counters are managed per *request outcome* (here and in
            # ``_render_batch``) rather than per raw lookup, so a queued
            # request re-checked before rendering is never double-counted:
            # cache hits + misses always sum to requests served.
            result = self.frame_cache.peek(key)
            if result is not None:
                self.frame_cache.hits += 1
                latency = time.perf_counter() - t0
                self.latencies_s.append(latency)
                self.requests_served += 1
                return FrameResponse(
                    request=request,
                    result=result,
                    cache_hit=True,
                    batch_size=0,
                    latency_s=latency,
                )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait(_Pending(request, key, future, t0))
        depth = self._queue.qsize()
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth
        return await future

    # ------------------------------------------------------------------
    # Batcher
    # ------------------------------------------------------------------
    async def _collect(self) -> list[_Pending]:
        """Block for one pending request, then coalesce up to the budget.

        Everything already queued is taken immediately; if the batch is
        still short and a deadline is configured, the batcher keeps
        accepting arrivals until it expires.
        """
        assert self._queue is not None
        budget = self.serve_config.batch_budget
        batch = [await self._queue.get()]
        while len(batch) < budget and not self._queue.empty():
            batch.append(self._queue.get_nowait())
        if self.serve_config.batch_deadline_s > 0:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self.serve_config.batch_deadline_s
            while len(batch) < budget:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), timeout)
                    )
                except asyncio.TimeoutError:
                    break
        return batch

    async def _run(self) -> None:
        assert self._queue is not None
        while True:
            batch = await self._collect()
            try:
                await self._render_batch(batch)
            except Exception as exc:  # pragma: no cover - backstop only
                # _render_batch scopes render errors to their pose group;
                # anything escaping here is a scheduler bug, but clients
                # must still never hang on an unresolved future.
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(exc)
            finally:
                for _ in batch:
                    self._queue.task_done()

    def _dispatch_inline(
        self, groups: list[list[_Pending]]
    ) -> list[list[FRRenderResult] | BaseException]:
        """Render pose groups on the event loop (the ``workers=0`` path)."""
        outcomes: list[list[FRRenderResult] | BaseException] = []
        for group in groups:
            try:
                outcomes.append(
                    render_foveated_batch(
                        self.fmodel,
                        group[0].request.camera,
                        gazes=[p.request.gaze for p in group],
                        config=self.render_config,
                        batch_size=1 if self.serve_config.exact_frames else None,
                        cache=self.view_cache,
                    )
                )
            except Exception as exc:
                outcomes.append(exc)
        return outcomes

    async def _dispatch_pool(
        self, groups: list[list[_Pending]]
    ) -> list[list[FRRenderResult] | BaseException]:
        """Render pose groups concurrently on the worker pool.

        Every group's render is dispatched at once — distinct poses land on
        distinct worker processes — and the event loop stays free while
        they run, so hits keep being served and new misses keep queueing.
        A group whose worker failed (stale model, crashed process) yields
        its exception in place of results; other groups are unaffected.
        The caller's model fingerprint rides along (it is the key's first
        element, already computed) so a worker whose snapshot went stale
        fails the render instead of serving old parameters.
        """
        assert self._pool is not None
        return await asyncio.gather(
            *(
                self._pool.render(
                    group[0].request.camera,
                    [p.request.gaze for p in group],
                    model_fp=group[0].key[0],
                )
                for group in groups
            ),
            return_exceptions=True,
        )

    async def _render_batch(self, batch: Sequence[_Pending]) -> None:
        """Render a coalesced batch and resolve every pending future.

        Requests are grouped twice: by cache key — the first request of
        each key is rendered (at its own camera and gaze), later requests
        of the same key are served from that frame, and a key that became
        a hit while queued is served from cache — and then by **pose**:
        each pose's misses go through one ``render_foveated_batch`` call
        sharing the pose's projection prefix.  In ``exact_frames`` mode
        the call is chunked to batch-of-one (bit-identical to per-request
        renders — the segmented scans re-centre a global cumsum, so
        multi-frame concatenation perturbs last-bit rounding); otherwise
        the group rides one concatenated scan.  With a worker pool the
        pose groups render concurrently in worker processes; inline they
        run sequentially on the event loop.
        """
        to_render: list[_Pending] = []
        followers: dict[tuple, list[_Pending]] = {}
        hits: list[tuple[_Pending, FRRenderResult]] = []
        for pending in batch:
            if pending.key in followers:
                followers[pending.key].append(pending)
                continue
            if self.frame_cache is not None:
                cached = self.frame_cache.peek(pending.key)
                if cached is not None:
                    self.frame_cache.hits += 1
                    hits.append((pending, cached))
                    continue
            followers[pending.key] = []
            to_render.append(pending)

        # Hits resolve before any rendering: their frames are already in
        # hand, so a render failure elsewhere in the batch must not reach
        # them (and their latency must not include the batch's renders).
        now = time.perf_counter()
        for pending, result in hits:
            self._resolve(pending, result, cache_hit=True, batch_size=0, now=now)

        # Pose groups: the camera fingerprint is the key's second element.
        pose_groups: dict[tuple, list[_Pending]] = {}
        for pending in to_render:
            pose_groups.setdefault(pending.key[1], []).append(pending)
        groups = list(pose_groups.values())
        if self._pool is not None and groups:
            outcomes = await self._dispatch_pool(groups)
        else:
            outcomes = self._dispatch_inline(groups)

        rendered: list[tuple[_Pending, FRRenderResult]] = []
        for group, outcome in zip(groups, outcomes):
            if isinstance(outcome, BaseException):
                # A failing pose fails only its own group (and the
                # followers waiting on those keys); other poses in the
                # batch still render and hits were already served.
                for pending in group:
                    if not pending.future.done():
                        pending.future.set_exception(outcome)
                    for follower in followers[pending.key]:
                        if not follower.future.done():
                            follower.future.set_exception(outcome)
                continue
            self.batch_sizes.append(len(group))
            rendered.extend(zip(group, outcome))

        now = time.perf_counter()
        for pending, result in rendered:
            if self.frame_cache is not None:
                self.frame_cache.misses += 1
                self.frame_cache.put(pending.key, result)
            self._resolve(
                pending, result, cache_hit=False, batch_size=len(to_render), now=now
            )
            for follower in followers[pending.key]:
                # A coalesced duplicate is a cache hit in every way that
                # matters: it is served from the keyed frame, not rendered.
                if self.frame_cache is not None:
                    self.frame_cache.hits += 1
                self._resolve(
                    follower, result, cache_hit=True, batch_size=0, now=now
                )

    def _resolve(
        self,
        pending: _Pending,
        result: FRRenderResult,
        cache_hit: bool,
        batch_size: int,
        now: float,
    ) -> None:
        latency = now - pending.t_submit
        self.latencies_s.append(latency)
        self.requests_served += 1
        if not pending.future.done():
            pending.future.set_result(
                FrameResponse(
                    request=pending.request,
                    result=result,
                    cache_hit=cache_hit,
                    batch_size=batch_size,
                    latency_s=latency,
                )
            )
