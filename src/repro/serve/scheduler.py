"""The async serve loop: deadline-aware coalescing over ``render_foveated_batch``.

The first layer above the render dispatchers that treats frames as
*requests*.  Clients ``await ServeLoop.submit(FrameRequest)``; the loop

1. serves exact-key :class:`~repro.serve.regions.FrameCache` hits
   synchronously (no queueing, no render),
2. queues misses for the batcher task, which coalesces everything pending
   — up to ``batch_budget`` requests, waiting at most ``batch_deadline_s``
   for the batch to fill (never past a pending frame deadline) — and
   dispatches each **pose's** requests as one
   :func:`repro.foveation.render_foveated_batch` call (the pose's
   projection prefix is prepared once; its gaze samples' level passes
   ride one concatenated span scan, which is exact per frame),
3. de-duplicates requests that collapse onto the same cache key inside a
   batch: the key's first request is rendered at *its* gaze, later ones are
   served from that frame as hits.

**Deadlines.**  A request may carry a frame budget
(``FrameRequest.deadline_s``, defaulting to one refresh period when
``ServeConfig.refresh_hz`` is set).  The batcher renders misses earliest
deadline first, caps the straggler wait so collecting never eats a
pending frame's slack, and — when a render is predicted to finish late
(EWMA of recent per-frame render time) — can *degrade* instead of miss:
serve the cached frame of a neighbouring gaze region of the same pose
(the requested gaze then falls in that frame's peripheral, coarser LOD)
rather than pay a late render.  Per-response ``deadline_missed`` /
``degraded`` flags and loop counters make the policy auditable:
``deadline_misses + on_time == requests_served`` always.

**Prefetch.**  With ``ServeConfig.prefetch`` set, a
:class:`~repro.serve.predictor.GazePredictor` extrapolates each client's
scanpath and enqueues the predicted next gaze regions as **low-priority
prefetch requests**: real misses always dequeue first, prefetches fill
leftover batch capacity, and a prefetch that was overtaken (its region
got rendered or cached, or it went stale) is dropped, not rendered.
Prefetched frames enter the :class:`FrameCache` but are *never* counted
as client traffic — not in latencies, hit/miss counters, batch sizes, or
``requests_served`` — so the hit rate stays an honest property of client
requests (``prefetch_useful`` counts the hits prefetching created).

Guarantees: in the default ``exact_frames`` mode a cache-miss response is
**bit-identical** to a per-request :func:`repro.foveation.render_foveated`
call at the request's own camera and gaze (batch-of-one dispatch is exact;
``exact_frames=False`` trades that for one concatenated scan per pose
group at 1e-10 equivalence); a hit
returns a frame previously rendered for the same (model, pose, gaze
region, config) key — never across model mutations, backends, or poses.
A prefetch never defines a client miss's gaze: client requests claim key
leadership before prefetches, so exactness is unaffected by speculation.

Per-request latency, batch sizes and cache counters are recorded on the
loop for the replay harness and benchmarks.  Latency is stamped **per
pose group** as its results arrive — one group's requests are never
charged a later group's render time.  With ``workers=0`` (the default)
rendering runs inline on the event loop; with ``workers>0`` each pose
group is dispatched to a :class:`~repro.serve.workers.RenderWorkerPool`
process via ``run_in_executor``, with frames still bit-identical to the
inline path.
"""

from __future__ import annotations

import asyncio
import collections
import dataclasses
import math
import time
from typing import Sequence

from ..envknobs import env_flag, env_float, env_int
from ..foveation import FRRenderResult, render_foveated_batch
from ..foveation.hierarchy import FoveatedModel
from ..obs.metrics import Histogram, MetricsRegistry
from ..obs.trace import Tracer, set_active_tracer
from ..splat.camera import Camera
from ..splat.renderer import RenderConfig, ViewCache
from .predictor import GazePredictor, PredictorConfig
from .regions import FrameCache, GazeGridSpec, quantize_gaze, resolved_cache_bytes
from .shm import resolved_shm_bytes
from .workers import RenderWorkerPool

# EWMA weight of the newest per-frame render measurement (the estimator
# behind the degrade policy and the deadline-capped straggler wait).
_RENDER_EWMA_ALPHA = 0.4

DEFAULT_BATCH_BUDGET = 8
DEFAULT_BATCH_DEADLINE_S = 0.0
BATCH_BUDGET_ENV = "REPRO_SERVE_BATCH_BUDGET"
BATCH_DEADLINE_ENV = "REPRO_SERVE_BATCH_DEADLINE"
TRACE_ENV = "REPRO_TRACE"


def _profile_knob(name: str):
    """Tuned knob from the active host profile (lazy: tune is optional)."""
    from ..tune.profile import profile_value

    return profile_value(name)


def resolved_batch_budget(budget: int | None = None) -> int:
    """The effective batcher coalescing cap.

    Precedence: explicit ``budget`` > ``$REPRO_SERVE_BATCH_BUDGET`` > the
    host tuning profile's ``batch_budget`` > the built-in default (8).
    A malformed or out-of-range env value warns and falls through.
    """
    if budget is not None:
        if budget < 1:
            raise ValueError("batch_budget must be at least 1")
        return int(budget)
    fallback = _profile_knob("batch_budget") or DEFAULT_BATCH_BUDGET
    return env_int(BATCH_BUDGET_ENV, int(fallback), minimum=1)


def resolved_batch_deadline(deadline_s: float | None = None) -> float:
    """The effective batch-fill deadline in seconds.

    Precedence: explicit ``deadline_s`` > ``$REPRO_SERVE_BATCH_DEADLINE``
    > the host tuning profile's ``batch_deadline_s`` > the built-in
    default (0 — batch only what is already pending).
    """
    if deadline_s is not None:
        if deadline_s < 0:
            raise ValueError("batch_deadline_s must be non-negative")
        return float(deadline_s)
    fallback = _profile_knob("batch_deadline_s")
    if fallback is None:
        fallback = DEFAULT_BATCH_DEADLINE_S
    return env_float(BATCH_DEADLINE_ENV, float(fallback), minimum=0.0)


@dataclasses.dataclass(frozen=True)
class FrameRequest:
    """One client's ask for a foveated frame at a pose and gaze.

    ``deadline_s`` is the frame budget in seconds *from submission* (e.g.
    ``1/90`` for a 90 Hz client); ``None`` defers to the loop's
    ``ServeConfig.refresh_hz`` (and means best-effort when that is unset).

    A request is a single submission's value object: its cache key (model,
    camera and gaze-region fingerprints) is computed once on first use —
    by the shard router or by ``ServeLoop.submit`` — and memoized on the
    instance, so routing and cache lookup never hash the model twice for
    one request.  Build a fresh ``FrameRequest`` per submission; re-using
    an object across an in-place model mutation would reuse its memoized
    key.
    """

    client_id: int
    camera: Camera
    gaze: tuple[float, float] | None = None
    deadline_s: float | None = None


def request_cache_key(
    keyer: FrameCache,
    fmodel: FoveatedModel,
    request: FrameRequest,
    config: RenderConfig,
) -> tuple:
    """The request's frame-cache key, memoized on the request object.

    The key is ``(model fp, camera fp, gaze region, config fp)`` — the
    model fingerprint is the expensive part (one BLAKE2 pass over the
    parameter bytes), and before memoization the shard router and the
    shard's own ``submit`` each recomputed it.  The memo is validated
    against the exact ``(fmodel, config, grid spec)`` it was computed for
    (object identity for the mutable model/config, equality for the frozen
    spec), so a request keyed by a router is only ever reused by a shard
    serving the same model and configuration.
    """
    memo = request.__dict__.get("_key_memo")
    if (
        memo is not None
        and memo[0] is fmodel
        and memo[1] is config
        and memo[2] == keyer.spec
    ):
        return memo[3]
    key = keyer.key(fmodel, request.camera, request.gaze, config)
    object.__setattr__(request, "_key_memo", (fmodel, config, keyer.spec, key))
    return key


@dataclasses.dataclass(repr=False)
class FrameResponse:
    """A served frame plus how it was produced (for reports and tests).

    ``batch_size`` is the number of distinct client renders in the **pose
    group** that produced this frame (0 = served from cache, no render) —
    the same per-group granularity ``ServeLoop.batch_sizes`` records, so
    the two never disagree on batching semantics.  ``deadline_missed`` is
    whether the frame resolved after its deadline; ``degraded`` marks a
    frame served from a *neighbouring* gaze region's cache entry under
    deadline pressure (coarser LOD at the requested gaze) instead of a
    late render.
    """

    request: FrameRequest
    result: FRRenderResult
    cache_hit: bool
    batch_size: int
    latency_s: float
    deadline_s: float | None = None  # effective frame budget (None = best-effort)
    deadline_missed: bool = False
    degraded: bool = False

    def __repr__(self) -> str:
        # Compact on purpose: the default dataclass repr would stringify the
        # frame's pixel and map arrays — asyncio reprs task results during
        # teardown, which made *printing* responses cost more than
        # rendering them.
        return (
            f"FrameResponse(client={self.request.client_id}, "
            f"cache_hit={self.cache_hit}, batch_size={self.batch_size}, "
            f"latency_ms={self.latency_s * 1e3:.3f}, "
            f"deadline_missed={self.deadline_missed}, degraded={self.degraded})"
        )


@dataclasses.dataclass(frozen=True)
class ServeConfig:
    """Scheduler knobs (see ``serve/README.md`` for the tuning story).

    ``batch_budget`` caps how many queued requests coalesce into one
    batching cycle; ``batch_deadline_s`` is the longest the batcher waits
    for the batch to fill once it holds a request (0 = batch only what is
    already pending — the deterministic replay setting; the wait is
    additionally capped by the earliest pending frame deadline).
    ``cache_max_bytes = None`` disables the frame cache entirely (every
    request renders).

    These three knobs default to *resolution sentinels* (``None`` /
    ``"auto"``) handled in ``__post_init__`` with the repo-wide
    precedence: explicit argument > environment variable
    (``$REPRO_SERVE_BATCH_BUDGET`` / ``$REPRO_SERVE_BATCH_DEADLINE`` /
    ``$REPRO_FRAME_CACHE_BYTES``) > the host tuning profile
    (:mod:`repro.tune`) > built-in defaults (8 / 0 / 64 MiB).  A
    constructed config always carries concrete values — resolution
    happens once, not per request.

    ``refresh_hz`` derives the default per-request frame budget
    (``1/refresh_hz`` seconds — 72/90/120 Hz VR refreshes) for requests
    that carry no explicit ``deadline_s``; ``None`` leaves such requests
    best-effort.  ``degrade_on_deadline`` enables the drop-or-degrade
    policy: a miss predicted to render past its deadline is served the
    cached frame of the nearest other gaze region of the same pose (the
    requested gaze lands in its coarser periphery) instead of rendering
    late; it only ever fires for requests that *have* deadlines.
    ``prefetch`` (a :class:`~repro.serve.predictor.PredictorConfig`)
    enables speculative gaze prefetch; ``None`` disables it.

    ``exact_frames`` picks the miss-render dispatch: ``True`` (default)
    chunks each pose group to batch-of-one inside its
    ``render_foveated_batch`` call — every served frame is **bit-identical**
    to a per-request ``render_foveated``, and the pose preparation is still
    shared across the group.  ``False`` rides the whole pose group on one
    concatenated span scan — highest throughput, but concatenation perturbs
    last-bit rounding across frames, so frames only match per-request
    renders to the backend-equivalence tolerance (1e-10).

    ``workers`` moves miss rendering off the event loop: ``0`` (default)
    renders inline, ``N > 0`` starts a ``RenderWorkerPool`` of N processes
    and dispatches each pose group to a worker — same frames (workers run
    the identical dispatch, bit-identical in ``exact_frames`` mode), but
    ``submit()`` stays responsive during renders and pose groups
    parallelize across cores.

    ``shm_bytes`` sizes the pool's shared-memory frame transport
    (:mod:`repro.serve.shm`): workers write frame planes into one slab
    arena and return tiny handles instead of pickling megabytes through
    the executor pipe.  The ``"auto"`` sentinel resolves explicit
    argument > ``$REPRO_SERVE_SHM`` > the host tuning profile's
    ``shm_bytes`` > 64 MiB; ``0`` (or ``None``) disables the arena and
    every frame rides the pickle path.  Transport never changes pixels —
    an exhausted or unavailable arena falls back to pickle per frame.

    ``trace`` enables per-request span tracing (:mod:`repro.obs.trace`):
    the loop builds (or is handed) a :class:`~repro.obs.Tracer` and
    records the full request lifecycle — queue wait, batch formation,
    dedup, per-pose-group renders with backend-internal stages, worker
    spans stitched across the executor pipe — exportable as
    Chrome/Perfetto JSON.  ``None`` defers to ``$REPRO_TRACE``; off by
    default, and the disabled path is a no-op (CI-gated ≤2% overhead).
    """

    batch_budget: int | None = None
    batch_deadline_s: float | None = None
    cache_max_bytes: int | str | None = "auto"
    grid: GazeGridSpec = GazeGridSpec()
    exact_frames: bool = True
    workers: int = 0
    refresh_hz: float | None = None
    degrade_on_deadline: bool = True
    prefetch: PredictorConfig | None = None
    shm_bytes: int | str | None = "auto"
    trace: bool | None = None

    def __post_init__(self) -> None:
        # Resolve the tunable knobs' sentinels once, at construction (the
        # dataclass is frozen, hence object.__setattr__).  The resolvers
        # re-raise on explicit out-of-range values, preserving the old
        # constructor validation errors.
        object.__setattr__(
            self, "batch_budget", resolved_batch_budget(self.batch_budget)
        )
        object.__setattr__(
            self,
            "batch_deadline_s",
            resolved_batch_deadline(self.batch_deadline_s),
        )
        if self.cache_max_bytes == "auto":
            object.__setattr__(self, "cache_max_bytes", resolved_cache_bytes())
        elif isinstance(self.cache_max_bytes, str):
            raise ValueError(
                "cache_max_bytes must be an int, None, or the sentinel 'auto'"
            )
        elif self.cache_max_bytes is not None and self.cache_max_bytes <= 0:
            raise ValueError("cache_max_bytes must be positive (or None)")
        if self.workers < 0:
            raise ValueError("workers must be non-negative")
        if self.refresh_hz is not None and self.refresh_hz <= 0:
            raise ValueError("refresh_hz must be positive")
        if self.shm_bytes == "auto":
            object.__setattr__(self, "shm_bytes", resolved_shm_bytes())
        elif isinstance(self.shm_bytes, str):
            raise ValueError(
                "shm_bytes must be an int, None, or the sentinel 'auto'"
            )
        elif self.shm_bytes is None:
            object.__setattr__(self, "shm_bytes", 0)
        else:
            # Re-run the resolver on the explicit value for its validation
            # (negative sizes raise, matching the other knob resolvers).
            object.__setattr__(
                self, "shm_bytes", resolved_shm_bytes(self.shm_bytes)
            )
        if self.trace is None:
            object.__setattr__(self, "trace", env_flag(TRACE_ENV, False))

    @property
    def frame_budget_s(self) -> float | None:
        """The default per-request deadline (one refresh period), if any."""
        return 1.0 / self.refresh_hz if self.refresh_hz is not None else None


@dataclasses.dataclass
class _Pending:
    request: FrameRequest
    key: tuple
    future: asyncio.Future | None  # None for loop-internal prefetch requests
    t_submit: float
    deadline_s: float | None = None  # relative frame budget
    t_deadline: float | None = None  # absolute (perf_counter clock)
    prefetch: bool = False


class _TwoClassQueue:
    """An asyncio queue with an urgent and a low-priority (prefetch) class.

    ``get`` always drains urgent items before prefetch items — that *is*
    the preemption policy: a real miss entering the queue overtakes every
    pending speculation.  Items live in plain deques until a getter pops
    them **synchronously after resuming**, so a getter cancelled between
    wake-up and resumption never strands an item outside the queue — the
    lost-request race the old ``asyncio.wait_for(queue.get(), ...)``
    pattern allowed (a timeout landing after the getter dequeued could
    drop the item on the floor and hang ``join()`` forever).
    ``drain_getter`` completes the pattern: it cancels an outstanding
    ``get`` task and *returns* the item if the cancellation raced a
    successful pop.

    ``join``/``task_done`` follow ``asyncio.Queue`` semantics (``close``
    drains on them); ``requeue`` puts a recovered item back at the front
    of its class without re-counting it as new work.
    """

    def __init__(self) -> None:
        self._urgent: collections.deque[_Pending] = collections.deque()
        self._prefetch: collections.deque[_Pending] = collections.deque()
        self._getters: collections.deque[asyncio.Future] = collections.deque()
        self._join_waiters: list[asyncio.Future] = []
        self._unfinished = 0

    def qsize(self) -> int:
        return len(self._urgent) + len(self._prefetch)

    @property
    def urgent_size(self) -> int:
        return len(self._urgent)

    @property
    def prefetch_size(self) -> int:
        return len(self._prefetch)

    def empty(self) -> bool:
        return not (self._urgent or self._prefetch)

    def put_nowait(self, item: _Pending) -> None:
        (self._prefetch if item.prefetch else self._urgent).append(item)
        self._unfinished += 1
        self._wakeup_next()

    def requeue(self, item: _Pending) -> None:
        """Put a recovered (already-counted) item back at the head of its class."""
        (self._prefetch if item.prefetch else self._urgent).appendleft(item)
        self._wakeup_next()

    def get_nowait(self) -> _Pending:
        if self._urgent:
            return self._urgent.popleft()
        if self._prefetch:
            return self._prefetch.popleft()
        raise asyncio.QueueEmpty

    async def get(self) -> _Pending:
        while self.empty():
            waiter = asyncio.get_running_loop().create_future()
            self._getters.append(waiter)
            try:
                await waiter
            except BaseException:
                waiter.cancel()
                try:
                    self._getters.remove(waiter)
                except ValueError:
                    pass
                # Our wake-up may have been consumed by the cancellation;
                # pass it on so a concurrent getter is not starved.
                if not self.empty():
                    self._wakeup_next()
                raise
        return self.get_nowait()

    @staticmethod
    async def drain_getter(getter: asyncio.Future) -> _Pending | None:
        """Cancel an outstanding ``get`` task, recovering a raced item.

        If the getter popped an item in the same event-loop tick the
        caller decided to stop waiting, cancellation does not take — the
        item is returned instead of being dropped (the satellite-bug fix).
        """
        getter.cancel()
        try:
            return await getter
        except (asyncio.CancelledError, asyncio.QueueEmpty):
            return None

    def _wakeup_next(self) -> None:
        while self._getters:
            waiter = self._getters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                break

    def task_done(self) -> None:
        if self._unfinished <= 0:
            raise ValueError("task_done() called more times than items queued")
        self._unfinished -= 1
        if self._unfinished == 0:
            for waiter in self._join_waiters:
                if not waiter.done():
                    waiter.set_result(None)
            self._join_waiters.clear()

    async def join(self) -> None:
        if self._unfinished == 0:
            return
        waiter = asyncio.get_running_loop().create_future()
        self._join_waiters.append(waiter)
        await waiter


class ServeLoop:
    """Accepts per-client frame requests, serves them cached and batched.

    Use as an async context manager (or ``start()`` / ``close()``)::

        async with ServeLoop(fmodel, config) as loop:
            response = await loop.submit(FrameRequest(0, camera, gaze))

    ``close()`` drains the queue before returning, so every submitted
    request is answered — render failures (including a crashed worker
    pool) resolve their requests' futures with the exception rather than
    hanging the drain.  One ``ViewCache`` (shared or private) memoizes
    pose prefixes across batches; the ``FrameCache`` holds whole frames per
    gaze region.  ``worker_pool`` lets several loops (the shard router's
    shards) share one pool; a loop only owns — creates and closes — a pool
    it built itself from ``serve_config.workers``.
    """

    def __init__(
        self,
        fmodel: FoveatedModel,
        config: RenderConfig | None = None,
        serve_config: ServeConfig | None = None,
        frame_cache: FrameCache | None = None,
        view_cache: ViewCache | None = None,
        worker_pool: RenderWorkerPool | None = None,
        tracer: Tracer | None = None,
        clock=None,
        trace_tid: int = 0,
    ) -> None:
        self.fmodel = fmodel
        self.render_config = config or RenderConfig()
        self.serve_config = serve_config or ServeConfig()
        # The clock seam: every lifecycle stamp (submit, deadlines, render
        # timing, prefetch expiry) reads this callable, so tests and
        # replays can drive the loop on a fake deterministic clock instead
        # of sleeping.  Must be monotonic; defaults to time.perf_counter.
        self._clock = clock if clock is not None else time.perf_counter
        if tracer is None and self.serve_config.trace:
            tracer = Tracer(clock=self._clock)
        self.tracer = tracer
        # The lane this loop's batcher-side spans render on (shard index
        # under a router; request spans ride per-client lanes).
        self._trace_tid = trace_tid
        if tracer is not None:
            tracer.name_thread(trace_tid, f"batcher {trace_tid}" if trace_tid else "batcher")
        self._traced_clients: set[int] = set()
        # Per-stage latency histograms (log-bucket, mergeable across
        # shards): queue wait for rendered misses, per-request render
        # time, and total client latency.  Always on — a handful of
        # observes per request — so replay reports carry a stage
        # breakdown with tracing off.
        self.stage_histograms: dict[str, Histogram] = {
            "queue": Histogram(),
            "render": Histogram(),
            "total": Histogram(),
        }
        if frame_cache is not None:
            self.frame_cache: FrameCache | None = frame_cache
        elif self.serve_config.cache_max_bytes is not None:
            self.frame_cache = FrameCache(
                max_bytes=self.serve_config.cache_max_bytes,
                spec=self.serve_config.grid,
            )
        else:
            self.frame_cache = None
        # Key computation lives on a FrameCache even when caching is
        # disabled (keys still drive in-batch dedup); the explicit
        # max_bytes keeps the keyer constructible in that case.
        self._keyer = self.frame_cache or FrameCache(
            max_bytes=1, spec=self.serve_config.grid
        )
        self.view_cache = view_cache or ViewCache(maxsize=256)
        self.predictor = (
            GazePredictor(self.serve_config.prefetch)
            if self.serve_config.prefetch is not None
            else None
        )
        self.latencies_s: list[float] = []
        self.batch_sizes: list[int] = []
        self.requests_served = 0
        self.max_queue_depth = 0
        # Deadline accounting: on_time + deadline_misses == requests_served
        # (requests without a deadline are on time by definition).
        self.on_time = 0
        self.deadline_misses = 0
        self.degraded_served = 0
        # Prefetch accounting (loop-internal traffic, never client traffic).
        self.prefetch_enqueued = 0
        self.prefetch_rendered = 0
        self.prefetch_dropped = 0
        self.prefetch_failed = 0
        self.prefetch_useful = 0
        self.degrade_backfills = 0
        self._inflight_prefetch: set[tuple] = set()
        self._prefetched_keys: set[tuple] = set()
        self._render_ewma_s: float | None = None
        self._queue: _TwoClassQueue | None = None
        self._batcher: asyncio.Task | None = None
        self._pool = worker_pool
        self._owns_pool = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._batcher is not None:
            raise RuntimeError("ServeLoop already started")
        if self._pool is None and self.serve_config.workers > 0:
            self._pool = RenderWorkerPool(
                self.fmodel,
                self.render_config,
                workers=self.serve_config.workers,
                exact_frames=self.serve_config.exact_frames,
                shm_bytes=self.serve_config.shm_bytes,
            )
            self._owns_pool = True
        self._queue = _TwoClassQueue()
        self._batcher = asyncio.create_task(self._run())

    async def close(self) -> None:
        """Drain every queued request, then stop the batcher and its pool.

        Render errors never stall the drain: failed renders resolve their
        futures with the exception inside the batcher, and if the batcher
        task itself dies (a scheduler bug — nothing would ever drain the
        queue) the remaining queued requests are failed here with the
        batcher's exception instead of deadlocking ``close()``.
        """
        if self._batcher is None:
            return
        drain = asyncio.ensure_future(self._queue.join())
        await asyncio.wait(
            {drain, self._batcher}, return_when=asyncio.FIRST_COMPLETED
        )
        if self._batcher.done() and not drain.done():
            drain.cancel()
            if self._batcher.cancelled():
                exc: BaseException = RuntimeError(
                    "ServeLoop batcher was cancelled while requests were queued"
                )
            else:
                exc = self._batcher.exception() or RuntimeError(
                    "ServeLoop batcher exited while requests were queued"
                )
            while not self._queue.empty():
                pending = self._queue.get_nowait()
                if pending.future is not None and not pending.future.done():
                    pending.future.set_exception(exc)
                self._queue.task_done()
        self._batcher.cancel()
        try:
            await self._batcher
        except asyncio.CancelledError:
            pass
        self._batcher = None
        self._queue = None
        if self._owns_pool and self._pool is not None:
            self._pool.close()
            self._pool = None
            self._owns_pool = False

    async def __aenter__(self) -> "ServeLoop":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def _request_key(self, request: FrameRequest) -> tuple:
        return request_cache_key(
            self._keyer, self.fmodel, request, self.render_config
        )

    def _effective_deadline(self, request: FrameRequest) -> float | None:
        if request.deadline_s is not None:
            return request.deadline_s
        return self.serve_config.frame_budget_s

    async def submit(self, request: FrameRequest) -> FrameResponse:
        """Serve one request: synchronously on a cache hit, batched otherwise."""
        if self._queue is None:
            raise RuntimeError("ServeLoop is not running (use `async with`)")
        t0 = self._clock()
        key = self._request_key(request)
        deadline_s = self._effective_deadline(request)
        t_deadline = t0 + deadline_s if deadline_s is not None else None
        if self.predictor is not None:
            self.predictor.observe(request.client_id, request.gaze)
        if self.frame_cache is not None:
            # Counters are managed per *request outcome* (here and in
            # ``_render_batch``) rather than per raw lookup, so a queued
            # request re-checked before rendering is never double-counted:
            # cache hits + misses always sum to requests served.
            result = self.frame_cache.peek(key)
            if result is not None:
                self.frame_cache.hits += 1
                self._note_prefetch_use(key)
                response = self._resolve(
                    _Pending(request, key, None, t0, deadline_s, t_deadline),
                    result,
                    cache_hit=True,
                    batch_size=0,
                    now=self._clock(),
                )
                self._maybe_prefetch(request, key, t0)
                return response
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait(
            _Pending(request, key, future, t0, deadline_s, t_deadline)
        )
        depth = self._queue.urgent_size
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth
        self._maybe_prefetch(request, key, t0)
        return await future

    # ------------------------------------------------------------------
    # Predictive prefetch
    # ------------------------------------------------------------------
    def _maybe_prefetch(
        self, request: FrameRequest, key: tuple, now: float
    ) -> None:
        """Enqueue the client's predicted next gaze regions at low priority.

        Predictions reuse the triggering request's model/camera/config
        fingerprints (only the gaze region differs), so speculation costs
        zero extra model hashing.  A prediction is skipped when it
        collapses onto the current region, is already cached, is already
        in flight as a prefetch, or the speculation backlog is full.
        """
        config = self.serve_config.prefetch
        if (
            config is None
            or self.frame_cache is None
            or self._queue is None
            or request.gaze is None
        ):
            return
        camera = request.camera
        predictions = self.predictor.predict(
            request.client_id, camera.width, camera.height
        )
        if not predictions:
            return
        budget = self.serve_config.frame_budget_s
        spec = self.serve_config.grid
        for step, gaze in enumerate(predictions, start=1):
            if len(self._inflight_prefetch) >= config.max_backlog:
                break
            region = quantize_gaze(camera, gaze, spec)
            pkey = (key[0], key[1], region, key[3])
            if (
                pkey == key
                or pkey in self._inflight_prefetch
                or self.frame_cache.contains(pkey)
            ):
                continue
            # A speculation is useful until the frame it anticipates is
            # comfortably past; after that, rendering it would be pure
            # waste, so it carries its own (generous) expiry.
            expiry = (
                now + (step + config.horizon) * budget
                if budget is not None
                else None
            )
            self._queue.put_nowait(
                _Pending(
                    request=FrameRequest(
                        client_id=request.client_id,
                        camera=camera,
                        gaze=gaze,
                        deadline_s=request.deadline_s,
                    ),
                    key=pkey,
                    future=None,
                    t_submit=now,
                    deadline_s=None,
                    t_deadline=expiry,
                    prefetch=True,
                )
            )
            self._inflight_prefetch.add(pkey)
            self.prefetch_enqueued += 1

    def _note_prefetch_use(self, key: tuple) -> None:
        """Attribute a client cache hit to the prefetch that created the entry."""
        if key in self._prefetched_keys:
            self.prefetch_useful += 1
            self._prefetched_keys.discard(key)

    # ------------------------------------------------------------------
    # Batcher
    # ------------------------------------------------------------------
    def _collect_wait_s(self, batch: list[_Pending], remaining: float) -> float:
        """Cap the straggler wait by the earliest pending frame deadline.

        Waiting for a fuller batch must never eat the slack a queued
        request needs to render before its deadline; the cap subtracts the
        current per-frame render estimate from the tightest deadline.
        """
        deadlines = [
            p.t_deadline
            for p in batch
            if p.t_deadline is not None and not p.prefetch
        ]
        if not deadlines:
            return remaining
        estimate = self._render_ewma_s or 0.0
        slack = min(deadlines) - self._clock() - estimate
        return min(remaining, slack)

    async def _collect(self) -> list[_Pending]:
        """Block for one pending request, then coalesce up to the budget.

        Everything already queued is taken immediately (real misses before
        prefetches — the queue's class order); if the batch is still short
        and a deadline is configured, the batcher keeps accepting arrivals
        until it expires or a queued frame deadline would be jeopardized.
        The timed wait uses a shielded getter plus ``drain_getter``: a
        timeout that races a successful pop *recovers* the popped item
        instead of dropping it (the lost-request race the old
        ``asyncio.wait_for(queue.get(), ...)`` allowed, which left the
        request's future unresolved and ``close()`` hung on ``join()``).
        """
        assert self._queue is not None
        budget = self.serve_config.batch_budget
        batch = [await self._queue.get()]
        t_form = self._clock()
        while len(batch) < budget and not self._queue.empty():
            batch.append(self._queue.get_nowait())
        if self.serve_config.batch_deadline_s > 0:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self.serve_config.batch_deadline_s
            while len(batch) < budget:
                timeout = self._collect_wait_s(batch, deadline - loop.time())
                if timeout <= 0:
                    break
                getter = asyncio.ensure_future(self._queue.get())
                try:
                    batch.append(
                        await asyncio.wait_for(asyncio.shield(getter), timeout)
                    )
                except asyncio.TimeoutError:
                    recovered = await _TwoClassQueue.drain_getter(getter)
                    if recovered is not None:
                        batch.append(recovered)
                    break
                except asyncio.CancelledError:
                    # The batcher is being torn down mid-wait: put a raced
                    # item back (still counted as queued work) so close()'s
                    # drain can fail it instead of losing it.
                    recovered = await _TwoClassQueue.drain_getter(getter)
                    if recovered is not None:
                        self._queue.requeue(recovered)
                    raise
        if self.tracer is not None:
            self.tracer.add(
                "batch-form",
                "serve",
                t_form,
                self._clock(),
                tid=self._trace_tid,
                args={"n": len(batch)},
            )
        return batch

    async def _run(self) -> None:
        assert self._queue is not None
        while True:
            batch = await self._collect()
            try:
                await self._render_batch(batch)
            except Exception as exc:  # pragma: no cover - backstop only
                # _render_batch scopes render errors to their pose group;
                # anything escaping here is a scheduler bug, but clients
                # must still never hang on an unresolved future.
                for pending in batch:
                    if pending.future is not None and not pending.future.done():
                        pending.future.set_exception(exc)
            finally:
                for _ in batch:
                    self._queue.task_done()

    def _dispatch_inline(
        self, groups: list[list[_Pending]]
    ) -> list[tuple[list[FRRenderResult] | BaseException, float, float]]:
        """Render pose groups on the event loop (the ``workers=0`` path).

        Each group's outcome carries its own start/completion stamps:
        requests are charged their *own* group's render time, never a
        later group's (the latency-attribution fix).  While a group
        renders, the loop's tracer (if any) is installed as the active
        tracer so the backend-internal prepare/alpha-scan/composite spans
        land in the same timeline.
        """
        outcomes: list[tuple[list[FRRenderResult] | BaseException, float, float]] = []
        tracer = self.tracer
        for group in groups:
            t_start = self._clock()
            prev = set_active_tracer(tracer) if tracer is not None else None
            try:
                results = render_foveated_batch(
                    self.fmodel,
                    group[0].request.camera,
                    gazes=[p.request.gaze for p in group],
                    config=self.render_config,
                    batch_size=1 if self.serve_config.exact_frames else None,
                    cache=self.view_cache,
                )
                t_done = self._clock()
                self._update_render_estimate((t_done - t_start) / len(group))
                outcomes.append((results, t_start, t_done))
            except Exception as exc:
                outcomes.append((exc, t_start, self._clock()))
            finally:
                if tracer is not None:
                    set_active_tracer(prev)
        return outcomes

    async def _dispatch_pool(
        self, groups: list[list[_Pending]]
    ) -> list[tuple[list[FRRenderResult] | BaseException, float, float]]:
        """Render pose groups concurrently on the worker pool.

        Every group's render is dispatched at once — distinct poses land on
        distinct worker processes — and the event loop stays free while
        they run, so hits keep being served and new misses keep queueing.
        Each group is stamped as *its* results arrive (not when the whole
        gather settles), so per-request latency never includes a slower
        sibling group's tail.  A group whose worker failed (stale model,
        crashed process) yields its exception in place of results; other
        groups are unaffected.  The caller's model fingerprint rides along
        (it is the key's first element, already computed) so a worker
        whose snapshot went stale fails the render instead of serving old
        parameters.  With a tracer, worker-side spans come back piggybacked
        on the result payload and are stitched in under the worker's pid.
        """
        assert self._pool is not None

        async def timed(group: list[_Pending]):
            t_start = self._clock()
            try:
                results = await self._pool.render(
                    group[0].request.camera,
                    [p.request.gaze for p in group],
                    model_fp=group[0].key[0],
                    tracer=self.tracer,
                )
            except Exception as exc:
                return exc, t_start, self._clock()
            t_done = self._clock()
            self._update_render_estimate((t_done - t_start) / len(group))
            return results, t_start, t_done

        return await asyncio.gather(*(timed(group) for group in groups))

    def _update_render_estimate(self, per_frame_s: float) -> None:
        if self._render_ewma_s is None:
            self._render_ewma_s = per_frame_s
        else:
            self._render_ewma_s += _RENDER_EWMA_ALPHA * (
                per_frame_s - self._render_ewma_s
            )

    def _try_degrade(
        self, pending: _Pending, followers: dict[tuple, list[_Pending]]
    ) -> bool:
        """Serve a cached neighbouring-region frame instead of a late render.

        Fires only for deadline-carrying requests that are already late or
        whose render (per the EWMA estimate) is predicted to finish past
        the deadline, and only when the cache holds a frame of the *same
        pose* at another gaze region — the requested gaze then falls in
        that frame's peripheral (coarser) LOD, which is the degrade the
        policy trades against a missed deadline.

        Every degrade also enqueues a **backfill**: a low-priority render
        of the exact key, so a client dwelling in the region gets the
        correct frame on a following request instead of staring at the
        neighbour's frame forever.  The backfill rides the prefetch class
        (real misses still preempt it) and its frame is accounted exactly
        like a prefetch — cache-filling traffic, never client traffic.
        """
        if (
            not self.serve_config.degrade_on_deadline
            or self.frame_cache is None
            or pending.t_deadline is None
        ):
            return False
        now = self._clock()
        estimate = self._render_ewma_s
        predicted = now + (estimate if estimate is not None else 0.0)
        if now < pending.t_deadline and predicted <= pending.t_deadline:
            return False
        alternate = self.frame_cache.degraded_alternate(pending.key)
        if alternate is None:
            return False
        if pending.key not in self._inflight_prefetch and self._queue is not None:
            self._queue.put_nowait(
                _Pending(
                    request=pending.request,
                    key=pending.key,
                    future=None,
                    t_submit=pending.t_submit,
                    prefetch=True,
                )
            )
            self._inflight_prefetch.add(pending.key)
            self.degrade_backfills += 1
        stamp = self._clock()
        self._resolve(
            pending, alternate, cache_hit=False, batch_size=0, now=stamp,
            degraded=True,
        )
        for follower in followers.pop(pending.key, []):
            self._resolve(
                follower, alternate, cache_hit=False, batch_size=0, now=stamp,
                degraded=True,
            )
        return True

    async def _render_batch(self, batch: Sequence[_Pending]) -> None:
        """Render a coalesced batch and resolve every pending future.

        Client requests are processed earliest-deadline-first and claim
        key leadership before any prefetch (a speculation never defines a
        client frame's gaze).  Requests are grouped twice: by cache key —
        the first request of each key is rendered (at its own camera and
        gaze), later requests of the same key are served from that frame,
        and a key that became a hit while queued is served from cache —
        and then by **pose**: each pose's misses go through one
        ``render_foveated_batch`` call sharing the pose's projection
        prefix.  Deadline-pressed requests may degrade to a cached
        neighbouring-region frame instead of rendering late
        (:meth:`_try_degrade`); overtaken or stale prefetches are dropped.
        In ``exact_frames`` mode the render call is chunked to
        batch-of-one (bit-identical to per-request renders); otherwise the
        group rides one concatenated scan.  With a worker pool the pose
        groups render concurrently in worker processes; inline they run
        sequentially on the event loop.  Every group's requests are
        stamped with that group's own completion time.
        """
        clients = [p for p in batch if not p.prefetch]
        speculative = [p for p in batch if p.prefetch]
        clients.sort(
            key=lambda p: (
                p.t_deadline if p.t_deadline is not None else math.inf,
                p.t_submit,
            )
        )

        # Queue-class wait ends here for every client request in the batch
        # (hits and followers included — they waited just the same).
        t_batch = self._clock()
        tracer = self.tracer
        queue_hist = self.stage_histograms["queue"]
        for pending in clients:
            queue_hist.observe(t_batch - pending.t_submit)
            if tracer is not None:
                tracer.add(
                    "queue-wait",
                    "serve",
                    pending.t_submit,
                    t_batch,
                    tid=self._client_tid(pending.request.client_id),
                )

        to_render: list[_Pending] = []
        followers: dict[tuple, list[_Pending]] = {}
        hits: list[tuple[_Pending, FRRenderResult]] = []
        t_dedup = self._clock()
        for pending in clients:
            if pending.key in followers:
                followers[pending.key].append(pending)
                continue
            if self.frame_cache is not None:
                cached = self.frame_cache.peek(pending.key)
                if cached is not None:
                    self.frame_cache.hits += 1
                    self._note_prefetch_use(pending.key)
                    hits.append((pending, cached))
                    continue
            followers[pending.key] = []
            to_render.append(pending)
        if tracer is not None and clients:
            tracer.add(
                "dedup",
                "serve",
                t_dedup,
                self._clock(),
                tid=self._trace_tid,
                args={
                    "clients": len(clients),
                    "leaders": len(to_render),
                    "hits": len(hits),
                },
            )

        # Hits resolve before any rendering: their frames are already in
        # hand, so a render failure elsewhere in the batch must not reach
        # them (and their latency must not include the batch's renders).
        now = self._clock()
        for pending, result in hits:
            self._resolve(pending, result, cache_hit=True, batch_size=0, now=now)

        # Drop-or-degrade: a request that cannot make its deadline anyway
        # is served a cached neighbouring-region frame (coarser LOD at its
        # gaze) instead of paying a render that lands late.
        to_render = [p for p in to_render if not self._try_degrade(p, followers)]

        # Prefetch leaders: only speculations that are still worth the
        # render — not already rendered this batch by a client, not
        # already cached, not stale.
        prefetch_renders: list[_Pending] = []
        for pending in speculative:
            self._inflight_prefetch.discard(pending.key)
            if (
                pending.key in followers
                or any(p.key == pending.key for p in prefetch_renders)
                or (
                    self.frame_cache is not None
                    and self.frame_cache.contains(pending.key)
                )
                or (
                    pending.t_deadline is not None
                    and self._clock() >= pending.t_deadline
                )
                or self.frame_cache is None
            ):
                self.prefetch_dropped += 1
                continue
            prefetch_renders.append(pending)

        # Pose groups: the camera fingerprint is the key's second element.
        # Client EDF order is preserved; prefetches ride at the back (and
        # may share a pose group — and its prepared prefix — with misses).
        # Pose groups are built per class: client misses never share a
        # render call with speculations, so a client's latency can never
        # include a prefetch frame's render time (a same-pose speculation
        # still reuses the pose's prepared prefix via the view cache).
        client_pose: dict[tuple, list[_Pending]] = {}
        for pending in to_render:
            client_pose.setdefault(pending.key[1], []).append(pending)
        spec_pose: dict[tuple, list[_Pending]] = {}
        for pending in prefetch_renders:
            spec_pose.setdefault(pending.key[1], []).append(pending)
        client_groups = list(client_pose.values())
        spec_groups = list(spec_pose.values())
        if self._pool is not None:
            groups = client_groups + spec_groups
            outcomes = await self._dispatch_pool(groups) if groups else []
        else:
            # Inline rendering blocks the event loop, so purely speculative
            # pose groups yield to real traffic: if a client miss arrived
            # while earlier groups rendered, the speculation goes back to
            # the low-priority queue for a later cycle instead of making
            # the miss wait out a render it does not need.
            groups = list(client_groups)
            outcomes = self._dispatch_inline(client_groups)
            for group in spec_groups:
                # Let pending client tasks run (inline renders starve the
                # event loop) so an arrived miss is visible to the check.
                await asyncio.sleep(0)
                if self._queue is not None and self._queue.urgent_size > 0:
                    for pending in group:
                        self._inflight_prefetch.add(pending.key)
                        self._queue.put_nowait(pending)
                    continue
                groups.append(group)
                outcomes.extend(self._dispatch_inline([group]))

        for group, (outcome, t_start, t_done) in zip(groups, outcomes):
            client_renders = sum(1 for p in group if not p.prefetch)
            if tracer is not None:
                tracer.add(
                    "render-group",
                    "serve",
                    t_start,
                    t_done,
                    tid=self._trace_tid,
                    args={
                        "frames": len(group),
                        "clients": client_renders,
                        "failed": isinstance(outcome, BaseException),
                    },
                )
            if isinstance(outcome, BaseException):
                # A failing pose fails only its own group (and the
                # followers waiting on those keys); other poses in the
                # batch still render and hits were already served.
                for pending in group:
                    if pending.prefetch:
                        self.prefetch_failed += 1
                        continue
                    if pending.future is not None and not pending.future.done():
                        pending.future.set_exception(outcome)
                    for follower in followers.get(pending.key, []):
                        if (
                            follower.future is not None
                            and not follower.future.done()
                        ):
                            follower.future.set_exception(outcome)
                continue
            if client_renders:
                self.batch_sizes.append(client_renders)
                render_hist = self.stage_histograms["render"]
                for _ in range(client_renders):
                    # Each client request in the group is charged the
                    # group's render duration — the same attribution the
                    # latency stamps use.
                    render_hist.observe(t_done - t_start)
            for pending, result in zip(group, outcome):
                if pending.prefetch:
                    # Speculative frames fill the cache but are invisible
                    # to client-traffic accounting (no latency, no served
                    # count, no cache hit/miss counters).
                    self.frame_cache.put(pending.key, result)
                    self._prefetched_keys.add(pending.key)
                    self.prefetch_rendered += 1
                    continue
                if self.frame_cache is not None:
                    self.frame_cache.misses += 1
                    self.frame_cache.put(pending.key, result)
                self._resolve(
                    pending,
                    result,
                    cache_hit=False,
                    batch_size=client_renders,
                    now=t_done,
                )
                for follower in followers.get(pending.key, []):
                    # A coalesced duplicate is a cache hit in every way
                    # that matters: it is served from the keyed frame, not
                    # rendered.
                    if self.frame_cache is not None:
                        self.frame_cache.hits += 1
                    self._resolve(
                        follower, result, cache_hit=True, batch_size=0,
                        now=t_done,
                    )

    def _client_tid(self, client_id: int) -> int:
        """The trace lane of one client's request spans (named lazily)."""
        tid = Tracer.CLIENT_TID_BASE + client_id
        if client_id not in self._traced_clients:
            self._traced_clients.add(client_id)
            if self.tracer is not None:
                self.tracer.name_thread(tid, f"client {client_id}")
        return tid

    def _resolve(
        self,
        pending: _Pending,
        result: FRRenderResult,
        cache_hit: bool,
        batch_size: int,
        now: float,
        degraded: bool = False,
    ) -> FrameResponse:
        latency = now - pending.t_submit
        self.latencies_s.append(latency)
        self.stage_histograms["total"].observe(latency)
        self.requests_served += 1
        missed = pending.t_deadline is not None and now > pending.t_deadline
        if missed:
            self.deadline_misses += 1
        else:
            self.on_time += 1
        if degraded:
            self.degraded_served += 1
        if self.tracer is not None:
            self.tracer.add(
                "request",
                "serve",
                pending.t_submit,
                now,
                tid=self._client_tid(pending.request.client_id),
                args={
                    "hit": cache_hit,
                    "degraded": degraded,
                    "missed": missed,
                    "batch": batch_size,
                },
            )
        response = FrameResponse(
            request=pending.request,
            result=result,
            cache_hit=cache_hit,
            batch_size=batch_size,
            latency_s=latency,
            deadline_s=pending.deadline_s,
            deadline_missed=missed,
            degraded=degraded,
        )
        if pending.future is not None and not pending.future.done():
            pending.future.set_result(response)
        return response

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def deadline_stats(self) -> dict:
        """Deadline-policy counters (``on_time + misses == served`` always)."""
        served = self.requests_served
        return {
            "served": served,
            "on_time": self.on_time,
            "deadline_misses": self.deadline_misses,
            "deadline_miss_rate": self.deadline_misses / served if served else 0.0,
            "degraded_served": self.degraded_served,
            "degraded_rate": self.degraded_served / served if served else 0.0,
            "degrade_backfills": self.degrade_backfills,
        }

    def prefetch_stats(self) -> dict:
        """Speculation counters (prefetch traffic is never client traffic)."""
        return {
            "enqueued": self.prefetch_enqueued,
            "rendered": self.prefetch_rendered,
            "dropped": self.prefetch_dropped,
            "failed": self.prefetch_failed,
            "useful": self.prefetch_useful,
            "backlog": len(self._inflight_prefetch),
        }

    def transport_stats(self) -> dict | None:
        """The worker pool's frame-transport accounting (``None`` inline).

        Read it *before* :meth:`close` — a loop that owns its pool drops
        the pool (and its counters) on close.
        """
        return self._pool.transport_stats() if self._pool is not None else None

    def stage_breakdown(self) -> dict[str, dict[str, float]]:
        """Per-stage latency summary from the loop's log-bucket histograms.

        ``queue`` is submit→batch wait (all client requests), ``render``
        the request's pose-group render time (misses only), ``total`` the
        end-to-end latency.  Values in milliseconds; percentiles are
        bucket-resolved (~10%), mergeable across shards via
        :meth:`~repro.obs.Histogram.merge`.
        """
        out = {}
        for stage, hist in self.stage_histograms.items():
            out[stage] = {
                "count": hist.count,
                "mean_ms": hist.mean() * 1e3,
                "p50_ms": hist.percentile(50.0) * 1e3,
                "p90_ms": hist.percentile(90.0) * 1e3,
                "p99_ms": hist.percentile(99.0) * 1e3,
            }
        return out

    def register_metrics(self, registry: MetricsRegistry, **labels: str) -> None:
        """Attach every live counter/gauge/histogram of this loop (and its
        caches and pool) onto ``registry``.

        The pre-existing ``stats()`` dicts remain thin views over the same
        objects; the registry adds naming, exposition and delta semantics.
        """
        if self.frame_cache is not None:
            self.frame_cache.register_metrics(registry, **labels)
        self.view_cache.register_metrics(registry, **labels)
        for name, attr in (
            ("serve_requests_served", "requests_served"),
            ("serve_on_time", "on_time"),
            ("serve_deadline_misses", "deadline_misses"),
            ("serve_degraded_served", "degraded_served"),
            ("serve_degrade_backfills", "degrade_backfills"),
            ("serve_max_queue_depth", "max_queue_depth"),
            ("serve_prefetch_enqueued", "prefetch_enqueued"),
            ("serve_prefetch_rendered", "prefetch_rendered"),
            ("serve_prefetch_dropped", "prefetch_dropped"),
            ("serve_prefetch_failed", "prefetch_failed"),
            ("serve_prefetch_useful", "prefetch_useful"),
        ):
            registry.gauge_fn(name, lambda a=attr: getattr(self, a), **labels)
        for stage, hist in self.stage_histograms.items():
            registry.register(f"serve_stage_{stage}_seconds", hist, **labels)
        if self._pool is not None and self._owns_pool:
            # A shared pool (shard router) is registered once by its owner,
            # not once per shard under conflicting labels.
            self._pool.register_metrics(registry, **labels)
