"""Intersection-aware pruning — Sec 3.2.

Sorting points by CE and removing the lowest-CE fraction removes the points
that consume the most tile–ellipse intersections per pixel of visual
contribution — the quantity that actually limits rendering speed (Sec 3.1).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..splat.gaussians import GaussianModel


@dataclasses.dataclass
class PruneResult:
    """A pruned model plus the bookkeeping of what was removed."""

    model: GaussianModel
    kept_indices: np.ndarray  # indices into the *input* model
    removed_indices: np.ndarray

    @property
    def prune_fraction(self) -> float:
        total = self.kept_indices.size + self.removed_indices.size
        return self.removed_indices.size / total if total else 0.0


def prune_lowest_ce(
    model: GaussianModel,
    ce: np.ndarray,
    fraction: float,
) -> PruneResult:
    """Remove the ``fraction`` of points with the lowest CE.

    Ties are broken deterministically by index.  ``fraction`` is clamped so
    at least one point always survives.
    """
    ce = np.asarray(ce, dtype=np.float64)
    if ce.shape != (model.num_points,):
        raise ValueError(f"ce must be (N,)={model.num_points}, got {ce.shape}")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")

    n = model.num_points
    n_remove = min(int(np.floor(n * fraction)), n - 1)
    order = np.argsort(ce, kind="stable")  # ascending: lowest CE first
    removed = np.sort(order[:n_remove])
    kept = np.sort(order[n_remove:])
    return PruneResult(model=model.subset(kept), kept_indices=kept, removed_indices=removed)


def prune_to_count(
    model: GaussianModel,
    ce: np.ndarray,
    target_points: int,
) -> PruneResult:
    """Prune down to an exact point budget (used to match FR level sizes)."""
    if target_points <= 0:
        raise ValueError("target_points must be positive")
    target_points = min(target_points, model.num_points)
    fraction = 1.0 - target_points / model.num_points
    result = prune_lowest_ce(model, ce, fraction)
    # Floor rounding can keep one extra point; trim deterministically.
    while result.model.num_points > target_points:
        order = np.argsort(ce[result.kept_indices], kind="stable")
        drop = result.kept_indices[order[0]]
        keep_mask = result.kept_indices != drop
        result = PruneResult(
            model=model.subset(result.kept_indices[keep_mask]),
            kept_indices=result.kept_indices[keep_mask],
            removed_indices=np.sort(np.append(result.removed_indices, drop)),
        )
    return result
