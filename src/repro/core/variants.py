"""MetaSapiens model variants (Sec 6): -H, -M, -L.

The three variants differ in how far the L1 (foveal) model is pruned from
the dense model: to 99%, 98% and 97% of the dense model's PSNR respectively,
landing at roughly 16% / 12% / 10% of the dense model size.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from ..hvs.metrics import psnr
from ..splat.camera import Camera
from ..splat.gaussians import GaussianModel
from ..splat.renderer import RenderConfig, render
from ..train.trainer import TrainConfig, finetune
from .ce import compute_ce
from .pruning import prune_lowest_ce
from .scale_decay import ScaleDecayConfig, make_scale_decay_regularizer

VARIANT_PSNR_FRACTION = {"H": 0.99, "M": 0.98, "L": 0.97}


@dataclasses.dataclass
class VariantResult:
    """A MetaSapiens variant's L1 model and its quality bookkeeping."""

    name: str
    model: GaussianModel
    psnr: float
    dense_psnr: float
    size_fraction: float  # model storage relative to the dense model

    @property
    def psnr_fraction(self) -> float:
        return self.psnr / self.dense_psnr if self.dense_psnr else float("nan")


def mean_psnr(
    model: GaussianModel,
    cameras: Sequence[Camera],
    targets: Sequence[np.ndarray],
    config: RenderConfig | None = None,
) -> float:
    """Average PSNR of a model against target images."""
    values = []
    for camera, target in zip(cameras, targets):
        result = render(model, camera, config)
        values.append(psnr(target, result.image))
    finite = [v for v in values if np.isfinite(v)]
    return float(np.mean(finite)) if finite else float("inf")


def build_variant(
    dense_model: GaussianModel,
    cameras: Sequence[Camera],
    targets: Sequence[np.ndarray],
    variant: str = "H",
    prune_fraction: float = 0.15,
    max_rounds: int = 12,
    train_config: TrainConfig | None = None,
    scale_decay: ScaleDecayConfig | None = None,
    render_config: RenderConfig | None = None,
    finetune_rounds: int = 1,
) -> VariantResult:
    """Prune a dense model until PSNR hits the variant's target fraction.

    Follows Sec 3.4/Sec 6: repeated CE pruning with scale-decay re-training,
    stopping just *before* PSNR would fall below the variant's fraction of
    the dense model's PSNR (the last model still above the bar is returned).
    """
    variant = variant.upper()
    if variant not in VARIANT_PSNR_FRACTION:
        raise KeyError(f"variant must be one of {sorted(VARIANT_PSNR_FRACTION)}")
    target_fraction = VARIANT_PSNR_FRACTION[variant]

    dense_psnr = mean_psnr(dense_model, cameras, targets, render_config)
    floor = dense_psnr * target_fraction

    regularizer = make_scale_decay_regularizer(
        cameras, scale_decay or ScaleDecayConfig(), render_config
    )
    train_config = train_config or TrainConfig(iterations=8)

    model = dense_model.copy()
    best = model
    best_psnr = dense_psnr
    for _ in range(max_rounds):
        ce = compute_ce(model, cameras, render_config)
        candidate = prune_lowest_ce(model, ce.ce, prune_fraction).model
        for _ in range(finetune_rounds):
            finetune(candidate, cameras, targets, train_config, regularizer=regularizer)
        candidate_psnr = mean_psnr(candidate, cameras, targets, render_config)
        if candidate_psnr < floor:
            break
        model = candidate
        best = candidate
        best_psnr = candidate_psnr

    return VariantResult(
        name=f"MetaSapiens-{variant}",
        model=best,
        psnr=best_psnr,
        dense_psnr=dense_psnr,
        size_fraction=best.storage_bytes() / dense_model.storage_bytes(),
    )
