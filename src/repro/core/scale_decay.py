"""Scale decay — Sec 3.3, Eqns 4–6.

The Weighted Scale metric averages ellipse scales, counting only points that
are both large **and** heavily used in rendering:

    WS = (1/N) Σ_i S_i · G_i,      G_i = (U_i > T) · (U_i − T)

where ``S_i`` is the maximum span of point ``i``'s ellipse, ``U_i`` the
number of tiles using the point, and ``T`` a usage threshold.  Integrated
into training as ``L = L_quality + γ·WS`` (Eqn 6), its gradient pushes down
the scales of exactly the points responsible for excess tile–ellipse
intersections.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from ..splat.camera import Camera
from ..splat.gaussians import GaussianModel
from ..splat.renderer import RenderConfig, render


@dataclasses.dataclass(frozen=True)
class ScaleDecayConfig:
    """Hyper-parameters of the WS regularizer."""

    gamma: float = 1e-3  # γ in Eqn 6
    usage_threshold: float = 4.0  # T in Eqn 5, in tiles


def usage_weights(tiles_per_point: np.ndarray, threshold: float) -> np.ndarray:
    """G_i of Eqn 5: thresholded tile-usage weights."""
    u = np.asarray(tiles_per_point, dtype=np.float64)
    return np.where(u > threshold, u - threshold, 0.0)


def weighted_scale(model: GaussianModel, tiles_per_point: np.ndarray, threshold: float) -> float:
    """The WS metric (Eqn 4) for a model under a given usage profile."""
    g = usage_weights(tiles_per_point, threshold)
    return float(np.mean(model.max_scales * g))


def weighted_scale_grad(
    model: GaussianModel,
    tiles_per_point: np.ndarray,
    config: ScaleDecayConfig,
) -> tuple[float, np.ndarray]:
    """γ·WS and its gradient w.r.t. the per-point isotropic log-scale.

    ``S_i = exp(max_axis log_scale)``; an isotropic log-scale offset ``u``
    shifts every axis equally, so ``dS_i/du = S_i`` and the gradient of
    γ·WS w.r.t. ``u_i`` is ``γ · G_i · S_i / N``.  Tile usage ``U_i`` is
    treated as a constant (it changes only through the non-differentiable
    tiling step, re-measured each pruning round per Fig 6).
    """
    g = usage_weights(tiles_per_point, config.usage_threshold)
    scales = model.max_scales
    n = model.num_points
    loss = config.gamma * float(np.mean(scales * g))
    grad = config.gamma * g * scales / n
    return loss, grad


def measure_usage(
    model: GaussianModel,
    cameras: Sequence[Camera],
    config: RenderConfig | None = None,
) -> np.ndarray:
    """Per-point tile usage U_i, averaged over poses (for the WS weights)."""
    usage = np.zeros(model.num_points)
    for camera in cameras:
        result = render(model, camera, config)
        usage += result.stats.tiles_per_point / len(cameras)
    return usage


def make_scale_decay_regularizer(
    cameras: Sequence[Camera],
    config: ScaleDecayConfig | None = None,
    render_config: RenderConfig | None = None,
    refresh_every: int = 5,
):
    """Build a trainer-compatible regularizer closure applying γ·WS.

    Tile usage is re-measured every ``refresh_every`` calls (a full re-tiling
    per optimizer step would dominate runtime for no benefit — usage varies
    slowly during fine-tuning).
    """
    config = config or ScaleDecayConfig()
    state: dict[str, object] = {"usage": None, "calls": 0}

    def regularizer(model: GaussianModel) -> tuple[float, dict[str, np.ndarray]]:
        calls = int(state["calls"])
        if state["usage"] is None or calls % refresh_every == 0:
            state["usage"] = measure_usage(model, cameras, render_config)
        state["calls"] = calls + 1
        usage = state["usage"]
        if usage.shape[0] != model.num_points:  # model was pruned since
            usage = measure_usage(model, cameras, render_config)
            state["usage"] = usage
        loss, grad = weighted_scale_grad(model, usage, config)
        return loss, {"log_scales": grad}

    return regularizer
