"""Computational Efficiency (CE) metric — Sec 3.2, Eqn 3.

    CE_i = Val_i / Comp_i

- ``Val_i``: the number of pixels *dominated* by point ``i`` — pixels where
  ``i`` has the highest numerical contribution ``T_i α_i`` during
  rasterization.
- ``Comp_i``: the number of tiles that intersect and use point ``i`` (the
  quantity that actually drives rendering latency, per Sec 3.1).

A point's CE is frame-specific; following the paper we aggregate with the
**maximum** over the training poses (the average is susceptible to dataset
bias, and a point outside every frustum gets CE = 0 and is pruned first).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from ..splat.camera import Camera
from ..splat.gaussians import GaussianModel
from ..splat.renderer import RenderConfig, ViewCache, render_batch


@dataclasses.dataclass
class CEResult:
    """Per-point CE plus the raw Val/Comp aggregates it was built from."""

    ce: np.ndarray  # (N,) max over poses of Val/Comp
    max_val: np.ndarray  # (N,) max dominated pixels over poses
    max_comp: np.ndarray  # (N,) max tile usage over poses
    total_intersections: float  # mean per-frame tile-ellipse intersections


def frame_ce(
    dominated_pixels: np.ndarray,
    tiles_per_point: np.ndarray,
) -> np.ndarray:
    """Single-frame CE: Val/Comp with unused points pinned to zero."""
    comp = np.asarray(tiles_per_point, dtype=np.float64)
    val = np.asarray(dominated_pixels, dtype=np.float64)
    return np.where(comp > 0, val / np.maximum(comp, 1.0), 0.0)


def compute_ce(
    model: GaussianModel,
    cameras: Sequence[Camera],
    config: RenderConfig | None = None,
    aggregate: str = "max",
    batch_size: int | None = None,
    cache: ViewCache | None = None,
) -> CEResult:
    """Compute CE for every point across the given training poses.

    ``aggregate`` is "max" (paper default) or "mean" (for the ablation that
    motivates the max choice).  Poses render through the batched
    rasterization path in chunks of ``batch_size`` (default 16), with each
    chunk's frames released before the next renders, so peak memory stays
    bounded on large pose sets; a :class:`repro.splat.ViewCache` shares view
    preparation with other consumers of the same (model, pose) pairs.
    """
    if not cameras:
        raise ValueError("need at least one camera")
    if aggregate not in ("max", "mean"):
        raise ValueError(f"aggregate must be 'max' or 'mean', got {aggregate!r}")
    if batch_size is not None and batch_size <= 0:
        raise ValueError("batch_size must be positive")

    n = model.num_points
    agg_ce = np.zeros(n)
    max_val = np.zeros(n)
    max_comp = np.zeros(n)
    intersections = 0.0

    cameras = list(cameras)
    step = batch_size or 16
    for i in range(0, len(cameras), step):
        chunk = render_batch(model, cameras[i : i + step], config, cache=cache)
        for result in chunk:
            stats = result.stats
            ce = frame_ce(stats.dominated_pixels, stats.tiles_per_point)
            if aggregate == "max":
                agg_ce = np.maximum(agg_ce, ce)
            else:
                agg_ce += ce / len(cameras)
            max_val = np.maximum(max_val, stats.dominated_pixels)
            max_comp = np.maximum(max_comp, stats.tiles_per_point)
            intersections += stats.total_intersections / len(cameras)

    return CEResult(
        ce=agg_ce,
        max_val=max_val,
        max_comp=max_comp,
        total_intersections=intersections,
    )
