"""MetaSapiens contribution #1: efficiency-aware pruning (paper Sec 3)."""

from .ce import CEResult, compute_ce, frame_ce
from .pipeline import (
    PruneTrainConfig,
    PruneTrainResult,
    efficiency_aware_optimize,
    make_l1_quality_loss,
    mean_intersections,
)
from .pruning import PruneResult, prune_lowest_ce, prune_to_count
from .scale_decay import (
    ScaleDecayConfig,
    make_scale_decay_regularizer,
    measure_usage,
    usage_weights,
    weighted_scale,
    weighted_scale_grad,
)
from .variants import VARIANT_PSNR_FRACTION, VariantResult, build_variant, mean_psnr

__all__ = [
    "CEResult",
    "PruneResult",
    "PruneTrainConfig",
    "PruneTrainResult",
    "ScaleDecayConfig",
    "VARIANT_PSNR_FRACTION",
    "VariantResult",
    "build_variant",
    "compute_ce",
    "efficiency_aware_optimize",
    "frame_ce",
    "make_l1_quality_loss",
    "make_scale_decay_regularizer",
    "mean_intersections",
    "mean_psnr",
    "measure_usage",
    "prune_lowest_ce",
    "prune_to_count",
    "usage_weights",
    "weighted_scale",
    "weighted_scale_grad",
]
