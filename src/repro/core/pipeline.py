"""The iterative prune / re-train controller of Fig 6 (Sec 3.4).

Given a dense model:

1. compute CE for all points and prune the lowest-CE ``R`` fraction,
2. if the quality loss rose above the prescribed threshold, re-train with
   the composite loss ``L = L_quality + γ·WS`` (scale decay) until quality
   recovers,
3. repeat until the iteration budget is exhausted.

Pruning and scale decay interact (scaling an ellipse changes its CE), which
is exactly why the loop re-measures CE every round.  The controller needs no
quality-specific hyper-parameter tuning: monitoring L_quality automatically
yields a model at the requested quality.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

import numpy as np

from ..splat.camera import Camera
from ..splat.gaussians import GaussianModel
from ..splat.renderer import RenderConfig, render
from ..train.losses import l1_loss
from ..train.trainer import TrainConfig, finetune
from .ce import compute_ce
from .pruning import prune_lowest_ce
from .scale_decay import ScaleDecayConfig, make_scale_decay_regularizer

# A quality loss maps (model) -> scalar, lower = better quality.
QualityLoss = Callable[[GaussianModel], float]


@dataclasses.dataclass
class PruneTrainConfig:
    """Knobs of the Fig 6 loop."""

    prune_fraction: float = 0.10  # R in the paper
    max_iterations: int = 4
    max_retrain_rounds: int = 2
    quality_threshold: float | None = None  # absolute L_quality bound
    relative_threshold: float = 1.10  # or: allow 10% above the dense loss
    train: TrainConfig = dataclasses.field(default_factory=TrainConfig)
    scale_decay: ScaleDecayConfig = dataclasses.field(default_factory=ScaleDecayConfig)
    render: RenderConfig = dataclasses.field(default_factory=RenderConfig)


@dataclasses.dataclass
class PruneTrainResult:
    """Output of the controller: the efficient model and its trajectory."""

    model: GaussianModel
    quality_history: list[float]
    point_history: list[int]
    intersection_history: list[float]


def make_l1_quality_loss(
    cameras: Sequence[Camera],
    targets: Sequence[np.ndarray],
    config: RenderConfig | None = None,
) -> QualityLoss:
    """Default L_quality: mean L1 against target images over eval views."""

    def loss(model: GaussianModel) -> float:
        total = 0.0
        for camera, target in zip(cameras, targets):
            result = render(model, camera, config)
            total += l1_loss(result.image, target) / len(cameras)
        return total

    return loss


def mean_intersections(
    model: GaussianModel,
    cameras: Sequence[Camera],
    config: RenderConfig | None = None,
) -> float:
    """Mean per-frame tile–ellipse intersections over poses."""
    total = 0.0
    for camera in cameras:
        result = render(model, camera, config)
        total += result.stats.total_intersections / len(cameras)
    return total


def efficiency_aware_optimize(
    dense_model: GaussianModel,
    train_cameras: Sequence[Camera],
    train_targets: Sequence[np.ndarray],
    quality_loss: QualityLoss | None = None,
    config: PruneTrainConfig | None = None,
) -> PruneTrainResult:
    """Run the full Fig 6 procedure on a dense model.

    ``quality_loss`` defaults to the L1 loss against the training targets;
    benchmarks pass an HVSQ-based loss for the foveated levels (Sec 4.3).
    """
    config = config or PruneTrainConfig()
    if quality_loss is None:
        quality_loss = make_l1_quality_loss(train_cameras, train_targets, config.render)

    model = dense_model.copy()
    baseline_quality = quality_loss(model)
    threshold = (
        config.quality_threshold
        if config.quality_threshold is not None
        else baseline_quality * config.relative_threshold
    )

    quality_history = [baseline_quality]
    point_history = [model.num_points]
    intersection_history = [mean_intersections(model, train_cameras, config.render)]

    regularizer = make_scale_decay_regularizer(
        train_cameras, config.scale_decay, config.render
    )

    for _ in range(config.max_iterations):
        ce = compute_ce(model, train_cameras, config.render)
        pruned = prune_lowest_ce(model, ce.ce, config.prune_fraction)
        model = pruned.model

        quality = quality_loss(model)
        rounds = 0
        while quality > threshold and rounds < config.max_retrain_rounds:
            finetune(
                model,
                train_cameras,
                train_targets,
                config.train,
                regularizer=regularizer,
            )
            quality = quality_loss(model)
            rounds += 1

        quality_history.append(quality)
        point_history.append(model.num_points)
        intersection_history.append(mean_intersections(model, train_cameras, config.render))

    return PruneTrainResult(
        model=model,
        quality_history=quality_history,
        point_history=point_history,
        intersection_history=intersection_history,
    )
