"""Objective image-quality metrics: PSNR, SSIM, and an LPIPS proxy.

The paper reports PSNR / SSIM / LPIPS for the foveal region comparison
(Fig 13).  PSNR and SSIM are the standard definitions.  True LPIPS needs a
pretrained CNN, unavailable offline; ``lpips_proxy`` is a multi-scale
gradient-feature distance with the same direction (lower = more similar) and
a similar sensitivity profile (penalizes structural differences across
scales more than uniform shifts).  DESIGN.md records the substitution.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from .features import luminance


def psnr(reference: np.ndarray, altered: np.ndarray, data_range: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB (identical images → inf)."""
    reference = np.asarray(reference, dtype=np.float64)
    altered = np.asarray(altered, dtype=np.float64)
    if reference.shape != altered.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {altered.shape}")
    mse = float(np.mean((reference - altered) ** 2))
    if mse == 0.0:
        return float("inf")
    return float(10.0 * np.log10(data_range**2 / mse))


def ssim(
    reference: np.ndarray,
    altered: np.ndarray,
    data_range: float = 1.0,
    sigma: float = 1.5,
) -> float:
    """Mean SSIM over luminance with a Gaussian window (Wang et al. 2004)."""
    ref = luminance(np.asarray(reference, dtype=np.float64))
    alt = luminance(np.asarray(altered, dtype=np.float64))
    if ref.shape != alt.shape:
        raise ValueError(f"shape mismatch: {ref.shape} vs {alt.shape}")

    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2

    def blur(x: np.ndarray) -> np.ndarray:
        return ndimage.gaussian_filter(x, sigma=sigma, mode="nearest")

    mu_r = blur(ref)
    mu_a = blur(alt)
    mu_r_sq = mu_r * mu_r
    mu_a_sq = mu_a * mu_a
    mu_ra = mu_r * mu_a
    sigma_r = blur(ref * ref) - mu_r_sq
    sigma_a = blur(alt * alt) - mu_a_sq
    sigma_ra = blur(ref * alt) - mu_ra

    num = (2.0 * mu_ra + c1) * (2.0 * sigma_ra + c2)
    den = (mu_r_sq + mu_a_sq + c1) * (sigma_r + sigma_a + c2)
    return float(np.mean(num / den))


def lpips_proxy(reference: np.ndarray, altered: np.ndarray, n_scales: int = 3) -> float:
    """Perceptual-distance proxy: multi-scale normalized feature distance.

    At each pyramid scale, compares unit-normalized (luma, |∇x|, |∇y|)
    feature vectors per pixel — the same "normalized deep feature distance"
    recipe as LPIPS with a fixed, hand-crafted feature bank.  Range ≈ [0, 1];
    lower is more similar.
    """
    ref = np.asarray(reference, dtype=np.float64)
    alt = np.asarray(altered, dtype=np.float64)
    if ref.shape != alt.shape:
        raise ValueError(f"shape mismatch: {ref.shape} vs {alt.shape}")

    def features(img: np.ndarray) -> np.ndarray:
        luma = luminance(img)
        gx = ndimage.sobel(luma, axis=1, mode="nearest") / 8.0
        gy = ndimage.sobel(luma, axis=0, mode="nearest") / 8.0
        stack = np.stack([luma, gx, gy], axis=-1)  # (H, W, 3)
        norm = np.linalg.norm(stack, axis=-1, keepdims=True)
        return stack / np.maximum(norm, 1e-6)

    def downsample(img: np.ndarray) -> np.ndarray:
        blurred = ndimage.gaussian_filter(img, sigma=(1.0, 1.0, 0.0), mode="nearest")
        return blurred[::2, ::2]

    total = 0.0
    cur_ref, cur_alt = ref, alt
    scales = 0
    for _ in range(n_scales):
        if min(cur_ref.shape[0], cur_ref.shape[1]) < 4:
            break
        dist = np.mean(np.sum((features(cur_ref) - features(cur_alt)) ** 2, axis=-1))
        total += float(dist)
        scales += 1
        cur_ref = downsample(cur_ref)
        cur_alt = downsample(cur_alt)
    return total / max(scales, 1)
