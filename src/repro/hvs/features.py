"""Early-vision feature extraction for the HVSQ metric.

The HVSQ metric compares pooled statistics "in a feature space (as opposed
to the pixel space) to emulate the feature extraction in human's early
visual processing" (Sec 2.2).  We use a compact steerable-filter-like bank:

- luminance (L),
- horizontal and vertical gradient magnitude (simple/complex-cell response),
- a centre-surround (Laplacian) channel.

These are the standard first-stage channels of metamer models; they are
cheap, differentiable in principle, and sufficient for the pooled mean/std
statistics of Eqn 2.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

LUMA_WEIGHTS = np.array([0.299, 0.587, 0.114])

NUM_FEATURES = 4


def luminance(image: np.ndarray) -> np.ndarray:
    """Rec.601 luma of an ``(H, W, 3)`` image."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim == 2:
        return image
    return image @ LUMA_WEIGHTS


def feature_stack(image: np.ndarray) -> np.ndarray:
    """Feature maps of an image, shape ``(F, H, W)`` with ``F = 4``."""
    luma = luminance(image)
    gx = ndimage.sobel(luma, axis=1, mode="nearest") / 8.0
    gy = ndimage.sobel(luma, axis=0, mode="nearest") / 8.0
    lap = ndimage.laplace(luma, mode="nearest") / 8.0
    return np.stack([luma, np.abs(gx), np.abs(gy), np.abs(lap)])


def box_filter(data: np.ndarray, radius: int) -> np.ndarray:
    """Mean filter with a ``(2r+1)²`` window via a uniform filter.

    ``radius = 0`` returns the input unchanged.
    """
    if radius <= 0:
        return np.asarray(data, dtype=np.float64)
    size = 2 * radius + 1
    return ndimage.uniform_filter(np.asarray(data, dtype=np.float64), size=size, mode="nearest")


def pooled_statistics(features: np.ndarray, radius: int) -> tuple[np.ndarray, np.ndarray]:
    """Pooled mean and standard deviation of each feature map.

    Returns two ``(F, H, W)`` arrays: windowed mean and windowed std at a
    fixed pooling radius.
    """
    mean = np.stack([box_filter(f, radius) for f in features])
    mean_sq = np.stack([box_filter(f * f, radius) for f in features])
    var = np.maximum(mean_sq - mean * mean, 0.0)
    return mean, np.sqrt(var)
