"""Eccentricity geometry and retinal pooling sizes (Sec 2.2 of the paper).

The HVSQ metric needs, per pixel, the size of the *spatial pooling* region —
the retinal neighbourhood whose feature statistics the visual system
aggregates.  Pooling size grows with eccentricity (Freeman & Simoncelli
2011); we model the pooling **diameter** in visual degrees as

    d(e) = d0 + k1·e + k2·e²

with a linear term dominating (k1 ≈ 0.4, Bouma-law scale) and a small
quadratic term reflecting the accelerating fall-off the paper cites.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..splat.camera import Camera


@dataclasses.dataclass(frozen=True)
class PoolingModel:
    """Eccentricity → pooling-diameter model, in visual degrees."""

    d0_deg: float = 0.25  # foveal floor
    k1: float = 0.40  # linear growth (Bouma-style)
    k2: float = 0.002  # mild quadratic acceleration

    def diameter_deg(self, eccentricity_deg: np.ndarray) -> np.ndarray:
        e = np.asarray(eccentricity_deg, dtype=np.float64)
        return self.d0_deg + self.k1 * e + self.k2 * e * e

    def diameter_px(self, eccentricity_deg: np.ndarray, degrees_per_pixel: float) -> np.ndarray:
        """Pooling diameter in pixels (at least one pixel)."""
        diam = self.diameter_deg(eccentricity_deg) / max(degrees_per_pixel, 1e-9)
        return np.maximum(diam, 1.0)


def eccentricity_map(
    camera: Camera,
    gaze: tuple[float, float] | None = None,
) -> np.ndarray:
    """Per-pixel eccentricity (degrees) for a camera and gaze point."""
    return camera.pixel_eccentricity(gaze)


def pooling_radius_map(
    camera: Camera,
    gaze: tuple[float, float] | None = None,
    pooling: PoolingModel | None = None,
) -> np.ndarray:
    """Per-pixel pooling *radius* in pixels (integer, ≥ 0)."""
    pooling = pooling or PoolingModel()
    ecc = eccentricity_map(camera, gaze)
    diam = pooling.diameter_px(ecc, camera.degrees_per_pixel())
    return np.maximum(np.round(diam / 2.0).astype(np.int64) - 0, 0)


def quantize_radii(radii: np.ndarray, levels: int = 6) -> tuple[np.ndarray, np.ndarray]:
    """Quantize a per-pixel radius map to a small set of distinct radii.

    Box-filtering at arbitrary per-pixel radii is quadratic; instead we pick
    ``levels`` representative radii (geometrically spaced) and assign each
    pixel the nearest one from above (conservative: never smaller pooling).

    Returns ``(distinct_radii (L,), per-pixel level index (H, W))``.
    """
    radii = np.asarray(radii)
    r_max = int(radii.max(initial=0))
    if r_max <= 0:
        return np.zeros(1, dtype=np.int64), np.zeros(radii.shape, dtype=np.int64)
    # Geometric ladder from 1 to r_max, always including 0.
    ladder = [0]
    r = 1.0
    while len(ladder) < levels and r < r_max:
        ladder.append(int(round(r)))
        r *= 1.8
    ladder.append(r_max)
    distinct = np.unique(np.asarray(ladder, dtype=np.int64))
    # Assign each pixel the smallest ladder radius >= its radius.
    idx = np.searchsorted(distinct, radii, side="left")
    idx = np.clip(idx, 0, len(distinct) - 1)
    return distinct, idx
