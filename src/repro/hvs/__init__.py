"""Human visual system model: eccentricity, pooling, HVSQ, objective metrics."""

from .eccentricity import PoolingModel, eccentricity_map, pooling_radius_map, quantize_radii
from .features import NUM_FEATURES, box_filter, feature_stack, luminance, pooled_statistics
from .hvsq import HVSQResult, hvsq, hvsq_per_region
from .metrics import lpips_proxy, psnr, ssim

__all__ = [
    "HVSQResult",
    "NUM_FEATURES",
    "PoolingModel",
    "box_filter",
    "eccentricity_map",
    "feature_stack",
    "hvsq",
    "hvsq_per_region",
    "lpips_proxy",
    "luminance",
    "pooled_statistics",
    "pooling_radius_map",
    "psnr",
    "quantize_radii",
    "ssim",
]
