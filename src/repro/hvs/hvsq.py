"""The eccentricity-aware HVS Quality metric (Eqn 2 of the paper).

    HVSQ = (1/N) Σ_i [ ‖M(Iᵃ_i) − M(Iʳ_i)‖² + ‖σ(Iᵃ_i) − σ(Iʳ_i)‖² ]

Every pixel ``i`` owns a spatial pooling whose size grows with the pixel's
eccentricity; ``M`` and ``σ`` are the mean and standard deviation of early-
vision features inside that pooling.  Lower is more similar; two images whose
pooled feature statistics agree everywhere are *metamers* — indistinguishable
to a human observer fixating the gaze point.

Implementation notes: per-pixel variable-radius pooling is computed by
quantizing radii to a small ladder, box-filtering once per ladder level and
gathering per pixel (exact for pixels whose radius is on the ladder,
conservative otherwise).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..splat.camera import Camera
from .eccentricity import PoolingModel, eccentricity_map, quantize_radii
from .features import feature_stack, pooled_statistics


@dataclasses.dataclass
class HVSQResult:
    """HVSQ value plus the per-pixel error map (for regional aggregation)."""

    value: float
    error_map: np.ndarray  # (H, W) per-pixel pooled-statistic distance
    eccentricity: np.ndarray  # (H, W) degrees


def _per_pixel_error(
    reference: np.ndarray,
    altered: np.ndarray,
    radius_levels: np.ndarray,
    level_index: np.ndarray,
) -> np.ndarray:
    """Per-pixel Σ_f (Δmean² + Δstd²), pooling radius chosen per pixel."""
    feats_ref = feature_stack(reference)
    feats_alt = feature_stack(altered)

    h, w = level_index.shape
    error = np.zeros((h, w), dtype=np.float64)
    for li, radius in enumerate(radius_levels):
        mask = level_index == li
        if not mask.any():
            continue
        mean_r, std_r = pooled_statistics(feats_ref, int(radius))
        mean_a, std_a = pooled_statistics(feats_alt, int(radius))
        err = ((mean_a - mean_r) ** 2).sum(axis=0) + ((std_a - std_r) ** 2).sum(axis=0)
        error[mask] = err[mask]
    return error


def hvsq(
    reference: np.ndarray,
    altered: np.ndarray,
    camera: Camera,
    gaze: tuple[float, float] | None = None,
    pooling: PoolingModel | None = None,
    region_mask: np.ndarray | None = None,
) -> HVSQResult:
    """Compute HVSQ of ``altered`` w.r.t. ``reference`` under a gaze.

    Parameters
    ----------
    reference, altered:
        ``(H, W, 3)`` images in [0, 1].
    camera:
        Supplies the pixel→visual-angle mapping (display geometry).
    gaze:
        Gaze pixel; defaults to the image centre.
    region_mask:
        Optional boolean ``(H, W)`` mask restricting the average to a region
        (Sec 4.3: per-quality-level HVSQ simply iterates over the region's
        poolings instead of the whole image).
    """
    reference = np.asarray(reference, dtype=np.float64)
    altered = np.asarray(altered, dtype=np.float64)
    if reference.shape != altered.shape:
        raise ValueError(f"image shapes differ: {reference.shape} vs {altered.shape}")
    if reference.shape[0] != camera.height or reference.shape[1] != camera.width:
        raise ValueError("image size does not match camera")

    pooling = pooling or PoolingModel()
    ecc = eccentricity_map(camera, gaze)
    diam = pooling.diameter_px(ecc, camera.degrees_per_pixel())
    radii = np.maximum(np.round(diam / 2.0).astype(np.int64), 0)
    radius_levels, level_index = quantize_radii(radii)

    error = _per_pixel_error(reference, altered, radius_levels, level_index)

    if region_mask is not None:
        region_mask = np.asarray(region_mask, dtype=bool)
        if region_mask.shape != error.shape:
            raise ValueError("region_mask shape mismatch")
        if not region_mask.any():
            raise ValueError("region_mask selects no pixels")
        value = float(error[region_mask].mean())
    else:
        value = float(error.mean())
    return HVSQResult(value=value, error_map=error, eccentricity=ecc)


def hvsq_per_region(
    reference: np.ndarray,
    altered: np.ndarray,
    camera: Camera,
    region_boundaries_deg: tuple[float, ...],
    gaze: tuple[float, float] | None = None,
    pooling: PoolingModel | None = None,
) -> list[float]:
    """HVSQ of each eccentricity annulus (the paper's per-level L1..L4).

    ``region_boundaries_deg`` are the inner eccentricities of each region,
    e.g. ``(0, 18, 27, 33)``; region ``k`` spans ``[b_k, b_{k+1})`` degrees
    (the last region is unbounded above).
    """
    result = hvsq(reference, altered, camera, gaze=gaze, pooling=pooling)
    values = []
    bounds = list(region_boundaries_deg) + [np.inf]
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        mask = (result.eccentricity >= lo) & (result.eccentricity < hi)
        values.append(float(result.error_map[mask].mean()) if mask.any() else float("nan"))
    return values
