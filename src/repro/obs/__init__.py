"""Unified observability for the render/serve stack.

Two halves, one contract:

- :mod:`repro.obs.trace` — :class:`Tracer`, a bounded-ring span
  recorder with an injectable monotonic clock, cross-process span
  stitching over the executor pipe, and Chrome/Perfetto trace-event
  JSON export.  ``serve-sim --trace out.json`` produces one coherent
  timeline for a sharded, worker-pooled, prefetching replay.
- :mod:`repro.obs.metrics` — :class:`MetricsRegistry`, the
  process-wide registry of int-like :class:`Counter` values, callback
  :class:`Gauge` views, and mergeable log-bucket :class:`Histogram`
  latencies with ``snapshot()``/``delta`` semantics and Prometheus
  text exposition.  The serve tier's pre-existing ``stats()`` dicts
  are thin views over objects registered here.

See ``src/repro/obs/README.md`` for the overhead budget and the
Perfetto how-to.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    delta,
    set_default_registry,
)
from .trace import (
    NULL_SPAN,
    Tracer,
    active_tracer,
    backend_span,
    set_active_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Tracer",
    "active_tracer",
    "backend_span",
    "default_registry",
    "delta",
    "set_active_tracer",
    "set_default_registry",
]
