"""Low-overhead span tracer with Chrome/Perfetto trace-event export.

A :class:`Tracer` records closed spans — ``(name, category, t0, t1,
pid, tid, args)`` — into a bounded ring buffer and exports them as
Chrome trace-event JSON (the format ``chrome://tracing`` and
https://ui.perfetto.dev load natively).  It is deliberately *not* an
OpenTelemetry-style context-propagating tracer: the serve tier already
knows every request's lifecycle stamps (it computes latencies from
them), so spans are mostly recorded post-hoc from timestamps that
already exist.  What the tracer adds is retention, cross-process
stitching, and an export format.

Three properties carry the design:

- **Disabled means free.**  Every instrumentation site is either
  ``if tracer is not None`` on an attribute the hot path already
  touches, or :func:`backend_span` — one module-global load and an
  ``is None`` test returning a singleton no-op context manager.  The
  CI bench gates the off-path at ≤2% of serve throughput.
- **Cross-process timestamps need no translation.**  The default clock
  is ``time.perf_counter``, which on Linux is ``CLOCK_MONOTONIC`` —
  one clock domain shared by parent and forked/spawned workers.
  Worker spans ship across the executor pipe as compact tuples
  (:func:`Tracer.drain_compact`) piggybacked on the render payload and
  are re-attached with :func:`Tracer.adopt`; the export pass rebases
  everything to the earliest span, so the stitched timeline is
  coherent without clock negotiation.
- **Bounded memory.**  The ring buffer (``capacity`` spans, default
  65536) evicts oldest-first and counts what it dropped; a runaway
  replay degrades the trace, never the process.

Timestamps inside the tracer are seconds (whatever ``clock`` returns);
export converts to the trace-event format's microseconds.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Callable, Iterable, Sequence

__all__ = [
    "NULL_SPAN",
    "Tracer",
    "active_tracer",
    "backend_span",
    "set_active_tracer",
]

# Compact wire form of one span: (name, cat, t0, t1, tid, args|None).
CompactSpan = tuple


class _NullSpan:
    """Singleton no-op context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager that records one span on exit."""

    __slots__ = ("_tracer", "_name", "_cat", "_tid", "_args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str, tid: int, args: dict | None) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._tid = tid
        self._args = args
        self._t0 = 0.0

    def __enter__(self) -> "_LiveSpan":
        self._t0 = self._tracer.clock()
        return self

    def __exit__(self, *exc) -> None:
        tracer = self._tracer
        tracer.add(self._name, self._cat, self._t0, tracer.clock(), tid=self._tid, args=self._args)


class Tracer:
    """Bounded ring buffer of closed spans, one per traced operation.

    ``clock`` must be monotonic and shared with whoever else records
    into (or is adopted by) this tracer; the default
    ``time.perf_counter`` satisfies that across processes on Linux.
    ``tid`` is a free-form integer lane — the serve tier uses lane 0+
    for shard batchers and ``CLIENT_TID_BASE + client_id`` for
    per-client request lanes; workers get their own ``pid`` row.
    """

    #: Request lanes start here so they never collide with shard lanes.
    CLIENT_TID_BASE = 100

    def __init__(
        self,
        capacity: int = 65536,
        *,
        clock: Callable[[], float] = time.perf_counter,
        pid: int | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.clock = clock
        self.pid = os.getpid() if pid is None else pid
        self.dropped = 0
        self._spans: deque[tuple] = deque(maxlen=capacity)
        # (pid, tid) -> label and pid -> label, emitted as metadata events.
        self._thread_names: dict[tuple[int, int], str] = {}
        self._process_names: dict[int, str] = {}

    # -- recording ---------------------------------------------------------
    def add(
        self,
        name: str,
        cat: str,
        t0: float,
        t1: float,
        *,
        tid: int = 0,
        args: dict | None = None,
        pid: int | None = None,
    ) -> None:
        """Record a closed span from existing timestamps (seconds)."""
        if len(self._spans) == self.capacity:
            self.dropped += 1
        self._spans.append((name, cat, t0, t1, self.pid if pid is None else pid, tid, args))

    def span(self, name: str, cat: str = "serve", *, tid: int = 0, args: dict | None = None) -> _LiveSpan:
        """Context manager timing a block with this tracer's clock."""
        return _LiveSpan(self, name, cat, tid, args)

    def name_thread(self, tid: int, label: str, *, pid: int | None = None) -> None:
        self._thread_names[(self.pid if pid is None else pid, tid)] = label

    def name_process(self, pid: int, label: str) -> None:
        self._process_names[pid] = label

    # -- cross-process stitching -------------------------------------------
    def drain_compact(self) -> list[CompactSpan]:
        """Drain all spans to compact tuples for the executor pipe."""
        out = [(name, cat, t0, t1, tid, args) for (name, cat, t0, t1, _pid, tid, args) in self._spans]
        self._spans.clear()
        return out

    def adopt(self, spans: Sequence[CompactSpan], *, pid: int, process_label: str | None = None) -> None:
        """Stitch compact worker spans (same clock domain) into this trace."""
        if process_label is not None and pid not in self._process_names:
            self._process_names[pid] = process_label
        for name, cat, t0, t1, tid, args in spans:
            self.add(name, cat, t0, t1, tid=tid, args=args, pid=pid)

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._spans)

    def spans(self) -> list[tuple]:
        """Current contents, oldest first: (name, cat, t0, t1, pid, tid, args)."""
        return list(self._spans)

    # -- export ------------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """Chrome trace-event JSON object (``traceEvents`` list).

        All timestamps are rebased to the earliest span so the viewer
        opens at t=0; durations are microseconds per the format.  Spans
        are complete events (``ph: "X"``); track labels become metadata
        events (``ph: "M"``).
        """
        spans = list(self._spans)
        base = min((s[2] for s in spans), default=0.0)
        events: list[dict] = []
        for pid, label in sorted(self._process_names.items()):
            events.append(
                {"name": "process_name", "ph": "M", "pid": pid, "tid": 0, "args": {"name": label}}
            )
        for (pid, tid), label in sorted(self._thread_names.items()):
            events.append(
                {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid, "args": {"name": label}}
            )
        for name, cat, t0, t1, pid, tid, args in spans:
            event = {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": (t0 - base) * 1e6,
                "dur": max(0.0, (t1 - t0) * 1e6),
                "pid": pid,
                "tid": tid,
            }
            if args:
                event["args"] = args
            events.append(event)
        events.sort(key=lambda e: (e.get("ts", -1.0), e["pid"], e["tid"]))
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"dropped_spans": self.dropped},
        }

    def write(self, path: str | os.PathLike) -> int:
        """Write the Chrome trace JSON to ``path``; returns span count."""
        payload = self.to_chrome_trace()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, separators=(",", ":"))
        return len(self._spans)


# -- module-global activation (the backend-span seam) -----------------------
#
# Backends sit several layers below the serve loop and must not grow a
# tracer parameter through every dispatch signature.  Instead the layer
# that owns a tracer activates it around the render call; backend code
# asks for the active tracer through `backend_span`, which costs one
# global load + `is None` when tracing is off.

_ACTIVE: Tracer | None = None


def active_tracer() -> Tracer | None:
    return _ACTIVE


def set_active_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` as the process-active tracer; returns the previous.

    Callers restore the previous value when their scope ends (see
    ``ServeLoop._dispatch_inline`` and ``workers._worker_render``).
    """
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = tracer
    return prev


def backend_span(name: str, cat: str = "backend", *, tid: int = 0, args: dict | None = None):
    """Span on the active tracer, or the no-op singleton when tracing is off."""
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, cat, tid=tid, args=args)
