"""Process-wide metrics: counters, gauges, and log-bucket histograms.

One registry for the whole render/serve stack.  The pre-existing stats
surfaces (``FrameCache``, ``ViewCache``, ``ServeLoop.prefetch_stats``,
``RenderWorkerPool.transport_stats``, ``ShardRouter.stats``,
``SlabArena.stats``) re-register their counters and gauges here and keep
their ``stats()`` dicts as thin views over the same objects, so nothing
is counted twice and nothing drifts.

Design constraints, in order:

- **Int compatibility.**  Call sites across the serve tier mutate cache
  counters directly (``cache.hits += 1``) and tests compare them to
  plain ints (``assert cache.hits == 3``, ``cache.hits / total``).
  :class:`Counter` is therefore a full int-like value object — ``+=``,
  comparisons, arithmetic, ``int()`` — not a method-only facade, so the
  migration changes zero call sites.
- **Mergeable percentiles.**  :class:`Histogram` uses geometric
  ("log") buckets so two histograms recorded on different shards (or in
  different processes) merge by adding bucket counts, and percentiles
  of the merged distribution are exact up to bucket resolution
  (~10% relative error at the default growth factor).  Averaging
  per-shard percentiles — the bug class this replaces — has no such
  guarantee.
- **Delta semantics.**  ``snapshot()`` returns a plain dict of numbers;
  ``delta(prev, cur)`` subtracts monotonic values so a caller can meter
  an interval (one replay, one batch window) without resetting anything.

Exposition is Prometheus text format (``render_prometheus``) because it
is line-oriented, greppable, and loads into anything.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "delta",
    "set_default_registry",
]


def _label_suffix(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return "{" + inner + "}"


class Counter:
    """A monotonic integer that behaves like an ``int`` at call sites.

    Existing code does ``cache.hits += 1`` and ``cache.hits / total``;
    both keep working when the attribute becomes a :class:`Counter`.
    ``+=`` mutates in place (``__iadd__`` returns ``self``), so the
    object identity registered on a :class:`MetricsRegistry` survives
    augmented assignment — the registry always sees the live value.
    """

    __slots__ = ("_value",)

    def __init__(self, value: int = 0) -> None:
        self._value = int(value)

    @property
    def value(self) -> int:
        return self._value

    def inc(self, n: int = 1) -> None:
        self._value += int(n)

    def reset(self) -> None:
        self._value = 0

    # -- int-like protocol -------------------------------------------------
    def __iadd__(self, other: int) -> "Counter":
        self._value += int(other)
        return self

    def __isub__(self, other: int) -> "Counter":
        self._value -= int(other)
        return self

    def __int__(self) -> int:
        return self._value

    __index__ = __int__

    def __float__(self) -> float:
        return float(self._value)

    def __bool__(self) -> bool:
        return self._value != 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Counter):
            return self._value == other._value
        return self._value == other

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(self._value)

    def __lt__(self, other) -> bool:
        return self._value < int(other)

    def __le__(self, other) -> bool:
        return self._value <= int(other)

    def __gt__(self, other) -> bool:
        return self._value > int(other)

    def __ge__(self, other) -> bool:
        return self._value >= int(other)

    def __add__(self, other):
        return self._value + other

    __radd__ = __add__

    def __sub__(self, other):
        return self._value - other

    def __rsub__(self, other):
        return other - self._value

    def __mul__(self, other):
        return self._value * other

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self._value / other

    def __rtruediv__(self, other):
        return other / self._value

    def __floordiv__(self, other):
        return self._value // other

    def __mod__(self, other):
        return self._value % other

    def __neg__(self):
        return -self._value

    def __repr__(self) -> str:
        return f"Counter({self._value})"

    def __format__(self, spec: str) -> str:
        return format(self._value, spec)


class Gauge:
    """A point-in-time value: either set directly or backed by a callable.

    Callback gauges (``Gauge(fn=...)``) are how the existing stats
    surfaces re-register without rewriting their internals: the gauge
    reads the live attribute at snapshot time.
    """

    __slots__ = ("_value", "_fn")

    def __init__(self, value: float = 0.0, fn: Callable[[], float] | None = None) -> None:
        self._value = value
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            return self._fn()
        return self._value

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError("cannot set() a callback-backed gauge")
        self._value = value

    def __repr__(self) -> str:
        return f"Gauge({self.value!r})"


class Histogram:
    """Log-bucket histogram with exact merge and bucketed percentiles.

    Buckets are geometric: bucket ``i`` covers
    ``[v0 * growth**i, v0 * growth**(i+1))`` with ``v0 = 1e-6`` and
    ``growth = 1.2`` by default — for latencies in seconds that is 1 µs
    resolution at the bottom and ~10% relative error everywhere.
    Values ``<= v0`` land in the underflow bucket (index ``-1``).

    ``merge`` adds bucket counts, which is exactly the histogram of the
    concatenated samples; percentiles computed after a merge are
    therefore correct across shards/processes up to bucket width.
    """

    __slots__ = ("v0", "growth", "_log_growth", "_buckets", "_count", "_sum", "_min", "_max")

    def __init__(self, *, v0: float = 1e-6, growth: float = 1.2) -> None:
        if not v0 > 0.0:
            raise ValueError(f"v0 must be positive, got {v0}")
        if not growth > 1.0:
            raise ValueError(f"growth must exceed 1, got {growth}")
        self.v0 = v0
        self.growth = growth
        self._log_growth = math.log(growth)
        self._buckets: dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- recording ---------------------------------------------------------
    def _bucket_index(self, value: float) -> int:
        if value <= self.v0:
            return -1
        return int(math.log(value / self.v0) / self._log_growth)

    def observe(self, value: float) -> None:
        idx = self._bucket_index(value)
        self._buckets[idx] = self._buckets.get(idx, 0) + 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    # -- introspection -----------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def bucket_upper(self, idx: int) -> float:
        return self.v0 * self.growth ** (idx + 1)

    def buckets(self) -> dict[int, int]:
        return dict(self._buckets)

    def percentile(self, q: float) -> float:
        """Value at quantile ``q`` (0..100), resolved to bucket geometry.

        Returns the geometric midpoint of the bucket containing the
        target rank, clamped to the observed ``[min, max]`` so tiny
        sample counts do not report values outside the data.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if self._count == 0:
            return 0.0
        rank = q / 100.0 * self._count
        cumulative = 0
        for idx in sorted(self._buckets):
            cumulative += self._buckets[idx]
            if cumulative >= rank:
                if idx == -1:
                    return min(max(self.v0, self._min), self._max)
                lo = self.v0 * self.growth**idx
                hi = self.v0 * self.growth ** (idx + 1)
                mid = math.sqrt(lo * hi)
                return min(max(mid, self._min), self._max)
        return self._max

    # -- merge -------------------------------------------------------------
    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into ``self`` (in place); returns ``self``."""
        if (other.v0, other.growth) != (self.v0, self.growth):
            raise ValueError(
                "cannot merge histograms with different bucket geometry: "
                f"({self.v0}, {self.growth}) vs ({other.v0}, {other.growth})"
            )
        for idx, n in other._buckets.items():
            self._buckets[idx] = self._buckets.get(idx, 0) + n
        self._count += other._count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    @classmethod
    def merged(cls, histograms: Iterable["Histogram"]) -> "Histogram":
        """A fresh histogram holding the union of ``histograms``."""
        histograms = list(histograms)
        if not histograms:
            return cls()
        out = cls(v0=histograms[0].v0, growth=histograms[0].growth)
        for h in histograms:
            out.merge(h)
        return out

    def __repr__(self) -> str:
        return f"Histogram(count={self._count}, sum={self._sum:.6g})"


class MetricsRegistry:
    """Named view over live :class:`Counter`/:class:`Gauge`/:class:`Histogram` objects.

    Registration *attaches* an existing object under ``(name, labels)``
    — it never copies — so components keep mutating their own counters
    and the registry always reads current values.  Thread-safe for
    registration; reads are dict scans over immutable snapshots of the
    key set (fine under the GIL for this stack's access patterns).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}
        self._help: dict[str, str] = {}

    @staticmethod
    def _key(name: str, labels: Mapping[str, str]) -> tuple[str, tuple[tuple[str, str], ...]]:
        return name, tuple(sorted((k, str(v)) for k, v in labels.items()))

    def register(self, name: str, metric, *, help: str = "", **labels: str):
        """Attach ``metric`` under ``name`` + ``labels``; returns it.

        Re-registering the same key replaces the binding (components are
        recreated freely in tests and replays; last writer wins).
        """
        if not isinstance(metric, (Counter, Gauge, Histogram)):
            raise TypeError(f"not a metric: {metric!r}")
        with self._lock:
            self._metrics[self._key(name, labels)] = metric
            if help:
                self._help[name] = help
        return metric

    def counter(self, name: str, *, help: str = "", **labels: str) -> Counter:
        return self.register(name, Counter(), help=help, **labels)

    def gauge(self, name: str, *, help: str = "", **labels: str) -> Gauge:
        return self.register(name, Gauge(), help=help, **labels)

    def gauge_fn(self, name: str, fn: Callable[[], float], *, help: str = "", **labels: str) -> Gauge:
        return self.register(name, Gauge(fn=fn), help=help, **labels)

    def histogram(self, name: str, *, help: str = "", **labels: str) -> Histogram:
        return self.register(name, Histogram(), help=help, **labels)

    def unregister(self, name: str, **labels: str) -> None:
        with self._lock:
            self._metrics.pop(self._key(name, labels), None)

    def get(self, name: str, **labels: str):
        return self._metrics.get(self._key(name, labels))

    def names(self) -> list[str]:
        return sorted({name for name, _ in self._metrics})

    def __len__(self) -> int:
        return len(self._metrics)

    # -- snapshots ---------------------------------------------------------
    def snapshot(self) -> dict[str, float | int | dict]:
        """Flat ``{"name{k=\"v\"}": value}`` dict of current values.

        Counters snapshot to ``int``, gauges to ``float``, histograms to
        a small dict (count / sum / p50 / p90 / p99 in the recorded
        unit).  The result is plain data — safe to diff, pickle, or
        dump as JSON.
        """
        out: dict[str, float | int | dict] = {}
        for (name, labels), metric in sorted(self._metrics.items()):
            key = name + _label_suffix(dict(labels))
            if isinstance(metric, Counter):
                out[key] = metric.value
            elif isinstance(metric, Gauge):
                out[key] = metric.value
            else:
                assert isinstance(metric, Histogram)
                out[key] = {
                    "count": metric.count,
                    "sum": metric.sum,
                    "p50": metric.percentile(50.0),
                    "p90": metric.percentile(90.0),
                    "p99": metric.percentile(99.0),
                }
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the current values."""
        lines: list[str] = []
        by_name: dict[str, list[tuple[tuple[tuple[str, str], ...], object]]] = {}
        for (name, labels), metric in sorted(self._metrics.items()):
            by_name.setdefault(name, []).append((labels, metric))
        for name, entries in sorted(by_name.items()):
            if name in self._help:
                lines.append(f"# HELP {name} {self._help[name]}")
            kind = entries[0][1]
            if isinstance(kind, Counter):
                lines.append(f"# TYPE {name} counter")
            elif isinstance(kind, Gauge):
                lines.append(f"# TYPE {name} gauge")
            else:
                lines.append(f"# TYPE {name} histogram")
            for labels, metric in entries:
                labeled = dict(labels)
                if isinstance(metric, Counter):
                    lines.append(f"{name}{_label_suffix(labeled)} {metric.value}")
                elif isinstance(metric, Gauge):
                    value = metric.value
                    text = format(value, "g") if isinstance(value, float) else str(value)
                    lines.append(f"{name}{_label_suffix(labeled)} {text}")
                else:
                    assert isinstance(metric, Histogram)
                    cumulative = 0
                    for idx in sorted(metric.buckets()):
                        cumulative += metric.buckets()[idx]
                        le = format(metric.bucket_upper(idx), "g")
                        lines.append(
                            f"{name}_bucket{_label_suffix({**labeled, 'le': le})} {cumulative}"
                        )
                    lines.append(f"{name}_bucket{_label_suffix({**labeled, 'le': '+Inf'})} {metric.count}")
                    lines.append(f"{name}_sum{_label_suffix(labeled)} {format(metric.sum, 'g')}")
                    lines.append(f"{name}_count{_label_suffix(labeled)} {metric.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def delta(prev: Mapping[str, float | int | dict], cur: Mapping[str, float | int | dict]) -> dict:
    """Interval view between two ``snapshot()`` results.

    Numeric values subtract (counters and gauges alike — gauges of
    monotonic quantities meter cleanly; point-in-time gauges come out as
    their change, which is what a dashboard wants anyway).  Histogram
    snapshots subtract count/sum and keep the *current* percentiles,
    since bucketed percentiles of an interval need the live objects, not
    snapshots.  Keys only in ``cur`` pass through unchanged.
    """
    out: dict = {}
    for key, value in cur.items():
        base = prev.get(key)
        if isinstance(value, dict):
            prev_d = base if isinstance(base, dict) else {}
            out[key] = {
                **value,
                "count": value.get("count", 0) - prev_d.get("count", 0),
                "sum": value.get("sum", 0.0) - prev_d.get("sum", 0.0),
            }
        elif isinstance(base, (int, float)) and isinstance(value, (int, float)):
            out[key] = value - base
        else:
            out[key] = value
    return out


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry (``repro.cli metrics`` exposes this)."""
    return _DEFAULT


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one (tests)."""
    global _DEFAULT
    prev = _DEFAULT
    _DEFAULT = registry
    return prev
