"""Model compression beyond pruning: SH vector quantization (LightGS-style)."""

from .vq import (
    CompressedModel,
    VQCodebook,
    compress_model,
    quantization_error,
    train_codebook,
)

__all__ = [
    "CompressedModel",
    "VQCodebook",
    "compress_model",
    "quantization_error",
    "train_codebook",
]
