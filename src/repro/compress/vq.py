"""Vector quantization for SH coefficients (LightGaussian-style).

The paper's related-work section notes that pruning composes with
non-pruning compression such as vector quantization [17]: the higher-order
SH coefficients carry little energy per point and compress well into a small
shared codebook.  This module implements k-means codebook VQ over the SH
"rest" coefficients (the DC component stays full precision — it is the
component MetaSapiens multi-versions, so quantizing it would interact badly
with FR level training).

Storage model: codebook (K × D floats) + one per-point index (2 bytes for
K ≤ 65536), replacing D floats per point.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..splat.gaussians import BYTES_PER_FLOAT, GaussianModel

INDEX_BYTES = 2


@dataclasses.dataclass
class VQCodebook:
    """A trained codebook over flattened SH-rest vectors."""

    centers: np.ndarray  # (K, D)

    @property
    def num_codes(self) -> int:
        return self.centers.shape[0]

    @property
    def dim(self) -> int:
        return self.centers.shape[1]

    def assign(self, vectors: np.ndarray) -> np.ndarray:
        """Nearest-centre index for each row of ``vectors`` (N, D)."""
        vectors = np.asarray(vectors, dtype=np.float64)
        # ||v - c||² = ||v||² - 2 v·c + ||c||²; argmin over c.
        cross = vectors @ self.centers.T
        c_norm = np.sum(self.centers**2, axis=1)
        return np.argmin(c_norm[None, :] - 2.0 * cross, axis=1)

    def decode(self, indices: np.ndarray) -> np.ndarray:
        return self.centers[np.asarray(indices)]


def train_codebook(
    vectors: np.ndarray,
    num_codes: int,
    iterations: int = 10,
    seed: int = 0,
) -> VQCodebook:
    """Lloyd's k-means on ``(N, D)`` vectors.

    Empty clusters are re-seeded from the points farthest from their centre,
    so the codebook never collapses.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    n = vectors.shape[0]
    if n == 0:
        raise ValueError("cannot train a codebook on zero vectors")
    num_codes = min(num_codes, n)
    rng = np.random.default_rng(seed)
    centers = vectors[rng.choice(n, size=num_codes, replace=False)].copy()
    book = VQCodebook(centers=centers)

    for _ in range(iterations):
        assign = book.assign(vectors)
        dists = np.sum((vectors - centers[assign]) ** 2, axis=1)
        for k in range(num_codes):
            mask = assign == k
            if mask.any():
                centers[k] = vectors[mask].mean(axis=0)
            else:
                centers[k] = vectors[np.argmax(dists)]
                dists[np.argmax(dists)] = 0.0
    return VQCodebook(centers=centers)


@dataclasses.dataclass
class CompressedModel:
    """A Gaussian model with VQ-compressed higher-order SH.

    The base model keeps positions/scales/rotations/opacity/DC untouched;
    ``sh_rest`` is replaced by codebook indices.
    """

    base: GaussianModel  # sh rest zeroed (kept for shape compatibility)
    codebook: VQCodebook
    indices: np.ndarray  # (N,)

    @property
    def num_points(self) -> int:
        return self.base.num_points

    def decompress(self) -> GaussianModel:
        """Materialize a full model with reconstructed SH-rest."""
        model = self.base.copy()
        k = model.sh.shape[1]
        if k > 1:
            rest = self.codebook.decode(self.indices).reshape(
                model.num_points, k - 1, 3
            )
            model.sh[:, 1:, :] = rest
        return model

    def storage_bytes(self) -> int:
        """Uncompressed parameters + codebook + per-point indices."""
        k = self.base.sh.shape[1]
        kept_params = 3 + 3 + 4 + 1 + 3  # everything except SH-rest
        base_bytes = self.num_points * kept_params * BYTES_PER_FLOAT
        codebook_bytes = self.codebook.centers.size * BYTES_PER_FLOAT
        index_bytes = self.num_points * INDEX_BYTES
        return base_bytes + codebook_bytes + index_bytes

    def compression_ratio(self) -> float:
        """Original model bytes / compressed bytes (>1 is a win)."""
        full = self.base.num_points * (
            (3 + 3 + 4 + 1 + self.base.sh.shape[1] * 3) * BYTES_PER_FLOAT
        )
        return full / self.storage_bytes()


def compress_model(
    model: GaussianModel,
    num_codes: int = 256,
    iterations: int = 10,
    seed: int = 0,
) -> CompressedModel:
    """VQ-compress a model's higher-order SH coefficients.

    Degree-0 models have nothing to compress; they round-trip losslessly
    through a single zero code.
    """
    k = model.sh.shape[1]
    base = model.copy()
    if k == 1:
        codebook = VQCodebook(centers=np.zeros((1, 1)))
        indices = np.zeros(model.num_points, dtype=np.int64)
        return CompressedModel(base=base, codebook=codebook, indices=indices)

    rest = model.sh[:, 1:, :].reshape(model.num_points, -1)
    codebook = train_codebook(rest, num_codes, iterations=iterations, seed=seed)
    indices = codebook.assign(rest)
    base.sh[:, 1:, :] = 0.0
    return CompressedModel(base=base, codebook=codebook, indices=indices)


def quantization_error(model: GaussianModel, compressed: CompressedModel) -> float:
    """RMS error of the reconstructed SH-rest coefficients."""
    k = model.sh.shape[1]
    if k == 1:
        return 0.0
    original = model.sh[:, 1:, :].reshape(model.num_points, -1)
    restored = compressed.decompress().sh[:, 1:, :].reshape(model.num_points, -1)
    return float(np.sqrt(np.mean((original - restored) ** 2)))
