"""The 2IFC user-study harness and its statistics (Fig 11).

Protocol, mirroring Sec 6: 12 participants, four traces (bicycle, room,
drjohnson, truck), each pair shown 8 times in randomized order; the
participant picks the preferred version.  The statistical claim is a
binomial test against the null hypothesis "users prefer the *baseline*
(Mini-Splatting-D) more than 50% of the time" — rejecting it (p < 0.01)
establishes that our method is subjectively no worse.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy import stats as scipy_stats

from .observer import ObserverModel, StimulusQuality, simulate_2ifc_votes

PAPER_STUDY_SCENES = ("room", "drjohnson", "truck", "bicycle")
PAPER_NUM_PARTICIPANTS = 12
PAPER_NUM_REPETITIONS = 8


@dataclasses.dataclass
class SceneVotes:
    """Per-scene outcome: votes for each method, per participant."""

    scene: str
    votes_ours: np.ndarray  # (P,) times ours was preferred, out of reps
    n_repetitions: int

    @property
    def votes_baseline(self) -> np.ndarray:
        return self.n_repetitions - self.votes_ours

    @property
    def mean_ours(self) -> float:
        return float(self.votes_ours.mean())

    @property
    def mean_baseline(self) -> float:
        return float(self.votes_baseline.mean())

    @property
    def std_ours(self) -> float:
        return float(self.votes_ours.std())


@dataclasses.dataclass
class UserStudyResult:
    """Full study outcome and the headline binomial test."""

    scenes: list[SceneVotes]
    p_value: float  # binomial test vs "baseline preferred > 50%"

    @property
    def total_ours(self) -> int:
        return int(sum(v.votes_ours.sum() for v in self.scenes))

    @property
    def total_trials(self) -> int:
        return int(sum(v.votes_ours.size * v.n_repetitions for v in self.scenes))

    @property
    def ours_preference_rate(self) -> float:
        return self.total_ours / self.total_trials if self.total_trials else float("nan")


def run_user_study(
    stimuli: dict[str, tuple[StimulusQuality, StimulusQuality]],
    n_participants: int = PAPER_NUM_PARTICIPANTS,
    n_repetitions: int = PAPER_NUM_REPETITIONS,
    observer: ObserverModel | None = None,
    seed: int = 0,
) -> UserStudyResult:
    """Simulate the full 2IFC study.

    ``stimuli`` maps scene name → (ours, baseline) perceptual summaries.
    """
    rng = np.random.default_rng(seed)
    scenes = []
    for scene, (ours, baseline) in stimuli.items():
        votes = simulate_2ifc_votes(
            ours, baseline, n_participants, n_repetitions, rng, observer
        )
        scenes.append(SceneVotes(scene=scene, votes_ours=votes, n_repetitions=n_repetitions))

    total_ours = int(sum(v.votes_ours.sum() for v in scenes))
    total = int(sum(v.votes_ours.size * v.n_repetitions for v in scenes))
    # Null hypothesis: baseline is preferred more than half the time, i.e.
    # ours preferred with probability < 0.5.  Reject if ours' vote count is
    # improbably high under p = 0.5.
    test = scipy_stats.binomtest(total_ours, total, p=0.5, alternative="greater")
    return UserStudyResult(scenes=scenes, p_value=float(test.pvalue))
