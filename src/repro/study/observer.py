"""Simulated psychophysical observer for 2IFC preference studies.

The paper's user study (Sec 6/7.1) shows each participant two renderings of
the same trace on a headset and asks which they prefer.  We model the
generative process behind such data:

- each rendering has an *internal quality* score: the negative HVSQ (pooled
  feature-statistics distance to the reference under the current gaze) minus
  a temporal-instability penalty (the paper's participants noticed
  "incorrect luminance changes over time" caused by inconsistently trained
  points in dense models — our baseline models carry a measured
  ``flicker_fraction`` for exactly this effect);
- a participant's choice follows a logistic psychometric function of the
  internal quality difference, with per-participant bias and per-trial
  decision noise.

With HVSQ differences near zero (our method's training goal), the model
predicts ~50/50 votes with a tilt toward the less flickery method — which is
what the paper's Fig 11 shows.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class StimulusQuality:
    """Perceptual summary of one method's rendering of one trace."""

    name: str
    hvsq: float  # eccentricity-aware quality distance (lower = better)
    flicker: float  # temporal luminance instability in [0, 1]


@dataclasses.dataclass(frozen=True)
class ObserverModel:
    """Psychometric parameters of the simulated participant pool."""

    hvsq_sensitivity: float = 2.0e5  # scales HVSQ differences to decision units
    flicker_sensitivity: float = 10.0  # scales flicker differences
    decision_noise: float = 1.0  # logistic slope (higher = noisier)
    participant_bias_sd: float = 0.2

    def internal_quality(self, stimulus: StimulusQuality) -> float:
        return (
            -self.hvsq_sensitivity * stimulus.hvsq
            - self.flicker_sensitivity * stimulus.flicker
        )

    def preference_probability(
        self, a: StimulusQuality, b: StimulusQuality, bias: float = 0.0
    ) -> float:
        """P(participant prefers A over B) via a logistic psychometric fn."""
        delta = self.internal_quality(a) - self.internal_quality(b) + bias
        z = np.clip(delta / self.decision_noise, -50.0, 50.0)
        return float(1.0 / (1.0 + np.exp(-z)))


def simulate_2ifc_votes(
    a: StimulusQuality,
    b: StimulusQuality,
    n_participants: int,
    n_repetitions: int,
    rng: np.random.Generator,
    observer: ObserverModel | None = None,
) -> np.ndarray:
    """Votes for A per participant, ``(n_participants,)`` in [0, n_reps]."""
    observer = observer or ObserverModel()
    votes = np.empty(n_participants, dtype=np.int64)
    for p in range(n_participants):
        bias = rng.normal(scale=observer.participant_bias_sd)
        prob = observer.preference_probability(a, b, bias=bias)
        votes[p] = rng.binomial(n_repetitions, prob)
    return votes
