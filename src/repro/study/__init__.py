"""Simulated 2IFC user study (paper Sec 6 / Fig 11)."""

from .observer import ObserverModel, StimulusQuality, simulate_2ifc_votes
from .user_study import (
    PAPER_NUM_PARTICIPANTS,
    PAPER_NUM_REPETITIONS,
    PAPER_STUDY_SCENES,
    SceneVotes,
    UserStudyResult,
    run_user_study,
)

__all__ = [
    "ObserverModel",
    "PAPER_NUM_PARTICIPANTS",
    "PAPER_NUM_REPETITIONS",
    "PAPER_STUDY_SCENES",
    "SceneVotes",
    "StimulusQuality",
    "UserStudyResult",
    "run_user_study",
    "simulate_2ifc_votes",
]
