"""Command-line interface: quick experiments without writing code.

    python -m repro.cli traces
    python -m repro.cli render garden --points 1200
    python -m repro.cli prune bicycle --fraction 0.6
    python -m repro.cli foveate room
    python -m repro.cli accel flowers
    python -m repro.cli serve-sim kitchen --clients 4
    python -m repro.cli serve-sim kitchen --trace /tmp/serve-trace.json
    python -m repro.cli metrics kitchen
    python -m repro.cli tune --quick

Each subcommand builds the relevant models at a small evaluation scale and
prints a compact report; flags control scene size and resolution.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _common_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("trace", help="trace name (see `traces`)")
    parser.add_argument("--points", type=int, default=1000, help="scene point budget")
    parser.add_argument("--width", type=int, default=128)
    parser.add_argument("--height", type=int, default=96)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--backend",
        default=None,
        help="rasterization backend, or 'list' to print the registry "
        "(packed|packed-xp|reference; default: $REPRO_BACKEND or packed)",
    )
    parser.add_argument(
        "--array-api",
        default=None,
        help="array namespace for the packed-xp backend "
        "(numpy|torch|cupy; default: $REPRO_ARRAY_API or numpy)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="views per batched rasterization pass (default: all eval views "
        "share one pass)",
    )


def cmd_backends(_args: argparse.Namespace) -> int:
    from .splat.backends import describe_backends

    print(describe_backends())
    return 0


def cmd_traces(_args: argparse.Namespace) -> int:
    from .scenes import SCENE_SPECS

    print(f"{'trace':<12} {'dataset':<16} {'indoor':<7} {'complexity':>10}")
    for name, spec in SCENE_SPECS.items():
        print(f"{name:<12} {spec.dataset:<16} {str(spec.indoor):<7} {spec.complexity:>10.1f}")
    return 0


def _setup(args: argparse.Namespace):
    from .harness import setup_trace

    return setup_trace(
        args.trace, n_points=args.points, width=args.width, height=args.height,
        n_train=4, n_eval=2, seed=args.seed,
    )


def _view_cache_stats(cache) -> str:
    """The `cache-stats` line render/foveate print when a cache is active."""
    return (
        f"cache-stats: view-cache hits={cache.hits} misses={cache.misses} "
        f"entries={len(cache)}"
    )


def cmd_render(args: argparse.Namespace) -> int:
    from .perf import DEFAULT_GPU, mean_workload, workload_from_render
    from .splat import ViewCache, render_batch

    setup = _setup(args)
    cache = ViewCache()
    results = render_batch(
        setup.scene, setup.eval_cameras, batch_size=args.batch_size, cache=cache
    )
    stats = results[0].stats
    fps = DEFAULT_GPU.fps(mean_workload([workload_from_render(r) for r in results]))
    batch = args.batch_size or len(results)
    print(
        f"{args.trace}: {setup.scene.num_points} points, "
        f"{len(results)} views (batch size {batch})"
    )
    print(f"projected splats: {stats.num_projected} (first view)")
    print(f"tile intersections: {stats.total_intersections} (first view)")
    print(f"mobile-GPU model: {fps:.1f} FPS (mean over views)")
    print(_view_cache_stats(cache))
    return 0


def cmd_prune(args: argparse.Namespace) -> int:
    from .baselines import make_3dgs
    from .core import compute_ce, prune_lowest_ce
    from .hvs import psnr
    from .perf import DEFAULT_GPU, workload_from_render
    from .splat import render

    setup = _setup(args)
    dense = make_3dgs(setup.scene, seed=args.seed)
    ce = compute_ce(dense.model, setup.train_cameras)
    pruned = prune_lowest_ce(dense.model, ce.ce, args.fraction).model

    for name, model in (("dense", dense.model), ("pruned", pruned)):
        result = render(model, setup.eval_cameras[0])
        fps = DEFAULT_GPU.fps(workload_from_render(result))
        quality = psnr(setup.eval_targets[0], result.image)
        print(f"{name:<7} {model.num_points:6d} pts  "
              f"{result.stats.total_intersections:6d} ints  "
              f"{fps:6.1f} FPS  {quality:5.1f} dB")
    return 0


def cmd_foveate(args: argparse.Namespace) -> int:
    import numpy as np

    from .baselines import make_mini_splatting_d
    from .foveation import render_foveated, render_foveated_batch
    from .harness import EVAL_LEVEL_FRACTIONS, EVAL_REGION_LAYOUT, quick_l1_model
    from .foveation import uniform_foveated_model
    from .perf import DEFAULT_GPU, workload_from_fr, workload_from_render
    from .scenes import gaze_trajectory
    from .splat import ViewCache, render

    setup = _setup(args)
    dense = make_mini_splatting_d(setup.scene, seed=args.seed)
    l1 = quick_l1_model(setup, dense, keep_fraction=args.keep)
    fmodel = uniform_foveated_model(l1, EVAL_REGION_LAYOUT, EVAL_LEVEL_FRACTIONS)

    cache = ViewCache()
    full = render(l1, setup.eval_cameras[0])
    fr = render_foveated(
        fmodel,
        setup.eval_cameras[0],
        prepared=cache.get(fmodel.base, setup.eval_cameras[0]),
    )
    fps_full = DEFAULT_GPU.fps(workload_from_render(full))
    fps_fr = DEFAULT_GPU.fps(workload_from_fr(fr.stats))
    print(f"L1 model: {l1.num_points} pts, level counts {list(fmodel.level_counts())}")
    print(f"non-foveated: {fps_full:6.1f} FPS "
          f"({full.stats.total_intersections} ints)")
    print(f"foveated:     {fps_fr:6.1f} FPS "
          f"({fr.stats.total_raster_intersections:.0f} ints, "
          f"{fr.stats.blend_pixels} blend px)")
    print(f"FR speedup: {fps_fr / fps_full:.2f}x")

    # Dynamic foveation: a simulated scanpath rendered in one batched
    # foveated pass (the pose's projection prefix is shared by every gaze
    # sample instead of re-running per frame).
    gazes = [
        tuple(g)
        for g in gaze_trajectory(
            args.width, args.height, args.gaze_frames, seed=args.seed
        )
    ]
    traj = render_foveated_batch(
        fmodel, setup.eval_cameras[0], gazes=gazes, batch_size=args.batch_size,
        cache=cache,
    )
    traj_fps = [DEFAULT_GPU.fps(workload_from_fr(r.stats)) for r in traj]
    print(f"gaze trajectory ({len(traj)} frames, batched): "
          f"{min(traj_fps):.1f} / {np.mean(traj_fps):.1f} / {max(traj_fps):.1f} "
          f"FPS (min/mean/max)")
    print(_view_cache_stats(cache))
    return 0


def cmd_serve_sim(args: argparse.Namespace) -> int:
    from .baselines import make_mini_splatting_d
    from .foveation import uniform_foveated_model
    from .harness import EVAL_LEVEL_FRACTIONS, EVAL_REGION_LAYOUT, quick_l1_model
    from .scenes import trace_cameras
    from .serve import (
        PredictorConfig,
        ServeConfig,
        WorkloadSpec,
        default_shards,
        default_workers,
        generate_serve_trace,
        oracle_problem_from_trace,
        replay_naive,
        replay_trace,
        replay_trace_sharded,
        schedule_gap,
    )

    setup = _setup(args)
    dense = make_mini_splatting_d(setup.scene, seed=args.seed)
    l1 = quick_l1_model(setup, dense, keep_fraction=args.keep)
    fmodel = uniform_foveated_model(l1, EVAL_REGION_LAYOUT, EVAL_LEVEL_FRACTIONS)

    _, poses = trace_cameras(
        args.trace, n_train=4, n_eval=args.poses, width=args.width,
        height=args.height, seed=args.seed,
    )
    spec = WorkloadSpec(
        n_clients=args.clients,
        frames_per_client=args.frames,
        zipf_s=args.zipf,
        refresh_hz=args.refresh_hz,
        seed=args.seed,
    )
    trace = generate_serve_trace(poses, spec)
    workers = default_workers() if args.workers is None else args.workers
    shards = default_shards() if args.shards is None else args.shards
    if workers < 0 or shards < 1:
        print("error: --workers must be >= 0 and --shards >= 1", file=sys.stderr)
        return 2
    if args.prefetch < 0 or args.time_scale < 0:
        print(
            "error: --prefetch and --time-scale must be non-negative",
            file=sys.stderr,
        )
        return 2
    serve_config = ServeConfig(
        batch_budget=args.batch_budget,
        cache_max_bytes=(
            "auto"
            if args.cache_mb is None
            else None
            if args.cache_mb <= 0
            else int(args.cache_mb * (1 << 20))
        ),
        workers=workers,
        refresh_hz=args.refresh_hz,
        prefetch=(
            PredictorConfig(horizon=args.prefetch) if args.prefetch > 0 else None
        ),
        shm_bytes=(
            "auto"
            if args.shm_mb is None
            else max(0, int(args.shm_mb * (1 << 20)))
        ),
    )

    tracer = None
    if args.trace_out:
        from .obs import Tracer

        tracer = Tracer()

    print(
        f"serve-sim {args.trace}: {spec.n_clients} clients x "
        f"{spec.frames_per_client} frames over {len(poses)} poses "
        f"(zipf {spec.zipf_s}, {trace.n_requests} requests, "
        f"{shards} shard{'s' if shards != 1 else ''}, "
        f"{workers} worker{'s' if workers != 1 else ''})"
    )
    _, naive_report = replay_naive(fmodel, trace)
    if shards > 1:
        _, serve_report = replay_trace_sharded(
            fmodel, trace, serve_config=serve_config, n_shards=shards,
            time_scale=args.time_scale, tracer=tracer,
        )
    else:
        _, serve_report = replay_trace(
            fmodel, trace, serve_config=serve_config,
            time_scale=args.time_scale, tracer=tracer,
        )
    for report in (naive_report, serve_report):
        for line in report.lines():
            print(line)
    summary = (
        f"serve speedup: {naive_report.wall_s / serve_report.wall_s:.2f}x "
        f"(hit rate {serve_report.cache_hit_rate:.0%}, "
        f"mean batch {serve_report.mean_batch_size:.2f}"
    )
    if serve_report.shard_stats is not None:
        summary += (
            f", imbalance {serve_report.shard_stats['imbalance_factor']:.2f}x"
        )
    print(summary + ")")
    if tracer is not None:
        tracer.write(args.trace_out)
        print(
            f"trace: {len(tracer)} spans -> {args.trace_out} "
            f"(load in Perfetto / chrome://tracing)"
        )
    if args.refresh_hz is not None:
        gap = schedule_gap(
            oracle_problem_from_trace(trace, n_requests=6),
            batch_budget=serve_config.batch_budget,
        )
        print(
            f"schedule oracle ({gap['n_requests']} requests): optimal "
            f"{gap['optimal_misses']} misses vs heuristic "
            f"{gap['heuristic_misses']} (latency gap "
            f"{gap['latency_gap']:+.1%})"
        )
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Replay a small serve workload and print the metrics registry."""
    from .baselines import make_mini_splatting_d
    from .foveation import uniform_foveated_model
    from .harness import EVAL_LEVEL_FRACTIONS, EVAL_REGION_LAYOUT, quick_l1_model
    from .obs import MetricsRegistry
    from .scenes import trace_cameras
    from .serve import (
        ServeConfig,
        WorkloadSpec,
        generate_serve_trace,
        replay_trace,
        replay_trace_sharded,
    )

    setup = _setup(args)
    dense = make_mini_splatting_d(setup.scene, seed=args.seed)
    l1 = quick_l1_model(setup, dense, keep_fraction=args.keep)
    fmodel = uniform_foveated_model(l1, EVAL_REGION_LAYOUT, EVAL_LEVEL_FRACTIONS)
    _, poses = trace_cameras(
        args.trace, n_train=4, n_eval=args.poses, width=args.width,
        height=args.height, seed=args.seed,
    )
    trace = generate_serve_trace(
        poses,
        WorkloadSpec(
            n_clients=args.clients,
            frames_per_client=args.frames,
            seed=args.seed,
        ),
    )
    serve_config = ServeConfig(workers=args.workers)
    registry = MetricsRegistry()
    if args.shards > 1:
        replay_trace_sharded(
            fmodel, trace, serve_config=serve_config, n_shards=args.shards,
            registry=registry,
        )
    else:
        replay_trace(fmodel, trace, serve_config=serve_config, registry=registry)
    print(registry.render_prometheus(), end="")
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    from .tune import autotune

    report = autotune(
        quick=args.quick,
        seed=args.seed,
        save=not args.no_save,
        path=args.output,
        include_serve=not args.no_serve,
    )
    for line in report.lines():
        print(line)
    if args.no_save:
        print("(dry run: profile not saved)")
    return 0


def cmd_accel(args: argparse.Namespace) -> int:
    from .accel import (
        GSCORE,
        METASAPIENS_BASE,
        METASAPIENS_TM,
        METASAPIENS_TM_IP,
        area_mm2,
        energy_reduction,
        run_accelerator,
    )
    from .baselines import make_mini_splatting_d
    from .foveation import render_foveated, uniform_foveated_model
    from .harness import EVAL_LEVEL_FRACTIONS, EVAL_REGION_LAYOUT, quick_l1_model
    from .perf import workload_from_fr

    setup = _setup(args)
    dense = make_mini_splatting_d(setup.scene, seed=args.seed)
    l1 = quick_l1_model(setup, dense, keep_fraction=args.keep)
    fmodel = uniform_foveated_model(l1, EVAL_REGION_LAYOUT, EVAL_LEVEL_FRACTIONS)
    fr = render_foveated(fmodel, setup.eval_cameras[0])
    workload = workload_from_fr(fr.stats)
    ints = fr.stats.raster_intersections_per_tile

    print(f"{'design':<20} {'speedup':>8} {'util':>6} {'area':>7} {'energy':>8}")
    for config in (METASAPIENS_BASE, METASAPIENS_TM, METASAPIENS_TM_IP, GSCORE):
        run = run_accelerator(ints, workload, config)
        print(f"{config.name:<20} {run.speedup:7.1f}x {run.utilization:6.2f} "
              f"{area_mm2(config):6.2f} {energy_reduction(workload, config):7.1f}x")

    if fr.level_spans:
        # Span-driven row: the foveated frame's per-level filtered span
        # lists carry the fragments the pipeline actually streams; sorting
        # is additionally priced from the span group lengths.
        from .accel import foveated_sort_work, foveated_tile_counts

        span_ints = foveated_tile_counts(fr.level_spans)
        run = run_accelerator(
            span_ints, workload, METASAPIENS_TM_IP,
            sort_work_per_tile=foveated_sort_work(fr.level_spans),
        )
        print(f"{'TM-IP (span-driven)':<20} {run.speedup:7.1f}x "
              f"{run.utilization:6.2f} {area_mm2(METASAPIENS_TM_IP):6.2f} "
              f"{energy_reduction(workload, METASAPIENS_TM_IP):7.1f}x")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="tuning profile to consult for knob defaults (sets "
        "$REPRO_TUNE_PROFILE for this run; 'off' disables profiles; "
        "default: the per-host cache path — see `tune`)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("traces", help="list the 13 evaluation traces")

    sub.add_parser(
        "backends",
        help="list the rasterization-backend registry and array namespaces",
    )

    p_render = sub.add_parser("render", help="render a trace, report workload/FPS")
    _common_args(p_render)

    p_prune = sub.add_parser("prune", help="CE-prune a dense model, compare")
    _common_args(p_prune)
    p_prune.add_argument("--fraction", type=float, default=0.6,
                         help="fraction of points to remove")

    p_fov = sub.add_parser("foveate", help="foveated vs full render workload")
    _common_args(p_fov)
    p_fov.add_argument("--keep", type=float, default=0.4, help="L1 keep fraction")
    p_fov.add_argument(
        "--gaze-frames",
        type=int,
        default=8,
        help="scanpath length of the batched gaze-trajectory sweep",
    )

    p_accel = sub.add_parser("accel", help="accelerator design-space summary")
    _common_args(p_accel)
    p_accel.add_argument("--keep", type=float, default=0.4, help="L1 keep fraction")

    p_serve = sub.add_parser(
        "serve-sim",
        help="multi-client serve simulation: batched+cached vs per-request",
    )
    _common_args(p_serve)
    p_serve.add_argument("--keep", type=float, default=0.4, help="L1 keep fraction")
    p_serve.add_argument("--clients", type=int, default=4, help="concurrent clients")
    p_serve.add_argument(
        "--frames", type=int, default=24, help="frames requested per client"
    )
    p_serve.add_argument(
        "--poses", type=int, default=6, help="shared pose-set size"
    )
    p_serve.add_argument(
        "--zipf", type=float, default=1.1, help="pose-popularity skew exponent"
    )
    p_serve.add_argument(
        "--batch-budget", type=int, default=None,
        help="max requests coalesced into one batched render (default: "
        "$REPRO_SERVE_BATCH_BUDGET, the host tuning profile, or 8)",
    )
    p_serve.add_argument(
        "--cache-mb", type=float, default=None,
        help="frame-cache byte budget in MiB (<= 0 disables the cache; "
        "default: $REPRO_FRAME_CACHE_BYTES, the host tuning profile, "
        "or 64)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=None,
        help="render worker processes (default: $REPRO_SERVE_WORKERS or "
        "0 = render inline on the event loop)",
    )
    p_serve.add_argument(
        "--shm-mb", type=float, default=None,
        help="worker-pool shared-memory frame-transport arena in MiB "
        "(<= 0 forces the pickle path; default: $REPRO_SERVE_SHM, the "
        "host tuning profile, or 64)",
    )
    p_serve.add_argument(
        "--shards", type=int, default=None,
        help="consistent-hash serve shards (default: $REPRO_SERVE_SHARDS "
        "or 1 = a single un-sharded loop)",
    )
    p_serve.add_argument(
        "--refresh-hz", type=float, default=None,
        help="client display refresh rate; sets a 1/refresh_hz frame "
        "deadline per request and enables deadline accounting "
        "(default: best-effort, no deadlines)",
    )
    p_serve.add_argument(
        "--prefetch", type=int, default=0, metavar="HORIZON",
        help="speculative gaze-prefetch horizon in frames "
        "(0 = disabled; predictions fill the frame cache at low priority)",
    )
    p_serve.add_argument(
        "--time-scale", type=float, default=0.0,
        help="replay pacing: stretch trace timestamps into real waits "
        "(0 = drain as fast as possible — the throughput mode; "
        "1 = real time, which is where prefetch gets idle gaps to run in)",
    )
    p_serve.add_argument(
        "--trace", dest="trace_out", default=None, metavar="PATH",
        help="record the replay's request lifecycle and write it as a "
        "Chrome/Perfetto trace-event JSON file (worker render spans are "
        "stitched into the same timeline)",
    )

    p_metrics = sub.add_parser(
        "metrics",
        help="replay a small serve workload and print the unified metrics "
        "registry in Prometheus text exposition format",
    )
    _common_args(p_metrics)
    p_metrics.add_argument("--keep", type=float, default=0.4, help="L1 keep fraction")
    p_metrics.add_argument("--clients", type=int, default=3, help="concurrent clients")
    p_metrics.add_argument(
        "--frames", type=int, default=8, help="frames requested per client"
    )
    p_metrics.add_argument("--poses", type=int, default=4, help="shared pose-set size")
    p_metrics.add_argument(
        "--workers", type=int, default=0, help="render worker processes"
    )
    p_metrics.add_argument(
        "--shards", type=int, default=1, help="consistent-hash serve shards"
    )

    p_tune = sub.add_parser(
        "tune",
        help="autotune kernel/cache/scheduler knobs for this host and "
        "persist them as its profile",
    )
    p_tune.add_argument(
        "--quick", action="store_true", help="CI-sized sweeps (seconds, not minutes)"
    )
    p_tune.add_argument("--seed", type=int, default=0)
    p_tune.add_argument(
        "--no-save",
        action="store_true",
        help="measure and report without writing the profile",
    )
    p_tune.add_argument(
        "--no-serve",
        action="store_true",
        help="skip the serve-tier sweeps (batch budget/deadline, cache bytes)",
    )
    p_tune.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="where to write the profile (default: $REPRO_TUNE_PROFILE "
        "or the per-host cache path)",
    )
    return parser


COMMANDS = {
    "backends": cmd_backends,
    "traces": cmd_traces,
    "render": cmd_render,
    "prune": cmd_prune,
    "foveate": cmd_foveate,
    "accel": cmd_accel,
    "serve-sim": cmd_serve_sim,
    "metrics": cmd_metrics,
    "tune": cmd_tune,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "profile", None):
        import os

        os.environ["REPRO_TUNE_PROFILE"] = args.profile
        from .tune import invalidate_profile_cache

        invalidate_profile_cache()
    if getattr(args, "array_api", None):
        from .splat.backends import set_array_api

        try:
            set_array_api(args.array_api)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if getattr(args, "backend", None):
        from .splat.backends import describe_backends, set_default_backend

        if args.backend == "list":
            print(describe_backends())
            return 0
        try:
            set_default_backend(args.backend)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
