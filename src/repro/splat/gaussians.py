"""The Gaussian point-cloud model at the heart of PBNR.

A :class:`GaussianModel` holds the trainable parameters of a splatting scene:

- ``positions``       ``(N, 3)`` world-space means,
- ``log_scales``      ``(N, 3)`` per-axis ellipsoid scales (stored in log
  space so optimization stays positive),
- ``rotations``       ``(N, 4)`` unit quaternions (w, x, y, z),
- ``opacity_logits``  ``(N,)`` opacities through a sigmoid,
- ``sh``              ``(N, K, 3)`` spherical-harmonics colour coefficients.

Parameter counts follow the 3DGS layout, so the storage model used for the
paper's Table 1 (bytes per point = 4 bytes × parameter count) matches the
sizes reported for real checkpoints to first order.
"""

from __future__ import annotations

import dataclasses
import io
from typing import Iterable

import numpy as np

from .sh import MAX_SH_DEGREE, num_sh_coeffs

BYTES_PER_FLOAT = 4


def normalize_quaternions(quats: np.ndarray) -> np.ndarray:
    """Return unit-norm copies of ``(N, 4)`` quaternions.

    Components are pre-scaled by their largest magnitude so that squaring
    cannot underflow to denormals (which would destroy the unit norm for
    very small quaternions).
    """
    quats = np.asarray(quats, dtype=np.float64)
    scale = np.max(np.abs(quats), axis=1, keepdims=True)
    scale = np.where(scale == 0.0, 1.0, scale)
    scaled = quats / scale
    norms = np.linalg.norm(scaled, axis=1, keepdims=True)
    norms = np.where(norms == 0.0, 1.0, norms)
    return scaled / norms


def quaternions_to_matrices(quats: np.ndarray) -> np.ndarray:
    """Convert ``(N, 4)`` unit quaternions (w, x, y, z) to rotation matrices."""
    q = normalize_quaternions(quats)
    w, x, y, z = q[:, 0], q[:, 1], q[:, 2], q[:, 3]
    n = q.shape[0]
    rot = np.empty((n, 3, 3), dtype=np.float64)
    rot[:, 0, 0] = 1.0 - 2.0 * (y * y + z * z)
    rot[:, 0, 1] = 2.0 * (x * y - w * z)
    rot[:, 0, 2] = 2.0 * (x * z + w * y)
    rot[:, 1, 0] = 2.0 * (x * y + w * z)
    rot[:, 1, 1] = 1.0 - 2.0 * (x * x + z * z)
    rot[:, 1, 2] = 2.0 * (y * z - w * x)
    rot[:, 2, 0] = 2.0 * (x * z - w * y)
    rot[:, 2, 1] = 2.0 * (y * z + w * x)
    rot[:, 2, 2] = 1.0 - 2.0 * (x * x + y * y)
    return rot


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def inverse_sigmoid(p: np.ndarray) -> np.ndarray:
    """Logit; clips input away from {0, 1} for stability."""
    p = np.clip(np.asarray(p, dtype=np.float64), 1e-7, 1.0 - 1e-7)
    return np.log(p / (1.0 - p))


@dataclasses.dataclass
class GaussianModel:
    """A splatting scene: a set of anisotropic 3D Gaussians with SH colour."""

    positions: np.ndarray
    log_scales: np.ndarray
    rotations: np.ndarray
    opacity_logits: np.ndarray
    sh: np.ndarray

    def __post_init__(self) -> None:
        self.positions = np.ascontiguousarray(self.positions, dtype=np.float64)
        self.log_scales = np.ascontiguousarray(self.log_scales, dtype=np.float64)
        self.rotations = np.ascontiguousarray(self.rotations, dtype=np.float64)
        self.opacity_logits = np.ascontiguousarray(self.opacity_logits, dtype=np.float64)
        self.sh = np.ascontiguousarray(self.sh, dtype=np.float64)
        n = self.positions.shape[0]
        if self.positions.shape != (n, 3):
            raise ValueError(f"positions must be (N, 3), got {self.positions.shape}")
        if self.log_scales.shape != (n, 3):
            raise ValueError(f"log_scales must be (N, 3), got {self.log_scales.shape}")
        if self.rotations.shape != (n, 4):
            raise ValueError(f"rotations must be (N, 4), got {self.rotations.shape}")
        if self.opacity_logits.shape != (n,):
            raise ValueError(f"opacity_logits must be (N,), got {self.opacity_logits.shape}")
        if self.sh.ndim != 3 or self.sh.shape[0] != n or self.sh.shape[2] != 3:
            raise ValueError(f"sh must be (N, K, 3), got {self.sh.shape}")
        k = self.sh.shape[1]
        degree = int(np.sqrt(k)) - 1
        if num_sh_coeffs(min(degree, MAX_SH_DEGREE)) != k:
            raise ValueError(f"sh coefficient count {k} is not (d+1)^2 for d<=3")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        return self.positions.shape[0]

    @property
    def sh_degree(self) -> int:
        return int(np.sqrt(self.sh.shape[1])) - 1

    @property
    def scales(self) -> np.ndarray:
        """Per-axis ellipsoid scales, ``(N, 3)``, strictly positive."""
        return np.exp(self.log_scales)

    @property
    def opacities(self) -> np.ndarray:
        """Opacities in (0, 1), ``(N,)``."""
        return sigmoid(self.opacity_logits)

    @property
    def sh_dc(self) -> np.ndarray:
        """View into the DC SH coefficients, ``(N, 3)``."""
        return self.sh[:, 0, :]

    @property
    def max_scales(self) -> np.ndarray:
        """Maximum span of each ellipsoid in any direction (paper's S_i)."""
        return self.scales.max(axis=1)

    def params_per_point(self) -> int:
        """Trainable scalar parameters per point (3DGS layout)."""
        return 3 + 3 + 4 + 1 + self.sh.shape[1] * 3

    def storage_bytes(self) -> int:
        """Model size under a float32-per-parameter storage model."""
        return self.num_points * self.params_per_point() * BYTES_PER_FLOAT

    def covariances(self) -> np.ndarray:
        """World-space 3D covariances ``Σ = R S Sᵀ Rᵀ``, ``(N, 3, 3)``."""
        rot = quaternions_to_matrices(self.rotations)
        scaled = rot * self.scales[:, None, :]  # R @ diag(S)
        return scaled @ scaled.transpose(0, 2, 1)

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------
    def copy(self) -> "GaussianModel":
        return GaussianModel(
            positions=self.positions.copy(),
            log_scales=self.log_scales.copy(),
            rotations=self.rotations.copy(),
            opacity_logits=self.opacity_logits.copy(),
            sh=self.sh.copy(),
        )

    def subset(self, indices: np.ndarray) -> "GaussianModel":
        """New model containing only ``indices`` (bool mask or int index)."""
        indices = np.asarray(indices)
        return GaussianModel(
            positions=self.positions[indices],
            log_scales=self.log_scales[indices],
            rotations=self.rotations[indices],
            opacity_logits=self.opacity_logits[indices],
            sh=self.sh[indices],
        )

    @staticmethod
    def concatenate(models: Iterable["GaussianModel"]) -> "GaussianModel":
        models = list(models)
        if not models:
            raise ValueError("cannot concatenate zero models")
        degrees = {m.sh.shape[1] for m in models}
        if len(degrees) > 1:
            raise ValueError(
                f"cannot concatenate models with different SH degrees: "
                f"coefficient counts {sorted(degrees)}"
            )
        return GaussianModel(
            positions=np.concatenate([m.positions for m in models]),
            log_scales=np.concatenate([m.log_scales for m in models]),
            rotations=np.concatenate([m.rotations for m in models]),
            opacity_logits=np.concatenate([m.opacity_logits for m in models]),
            sh=np.concatenate([m.sh for m in models]),
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_npz_bytes(self) -> bytes:
        buf = io.BytesIO()
        np.savez(
            buf,
            positions=self.positions.astype(np.float32),
            log_scales=self.log_scales.astype(np.float32),
            rotations=self.rotations.astype(np.float32),
            opacity_logits=self.opacity_logits.astype(np.float32),
            sh=self.sh.astype(np.float32),
        )
        return buf.getvalue()

    @staticmethod
    def from_npz_bytes(data: bytes) -> "GaussianModel":
        with np.load(io.BytesIO(data)) as arrays:
            return GaussianModel(
                positions=arrays["positions"],
                log_scales=arrays["log_scales"],
                rotations=arrays["rotations"],
                opacity_logits=arrays["opacity_logits"],
                sh=arrays["sh"],
            )

    def save(self, path: str) -> None:
        with open(path, "wb") as f:
            f.write(self.to_npz_bytes())

    @staticmethod
    def load(path: str) -> "GaussianModel":
        with open(path, "rb") as f:
            return GaussianModel.from_npz_bytes(f.read())


def random_model(
    n_points: int,
    rng: np.random.Generator,
    extent: float = 5.0,
    sh_degree: int = 1,
    scale_range: tuple[float, float] = (0.02, 0.3),
    opacity_range: tuple[float, float] = (0.3, 0.95),
) -> GaussianModel:
    """Draw a random but well-formed model — the workhorse of the test suite."""
    k = num_sh_coeffs(sh_degree)
    positions = rng.uniform(-extent, extent, size=(n_points, 3))
    log_scales = np.log(rng.uniform(*scale_range, size=(n_points, 3)))
    rotations = normalize_quaternions(rng.normal(size=(n_points, 4)))
    opacity_logits = inverse_sigmoid(rng.uniform(*opacity_range, size=n_points))
    sh = rng.normal(scale=0.3, size=(n_points, k, 3))
    return GaussianModel(positions, log_scales, rotations, opacity_logits, sh)
