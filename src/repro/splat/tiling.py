"""Tiling stage: assign projected splats to screen tiles.

Tiles are the scheduling unit of the whole paper: the rasterizer processes
one tile at a time, latency is driven by the number of *tile–ellipse
intersections* (Sec 3.1), and the accelerator pipelines work tile by tile
(Sec 5).  This module produces, for each tile, the list of splats whose
conservative radius overlaps it, plus the global intersection statistics the
pruning metric and the load-imbalance study are built on.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .projection import ProjectedGaussians

DEFAULT_TILE_SIZE = 16


@dataclasses.dataclass(frozen=True)
class TileGrid:
    """Rectangular decomposition of the image plane into square tiles."""

    width: int
    height: int
    tile_size: int = DEFAULT_TILE_SIZE

    def __post_init__(self) -> None:
        if self.tile_size <= 0:
            raise ValueError("tile_size must be positive")
        if self.width <= 0 or self.height <= 0:
            raise ValueError("image dimensions must be positive")

    @property
    def tiles_x(self) -> int:
        return (self.width + self.tile_size - 1) // self.tile_size

    @property
    def tiles_y(self) -> int:
        return (self.height + self.tile_size - 1) // self.tile_size

    @property
    def num_tiles(self) -> int:
        return self.tiles_x * self.tiles_y

    def tile_id(self, tx: int, ty: int) -> int:
        return ty * self.tiles_x + tx

    def tile_coords(self, tile_id: int) -> tuple[int, int]:
        return tile_id % self.tiles_x, tile_id // self.tiles_x

    def tile_pixel_bounds(self, tile_id: int) -> tuple[int, int, int, int]:
        """Pixel bounds ``(x0, y0, x1, y1)`` (exclusive upper) of a tile."""
        tx, ty = self.tile_coords(tile_id)
        x0 = tx * self.tile_size
        y0 = ty * self.tile_size
        return x0, y0, min(x0 + self.tile_size, self.width), min(y0 + self.tile_size, self.height)

    def tile_centers(self) -> np.ndarray:
        """Pixel-space centres of all tiles, ``(num_tiles, 2)``."""
        ids = np.arange(self.num_tiles)
        txs = ids % self.tiles_x
        tys = ids // self.tiles_x
        cx = np.minimum(txs * self.tile_size + self.tile_size / 2.0, self.width - 0.5)
        cy = np.minimum(tys * self.tile_size + self.tile_size / 2.0, self.height - 0.5)
        return np.stack([cx, cy], axis=1)


@dataclasses.dataclass
class TileAssignment:
    """Flat (tile, splat) intersection pairs, grouped by tile.

    ``pair_tiles`` / ``pair_splats`` are parallel arrays sorted by tile id;
    ``tile_offsets`` is a CSR-style index such that the splats of tile ``t``
    are ``pair_splats[tile_offsets[t]:tile_offsets[t + 1]]`` (indices into the
    :class:`ProjectedGaussians` arrays, *not* model point ids).
    """

    grid: TileGrid
    pair_tiles: np.ndarray
    pair_splats: np.ndarray
    tile_offsets: np.ndarray

    @property
    def num_intersections(self) -> int:
        return int(self.pair_tiles.shape[0])

    def splats_in_tile(self, tile_id: int) -> np.ndarray:
        lo, hi = self.tile_offsets[tile_id], self.tile_offsets[tile_id + 1]
        return self.pair_splats[lo:hi]

    def intersections_per_tile(self) -> np.ndarray:
        """Number of tile–ellipse intersections of every tile, ``(T,)``."""
        return np.diff(self.tile_offsets)

    def tiles_per_splat(self, num_splats: int) -> np.ndarray:
        """How many tiles each splat intersects (the paper's U_i / Comp_i)."""
        return np.bincount(self.pair_splats, minlength=num_splats)


def assign_tiles(projected: ProjectedGaussians, grid: TileGrid) -> TileAssignment:
    """Compute tile–ellipse intersections from conservative splat bboxes."""
    m = projected.num_visible
    if m == 0:
        return TileAssignment(
            grid=grid,
            pair_tiles=np.empty(0, dtype=np.int64),
            pair_splats=np.empty(0, dtype=np.int64),
            tile_offsets=np.zeros(grid.num_tiles + 1, dtype=np.int64),
        )

    ts = grid.tile_size
    x = projected.means2d[:, 0]
    y = projected.means2d[:, 1]
    r = projected.radii

    tx_min = np.clip(np.floor((x - r) / ts), 0, grid.tiles_x - 1).astype(np.int64)
    tx_max = np.clip(np.floor((x + r) / ts), 0, grid.tiles_x - 1).astype(np.int64)
    ty_min = np.clip(np.floor((y - r) / ts), 0, grid.tiles_y - 1).astype(np.int64)
    ty_max = np.clip(np.floor((y + r) / ts), 0, grid.tiles_y - 1).astype(np.int64)

    spans_x = tx_max - tx_min + 1
    spans_y = ty_max - ty_min + 1
    counts = spans_x * spans_y
    total = int(counts.sum())

    splat_ids = np.repeat(np.arange(m, dtype=np.int64), counts)

    # Enumerate each splat's (tx, ty) tile rectangle with a flat ramp.
    offsets = np.concatenate([[0], np.cumsum(counts)])
    ramp = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], counts)
    local_x = ramp % np.repeat(spans_x, counts)
    local_y = ramp // np.repeat(spans_x, counts)
    tile_x = np.repeat(tx_min, counts) + local_x
    tile_y = np.repeat(ty_min, counts) + local_y
    tile_ids = tile_y * grid.tiles_x + tile_x

    order = np.argsort(tile_ids, kind="stable")
    pair_tiles = tile_ids[order]
    pair_splats = splat_ids[order]

    per_tile = np.bincount(pair_tiles, minlength=grid.num_tiles)
    tile_offsets = np.concatenate([[0], np.cumsum(per_tile)]).astype(np.int64)

    return TileAssignment(
        grid=grid,
        pair_tiles=pair_tiles,
        pair_splats=pair_splats,
        tile_offsets=tile_offsets,
    )
