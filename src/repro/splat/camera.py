"""Pinhole camera model with the display geometry needed for foveation.

Beyond the usual world→camera→screen mapping, foveated rendering needs to
know the *visual angle* of every pixel: in a VR headset the display spans the
field of view directly, so the eccentricity of a pixel relative to the gaze
point is the angle between the pixel's viewing ray and the gaze ray.
:meth:`Camera.pixel_eccentricity` provides exactly that map.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class Camera:
    """A pinhole camera with a world-to-camera rigid transform.

    Camera convention: +z looks forward, +x right, +y down (image rows grow
    downward), matching the 3DGS rasterizer.
    """

    width: int
    height: int
    fx: float
    fy: float
    cx: float
    cy: float
    world_to_cam_rotation: np.ndarray  # (3, 3)
    world_to_cam_translation: np.ndarray  # (3,)
    near: float = 0.05
    far: float = 1000.0

    def __post_init__(self) -> None:
        rot = np.asarray(self.world_to_cam_rotation, dtype=np.float64)
        trans = np.asarray(self.world_to_cam_translation, dtype=np.float64)
        if rot.shape != (3, 3):
            raise ValueError(f"rotation must be (3, 3), got {rot.shape}")
        if trans.shape != (3,):
            raise ValueError(f"translation must be (3,), got {trans.shape}")
        object.__setattr__(self, "world_to_cam_rotation", rot)
        object.__setattr__(self, "world_to_cam_translation", trans)
        if self.width <= 0 or self.height <= 0:
            raise ValueError("image dimensions must be positive")
        if self.fx <= 0 or self.fy <= 0:
            raise ValueError("focal lengths must be positive")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_fov(
        width: int,
        height: int,
        fov_x_deg: float,
        position: np.ndarray,
        look_at: np.ndarray,
        up: np.ndarray | None = None,
        near: float = 0.05,
        far: float = 1000.0,
    ) -> "Camera":
        """Build a look-at camera from a horizontal field of view."""
        position = np.asarray(position, dtype=np.float64)
        look_at = np.asarray(look_at, dtype=np.float64)
        up = np.asarray([0.0, -1.0, 0.0] if up is None else up, dtype=np.float64)

        forward = look_at - position
        norm = np.linalg.norm(forward)
        if norm < 1e-12:
            raise ValueError("camera position and look_at coincide")
        forward = forward / norm
        right = np.cross(up, forward)
        right_norm = np.linalg.norm(right)
        if right_norm < 1e-12:
            # ``up`` parallel to viewing direction; pick an arbitrary right.
            right = np.cross(np.array([1.0, 0.0, 0.0]), forward)
            right_norm = np.linalg.norm(right)
            if right_norm < 1e-12:
                right = np.cross(np.array([0.0, 0.0, 1.0]), forward)
                right_norm = np.linalg.norm(right)
        right = right / right_norm
        down = np.cross(forward, right)

        rotation = np.stack([right, down, forward])  # rows: camera axes in world
        translation = -rotation @ position

        fov_x = np.deg2rad(fov_x_deg)
        fx = (width / 2.0) / np.tan(fov_x / 2.0)
        return Camera(
            width=width,
            height=height,
            fx=fx,
            fy=fx,
            cx=width / 2.0,
            cy=height / 2.0,
            world_to_cam_rotation=rotation,
            world_to_cam_translation=translation,
            near=near,
            far=far,
        )

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def position(self) -> np.ndarray:
        """Camera centre in world coordinates."""
        return -self.world_to_cam_rotation.T @ self.world_to_cam_translation

    @property
    def fov_x_deg(self) -> float:
        return float(np.rad2deg(2.0 * np.arctan(self.width / (2.0 * self.fx))))

    @property
    def fov_y_deg(self) -> float:
        return float(np.rad2deg(2.0 * np.arctan(self.height / (2.0 * self.fy))))

    def world_to_camera(self, points: np.ndarray) -> np.ndarray:
        """Transform ``(N, 3)`` world points into camera space."""
        points = np.asarray(points, dtype=np.float64)
        return points @ self.world_to_cam_rotation.T + self.world_to_cam_translation

    def camera_to_screen(self, cam_points: np.ndarray) -> np.ndarray:
        """Perspective-project camera-space points to pixel coordinates."""
        cam_points = np.asarray(cam_points, dtype=np.float64)
        z = cam_points[:, 2]
        z_safe = np.where(np.abs(z) < 1e-9, 1e-9, z)
        u = cam_points[:, 0] / z_safe * self.fx + self.cx
        v = cam_points[:, 1] / z_safe * self.fy + self.cy
        return np.stack([u, v], axis=1)

    def project(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """World points → (pixel coordinates ``(N, 2)``, depths ``(N,)``)."""
        cam = self.world_to_camera(points)
        return self.camera_to_screen(cam), cam[:, 2]

    def view_directions(self, points: np.ndarray) -> np.ndarray:
        """Unit directions from the camera centre to each world point."""
        diff = np.asarray(points, dtype=np.float64) - self.position
        norms = np.linalg.norm(diff, axis=1, keepdims=True)
        norms = np.where(norms == 0.0, 1.0, norms)
        return diff / norms

    # ------------------------------------------------------------------
    # Visual-angle geometry for foveation
    # ------------------------------------------------------------------
    def pixel_rays(self) -> np.ndarray:
        """Camera-space unit viewing ray of every pixel, ``(H, W, 3)``."""
        xs = (np.arange(self.width) + 0.5 - self.cx) / self.fx
        ys = (np.arange(self.height) + 0.5 - self.cy) / self.fy
        grid_x, grid_y = np.meshgrid(xs, ys)
        rays = np.stack([grid_x, grid_y, np.ones_like(grid_x)], axis=-1)
        return rays / np.linalg.norm(rays, axis=-1, keepdims=True)

    def pixel_eccentricity(self, gaze: tuple[float, float] | None = None) -> np.ndarray:
        """Per-pixel eccentricity in degrees relative to a gaze point.

        Parameters
        ----------
        gaze:
            ``(x, y)`` pixel coordinates of the gaze; defaults to the image
            centre (the principal point).
        """
        if gaze is None:
            gaze = (self.cx, self.cy)
        gx = (gaze[0] - self.cx) / self.fx
        gy = (gaze[1] - self.cy) / self.fy
        gaze_ray = np.array([gx, gy, 1.0])
        gaze_ray = gaze_ray / np.linalg.norm(gaze_ray)
        rays = self.pixel_rays()
        cos_angle = np.clip(rays @ gaze_ray, -1.0, 1.0)
        return np.rad2deg(np.arccos(cos_angle))

    def degrees_per_pixel(self) -> float:
        """Approximate visual angle subtended by one pixel at the centre."""
        return float(np.rad2deg(np.arctan(1.0 / self.fx)))
