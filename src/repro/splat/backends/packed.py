"""Packed rasterization backend: whole-frame vectorized span operations.

Instead of looping over tiles and building a dense ``(splats, pixels)``
alpha matrix per tile, this engine flattens the frame's tile–splat
intersections into per-pixel-row *spans* (see
:mod:`repro.splat.backends.segments`): each pair contributes one
``tile_size``-wide lane vector per pixel row its ellipse can actually
reach, sorted so every pixel's fragment list is contiguous.  Alpha
evaluation, front-to-back compositing with early termination, statistics
(Val_i), and the analytic backward pass are then segmented scans and
reductions over the span arrays — **no Python loop over tiles** in the
forward, backward, foveated or multi-model paths (the multi-model path
loops over quality *levels*, of which there are a handful).

Work scales with the rasterized splat area rather than
``intersections × tile area`` (the reference loop's cost), which is where
the speedup comes from; results match ``reference`` to within 1e-10.  The
alpha values and their intersect-test thresholding are bit-identical; the
transmittance comes from a log-space segmented scan and agrees with the
reference cumprod only to the last ulp, so the early-termination gates
(``trans >= TRANSMITTANCE_EPS``) could in principle flip on a pixel whose
transmittance lands within an ulp of the threshold — astronomically rare,
but if an equivalence test ever fails by ~1e-4 on an unrelated change,
look here first.

All span matrices are laid out lanes-first, ``(tile_size, R)``, so the
segmented scans and reductions run along the contiguous axis.
"""

from __future__ import annotations

import functools
import os
from typing import Any

import numpy as np

from ..projection import ALPHA_EPS, ProjectedGaussians
from ..rasterizer import ALPHA_CLAMP, TRANSMITTANCE_EPS, RasterGradients
from ..tiling import TileAssignment, TileGrid
from .base import FoveatedFrame
from .segments import (
    RowSpans,
    SpanBatch,
    build_row_spans,
    build_segments,
    concat_spans,
    segment_transmittance_exclusive,
    segmented_cumsum_exclusive,
)


@functools.lru_cache(maxsize=16)
def _tile_of_pixel(grid: TileGrid) -> np.ndarray:
    """Tile id of every pixel, ``(H, W)``."""
    ts = grid.tile_size
    ys = np.arange(grid.height, dtype=np.int64) // ts
    xs = np.arange(grid.width, dtype=np.int64) // ts
    return ys[:, None] * grid.tiles_x + xs[None, :]


def _background_frame(grid: TileGrid, background: np.ndarray) -> np.ndarray:
    image = np.empty((grid.height, grid.width, 3))
    image[:, :] = background
    return image


def _span_quad(projected: ProjectedGaussians, spans: RowSpans) -> np.ndarray:
    """Mahalanobis quadratic form per (lane, span), ``(ts, R)``.

    The x offsets are shared by all rows of a pair (one gather from a
    per-pair table); the y offsets are scalars per span.  Evaluation order
    matches :func:`repro.splat.rasterizer.splat_alphas` bit for bit.
    """
    seg = spans.seg
    geom = seg.geometry
    means = projected.means2d[seg.pair_splats]
    conics = projected.conics[seg.pair_splats]

    # (ts, K) pixel-centre x minus mean; both terms exactly representable.
    dx_pair = geom.lane_x[:, None] + geom.origin_x[seg.pair_tiles][None, :]
    dx_pair -= means[None, :, 0]

    sp = spans.span_pair
    dx = dx_pair[:, sp]  # (ts, R)
    dy = (spans.span_y + 0.5) - means[sp, 1]  # (R,)

    quad = (2.0 * conics[sp, 1])[None, :] * dx
    quad *= dy[None, :]
    np.multiply(dx, dx, out=dx)
    dx *= conics[sp, 0][None, :]
    quad += dx
    quad += (conics[sp, 2] * (dy * dy))[None, :]
    return np.maximum(quad, 0.0, out=quad)


def _exp_neg_half(quad: np.ndarray) -> np.ndarray:
    """``exp(-quad/2)`` (off-ellipse slots underflow toward zero)."""
    out = np.multiply(quad, -0.5)
    return np.exp(out, out=out)


def _clamp_alphas(raw: np.ndarray) -> np.ndarray:
    """The rasterizer's intersect test (in place): zero below 1/255, clamp
    near 1.  Multiplying by the boolean keep-mask zeroes sub-threshold slots
    exactly, matching the reference ``np.where``."""
    keep = raw >= ALPHA_EPS
    np.minimum(raw, ALPHA_CLAMP, out=raw)
    raw *= keep
    return raw


def _span_alphas(
    projected: ProjectedGaussians, spans: RowSpans
) -> tuple[np.ndarray, np.ndarray]:
    """Per-(lane, span) alphas and the quadratic form, ``(ts, R)``.

    Off-image lanes of edge tiles are evaluated like any other slot; they
    form lane columns that are never scattered into the frame, and the
    statistics/gradient reductions mask them out explicitly.
    """
    quad = _span_quad(projected, spans)
    alphas = _exp_neg_half(quad)
    alphas *= projected.opacities[spans.seg.pair_splats][spans.span_pair][None, :]
    return _clamp_alphas(alphas), quad


def _weights_final(
    alphas: np.ndarray, spans: RowSpans, keep_trans: bool = False
) -> tuple[np.ndarray | None, np.ndarray, np.ndarray]:
    """Transmittance scan: ``(trans_excl, weights, final_trans (ts, Q))``.

    ``final_trans`` replicates the reference early-termination rule exactly:
    the reference evaluates ``active`` at the *tile's* last splat, which for
    a pixel whose trailing splats carry no span is the group's final
    transmittance itself rather than the transmittance before the last
    contribution.

    Unless ``keep_trans``, the weights are computed in the scan's buffer and
    the first element of the returned tuple is ``None``.
    """
    trans = segment_transmittance_exclusive(alphas, spans.groups)
    last = spans.groups.last
    trans_last = trans[:, last].copy()
    tau = trans_last * (1.0 - alphas[:, last])
    gate = np.where(spans.group_has_tile_last[None, :], trans_last, tau)
    final = np.where(gate >= TRANSMITTANCE_EPS, tau, 0.0)

    active = trans >= TRANSMITTANCE_EPS
    weights = trans * alphas if keep_trans else np.multiply(trans, alphas, out=trans)
    weights *= active
    return (trans if keep_trans else None), weights, final


def _group_pixel_index(spans: RowSpans) -> tuple[np.ndarray, np.ndarray]:
    """Flat image index and on-image mask of every group lane, ``(Q, ts)``."""
    geom = spans.seg.geometry
    grid = geom.grid
    base = spans.group_y * grid.width + geom.origin_x[spans.group_tile].astype(np.int64)
    idx = base[:, None] + np.arange(grid.tile_size, dtype=np.int64)[None, :]
    return idx, geom.lane_valid[spans.group_tile]


def _scatter_composite(
    image: np.ndarray,
    weights: np.ndarray,
    final: np.ndarray,
    span_colors: np.ndarray,
    spans: RowSpans,
    background: np.ndarray,
    color_perm: np.ndarray | None = None,
) -> None:
    """Accumulate composited colours into ``image`` (pre-filled with bg)."""
    idx, ok = _group_pixel_index(spans)
    idx_ok = idx[ok]
    starts = spans.groups.starts
    scratch = np.empty_like(weights)
    pixels = np.empty((spans.num_groups, spans.seg.grid.tile_size, 3))
    for c in range(3):
        channel = span_colors[:, c]
        slot = channel[None, :] if color_perm is None else channel[color_perm]
        np.multiply(weights, slot, out=scratch)
        pixel = np.add.reduceat(scratch, starts, axis=-1)  # (ts, Q)
        pixel += final * background[c]
        pixels[:, :, c] = pixel.T
    image.reshape(-1, 3)[idx_ok] = pixels[ok]


def _per_pixel_permutation(
    projected: ProjectedGaussians, spans: RowSpans, quad: np.ndarray
) -> np.ndarray:
    """StopThePop ordering: per-pixel depth permutation within each group.

    Matches the reference backend exactly (including ties): a stable sort by
    per-pixel depth followed by a stable sort by group id keeps groups
    contiguous while ordering each lane by depth with original-order
    tie-breaking.
    """
    base = projected.depths[spans.seg.pair_splats][spans.span_pair]
    depths = base[None, :] * (1.0 + 0.01 * quad)
    by_depth = np.argsort(depths, axis=-1, kind="stable")
    groups_sorted = spans.groups.of_item[by_depth]
    by_group = np.argsort(groups_sorted, axis=-1, kind="stable")
    return np.take_along_axis(by_depth, by_group, axis=-1)


def _dominated_counts(
    projected: ProjectedGaussians,
    spans: RowSpans,
    weights: np.ndarray,
    num_points: int,
    orig_cols: np.ndarray | None,
) -> np.ndarray:
    """Val_i: per-point count of pixels it dominates (max ``T_i α_i``).

    Ties resolve to the earliest pair in depth order, matching the
    reference ``argmax``; ``orig_cols`` maps permuted slots back to their
    original spans on the per-pixel-sorted path.
    """
    dominated = np.zeros(num_points, dtype=np.int64)
    starts = spans.groups.starts
    wmax = np.maximum.reduceat(weights, starts, axis=-1)  # (ts, Q)
    _, ok = _group_pixel_index(spans)
    has_any = (wmax > 0.0) & ok.T
    if orig_cols is None:
        orig_cols = np.broadcast_to(
            np.arange(spans.num_spans, dtype=np.int64)[None, :], weights.shape
        )
    cand = np.where(
        (weights == wmax[:, spans.groups.of_item]) & (weights > 0.0),
        orig_cols,
        spans.num_spans,
    )
    winners = np.minimum.reduceat(cand, starts, axis=-1)  # (ts, Q)
    winner_pairs = spans.span_pair[winners[has_any]]
    pids = projected.point_ids[spans.seg.pair_splats[winner_pairs]]
    np.add.at(dominated, pids, 1)
    return dominated


# Cache-residency budget of one batched scan, in spans.  A batch scan's
# temporaries are ``(tile_size, R)``; once they outgrow the fast cache
# levels every whole-batch operation streams from DRAM, which measured ~2x
# slower per element than cache-resident per-view arrays.  8k spans keeps
# each scan matrix around 1 MB (at the default 16-px tiles) — the best point
# of a 6k–24k sweep across frame sizes and view counts — while still
# amortizing the fixed per-frame kernel overhead across several views.
# Tune per machine with ``REPRO_BATCH_SPAN_BUDGET``.
SPAN_CHUNK_BUDGET = int(os.environ.get("REPRO_BATCH_SPAN_BUDGET", 8192))


class _Workspace:
    """Persistent scratch buffers for the batched span kernels.

    A batch's ``(tile_size, R)`` temporaries run to several MB each; fresh
    allocations of that size pay page faults on every first touch, which
    measured ~2x on the whole batched pass.  Named slots are grown (with
    headroom) when a batch outsizes them and sliced to shape otherwise, so
    steady-state batched rendering touches only warm pages.  The backend is
    a process-wide singleton, so slots live for the process; call
    :meth:`trim` to drop them.
    """

    def __init__(self) -> None:
        self._slots: dict[str, np.ndarray] = {}

    def take(self, name: str, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        n = int(np.prod(shape, dtype=np.int64)) if shape else 1
        buf = self._slots.get(name)
        if buf is None or buf.dtype != np.dtype(dtype) or buf.size < n:
            buf = np.empty(n + (n >> 2) + 16, dtype=dtype)
            self._slots[name] = buf
        return buf[:n].reshape(shape)

    def trim(self) -> None:
        self._slots.clear()


def _batch_pair_tables(
    views: list[tuple[ProjectedGaussians, TileAssignment]],
    spans_list: list[RowSpans],
) -> tuple[np.ndarray, ...]:
    """Concatenated per-pair gather tables aligned with a batch's pair rows.

    One gather per view, so every later batch-wide lookup (means, conics,
    colours, opacities, depths, point ids, tile x-origins) is a single flat
    index into these tables regardless of which frame a span came from.
    """
    means, conics, opacities, colors, pids, origin_x, depths = (
        [], [], [], [], [], [], []
    )
    for (projected, _), spans in zip(views, spans_list):
        seg = spans.seg
        sel = seg.pair_splats
        means.append(projected.means2d[sel])
        conics.append(projected.conics[sel])
        opacities.append(projected.opacities[sel])
        colors.append(projected.colors[sel])
        pids.append(projected.point_ids[sel])
        origin_x.append(seg.geometry.origin_x[seg.pair_tiles])
        depths.append(projected.depths[sel])
    return (
        np.concatenate(means),
        np.concatenate(conics),
        np.concatenate(opacities),
        np.concatenate(colors),
        np.concatenate(pids),
        np.concatenate(origin_x),
        np.concatenate(depths),
    )


def _batch_span_quad(
    batch: SpanBatch,
    pair_means: np.ndarray,
    pair_conics: np.ndarray,
    pair_origin_x: np.ndarray,
    tile_size: int,
    ws: _Workspace,
) -> np.ndarray:
    """Mahalanobis quadratic form over a whole batch, ``(ts, R)``.

    Same evaluation order as :func:`_span_quad` (every rewrite into a
    workspace buffer commutes bitwise), so a batch of one view is
    bit-identical to the unbatched forward pass.
    """
    sp = batch.span_pair
    ts, k, r = tile_size, pair_means.shape[0], sp.shape[0]
    lane_x = np.arange(ts, dtype=np.int64) + 0.5

    dx_pair = ws.take("dx_pair", (ts, k))
    np.add(lane_x[:, None], pair_origin_x[None, :], out=dx_pair)
    dx_pair -= pair_means[None, :, 0]
    dx = ws.take("dx", (ts, r))
    np.take(dx_pair, sp, axis=1, out=dx, mode="clip")

    dy = ws.take("dy", (r,))
    np.add(batch.span_y, 0.5, out=dy)
    gather = ws.take("conic_gather", (r,))
    np.take(pair_means[:, 1], sp, out=gather, mode="clip")
    dy -= gather

    quad = ws.take("quad", (ts, r))
    np.take(pair_conics[:, 1], sp, out=gather, mode="clip")
    gather *= 2.0
    np.multiply(gather[None, :], dx, out=quad)
    quad *= dy[None, :]
    np.multiply(dx, dx, out=dx)
    np.take(pair_conics[:, 0], sp, out=gather, mode="clip")
    dx *= gather[None, :]
    quad += dx
    np.take(pair_conics[:, 2], sp, out=gather, mode="clip")
    dy *= dy
    gather *= dy
    quad += gather[None, :]
    return np.maximum(quad, 0.0, out=quad)


def _batch_span_alphas(
    batch: SpanBatch, pair_opacities: np.ndarray, quad: np.ndarray, ws: _Workspace
) -> np.ndarray:
    """Alphas over a whole batch (cf. :func:`_span_alphas`), ``quad`` kept."""
    alphas = ws.take("alphas", quad.shape)
    np.multiply(quad, -0.5, out=alphas)
    np.exp(alphas, out=alphas)
    alphas *= pair_opacities[batch.span_pair][None, :]
    keep = ws.take("keep", alphas.shape, np.bool_)
    np.greater_equal(alphas, ALPHA_EPS, out=keep)
    np.minimum(alphas, ALPHA_CLAMP, out=alphas)
    alphas *= keep
    return alphas


def _batch_weights_final(
    alphas: np.ndarray, batch: SpanBatch, ws: _Workspace
) -> tuple[np.ndarray, np.ndarray]:
    """Transmittance scan over a whole batch: ``(weights, final)``.

    Inlines :func:`_weights_final` /
    :func:`~repro.splat.backends.segments.segment_transmittance_exclusive`
    with workspace buffers, in the exact same operation order.  Batch groups
    are never empty (each view contributes only its non-empty ``(tile,
    row)`` runs), so the scan needs no empty-segment widening.
    """
    groups = batch.groups
    starts = groups.starts

    logt = ws.take("logt", alphas.shape)
    np.negative(alphas, out=logt)
    np.log1p(logt, out=logt)
    totals = ws.take("totals", alphas.shape[:-1] + (groups.num_segments,))
    np.add.reduceat(logt, starts, axis=-1, out=totals)
    if starts.size > 1:
        logt[..., starts[1:]] -= totals[..., :-1]
    np.cumsum(logt, axis=-1, out=logt)
    excl = ws.take("excl", alphas.shape)
    excl[..., 0] = 0.0
    excl[..., 1:] = logt[..., :-1]
    excl[..., starts] = 0.0
    np.minimum(excl, 0.0, out=excl)
    trans = np.exp(excl, out=excl)

    last = groups.last
    trans_last = trans[:, last].copy()
    tau = trans_last * (1.0 - alphas[:, last])
    gate = np.where(batch.group_has_tile_last[None, :], trans_last, tau)
    final = np.where(gate >= TRANSMITTANCE_EPS, tau, 0.0)

    active = ws.take("active", alphas.shape, np.bool_)
    np.greater_equal(trans, TRANSMITTANCE_EPS, out=active)
    weights = np.multiply(trans, alphas, out=trans)
    weights *= active
    return weights, final


def _batch_per_pixel_permutation(
    batch: SpanBatch, pair_depths: np.ndarray, quad: np.ndarray
) -> np.ndarray:
    """StopThePop ordering across a batch (cf. :func:`_per_pixel_permutation`).

    The stable depth-then-group double sort permutes only within groups, and
    group ids are strictly increasing across views, so each view's pixels get
    exactly the ordering the unbatched path would produce.
    """
    base = pair_depths[batch.span_pair]
    depths = base[None, :] * (1.0 + 0.01 * quad)
    by_depth = np.argsort(depths, axis=-1, kind="stable")
    groups_sorted = batch.groups.of_item[by_depth]
    by_group = np.argsort(groups_sorted, axis=-1, kind="stable")
    return np.take_along_axis(by_depth, by_group, axis=-1)


class PackedBackend:
    """Flattened intersection-list engine (the default)."""

    name = "packed"

    def __init__(self) -> None:
        # Scratch buffers of the batched path, reused across calls (the
        # backend is a process-wide singleton).
        self._ws = _Workspace()

    def forward(
        self,
        projected: ProjectedGaussians,
        assignment: TileAssignment,
        num_points: int,
        background: np.ndarray,
        collect_stats: bool,
        per_pixel_sort: bool,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        grid = assignment.grid
        dominated = np.zeros(num_points, dtype=np.int64) if collect_stats else None
        image = _background_frame(grid, background)
        if assignment.num_intersections == 0:
            return image, dominated

        seg = build_segments(assignment)
        # Per-pixel sorting keeps every tile row: its early-termination gate
        # sits at the per-pixel deepest splat, which the reach bound could
        # otherwise prune (the permuted group-last slot is then exactly the
        # reference's gate row).
        spans = build_row_spans(projected, seg, full_rows=per_pixel_sort)
        if spans.num_spans == 0:
            return image, dominated
        alphas, quad = _span_alphas(projected, spans)

        perm = None
        if per_pixel_sort:
            perm = _per_pixel_permutation(projected, spans, quad)
            alphas = np.take_along_axis(alphas, perm, axis=-1)
        del quad

        _, weights, final = _weights_final(alphas, spans)
        span_colors = projected.colors[seg.pair_splats][spans.span_pair]
        _scatter_composite(
            image, weights, final, span_colors, spans, background, color_perm=perm
        )

        if collect_stats:
            dominated = _dominated_counts(projected, spans, weights, num_points, perm)
        return image, dominated

    def forward_batch(
        self,
        views: list[tuple[ProjectedGaussians, TileAssignment]],
        num_points: int,
        background: np.ndarray,
        collect_stats: bool,
        per_pixel_sort: bool,
    ) -> list[tuple[np.ndarray, np.ndarray | None]]:
        """Rasterize several views of one model in batch-segmented scans.

        Per-view span lists concatenate into one batch (the grids may differ
        as long as the tile size is shared), so alpha evaluation, the
        transmittance scan, compositing and the Val_i statistics each run
        once over all the batched frames; only the final scatter into each
        frame and the cheap per-view span construction remain per view.
        Scans are capped at :data:`SPAN_CHUNK_BUDGET` spans (several views'
        worth) so the shared scan matrices stay cache-resident — one scan
        over everything would stream every operation from DRAM.
        """
        if not views:
            return []
        sizes = {a.grid.tile_size for _, a in views}
        if len(sizes) > 1:
            raise ValueError(f"views must share one tile size, got {sorted(sizes)}")

        # Chunks are built streaming — one view's spans at a time, flushed
        # once the budget fills — so peak residency is one chunk's spans and
        # tables (plus the caller's views), never the whole batch's.
        results: list[tuple[np.ndarray, np.ndarray | None]] = []
        chunk_views: list[tuple[ProjectedGaussians, TileAssignment]] = []
        chunk_spans: list[RowSpans] = []
        total = 0

        def flush():
            nonlocal chunk_views, chunk_spans, total
            if chunk_views:
                results.extend(
                    self._forward_chunk(
                        chunk_views, chunk_spans, num_points, background,
                        collect_stats, per_pixel_sort,
                    )
                )
            chunk_views, chunk_spans, total = [], [], 0

        for view in views:
            spans = build_row_spans(
                view[0], build_segments(view[1]), full_rows=per_pixel_sort
            )
            if chunk_views and total + spans.num_spans > SPAN_CHUNK_BUDGET:
                flush()
            chunk_views.append(view)
            chunk_spans.append(spans)
            total += spans.num_spans
        flush()
        return results

    def _forward_chunk(
        self,
        views: list[tuple[ProjectedGaussians, TileAssignment]],
        spans_list: list[RowSpans],
        num_points: int,
        background: np.ndarray,
        collect_stats: bool,
        per_pixel_sort: bool,
    ) -> list[tuple[np.ndarray, np.ndarray | None]]:
        """One concatenated scan over a chunk of views."""
        images = [_background_frame(a.grid, background) for _, a in views]
        dominated: list[np.ndarray | None] = [
            np.zeros(num_points, dtype=np.int64) if collect_stats else None
            for _ in views
        ]
        batch = concat_spans(spans_list)  # validates the shared tile size
        if batch.num_spans == 0:
            return list(zip(images, dominated))

        ts = views[0][1].grid.tile_size
        ws = self._ws
        (
            pair_means,
            pair_conics,
            pair_opacities,
            pair_colors,
            pair_pids,
            pair_origin_x,
            pair_depths,
        ) = _batch_pair_tables(views, spans_list)

        quad = _batch_span_quad(
            batch, pair_means, pair_conics, pair_origin_x, ts, ws
        )
        alphas = _batch_span_alphas(batch, pair_opacities, quad, ws)

        perm = None
        if per_pixel_sort:
            perm = _batch_per_pixel_permutation(batch, pair_depths, quad)
            alphas = np.take_along_axis(alphas, perm, axis=-1)

        weights, final = _batch_weights_final(alphas, batch, ws)

        # One compositing reduction over the whole batch, scattered per view.
        starts = batch.groups.starts
        r, q = batch.num_spans, batch.num_groups
        span_colors = ws.take("span_colors", (r, 3))
        np.take(pair_colors, batch.span_pair, axis=0, out=span_colors, mode="clip")
        scratch = ws.take("scratch", weights.shape)
        pixel = ws.take("pixel", (ts, q))
        pixels = ws.take("pixels", (q, ts, 3))
        for c in range(3):
            channel = span_colors[:, c]
            slot = channel[None, :] if perm is None else channel[perm]
            np.multiply(weights, slot, out=scratch)
            np.add.reduceat(scratch, starts, axis=-1, out=pixel)  # (ts, Q)
            pixel += final * background[c]
            pixels[:, :, c] = pixel.T
        for v, spans in enumerate(spans_list):
            if spans.num_groups == 0:
                continue
            idx, ok = _group_pixel_index(spans)
            images[v].reshape(-1, 3)[idx[ok]] = pixels[batch.view_groups(v)][ok]

        if collect_stats:
            wmax = ws.take("wmax", (ts, q))
            np.maximum.reduceat(weights, starts, axis=-1, out=wmax)
            ok_all = np.concatenate(
                [s.seg.geometry.lane_valid[s.group_tile] for s in spans_list]
            )  # (Q, ts)
            has_any = (wmax > 0.0) & ok_all.T
            # cand = where(weights == per-group max and > 0, span column, R):
            # the winners minimum then resolves ties to the earliest span in
            # depth order, exactly like the unbatched path.
            is_max = ws.take("is_max", weights.shape, np.bool_)
            gather = ws.take("wmax_gather", weights.shape)
            np.take(wmax, batch.groups.of_item, axis=-1, out=gather, mode="clip")
            np.equal(weights, gather, out=is_max)
            positive = ws.take("positive", weights.shape, np.bool_)
            np.greater(weights, 0.0, out=positive)
            is_max &= positive
            cand = ws.take("cand", weights.shape, np.int64)
            cand[...] = r
            orig_cols = (
                np.arange(r, dtype=np.int64)[None, :] if perm is None else perm
            )
            np.copyto(cand, orig_cols, where=is_max)
            winners = ws.take("winners", (ts, q), np.int64)
            np.minimum.reduceat(cand, starts, axis=-1, out=winners)
            for v in range(len(views)):
                gsl = batch.view_groups(v)
                sel = has_any[:, gsl]
                if not sel.any():
                    continue
                winner_pairs = batch.span_pair[winners[:, gsl][sel]]
                np.add.at(dominated[v], pair_pids[winner_pairs], 1)
        return list(zip(images, dominated))

    def backward(
        self,
        projected: ProjectedGaussians,
        assignment: TileAssignment,
        num_points: int,
        grad_image: np.ndarray,
        background: np.ndarray,
    ) -> RasterGradients:
        grad_color = np.zeros((num_points, 3))
        grad_opacity = np.zeros(num_points)
        grad_log_scale = np.zeros(num_points)
        result = RasterGradients(
            color=grad_color, opacity=grad_opacity, log_scale=grad_log_scale
        )
        if assignment.num_intersections == 0:
            return result

        seg = build_segments(assignment)
        spans = build_row_spans(projected, seg)
        if spans.num_spans == 0:
            return result
        alphas, quad = _span_alphas(projected, spans)
        trans, weights, final = _weights_final(alphas, spans, keep_trans=True)

        # dL/dimage per group lane (zero on off-image lanes), lanes-first.
        idx, ok = _group_pixel_index(spans)
        ts = seg.grid.tile_size
        g_group = np.zeros((spans.num_groups, ts, 3))
        g_group[ok] = grad_image.reshape(-1, 3)[idx[ok]]
        g_lanes = np.ascontiguousarray(g_group.transpose(1, 0, 2))  # (ts, Q, 3)

        span_colors = projected.colors[seg.pair_splats][spans.span_pair]  # (R, 3)
        of_item = spans.groups.of_item
        gc = np.zeros_like(weights)  # (ts, R): g·c_i per pixel
        span_grad_color = np.empty((spans.num_spans, 3))
        for c in range(3):
            g_c = g_lanes[:, of_item, c]
            gc += span_colors[None, :, c] * g_c
            span_grad_color[:, c] = (weights * g_c).sum(axis=0)

        # Suffix sums S_i = Σ_{j>i} contrib_j + T_N (g·bg), per pixel.
        contrib = weights * gc
        excl, totals = segmented_cumsum_exclusive(contrib, spans.groups)
        bg_term = final * (g_lanes @ background)  # (ts, Q)
        suffix_after = totals[:, of_item] - (excl + contrib)
        suffix_after += bg_term[:, of_item]

        grad_alpha = trans * gc
        grad_alpha -= suffix_after / np.maximum(1.0 - alphas, 1e-6)
        hit = alphas > 0.0
        grad_alpha *= (trans >= TRANSMITTANCE_EPS) & hit & (alphas < ALPHA_CLAMP)

        # dα/do = e^{-q/2}; dα/du = α·q (since dq/du = -2q, dα/dq = -α/2).
        exp_term = _exp_neg_half(quad)
        pids = projected.point_ids[seg.pair_splats][spans.span_pair]
        np.add.at(grad_color, pids, span_grad_color)
        np.add.at(grad_opacity, pids, (grad_alpha * exp_term).sum(axis=0))
        np.add.at(grad_log_scale, pids, (grad_alpha * alphas * quad).sum(axis=0))
        return result

    def foveated_frame(
        self,
        projected: ProjectedGaussians,
        assignment: TileAssignment,
        maps: Any,
        bounds: np.ndarray,
        level_opacity: dict[int, np.ndarray],
        level_delta: dict[int, np.ndarray],
        background: np.ndarray,
    ) -> FoveatedFrame:
        grid = assignment.grid
        num_tiles = grid.num_tiles
        if assignment.num_intersections == 0:
            return FoveatedFrame(
                image=_background_frame(grid, background),
                sort_intersections_per_tile=np.zeros(num_tiles, dtype=np.int64),
                raster_intersections_per_tile=np.zeros(num_tiles, dtype=np.float64),
                blend_pixels=0,
            )

        seg = build_segments(assignment)
        n_levels = len(level_opacity)
        op_mat = np.stack([level_opacity[t] for t in range(1, n_levels + 1)])  # (L, N)
        de_mat = np.stack([level_delta[t] for t in range(1, n_levels + 1)])  # (L, N, 3)

        tl = maps.tile_level
        second = maps.tile_second_level
        pair_pids = projected.point_ids[seg.pair_splats]
        pair_bounds = bounds[pair_pids]
        pair_tl = tl[seg.pair_tiles]

        # Filtering stage: points with quality bound below a level never
        # reach sorting/rasterization for that level.
        sort_level = np.where(second > 0, np.minimum(tl, second), tl)
        sort_mask = pair_bounds >= sort_level[seg.pair_tiles]
        sort_ints = np.bincount(seg.pair_tiles[sort_mask], minlength=num_tiles).astype(
            np.int64
        )
        mask_primary = pair_bounds >= pair_tl
        raster_ints = np.bincount(
            seg.pair_tiles[mask_primary], minlength=num_tiles
        ).astype(np.float64)

        spans = build_row_spans(projected, seg)
        if spans.num_spans:
            base_exp = _exp_neg_half(_span_quad(projected, spans))
        else:
            base_exp = np.empty((grid.tile_size, 0))

        def level_image(pair_levels, pair_mask, sub_spans, keep):
            """Composite one quality level over (a tile subset of) the frame."""
            image = _background_frame(grid, background)
            if sub_spans.num_spans == 0:
                return image
            sp = sub_spans.span_pair
            pids = pair_pids[sp]
            levels = pair_levels[sp]  # subset first: never indexes level 0
            alphas = _clamp_alphas(
                op_mat[levels - 1, pids][None, :] * base_exp[:, keep]
            )
            alphas *= pair_mask[sp][None, :]
            colors = projected.colors[seg.pair_splats[sp]] + de_mat[levels - 1, pids]
            _, weights, final = _weights_final(alphas, sub_spans)
            _scatter_composite(image, weights, final, colors, sub_spans, background)
            return image

        prim = level_image(
            pair_tl, mask_primary, spans, np.ones(spans.num_spans, dtype=bool)
        )

        # Blending stage: band pixels of tiles with a second level are
        # rendered at both levels and interpolated.
        nonempty = np.diff(assignment.tile_offsets) > 0
        lo_t = np.where(second > 0, np.minimum(tl, second), 0)
        tile_map = _tile_of_pixel(grid)
        mix_full = (
            (maps.band_level == lo_t[tile_map])
            & maps.needs_blend
            & ((second > 0) & nonempty)[tile_map]
        )
        blend_pixels = int(mix_full.sum())
        out = prim
        if blend_pixels:
            mix_count = np.bincount(tile_map[mix_full], minlength=num_tiles)
            sel_tiles = mix_count > 0  # implies second > 0 and non-empty
            sub_spans, keep = spans.subset(sel_tiles)
            pair_second = second[seg.pair_tiles]
            mask_second = pair_bounds >= pair_second
            sec = level_image(pair_second, mask_second, sub_spans, keep)

            # Second-level pass touches only the band pixels.
            msec = np.bincount(seg.pair_tiles[mask_second], minlength=num_tiles)
            raster_ints[sel_tiles] += (
                msec[sel_tiles] * mix_count[sel_tiles] / grid.tile_size**2
            )

            lo_is_primary = (tl == lo_t)[tile_map][:, :, None]
            lo_img = np.where(lo_is_primary, prim, sec)
            hi_img = np.where(lo_is_primary, sec, prim)
            w = maps.weight_next[:, :, None]
            out = np.where(mix_full[:, :, None], (1.0 - w) * lo_img + w * hi_img, prim)

        return FoveatedFrame(
            image=out,
            sort_intersections_per_tile=sort_ints,
            raster_intersections_per_tile=raster_ints,
            blend_pixels=blend_pixels,
        )

    def multi_model_frame(
        self,
        views: list[tuple[ProjectedGaussians, TileAssignment]],
        maps: Any,
        background: np.ndarray,
    ) -> FoveatedFrame:
        grid = views[0][1].grid
        num_tiles = grid.num_tiles
        tile_ids = np.arange(num_tiles)
        tl = maps.tile_level
        second = maps.tile_second_level

        # Every level pays its own sorting/rasterization on its own view.
        ints = np.stack([v[1].intersections_per_tile() for v in views])  # (L, T)
        n_primary = ints[tl - 1, tile_ids]
        sort_ints = n_primary.astype(np.int64)
        raster_ints = n_primary.astype(np.float64)

        lo_t = np.where(second > 0, np.minimum(tl, second), 0)
        tile_map = _tile_of_pixel(grid)
        mix_full = (
            (maps.band_level == lo_t[tile_map])
            & maps.needs_blend
            & (second > 0)[tile_map]
        )
        blend_pixels = int(mix_full.sum())
        mix_count = np.bincount(tile_map[mix_full], minlength=num_tiles)
        sel_second = mix_count > 0  # implies second > 0
        n_second = ints[np.maximum(second - 1, 0), tile_ids]
        raster_ints[sel_second] += (
            n_second[sel_second] * mix_count[sel_second] / grid.tile_size**2
        )

        prim = _background_frame(grid, background)
        sec = _background_frame(grid, background)
        for level in range(1, len(views) + 1):
            need_p = tl == level
            need_s = sel_second & (second == level)
            need = need_p | need_s
            projected_v, assignment_v = views[level - 1]
            if not need.any() or assignment_v.num_intersections == 0:
                continue
            sub_spans, _ = build_row_spans(
                projected_v, build_segments(assignment_v)
            ).subset(need)
            if sub_spans.num_spans == 0:
                continue
            alphas, _ = _span_alphas(projected_v, sub_spans)
            _, weights, final = _weights_final(alphas, sub_spans)
            colors = projected_v.colors[sub_spans.seg.pair_splats][sub_spans.span_pair]
            img_v = _background_frame(grid, background)
            _scatter_composite(img_v, weights, final, colors, sub_spans, background)
            mask_p = need_p[tile_map]
            mask_s = need_s[tile_map]
            prim[mask_p] = img_v[mask_p]
            sec[mask_s] = img_v[mask_s]

        out = prim
        if blend_pixels:
            lo_is_primary = (tl == lo_t)[tile_map][:, :, None]
            lo_img = np.where(lo_is_primary, prim, sec)
            hi_img = np.where(lo_is_primary, sec, prim)
            w = maps.weight_next[:, :, None]
            out = np.where(mix_full[:, :, None], (1.0 - w) * lo_img + w * hi_img, prim)

        return FoveatedFrame(
            image=out,
            sort_intersections_per_tile=sort_ints,
            raster_intersections_per_tile=raster_ints,
            blend_pixels=blend_pixels,
        )
