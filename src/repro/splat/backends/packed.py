"""Packed rasterization backend: whole-frame vectorized span operations.

Instead of looping over tiles and building a dense ``(splats, pixels)``
alpha matrix per tile, this engine flattens the frame's tile–splat
intersections into per-pixel-row *spans* (see
:mod:`repro.splat.backends.segments`): each pair contributes one
``tile_size``-wide lane vector per pixel row its ellipse can actually
reach, sorted so every pixel's fragment list is contiguous.  Alpha
evaluation, front-to-back compositing with early termination, statistics
(Val_i), and the analytic backward pass are then segmented scans and
reductions over the span arrays — **no Python loop over tiles** in the
forward, backward, foveated or multi-model paths (the multi-model path
loops over quality *levels*, of which there are a handful).

The numeric core lives in :mod:`repro.splat.backends.kernels`,
parameterized by an array namespace: this module orchestrates span
construction, chunking and the scatter back into frames, while every scan
and reduction runs through the backend's ``nsx`` (numpy by default; the
``packed-xp`` registry entry resolves torch/cupy at runtime).  The
single-view ``forward`` routes through the same pooled batch kernels as a
batch of one — bit-identical to the historical unpooled pass, but reusing
the warm :class:`~repro.splat.backends.kernels.Workspace` arena across
calls (~1.15x on repeated renders).

Work scales with the rasterized splat area rather than
``intersections × tile area`` (the reference loop's cost), which is where
the speedup comes from; results match ``reference`` to within 1e-10.  The
alpha values and their intersect-test thresholding are bit-identical; the
transmittance comes from a log-space segmented scan and agrees with the
reference cumprod only to the last ulp, so the early-termination gates
(``trans >= TRANSMITTANCE_EPS``) could in principle flip on a pixel whose
transmittance lands within an ulp of the threshold — astronomically rare,
but if an equivalence test ever fails by ~1e-4 on an unrelated change,
look here first.

All span matrices are laid out lanes-first, ``(tile_size, R)``, so the
segmented scans and reductions run along the contiguous axis.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Any

import numpy as np

from ...obs.trace import backend_span
from ..projection import ProjectedGaussians
from ..rasterizer import RasterGradients
from ..tiling import TileAssignment, TileGrid
from .base import FoveatedFrame
from .kernels import (
    ArrayNamespace,
    BatchTables,
    Workspace,
    backward_grads,
    batch_composite,
    batch_dominated_winners,
    batch_per_pixel_permutation,
    batch_span_alphas,
    batch_span_quad,
    batch_weights_final,
    composite_groups,
    dominated_counts,
    exp_neg_half,
    foveated_level_alphas,
    get_array_namespace,
    per_pixel_permutation,
    span_alphas,
    span_quad,
    weights_final,
)
from .segments import (
    PackedSegments,
    RowSpans,
    SegmentIndex,
    build_row_spans,
    build_segments,
    concat_spans,
)


@functools.lru_cache(maxsize=16)
def _tile_of_pixel(grid: TileGrid) -> np.ndarray:
    """Tile id of every pixel, ``(H, W)``."""
    ts = grid.tile_size
    ys = np.arange(grid.height, dtype=np.int64) // ts
    xs = np.arange(grid.width, dtype=np.int64) // ts
    return ys[:, None] * grid.tiles_x + xs[None, :]


def _background_frame(grid: TileGrid, background: np.ndarray) -> np.ndarray:
    image = np.empty((grid.height, grid.width, 3))
    image[:, :] = background
    return image


def _group_pixel_index(spans: RowSpans) -> tuple[np.ndarray, np.ndarray]:
    """Flat image index and on-image mask of every group lane, ``(Q, ts)``."""
    geom = spans.seg.geometry
    grid = geom.grid
    base = spans.group_y * grid.width + geom.origin_x[spans.group_tile].astype(np.int64)
    idx = base[:, None] + np.arange(grid.tile_size, dtype=np.int64)[None, :]
    return idx, geom.lane_valid[spans.group_tile]


def _scatter_composite(
    nsx: ArrayNamespace,
    image: np.ndarray,
    weights: np.ndarray,
    final: np.ndarray,
    span_colors: np.ndarray,
    spans: RowSpans,
    background: np.ndarray,
    color_perm: np.ndarray | None = None,
) -> None:
    """Accumulate composited colours into ``image`` (pre-filled with bg)."""
    idx, ok = _group_pixel_index(spans)
    pixels = composite_groups(
        nsx, weights, final, span_colors, spans.groups,
        spans.seg.grid.tile_size, background, color_perm,
    )
    image.reshape(-1, 3)[idx[ok]] = pixels[ok]


# Cache-residency budget of one batched scan, in spans.  A batch scan's
# temporaries are ``(tile_size, R)``; once they outgrow the fast cache
# levels every whole-batch operation streams from DRAM, which measured ~2x
# slower per element than cache-resident per-view arrays.  8k spans keeps
# each scan matrix around 1 MB (at the default 16-px tiles) — the best point
# of a 6k–24k sweep across frame sizes and view counts — while still
# amortizing the fixed per-frame kernel overhead across several views.
# ``repro.cli tune`` re-measures the knee per machine and persists it to a
# host profile; ``REPRO_BATCH_SPAN_BUDGET`` overrides both.  Device
# namespaces skip the chunking entirely (no CPU cache to stay resident in).
DEFAULT_SPAN_CHUNK_BUDGET = 8192
SPAN_BUDGET_ENV = "REPRO_BATCH_SPAN_BUDGET"

# Per-view span budget of the cache-tiled ``packed-tiled`` backend: frames
# whose span list exceeds it are scanned in group-aligned sub-chunks so the
# scan temporaries of *one very large frame* stay LLC-resident (the span
# chunk budget above only bounds how many small frames share a scan — a
# single oversized frame still ran as one whole-frame scan).  The default
# follows the tuner: host profile, else the LLC cost-model prediction,
# else 4x the span chunk budget; ``REPRO_TILE_SPAN_BUDGET`` overrides.
DEFAULT_TILE_SPAN_BUDGET = 4 * DEFAULT_SPAN_CHUNK_BUDGET
TILE_BUDGET_ENV = "REPRO_TILE_SPAN_BUDGET"


def _profile_knob(name: str) -> int | float | None:
    """A knob from the persisted host profile (``None`` when untuned).

    Lazy import: :mod:`repro.tune.profile` is a leaf module, but keeping it
    off the backend import path means the render engine never pays for (or
    cycles through) the tuner unless a knob is actually resolved.
    """
    from ...tune.profile import profile_value

    return profile_value(name)


def span_chunk_budget(budget: int | None = None) -> int:
    """The per-chunk span budget: explicit > env > host profile > default.

    An explicit ``budget`` argument wins outright (callers that measured
    their own workload).  Otherwise ``REPRO_BATCH_SPAN_BUDGET`` applies —
    hardened: non-integer or non-positive settings fall back with a warning
    instead of crashing the render path (or silently degenerating to
    zero-view chunks) — then the host profile's tuned ``span_budget``
    (see :mod:`repro.tune`), then :data:`DEFAULT_SPAN_CHUNK_BUDGET`.
    """
    if budget is not None:
        if budget < 1:
            raise ValueError(f"span budget must be positive, got {budget}")
        return int(budget)
    from ...envknobs import env_int

    fallback = _profile_knob("span_budget") or DEFAULT_SPAN_CHUNK_BUDGET
    return env_int(SPAN_BUDGET_ENV, int(fallback), minimum=1)


@functools.lru_cache(maxsize=1)
def _predicted_tile_spans() -> int | None:
    """The LLC cost model's tile extent, clamped to a sane range.

    Memoized: cache geometry cannot change within a process, and the
    prediction sits on the per-render resolution path.
    """
    from ...tune.model import span_cost_model

    model = span_cost_model()
    if model is None:
        return None
    return min(max(model.predicted_span_budget, DEFAULT_SPAN_CHUNK_BUDGET), 1 << 20)


def tile_span_budget(budget: int | None = None) -> int:
    """Tile extent of the ``packed-tiled`` backend, in spans.

    Precedence: explicit > ``REPRO_TILE_SPAN_BUDGET`` (hardened like
    :func:`span_chunk_budget`) > host profile ``tile_spans`` > the LLC
    cost-model prediction (:func:`repro.tune.model.span_cost_model`) >
    :data:`DEFAULT_TILE_SPAN_BUDGET`.
    """
    if budget is not None:
        if budget < 1:
            raise ValueError(f"tile span budget must be positive, got {budget}")
        return int(budget)
    from ...envknobs import env_int

    fallback = (
        _profile_knob("tile_spans")
        or _predicted_tile_spans()
        or DEFAULT_TILE_SPAN_BUDGET
    )
    return env_int(TILE_BUDGET_ENV, int(fallback), minimum=1)


def split_spans(spans: RowSpans, max_spans: int) -> list[RowSpans]:
    """Split a span list into group-aligned pieces of ``<= max_spans`` spans.

    Pieces cut only at ``(tile, row)`` group boundaries, so every segmented
    scan over a piece sees exactly the whole groups it would see in the
    full-frame scan — per-group depth order, group order and the
    ``span_pair`` indexing into the *full* pair tables are all preserved,
    which is what lets the tiled backend share one set of pair gather
    tables across its sub-chunks.  A single group larger than ``max_spans``
    becomes its own oversized piece (groups are never split: the
    transmittance scan's re-centring happens at group starts).
    """
    if max_spans < 1:
        raise ValueError(f"max_spans must be positive, got {max_spans}")
    if spans.num_spans <= max_spans:
        return [spans]
    lens = spans.groups.lens
    ends = spans.groups.starts + lens  # (Q,) exclusive span end of each group
    pieces: list[RowSpans] = []
    g0 = 0
    s0 = 0
    num_groups = spans.num_groups
    while g0 < num_groups:
        g1 = int(np.searchsorted(ends, s0 + max_spans, side="right"))
        if g1 <= g0:  # one group alone exceeds the budget
            g1 = g0 + 1
        s1 = int(ends[g1 - 1])
        pieces.append(
            RowSpans(
                seg=spans.seg,
                span_pair=spans.span_pair[s0:s1],
                span_tile=spans.span_tile[s0:s1],
                span_y=spans.span_y[s0:s1],
                groups=SegmentIndex.from_lengths(lens[g0:g1]),
                group_tile=spans.group_tile[g0:g1],
                group_y=spans.group_y[g0:g1],
                group_has_tile_last=spans.group_has_tile_last[g0:g1],
            )
        )
        g0, s0 = g1, s1
    return pieces


def forward_unpooled(
    projected: ProjectedGaussians,
    assignment: TileAssignment,
    num_points: int,
    background: np.ndarray,
    collect_stats: bool = False,
    per_pixel_sort: bool = False,
    nsx: ArrayNamespace | None = None,
) -> tuple[np.ndarray, np.ndarray | None]:
    """The historical single-view forward: fresh span temporaries per call.

    This is the pre-pooling composition of the unpooled kernels, kept as
    the bitwise oracle for :meth:`PackedBackend.forward` (which routes
    through the pooled batch-of-one kernels instead) and as the baseline
    of the repeated-render benchmark in ``bench_backend_speedup.py``.
    """
    nsx = nsx or get_array_namespace("numpy")
    grid = assignment.grid
    dominated = np.zeros(num_points, dtype=np.int64) if collect_stats else None
    image = _background_frame(grid, background)
    if assignment.num_intersections == 0:
        return image, dominated

    seg = build_segments(assignment)
    spans = build_row_spans(projected, seg, full_rows=per_pixel_sort)
    if spans.num_spans == 0:
        return image, dominated
    alphas, quad = span_alphas(nsx, projected, spans)

    perm = None
    if per_pixel_sort:
        perm = per_pixel_permutation(
            nsx, projected.depths[seg.pair_splats], spans.span_pair, quad,
            spans.groups,
        )
        alphas = np.take_along_axis(alphas, perm, axis=-1)
    del quad

    _, weights, final = weights_final(nsx, alphas, spans)
    span_colors = projected.colors[seg.pair_splats][spans.span_pair]
    _scatter_composite(
        nsx, image, weights, final, span_colors, spans, background,
        color_perm=perm,
    )

    if collect_stats:
        _, lane_ok = _group_pixel_index(spans)
        dominated = dominated_counts(
            nsx, projected, spans, weights, num_points, lane_ok, perm
        )
    return image, dominated


def _batch_pair_tables(
    views: list[tuple[ProjectedGaussians, TileAssignment]],
    spans_list: list[RowSpans],
) -> tuple[np.ndarray, ...]:
    """Concatenated per-pair gather tables aligned with a batch's pair rows.

    One gather per view, so every later batch-wide lookup (means, conics,
    colours, opacities, depths, point ids, tile x-origins) is a single flat
    index into these tables regardless of which frame a span came from.
    """
    means, conics, opacities, colors, pids, origin_x, depths = (
        [], [], [], [], [], [], []
    )
    for (projected, _), spans in zip(views, spans_list):
        seg = spans.seg
        sel = seg.pair_splats
        means.append(projected.means2d[sel])
        conics.append(projected.conics[sel])
        opacities.append(projected.opacities[sel])
        colors.append(projected.colors[sel])
        pids.append(projected.point_ids[sel])
        origin_x.append(seg.geometry.origin_x[seg.pair_tiles])
        depths.append(projected.depths[sel])
    return (
        np.concatenate(means),
        np.concatenate(conics),
        np.concatenate(opacities),
        np.concatenate(colors),
        np.concatenate(pids),
        np.concatenate(origin_x),
        np.concatenate(depths),
    )


# ----------------------------------------------------------------------
# Foveated span-stage decomposition
#
# The foveated frame is composed from the same span machinery as the
# standard forward instead of a one-shot routine: a host-side *plan* (level
# filtering as RowSpans subsets + blend-band tile selection), per-level
# alpha/colour *segments* against the array namespace, one shared batch
# scan, and a final per-frame blend.  ``foveated_frame_batch`` concatenates
# many frames' segments into a single scan; ``foveated_frame`` is a batch
# of one through the identical code path.
# ----------------------------------------------------------------------


@dataclasses.dataclass
class _FoveatedPlan:
    """Host-side stage decomposition of one foveated frame.

    Built before any pixel math runs: the filtering-stage masks with their
    workload statistics, the blend-band tile selection with its extra
    second-level span subset, and the per-level filtered span lists that
    feed the accelerator model.  ``seg``/``spans`` are ``None`` for frames
    without intersections (they render as pure background).
    """

    maps: Any
    seg: PackedSegments | None
    spans: RowSpans | None
    pair_pids: np.ndarray | None  # (K,) model point id per pair
    pair_tl: np.ndarray | None  # (K,) primary level per pair
    pair_second: np.ndarray | None  # (K,) second (blend) level per pair
    mask_primary: np.ndarray | None  # (K,) bound >= primary level
    mask_second: np.ndarray | None  # (K,) bound >= second level
    sort_ints: np.ndarray  # (T,)
    raster_ints: np.ndarray  # (T,)
    mix_full: np.ndarray | None  # (H, W) pixels blending two levels
    lo_t: np.ndarray | None  # (T,) inner level of each tile's blend pair
    blend_pixels: int
    sub_spans: RowSpans | None  # blend-band tile subset of ``spans``
    keep_second: np.ndarray | None  # (R,) span-row mask behind ``sub_spans``
    level_spans: dict[int, RowSpans]


def _foveated_plan(
    projected: ProjectedGaussians,
    assignment: TileAssignment,
    maps: Any,
    bounds: np.ndarray,
    n_levels: int,
    view_memo: dict[int, tuple[PackedSegments, RowSpans]] | None = None,
) -> _FoveatedPlan:
    """Filtering + blend-band planning of one frame (no pixel math).

    Level filtering is expressed as span structure: per-pair bound masks
    over the shared depth-sorted segments, plus the per-level filtered
    :class:`RowSpans` subsets surfaced for accelerator alignment.

    ``view_memo`` shares the gaze-independent span structure across frames
    of one batch: a trajectory's samples repeat the same prepared view
    object, so its segments and row spans are built once per batch call
    rather than once per gaze (keyed by the assignment's identity).
    """
    grid = assignment.grid
    num_tiles = grid.num_tiles
    if assignment.num_intersections == 0:
        return _FoveatedPlan(
            maps=maps, seg=None, spans=None, pair_pids=None, pair_tl=None,
            pair_second=None, mask_primary=None, mask_second=None,
            sort_ints=np.zeros(num_tiles, dtype=np.int64),
            raster_ints=np.zeros(num_tiles, dtype=np.float64),
            mix_full=None, lo_t=None, blend_pixels=0, sub_spans=None,
            keep_second=None, level_spans={},
        )

    cached = view_memo.get(id(assignment)) if view_memo is not None else None
    if cached is None:
        seg = build_segments(assignment)
        spans = build_row_spans(projected, seg)
        if view_memo is not None:
            view_memo[id(assignment)] = (seg, spans)
    else:
        seg, spans = cached
    tl = maps.tile_level
    second = maps.tile_second_level
    pair_pids = projected.point_ids[seg.pair_splats]
    pair_bounds = bounds[pair_pids]
    pair_tl = tl[seg.pair_tiles]

    # Filtering stage: points with quality bound below a level never reach
    # sorting/rasterization for that level.
    sort_level = np.where(second > 0, np.minimum(tl, second), tl)
    sort_mask = pair_bounds >= sort_level[seg.pair_tiles]
    sort_ints = np.bincount(seg.pair_tiles[sort_mask], minlength=num_tiles).astype(
        np.int64
    )
    mask_primary = pair_bounds >= pair_tl
    raster_ints = np.bincount(
        seg.pair_tiles[mask_primary], minlength=num_tiles
    ).astype(np.float64)

    # Blending stage selection: band pixels of tiles with a second level are
    # rendered at both levels and interpolated.
    nonempty = np.diff(assignment.tile_offsets) > 0
    lo_t = np.where(second > 0, np.minimum(tl, second), 0)
    tile_map = _tile_of_pixel(grid)
    mix_full = (
        (maps.band_level == lo_t[tile_map])
        & maps.needs_blend
        & ((second > 0) & nonempty)[tile_map]
    )
    blend_pixels = int(mix_full.sum())
    pair_second = second[seg.pair_tiles]
    mask_second = pair_bounds >= pair_second
    sub_spans = None
    keep_second = None
    if blend_pixels:
        mix_count = np.bincount(tile_map[mix_full], minlength=num_tiles)
        sel_tiles = mix_count > 0  # implies second > 0 and non-empty
        sub_spans, keep_second = spans.subset(sel_tiles)
        # Second-level pass touches only the band pixels.
        msec = np.bincount(seg.pair_tiles[mask_second], minlength=num_tiles)
        raster_ints[sel_tiles] += (
            msec[sel_tiles] * mix_count[sel_tiles] / grid.tile_size**2
        )

    # Per-level filtered span subsets: level t owns the spans of its
    # non-empty tiles whose pair passes the bound — exactly the fragments
    # the primary composite rasterizes there.  This is the real foveated
    # workload the accelerator model consumes (accel.spans_to_tile_counts).
    level_spans: dict[int, RowSpans] = {}
    for t in range(1, n_levels + 1):
        tiles_t = (tl == t) & nonempty
        if not tiles_t.any():
            continue
        sub, _ = spans.subset(tiles_t)
        if sub.num_spans:
            sub = sub.subset_spans(mask_primary[sub.span_pair])
        level_spans[t] = sub

    return _FoveatedPlan(
        maps=maps, seg=seg, spans=spans, pair_pids=pair_pids, pair_tl=pair_tl,
        pair_second=pair_second, mask_primary=mask_primary,
        mask_second=mask_second, sort_ints=sort_ints, raster_ints=raster_ints,
        mix_full=mix_full, lo_t=lo_t, blend_pixels=blend_pixels,
        sub_spans=sub_spans, keep_second=keep_second, level_spans=level_spans,
    )


@dataclasses.dataclass
class _FoveatedSegment:
    """One composite pass of one frame, riding the shared batch scan."""

    frame: int  # chunk-local frame index
    second: bool  # blend-band second-level pass (scatters into ``sec``)
    spans: RowSpans
    alphas: np.ndarray  # (ts, R)
    colors: np.ndarray  # (R, 3)


def _foveated_segments(
    nsx: ArrayNamespace,
    projected: ProjectedGaussians,
    plan: _FoveatedPlan,
    op_mat: np.ndarray,
    de_mat: np.ndarray,
    frame: int,
    exp_memo: dict[int, np.ndarray] | None = None,
) -> list[_FoveatedSegment]:
    """One frame's composite passes as batch segments.

    The primary pass covers the full span list (each tile at its own
    level); when blend-band pixels exist, the second-level pass over the
    band tiles' span subset becomes an extra segment of the same scan.
    The shared ``exp(-q/2)`` table is evaluated once per *view* (keyed by
    the span list's identity in ``exp_memo``, so a trajectory's gaze
    samples reuse it) and sliced per pass, preserving the subsetting
    compute saving.
    """
    if plan.spans is None or plan.spans.num_spans == 0:
        return []
    seg = plan.seg
    base_exp = exp_memo.get(id(plan.spans)) if exp_memo is not None else None
    if base_exp is None:
        base_exp = exp_neg_half(nsx, span_quad(nsx, projected, plan.spans))
        if exp_memo is not None:
            exp_memo[id(plan.spans)] = base_exp

    def level_pass(pair_levels, pair_mask, sub_spans, keep):
        sp = sub_spans.span_pair
        pids = plan.pair_pids[sp]
        levels = pair_levels[sp]  # subset first: never indexes level 0
        alphas = foveated_level_alphas(
            nsx, base_exp[:, keep], op_mat[levels - 1, pids], pair_mask[sp]
        )
        colors = projected.colors[seg.pair_splats[sp]] + de_mat[levels - 1, pids]
        return alphas, colors

    alphas, colors = level_pass(
        plan.pair_tl, plan.mask_primary, plan.spans,
        np.ones(plan.spans.num_spans, dtype=bool),
    )
    segments = [_FoveatedSegment(frame, False, plan.spans, alphas, colors)]
    if plan.sub_spans is not None and plan.sub_spans.num_spans:
        alphas, colors = level_pass(
            plan.pair_second, plan.mask_second, plan.sub_spans, plan.keep_second
        )
        segments.append(
            _FoveatedSegment(frame, True, plan.sub_spans, alphas, colors)
        )
    return segments


def _foveated_blend(
    plan: _FoveatedPlan, grid: TileGrid, prim: np.ndarray, sec: np.ndarray
) -> np.ndarray:
    """Blending stage: interpolate band pixels between the two level images."""
    maps = plan.maps
    tile_map = _tile_of_pixel(grid)
    lo_is_primary = (maps.tile_level == plan.lo_t)[tile_map][:, :, None]
    lo_img = np.where(lo_is_primary, prim, sec)
    hi_img = np.where(lo_is_primary, sec, prim)
    w = maps.weight_next[:, :, None]
    return np.where(plan.mix_full[:, :, None], (1.0 - w) * lo_img + w * hi_img, prim)


class PackedBackend:
    """Flattened intersection-list engine (the default).

    ``array_namespace`` retargets the numeric kernels: ``None`` pins the
    engine to numpy (the ``packed`` registry entry); the ``packed-xp``
    entry passes the runtime-resolved namespace (``REPRO_ARRAY_API`` /
    ``--array-api``).
    """

    name = "packed"

    def __init__(
        self,
        array_namespace: ArrayNamespace | None = None,
        name: str | None = None,
    ) -> None:
        self.nsx = array_namespace or get_array_namespace("numpy")
        if name is not None:
            self.name = name
        # Scratch arena of the pooled kernels, reused across calls (the
        # backend is a process-wide singleton) and owned by the namespace.
        self._ws = Workspace(self.nsx)

    def forward(
        self,
        projected: ProjectedGaussians,
        assignment: TileAssignment,
        num_points: int,
        background: np.ndarray,
        collect_stats: bool,
        per_pixel_sort: bool,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        grid = assignment.grid
        dominated = np.zeros(num_points, dtype=np.int64) if collect_stats else None
        if assignment.num_intersections == 0:
            return _background_frame(grid, background), dominated

        seg = build_segments(assignment)
        # Per-pixel sorting keeps every tile row: its early-termination gate
        # sits at the per-pixel deepest splat, which the reach bound could
        # otherwise prune (the permuted group-last slot is then exactly the
        # reference's gate row).
        spans = build_row_spans(projected, seg, full_rows=per_pixel_sort)
        if spans.num_spans == 0:
            return _background_frame(grid, background), dominated
        # Pooled single-view fast path: a batch of one through the same
        # kernels as ``forward_batch`` — bit-identical to the historical
        # unpooled pass, but on the warm workspace arena.
        return self._forward_chunk(
            [(projected, assignment)], [spans], num_points, background,
            collect_stats, per_pixel_sort,
        )[0]

    def forward_batch(
        self,
        views: list[tuple[ProjectedGaussians, TileAssignment]],
        num_points: int,
        background: np.ndarray,
        collect_stats: bool,
        per_pixel_sort: bool,
    ) -> list[tuple[np.ndarray, np.ndarray | None]]:
        """Rasterize several views of one model in batch-segmented scans.

        Per-view span lists concatenate into one batch (the grids may differ
        as long as the tile size is shared), so alpha evaluation, the
        transmittance scan, compositing and the Val_i statistics each run
        once over all the batched frames; only the final scatter into each
        frame and the cheap per-view span construction remain per view.
        On CPU namespaces, scans are capped at :func:`span_chunk_budget`
        spans (several views' worth) so the shared scan matrices stay
        cache-resident — one scan over everything would stream every
        operation from DRAM.  Device namespaces run one concatenated scan
        per batch: there is no CPU cache to stay resident in, and kernel
        launches amortize best over the largest possible segments.
        """
        if not views:
            return []
        sizes = {a.grid.tile_size for _, a in views}
        if len(sizes) > 1:
            raise ValueError(f"views must share one tile size, got {sorted(sizes)}")
        budget = span_chunk_budget() if self.nsx.device == "cpu" else None

        # Chunks are built streaming — one view's spans at a time, flushed
        # once the budget fills — so peak residency is one chunk's spans and
        # tables (plus the caller's views), never the whole batch's.
        results: list[tuple[np.ndarray, np.ndarray | None]] = []
        chunk_views: list[tuple[ProjectedGaussians, TileAssignment]] = []
        chunk_spans: list[RowSpans] = []
        total = 0

        def flush():
            nonlocal chunk_views, chunk_spans, total
            if chunk_views:
                results.extend(
                    self._forward_chunk(
                        chunk_views, chunk_spans, num_points, background,
                        collect_stats, per_pixel_sort,
                    )
                )
            chunk_views, chunk_spans, total = [], [], 0

        for view in views:
            spans = build_row_spans(
                view[0], build_segments(view[1]), full_rows=per_pixel_sort
            )
            if (
                chunk_views
                and budget is not None
                and total + spans.num_spans > budget
            ):
                flush()
            chunk_views.append(view)
            chunk_spans.append(spans)
            total += spans.num_spans
        flush()
        return results

    def _forward_chunk(
        self,
        views: list[tuple[ProjectedGaussians, TileAssignment]],
        spans_list: list[RowSpans],
        num_points: int,
        background: np.ndarray,
        collect_stats: bool,
        per_pixel_sort: bool,
    ) -> list[tuple[np.ndarray, np.ndarray | None]]:
        """One concatenated scan over a chunk of views."""
        images = [_background_frame(a.grid, background) for _, a in views]
        dominated: list[np.ndarray | None] = [
            np.zeros(num_points, dtype=np.int64) if collect_stats else None
            for _ in views
        ]
        batch = concat_spans(spans_list)  # validates the shared tile size
        if batch.num_spans == 0:
            return list(zip(images, dominated))

        ts = views[0][1].grid.tile_size
        nsx, ws = self.nsx, self._ws
        with backend_span("alpha-scan", args={"views": len(views), "spans": int(batch.num_spans)}):
            (
                pair_means,
                pair_conics,
                pair_opacities,
                pair_colors,
                pair_pids,
                pair_origin_x,
                pair_depths,
            ) = _batch_pair_tables(views, spans_list)
            bt = BatchTables.build(
                nsx, batch, ts, pair_means, pair_conics, pair_opacities,
                pair_colors, pair_origin_x, pair_depths,
            )

            quad = batch_span_quad(nsx, ws, bt)
            alphas = batch_span_alphas(nsx, ws, bt, quad)

            perm = None
            if per_pixel_sort:
                perm = batch_per_pixel_permutation(nsx, bt, quad)
                alphas = nsx.take_along_last(alphas, perm)

            weights, final = batch_weights_final(nsx, ws, bt, alphas)

        with backend_span("composite", args={"views": len(views)}):
            # One compositing reduction over the whole batch, scattered per view.
            pixels = batch_composite(nsx, ws, bt, weights, final, background, perm)
            for v, spans in enumerate(spans_list):
                if spans.num_groups == 0:
                    continue
                idx, ok = _group_pixel_index(spans)
                images[v].reshape(-1, 3)[idx[ok]] = pixels[batch.view_groups(v)][ok]

        if collect_stats:
            ok_all = np.concatenate(
                [s.seg.geometry.lane_valid[s.group_tile] for s in spans_list]
            )  # (Q, ts)
            winners, has_any = batch_dominated_winners(
                nsx, ws, bt, weights, ok_all, perm
            )
            for v in range(len(views)):
                gsl = batch.view_groups(v)
                sel = has_any[:, gsl]
                if not sel.any():
                    continue
                winner_pairs = batch.span_pair[winners[:, gsl][sel]]
                np.add.at(dominated[v], pair_pids[winner_pairs], 1)
        return list(zip(images, dominated))

    def backward(
        self,
        projected: ProjectedGaussians,
        assignment: TileAssignment,
        num_points: int,
        grad_image: np.ndarray,
        background: np.ndarray,
    ) -> RasterGradients:
        result = RasterGradients(
            color=np.zeros((num_points, 3)),
            opacity=np.zeros(num_points),
            log_scale=np.zeros(num_points),
        )
        if assignment.num_intersections == 0:
            return result

        seg = build_segments(assignment)
        spans = build_row_spans(projected, seg)
        if spans.num_spans == 0:
            return result
        lane_index, lane_ok = _group_pixel_index(spans)
        return backward_grads(
            self.nsx, projected, spans, grad_image, background, num_points,
            lane_index, lane_ok,
        )

    def foveated_frame(
        self,
        projected: ProjectedGaussians,
        assignment: TileAssignment,
        maps: Any,
        bounds: np.ndarray,
        level_opacity: dict[int, np.ndarray],
        level_delta: dict[int, np.ndarray],
        background: np.ndarray,
    ) -> FoveatedFrame:
        # A batch of one frame through the staged batch path (cf. ``forward``
        # routing through the pooled batch-of-one kernels): the single-frame
        # and batched entry points run the exact same code, so a batch of one
        # is bit-identical to ``render_foveated`` by construction.
        return self.foveated_frame_batch(
            [(projected, assignment)], [maps], bounds, level_opacity,
            level_delta, background,
        )[0]

    def foveated_frame_batch(
        self,
        views: list[tuple[ProjectedGaussians, TileAssignment]],
        maps_list: list[Any],
        bounds: np.ndarray,
        level_opacity: dict[int, np.ndarray],
        level_delta: dict[int, np.ndarray],
        background: np.ndarray,
    ) -> list[FoveatedFrame]:
        """Render several foveated frames in one concatenated batch scan.

        Each frame decomposes into span-kernel stages (see
        :func:`_foveated_plan` / :func:`_foveated_segments`): level filtering
        becomes :class:`RowSpans` subsets with per-pair bound masks, and the
        blend-band second-level pass becomes an *extra batch segment* riding
        the same scan as the primary composite.  All frames' passes then
        share one alpha-eval / transmittance / compositing pipeline — only
        the per-frame span construction, the scatter into each frame and the
        blend interpolation remain per frame.  On CPU namespaces, frames are
        chunked to :func:`span_chunk_budget` spans so the shared scan
        matrices stay cache-resident, exactly like :meth:`forward_batch`.
        """
        if not views:
            return []
        if len(maps_list) != len(views):
            raise ValueError(
                f"need one region map per view, got {len(maps_list)} maps "
                f"for {len(views)} views"
            )
        sizes = {a.grid.tile_size for _, a in views}
        if len(sizes) > 1:
            raise ValueError(f"views must share one tile size, got {sorted(sizes)}")
        n_levels = len(level_opacity)
        op_mat = np.stack([level_opacity[t] for t in range(1, n_levels + 1)])  # (L, N)
        de_mat = np.stack([level_delta[t] for t in range(1, n_levels + 1)])  # (L, N, 3)
        budget = span_chunk_budget() if self.nsx.device == "cpu" else None

        results: list[FoveatedFrame] = []
        chunk: list[tuple[tuple[ProjectedGaussians, TileAssignment], _FoveatedPlan]] = []
        total = 0

        # Gaze samples of one pose repeat the same prepared view: their
        # segments/spans and exp table are built once per call, surviving
        # chunk flushes (a big foveated frame easily fills a whole chunk by
        # itself, so per-chunk sharing alone would never hit).  Entries are
        # evicted once the last frame referencing a view has flushed, so a
        # multi-pose batch keeps the chunk-residency bound of
        # ``forward_batch`` instead of accumulating every pose's span
        # structure and exp table for the whole call.
        view_memo: dict[int, tuple[PackedSegments, RowSpans]] = {}
        exp_memo: dict[int, np.ndarray] = {}
        remaining: dict[int, int] = {}
        for _, assignment in views:
            key = id(assignment)
            remaining[key] = remaining.get(key, 0) + 1

        def flush():
            nonlocal chunk, total
            if chunk:
                results.extend(
                    self._foveated_chunk(
                        chunk, op_mat, de_mat, background, exp_memo
                    )
                )
                for (_, assignment), _plan in chunk:
                    key = id(assignment)
                    remaining[key] -= 1
                    if remaining[key] == 0:
                        cached = view_memo.pop(key, None)
                        if cached is not None:
                            exp_memo.pop(id(cached[1]), None)
            chunk, total = [], 0
        for view, maps in zip(views, maps_list):
            plan = _foveated_plan(
                view[0], view[1], maps, bounds, n_levels, view_memo=view_memo
            )
            n_spans = plan.spans.num_spans if plan.spans is not None else 0
            if plan.sub_spans is not None:
                n_spans += plan.sub_spans.num_spans
            if chunk and budget is not None and total + n_spans > budget:
                flush()
            chunk.append((view, plan))
            total += n_spans
        flush()
        return results

    def _foveated_chunk(
        self,
        chunk: list[tuple[tuple[ProjectedGaussians, TileAssignment], "_FoveatedPlan"]],
        op_mat: np.ndarray,
        de_mat: np.ndarray,
        background: np.ndarray,
        exp_memo: dict[int, np.ndarray] | None = None,
    ) -> list[FoveatedFrame]:
        """One concatenated scan over a chunk of frames' composite passes."""
        nsx = self.nsx
        prim: list[np.ndarray] = []
        sec: dict[int, np.ndarray] = {}
        segments: list[_FoveatedSegment] = []
        with backend_span("alpha-scan", args={"frames": len(chunk)}):
            for f, ((projected, assignment), plan) in enumerate(chunk):
                prim.append(_background_frame(assignment.grid, background))
                if plan.blend_pixels:
                    sec[f] = _background_frame(assignment.grid, background)
                segments.extend(
                    _foveated_segments(
                        nsx, projected, plan, op_mat, de_mat, f, exp_memo=exp_memo
                    )
                )

            if segments:
                ts = chunk[0][0][1].grid.tile_size
                batch = concat_spans([s.spans for s in segments])
                if len(segments) > 1:
                    alphas = np.concatenate([s.alphas for s in segments], axis=1)
                    colors = np.concatenate([s.colors for s in segments], axis=0)
                else:
                    alphas, colors = segments[0].alphas, segments[0].colors
                _, weights, final = weights_final(nsx, alphas, batch)

        with backend_span("composite", args={"frames": len(chunk)}):
            if segments:
                pixels = composite_groups(
                    nsx, weights, final, colors, batch.groups, ts, background
                )
                for v, s in enumerate(segments):
                    if s.spans.num_groups == 0:
                        continue
                    idx, ok = _group_pixel_index(s.spans)
                    target = sec[s.frame] if s.second else prim[s.frame]
                    target.reshape(-1, 3)[idx[ok]] = pixels[batch.view_groups(v)][ok]

            out = []
            for f, ((projected, assignment), plan) in enumerate(chunk):
                image = prim[f]
                if plan.blend_pixels:
                    image = _foveated_blend(plan, assignment.grid, prim[f], sec[f])
                out.append(
                    FoveatedFrame(
                        image=image,
                        sort_intersections_per_tile=plan.sort_ints,
                        raster_intersections_per_tile=plan.raster_ints,
                        blend_pixels=plan.blend_pixels,
                        level_spans=plan.level_spans,
                    )
                )
        return out

    def multi_model_frame(
        self,
        views: list[tuple[ProjectedGaussians, TileAssignment]],
        maps: Any,
        background: np.ndarray,
    ) -> FoveatedFrame:
        grid = views[0][1].grid
        nsx = self.nsx
        num_tiles = grid.num_tiles
        tile_ids = np.arange(num_tiles)
        tl = maps.tile_level
        second = maps.tile_second_level

        # Every level pays its own sorting/rasterization on its own view.
        ints = np.stack([v[1].intersections_per_tile() for v in views])  # (L, T)
        n_primary = ints[tl - 1, tile_ids]
        sort_ints = n_primary.astype(np.int64)
        raster_ints = n_primary.astype(np.float64)

        lo_t = np.where(second > 0, np.minimum(tl, second), 0)
        tile_map = _tile_of_pixel(grid)
        mix_full = (
            (maps.band_level == lo_t[tile_map])
            & maps.needs_blend
            & (second > 0)[tile_map]
        )
        blend_pixels = int(mix_full.sum())
        mix_count = np.bincount(tile_map[mix_full], minlength=num_tiles)
        sel_second = mix_count > 0  # implies second > 0
        n_second = ints[np.maximum(second - 1, 0), tile_ids]
        raster_ints[sel_second] += (
            n_second[sel_second] * mix_count[sel_second] / grid.tile_size**2
        )

        prim = _background_frame(grid, background)
        sec = _background_frame(grid, background)
        for level in range(1, len(views) + 1):
            need_p = tl == level
            need_s = sel_second & (second == level)
            need = need_p | need_s
            projected_v, assignment_v = views[level - 1]
            if not need.any() or assignment_v.num_intersections == 0:
                continue
            sub_spans, _ = build_row_spans(
                projected_v, build_segments(assignment_v)
            ).subset(need)
            if sub_spans.num_spans == 0:
                continue
            alphas, _ = span_alphas(nsx, projected_v, sub_spans)
            _, weights, final = weights_final(nsx, alphas, sub_spans)
            colors = projected_v.colors[sub_spans.seg.pair_splats][sub_spans.span_pair]
            img_v = _background_frame(grid, background)
            _scatter_composite(
                nsx, img_v, weights, final, colors, sub_spans, background
            )
            mask_p = need_p[tile_map]
            mask_s = need_s[tile_map]
            prim[mask_p] = img_v[mask_p]
            sec[mask_s] = img_v[mask_s]

        out = prim
        if blend_pixels:
            lo_is_primary = (tl == lo_t)[tile_map][:, :, None]
            lo_img = np.where(lo_is_primary, prim, sec)
            hi_img = np.where(lo_is_primary, sec, prim)
            w = maps.weight_next[:, :, None]
            out = np.where(mix_full[:, :, None], (1.0 - w) * lo_img + w * hi_img, prim)

        return FoveatedFrame(
            image=out,
            sort_intersections_per_tile=sort_ints,
            raster_intersections_per_tile=raster_ints,
            blend_pixels=blend_pixels,
        )


class TiledPackedBackend(PackedBackend):
    """Cache-tiled span engine (``packed-tiled``): blocked scans for very
    large frames.

    The span chunk budget only bounds how many *small* frames share one
    batched scan — a single frame whose span list already exceeds the
    budget still ran as one whole-frame scan, streaming every segmented
    operation from DRAM once its ``(tile_size, R)`` temporaries outgrow the
    LLC.  This backend splits any such view into group-aligned sub-chunks
    of at most :func:`tile_span_budget` spans (:func:`split_spans`) and
    scans them back-to-back against one shared set of pair gather tables,
    so each sub-chunk's scan working set stays cache-resident.  The tile
    extent comes from the tuner: host profile, else the LLC cost-model
    prediction, else the built-in default — ``REPRO_TILE_SPAN_BUDGET``
    overrides.

    Views at or under the budget take the inherited whole-frame path and
    are bit-identical to ``packed``.  Tiled views match ``reference`` (and
    ``packed``) to within the standard 1e-10 band, not bitwise: the
    log-space transmittance scan re-centres at each sub-chunk start, which
    moves last-ulp rounding exactly like the batch chunking does across
    frames.  The backward and foveated paths are inherited untiled (the
    foveated path already chunks frames to the span budget).
    """

    name = "packed-tiled"

    def __init__(
        self,
        array_namespace: ArrayNamespace | None = None,
        name: str | None = None,
        tile_spans: int | None = None,
    ) -> None:
        super().__init__(array_namespace, name or "packed-tiled")
        # Explicit per-instance tile extent (tests, the tuner's own sweep);
        # ``None`` resolves env > profile > prediction > default per render.
        self.tile_spans = tile_spans

    def _forward_chunk(
        self,
        views: list[tuple[ProjectedGaussians, TileAssignment]],
        spans_list: list[RowSpans],
        num_points: int,
        background: np.ndarray,
        collect_stats: bool,
        per_pixel_sort: bool,
    ) -> list[tuple[np.ndarray, np.ndarray | None]]:
        """Route oversized views through the tiled scan, the rest unchanged.

        Both :meth:`forward` (a batch of one) and :meth:`forward_batch`
        (budget-flushed chunks) land here, so one override tiles every
        standard-forward entry point.
        """
        if self.nsx.device != "cpu":
            # No CPU cache to stay resident in — identical to ``packed``.
            return super()._forward_chunk(
                views, spans_list, num_points, background, collect_stats,
                per_pixel_sort,
            )
        budget = tile_span_budget(self.tile_spans)
        results: list[tuple[np.ndarray, np.ndarray | None] | None] = [None] * len(views)
        small: list[int] = []
        for i, (view, spans) in enumerate(zip(views, spans_list)):
            if spans.num_spans > budget:
                results[i] = self._forward_tiled_view(
                    view, spans, num_points, background, collect_stats,
                    per_pixel_sort, budget,
                )
            else:
                small.append(i)
        if small:
            shared = super()._forward_chunk(
                [views[i] for i in small], [spans_list[i] for i in small],
                num_points, background, collect_stats, per_pixel_sort,
            )
            for i, res in zip(small, shared):
                results[i] = res
        return results  # type: ignore[return-value]

    def _forward_tiled_view(
        self,
        view: tuple[ProjectedGaussians, TileAssignment],
        spans: RowSpans,
        num_points: int,
        background: np.ndarray,
        collect_stats: bool,
        per_pixel_sort: bool,
        budget: int,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """One oversized view as a sequence of group-aligned sub-chunk scans.

        The per-pair gather tables are built once for the whole view —
        sub-chunk ``span_pair`` rows index the full tables (group-aligned
        splitting preserves the pair row space), so tiling adds no
        per-chunk gather of the O(pairs) tables, only the per-span work the
        whole-frame scan would do anyway.  Sub-chunks scatter into disjoint
        ``(tile, row)`` groups of one image, and the Val_i winner counts
        accumulate per sub-chunk: group segments never straddle a cut, so
        the union over sub-chunks is exactly the whole-frame result.
        """
        projected, assignment = view
        grid = assignment.grid
        image = _background_frame(grid, background)
        dominated = np.zeros(num_points, dtype=np.int64) if collect_stats else None
        ts = grid.tile_size
        nsx, ws = self.nsx, self._ws
        (
            pair_means,
            pair_conics,
            pair_opacities,
            pair_colors,
            pair_pids,
            pair_origin_x,
            pair_depths,
        ) = _batch_pair_tables([view], [spans])
        for piece in split_spans(spans, budget):
            batch = concat_spans([piece])
            with backend_span("alpha-scan", args={"spans": int(batch.num_spans), "tiled": 1}):
                bt = BatchTables.build(
                    nsx, batch, ts, pair_means, pair_conics, pair_opacities,
                    pair_colors, pair_origin_x, pair_depths,
                )
                quad = batch_span_quad(nsx, ws, bt)
                alphas = batch_span_alphas(nsx, ws, bt, quad)
                perm = None
                if per_pixel_sort:
                    perm = batch_per_pixel_permutation(nsx, bt, quad)
                    alphas = nsx.take_along_last(alphas, perm)
                weights, final = batch_weights_final(nsx, ws, bt, alphas)
            with backend_span("composite", args={"tiled": 1}):
                pixels = batch_composite(nsx, ws, bt, weights, final, background, perm)
                idx, ok = _group_pixel_index(piece)
                image.reshape(-1, 3)[idx[ok]] = pixels[ok]
            if collect_stats:
                lane_ok = piece.seg.geometry.lane_valid[piece.group_tile]
                winners, has_any = batch_dominated_winners(
                    nsx, ws, bt, weights, lane_ok, perm
                )
                if has_any.any():
                    winner_pairs = batch.span_pair[winners[has_any]]
                    np.add.at(dominated, pair_pids[winner_pairs], 1)
        return image, dominated
