"""Packed rasterization backend: whole-frame vectorized span operations.

Instead of looping over tiles and building a dense ``(splats, pixels)``
alpha matrix per tile, this engine flattens the frame's tile–splat
intersections into per-pixel-row *spans* (see
:mod:`repro.splat.backends.segments`): each pair contributes one
``tile_size``-wide lane vector per pixel row its ellipse can actually
reach, sorted so every pixel's fragment list is contiguous.  Alpha
evaluation, front-to-back compositing with early termination, statistics
(Val_i), and the analytic backward pass are then segmented scans and
reductions over the span arrays — **no Python loop over tiles** in the
forward, backward, foveated or multi-model paths (the multi-model path
loops over quality *levels*, of which there are a handful).

The numeric core lives in :mod:`repro.splat.backends.kernels`,
parameterized by an array namespace: this module orchestrates span
construction, chunking and the scatter back into frames, while every scan
and reduction runs through the backend's ``nsx`` (numpy by default; the
``packed-xp`` registry entry resolves torch/cupy at runtime).  The
single-view ``forward`` routes through the same pooled batch kernels as a
batch of one — bit-identical to the historical unpooled pass, but reusing
the warm :class:`~repro.splat.backends.kernels.Workspace` arena across
calls (~1.15x on repeated renders).

Work scales with the rasterized splat area rather than
``intersections × tile area`` (the reference loop's cost), which is where
the speedup comes from; results match ``reference`` to within 1e-10.  The
alpha values and their intersect-test thresholding are bit-identical; the
transmittance comes from a log-space segmented scan and agrees with the
reference cumprod only to the last ulp, so the early-termination gates
(``trans >= TRANSMITTANCE_EPS``) could in principle flip on a pixel whose
transmittance lands within an ulp of the threshold — astronomically rare,
but if an equivalence test ever fails by ~1e-4 on an unrelated change,
look here first.

All span matrices are laid out lanes-first, ``(tile_size, R)``, so the
segmented scans and reductions run along the contiguous axis.
"""

from __future__ import annotations

import functools
import os
import warnings
from typing import Any

import numpy as np

from ..projection import ProjectedGaussians
from ..rasterizer import RasterGradients
from ..tiling import TileAssignment, TileGrid
from .base import FoveatedFrame
from .kernels import (
    ArrayNamespace,
    BatchTables,
    Workspace,
    backward_grads,
    batch_composite,
    batch_dominated_winners,
    batch_per_pixel_permutation,
    batch_span_alphas,
    batch_span_quad,
    batch_weights_final,
    clamp_alphas,
    composite_groups,
    dominated_counts,
    exp_neg_half,
    get_array_namespace,
    per_pixel_permutation,
    span_alphas,
    span_quad,
    weights_final,
)
from .segments import (
    RowSpans,
    build_row_spans,
    build_segments,
    concat_spans,
)


@functools.lru_cache(maxsize=16)
def _tile_of_pixel(grid: TileGrid) -> np.ndarray:
    """Tile id of every pixel, ``(H, W)``."""
    ts = grid.tile_size
    ys = np.arange(grid.height, dtype=np.int64) // ts
    xs = np.arange(grid.width, dtype=np.int64) // ts
    return ys[:, None] * grid.tiles_x + xs[None, :]


def _background_frame(grid: TileGrid, background: np.ndarray) -> np.ndarray:
    image = np.empty((grid.height, grid.width, 3))
    image[:, :] = background
    return image


def _group_pixel_index(spans: RowSpans) -> tuple[np.ndarray, np.ndarray]:
    """Flat image index and on-image mask of every group lane, ``(Q, ts)``."""
    geom = spans.seg.geometry
    grid = geom.grid
    base = spans.group_y * grid.width + geom.origin_x[spans.group_tile].astype(np.int64)
    idx = base[:, None] + np.arange(grid.tile_size, dtype=np.int64)[None, :]
    return idx, geom.lane_valid[spans.group_tile]


def _scatter_composite(
    nsx: ArrayNamespace,
    image: np.ndarray,
    weights: np.ndarray,
    final: np.ndarray,
    span_colors: np.ndarray,
    spans: RowSpans,
    background: np.ndarray,
    color_perm: np.ndarray | None = None,
) -> None:
    """Accumulate composited colours into ``image`` (pre-filled with bg)."""
    idx, ok = _group_pixel_index(spans)
    pixels = composite_groups(
        nsx, weights, final, span_colors, spans.groups,
        spans.seg.grid.tile_size, background, color_perm,
    )
    image.reshape(-1, 3)[idx[ok]] = pixels[ok]


# Cache-residency budget of one batched scan, in spans.  A batch scan's
# temporaries are ``(tile_size, R)``; once they outgrow the fast cache
# levels every whole-batch operation streams from DRAM, which measured ~2x
# slower per element than cache-resident per-view arrays.  8k spans keeps
# each scan matrix around 1 MB (at the default 16-px tiles) — the best point
# of a 6k–24k sweep across frame sizes and view counts — while still
# amortizing the fixed per-frame kernel overhead across several views.
# Tune per machine with ``REPRO_BATCH_SPAN_BUDGET``; device namespaces skip
# the chunking entirely (no CPU cache to stay resident in).
DEFAULT_SPAN_CHUNK_BUDGET = 8192
SPAN_BUDGET_ENV = "REPRO_BATCH_SPAN_BUDGET"


def span_chunk_budget() -> int:
    """The per-chunk span budget, hardened against bad environment values.

    Non-integer or non-positive ``REPRO_BATCH_SPAN_BUDGET`` settings fall
    back to :data:`DEFAULT_SPAN_CHUNK_BUDGET` with a warning instead of
    crashing the render path (or silently degenerating to zero-view
    chunks).
    """
    raw = os.environ.get(SPAN_BUDGET_ENV)
    if raw is None or not raw.strip():
        return DEFAULT_SPAN_CHUNK_BUDGET
    try:
        value = int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring non-integer {SPAN_BUDGET_ENV}={raw!r}; "
            f"using the default of {DEFAULT_SPAN_CHUNK_BUDGET} spans",
            RuntimeWarning,
            stacklevel=2,
        )
        return DEFAULT_SPAN_CHUNK_BUDGET
    if value <= 0:
        warnings.warn(
            f"ignoring non-positive {SPAN_BUDGET_ENV}={raw!r}; "
            f"using the default of {DEFAULT_SPAN_CHUNK_BUDGET} spans",
            RuntimeWarning,
            stacklevel=2,
        )
        return DEFAULT_SPAN_CHUNK_BUDGET
    return value


def forward_unpooled(
    projected: ProjectedGaussians,
    assignment: TileAssignment,
    num_points: int,
    background: np.ndarray,
    collect_stats: bool = False,
    per_pixel_sort: bool = False,
    nsx: ArrayNamespace | None = None,
) -> tuple[np.ndarray, np.ndarray | None]:
    """The historical single-view forward: fresh span temporaries per call.

    This is the pre-pooling composition of the unpooled kernels, kept as
    the bitwise oracle for :meth:`PackedBackend.forward` (which routes
    through the pooled batch-of-one kernels instead) and as the baseline
    of the repeated-render benchmark in ``bench_backend_speedup.py``.
    """
    nsx = nsx or get_array_namespace("numpy")
    grid = assignment.grid
    dominated = np.zeros(num_points, dtype=np.int64) if collect_stats else None
    image = _background_frame(grid, background)
    if assignment.num_intersections == 0:
        return image, dominated

    seg = build_segments(assignment)
    spans = build_row_spans(projected, seg, full_rows=per_pixel_sort)
    if spans.num_spans == 0:
        return image, dominated
    alphas, quad = span_alphas(nsx, projected, spans)

    perm = None
    if per_pixel_sort:
        perm = per_pixel_permutation(
            nsx, projected.depths[seg.pair_splats], spans.span_pair, quad,
            spans.groups,
        )
        alphas = np.take_along_axis(alphas, perm, axis=-1)
    del quad

    _, weights, final = weights_final(nsx, alphas, spans)
    span_colors = projected.colors[seg.pair_splats][spans.span_pair]
    _scatter_composite(
        nsx, image, weights, final, span_colors, spans, background,
        color_perm=perm,
    )

    if collect_stats:
        _, lane_ok = _group_pixel_index(spans)
        dominated = dominated_counts(
            nsx, projected, spans, weights, num_points, lane_ok, perm
        )
    return image, dominated


def _batch_pair_tables(
    views: list[tuple[ProjectedGaussians, TileAssignment]],
    spans_list: list[RowSpans],
) -> tuple[np.ndarray, ...]:
    """Concatenated per-pair gather tables aligned with a batch's pair rows.

    One gather per view, so every later batch-wide lookup (means, conics,
    colours, opacities, depths, point ids, tile x-origins) is a single flat
    index into these tables regardless of which frame a span came from.
    """
    means, conics, opacities, colors, pids, origin_x, depths = (
        [], [], [], [], [], [], []
    )
    for (projected, _), spans in zip(views, spans_list):
        seg = spans.seg
        sel = seg.pair_splats
        means.append(projected.means2d[sel])
        conics.append(projected.conics[sel])
        opacities.append(projected.opacities[sel])
        colors.append(projected.colors[sel])
        pids.append(projected.point_ids[sel])
        origin_x.append(seg.geometry.origin_x[seg.pair_tiles])
        depths.append(projected.depths[sel])
    return (
        np.concatenate(means),
        np.concatenate(conics),
        np.concatenate(opacities),
        np.concatenate(colors),
        np.concatenate(pids),
        np.concatenate(origin_x),
        np.concatenate(depths),
    )


class PackedBackend:
    """Flattened intersection-list engine (the default).

    ``array_namespace`` retargets the numeric kernels: ``None`` pins the
    engine to numpy (the ``packed`` registry entry); the ``packed-xp``
    entry passes the runtime-resolved namespace (``REPRO_ARRAY_API`` /
    ``--array-api``).
    """

    name = "packed"

    def __init__(
        self,
        array_namespace: ArrayNamespace | None = None,
        name: str | None = None,
    ) -> None:
        self.nsx = array_namespace or get_array_namespace("numpy")
        if name is not None:
            self.name = name
        # Scratch arena of the pooled kernels, reused across calls (the
        # backend is a process-wide singleton) and owned by the namespace.
        self._ws = Workspace(self.nsx)

    def forward(
        self,
        projected: ProjectedGaussians,
        assignment: TileAssignment,
        num_points: int,
        background: np.ndarray,
        collect_stats: bool,
        per_pixel_sort: bool,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        grid = assignment.grid
        dominated = np.zeros(num_points, dtype=np.int64) if collect_stats else None
        if assignment.num_intersections == 0:
            return _background_frame(grid, background), dominated

        seg = build_segments(assignment)
        # Per-pixel sorting keeps every tile row: its early-termination gate
        # sits at the per-pixel deepest splat, which the reach bound could
        # otherwise prune (the permuted group-last slot is then exactly the
        # reference's gate row).
        spans = build_row_spans(projected, seg, full_rows=per_pixel_sort)
        if spans.num_spans == 0:
            return _background_frame(grid, background), dominated
        # Pooled single-view fast path: a batch of one through the same
        # kernels as ``forward_batch`` — bit-identical to the historical
        # unpooled pass, but on the warm workspace arena.
        return self._forward_chunk(
            [(projected, assignment)], [spans], num_points, background,
            collect_stats, per_pixel_sort,
        )[0]

    def forward_batch(
        self,
        views: list[tuple[ProjectedGaussians, TileAssignment]],
        num_points: int,
        background: np.ndarray,
        collect_stats: bool,
        per_pixel_sort: bool,
    ) -> list[tuple[np.ndarray, np.ndarray | None]]:
        """Rasterize several views of one model in batch-segmented scans.

        Per-view span lists concatenate into one batch (the grids may differ
        as long as the tile size is shared), so alpha evaluation, the
        transmittance scan, compositing and the Val_i statistics each run
        once over all the batched frames; only the final scatter into each
        frame and the cheap per-view span construction remain per view.
        On CPU namespaces, scans are capped at :func:`span_chunk_budget`
        spans (several views' worth) so the shared scan matrices stay
        cache-resident — one scan over everything would stream every
        operation from DRAM.  Device namespaces run one concatenated scan
        per batch: there is no CPU cache to stay resident in, and kernel
        launches amortize best over the largest possible segments.
        """
        if not views:
            return []
        sizes = {a.grid.tile_size for _, a in views}
        if len(sizes) > 1:
            raise ValueError(f"views must share one tile size, got {sorted(sizes)}")
        budget = span_chunk_budget() if self.nsx.device == "cpu" else None

        # Chunks are built streaming — one view's spans at a time, flushed
        # once the budget fills — so peak residency is one chunk's spans and
        # tables (plus the caller's views), never the whole batch's.
        results: list[tuple[np.ndarray, np.ndarray | None]] = []
        chunk_views: list[tuple[ProjectedGaussians, TileAssignment]] = []
        chunk_spans: list[RowSpans] = []
        total = 0

        def flush():
            nonlocal chunk_views, chunk_spans, total
            if chunk_views:
                results.extend(
                    self._forward_chunk(
                        chunk_views, chunk_spans, num_points, background,
                        collect_stats, per_pixel_sort,
                    )
                )
            chunk_views, chunk_spans, total = [], [], 0

        for view in views:
            spans = build_row_spans(
                view[0], build_segments(view[1]), full_rows=per_pixel_sort
            )
            if (
                chunk_views
                and budget is not None
                and total + spans.num_spans > budget
            ):
                flush()
            chunk_views.append(view)
            chunk_spans.append(spans)
            total += spans.num_spans
        flush()
        return results

    def _forward_chunk(
        self,
        views: list[tuple[ProjectedGaussians, TileAssignment]],
        spans_list: list[RowSpans],
        num_points: int,
        background: np.ndarray,
        collect_stats: bool,
        per_pixel_sort: bool,
    ) -> list[tuple[np.ndarray, np.ndarray | None]]:
        """One concatenated scan over a chunk of views."""
        images = [_background_frame(a.grid, background) for _, a in views]
        dominated: list[np.ndarray | None] = [
            np.zeros(num_points, dtype=np.int64) if collect_stats else None
            for _ in views
        ]
        batch = concat_spans(spans_list)  # validates the shared tile size
        if batch.num_spans == 0:
            return list(zip(images, dominated))

        ts = views[0][1].grid.tile_size
        nsx, ws = self.nsx, self._ws
        (
            pair_means,
            pair_conics,
            pair_opacities,
            pair_colors,
            pair_pids,
            pair_origin_x,
            pair_depths,
        ) = _batch_pair_tables(views, spans_list)
        bt = BatchTables.build(
            nsx, batch, ts, pair_means, pair_conics, pair_opacities,
            pair_colors, pair_origin_x, pair_depths,
        )

        quad = batch_span_quad(nsx, ws, bt)
        alphas = batch_span_alphas(nsx, ws, bt, quad)

        perm = None
        if per_pixel_sort:
            perm = batch_per_pixel_permutation(nsx, bt, quad)
            alphas = nsx.take_along_last(alphas, perm)

        weights, final = batch_weights_final(nsx, ws, bt, alphas)

        # One compositing reduction over the whole batch, scattered per view.
        pixels = batch_composite(nsx, ws, bt, weights, final, background, perm)
        for v, spans in enumerate(spans_list):
            if spans.num_groups == 0:
                continue
            idx, ok = _group_pixel_index(spans)
            images[v].reshape(-1, 3)[idx[ok]] = pixels[batch.view_groups(v)][ok]

        if collect_stats:
            ok_all = np.concatenate(
                [s.seg.geometry.lane_valid[s.group_tile] for s in spans_list]
            )  # (Q, ts)
            winners, has_any = batch_dominated_winners(
                nsx, ws, bt, weights, ok_all, perm
            )
            for v in range(len(views)):
                gsl = batch.view_groups(v)
                sel = has_any[:, gsl]
                if not sel.any():
                    continue
                winner_pairs = batch.span_pair[winners[:, gsl][sel]]
                np.add.at(dominated[v], pair_pids[winner_pairs], 1)
        return list(zip(images, dominated))

    def backward(
        self,
        projected: ProjectedGaussians,
        assignment: TileAssignment,
        num_points: int,
        grad_image: np.ndarray,
        background: np.ndarray,
    ) -> RasterGradients:
        result = RasterGradients(
            color=np.zeros((num_points, 3)),
            opacity=np.zeros(num_points),
            log_scale=np.zeros(num_points),
        )
        if assignment.num_intersections == 0:
            return result

        seg = build_segments(assignment)
        spans = build_row_spans(projected, seg)
        if spans.num_spans == 0:
            return result
        lane_index, lane_ok = _group_pixel_index(spans)
        return backward_grads(
            self.nsx, projected, spans, grad_image, background, num_points,
            lane_index, lane_ok,
        )

    def foveated_frame(
        self,
        projected: ProjectedGaussians,
        assignment: TileAssignment,
        maps: Any,
        bounds: np.ndarray,
        level_opacity: dict[int, np.ndarray],
        level_delta: dict[int, np.ndarray],
        background: np.ndarray,
    ) -> FoveatedFrame:
        grid = assignment.grid
        nsx = self.nsx
        num_tiles = grid.num_tiles
        if assignment.num_intersections == 0:
            return FoveatedFrame(
                image=_background_frame(grid, background),
                sort_intersections_per_tile=np.zeros(num_tiles, dtype=np.int64),
                raster_intersections_per_tile=np.zeros(num_tiles, dtype=np.float64),
                blend_pixels=0,
            )

        seg = build_segments(assignment)
        n_levels = len(level_opacity)
        op_mat = np.stack([level_opacity[t] for t in range(1, n_levels + 1)])  # (L, N)
        de_mat = np.stack([level_delta[t] for t in range(1, n_levels + 1)])  # (L, N, 3)

        tl = maps.tile_level
        second = maps.tile_second_level
        pair_pids = projected.point_ids[seg.pair_splats]
        pair_bounds = bounds[pair_pids]
        pair_tl = tl[seg.pair_tiles]

        # Filtering stage: points with quality bound below a level never
        # reach sorting/rasterization for that level.
        sort_level = np.where(second > 0, np.minimum(tl, second), tl)
        sort_mask = pair_bounds >= sort_level[seg.pair_tiles]
        sort_ints = np.bincount(seg.pair_tiles[sort_mask], minlength=num_tiles).astype(
            np.int64
        )
        mask_primary = pair_bounds >= pair_tl
        raster_ints = np.bincount(
            seg.pair_tiles[mask_primary], minlength=num_tiles
        ).astype(np.float64)

        spans = build_row_spans(projected, seg)
        if spans.num_spans:
            base_exp = exp_neg_half(nsx, span_quad(nsx, projected, spans))
        else:
            base_exp = np.empty((grid.tile_size, 0))

        def level_image(pair_levels, pair_mask, sub_spans, keep):
            """Composite one quality level over (a tile subset of) the frame."""
            image = _background_frame(grid, background)
            if sub_spans.num_spans == 0:
                return image
            sp = sub_spans.span_pair
            pids = pair_pids[sp]
            levels = pair_levels[sp]  # subset first: never indexes level 0
            alphas = clamp_alphas(
                nsx, op_mat[levels - 1, pids][None, :] * base_exp[:, keep]
            )
            alphas *= pair_mask[sp][None, :]
            colors = projected.colors[seg.pair_splats[sp]] + de_mat[levels - 1, pids]
            _, weights, final = weights_final(nsx, alphas, sub_spans)
            _scatter_composite(
                nsx, image, weights, final, colors, sub_spans, background
            )
            return image

        prim = level_image(
            pair_tl, mask_primary, spans, np.ones(spans.num_spans, dtype=bool)
        )

        # Blending stage: band pixels of tiles with a second level are
        # rendered at both levels and interpolated.
        nonempty = np.diff(assignment.tile_offsets) > 0
        lo_t = np.where(second > 0, np.minimum(tl, second), 0)
        tile_map = _tile_of_pixel(grid)
        mix_full = (
            (maps.band_level == lo_t[tile_map])
            & maps.needs_blend
            & ((second > 0) & nonempty)[tile_map]
        )
        blend_pixels = int(mix_full.sum())
        out = prim
        if blend_pixels:
            mix_count = np.bincount(tile_map[mix_full], minlength=num_tiles)
            sel_tiles = mix_count > 0  # implies second > 0 and non-empty
            sub_spans, keep = spans.subset(sel_tiles)
            pair_second = second[seg.pair_tiles]
            mask_second = pair_bounds >= pair_second
            sec = level_image(pair_second, mask_second, sub_spans, keep)

            # Second-level pass touches only the band pixels.
            msec = np.bincount(seg.pair_tiles[mask_second], minlength=num_tiles)
            raster_ints[sel_tiles] += (
                msec[sel_tiles] * mix_count[sel_tiles] / grid.tile_size**2
            )

            lo_is_primary = (tl == lo_t)[tile_map][:, :, None]
            lo_img = np.where(lo_is_primary, prim, sec)
            hi_img = np.where(lo_is_primary, sec, prim)
            w = maps.weight_next[:, :, None]
            out = np.where(mix_full[:, :, None], (1.0 - w) * lo_img + w * hi_img, prim)

        return FoveatedFrame(
            image=out,
            sort_intersections_per_tile=sort_ints,
            raster_intersections_per_tile=raster_ints,
            blend_pixels=blend_pixels,
        )

    def multi_model_frame(
        self,
        views: list[tuple[ProjectedGaussians, TileAssignment]],
        maps: Any,
        background: np.ndarray,
    ) -> FoveatedFrame:
        grid = views[0][1].grid
        nsx = self.nsx
        num_tiles = grid.num_tiles
        tile_ids = np.arange(num_tiles)
        tl = maps.tile_level
        second = maps.tile_second_level

        # Every level pays its own sorting/rasterization on its own view.
        ints = np.stack([v[1].intersections_per_tile() for v in views])  # (L, T)
        n_primary = ints[tl - 1, tile_ids]
        sort_ints = n_primary.astype(np.int64)
        raster_ints = n_primary.astype(np.float64)

        lo_t = np.where(second > 0, np.minimum(tl, second), 0)
        tile_map = _tile_of_pixel(grid)
        mix_full = (
            (maps.band_level == lo_t[tile_map])
            & maps.needs_blend
            & (second > 0)[tile_map]
        )
        blend_pixels = int(mix_full.sum())
        mix_count = np.bincount(tile_map[mix_full], minlength=num_tiles)
        sel_second = mix_count > 0  # implies second > 0
        n_second = ints[np.maximum(second - 1, 0), tile_ids]
        raster_ints[sel_second] += (
            n_second[sel_second] * mix_count[sel_second] / grid.tile_size**2
        )

        prim = _background_frame(grid, background)
        sec = _background_frame(grid, background)
        for level in range(1, len(views) + 1):
            need_p = tl == level
            need_s = sel_second & (second == level)
            need = need_p | need_s
            projected_v, assignment_v = views[level - 1]
            if not need.any() or assignment_v.num_intersections == 0:
                continue
            sub_spans, _ = build_row_spans(
                projected_v, build_segments(assignment_v)
            ).subset(need)
            if sub_spans.num_spans == 0:
                continue
            alphas, _ = span_alphas(nsx, projected_v, sub_spans)
            _, weights, final = weights_final(nsx, alphas, sub_spans)
            colors = projected_v.colors[sub_spans.seg.pair_splats][sub_spans.span_pair]
            img_v = _background_frame(grid, background)
            _scatter_composite(
                nsx, img_v, weights, final, colors, sub_spans, background
            )
            mask_p = need_p[tile_map]
            mask_s = need_s[tile_map]
            prim[mask_p] = img_v[mask_p]
            sec[mask_s] = img_v[mask_s]

        out = prim
        if blend_pixels:
            lo_is_primary = (tl == lo_t)[tile_map][:, :, None]
            lo_img = np.where(lo_is_primary, prim, sec)
            hi_img = np.where(lo_is_primary, sec, prim)
            w = maps.weight_next[:, :, None]
            out = np.where(mix_full[:, :, None], (1.0 - w) * lo_img + w * hi_img, prim)

        return FoveatedFrame(
            image=out,
            sort_intersections_per_tile=sort_ints,
            raster_intersections_per_tile=raster_ints,
            blend_pixels=blend_pixels,
        )
