"""Packed tile–splat intersection lists.

The packed backend operates on one flattened, depth-sorted list of
tile–splat intersections instead of a per-tile Python loop, at two
granularities:

- **Pair segments** (:class:`PackedSegments`): the raw ``(tile, splat)``
  intersection pairs, contiguous per tile — the unit of the Sorting stage
  and of per-tile statistics.
- **Row spans** (:class:`RowSpans`): each pair expanded to the tile pixel
  *rows* its ellipse can actually reach (a conservative per-axis Mahalanobis
  bound), re-sorted to ``(tile, row, depth)`` order.  A span owns one
  ``tile_size``-wide lane vector, so per-pixel fragment lists are contiguous
  *groups* of spans and front-to-back compositing becomes a segmented scan
  along axis 0 — vectorized over the whole frame, with work proportional to
  the rasterized area rather than ``intersections × tile area``.

Every operation below is expressed over flat, segment-indexed arrays, so
several frames' lists concatenate into one: :func:`concat_spans` builds a
:class:`SpanBatch` whose segmented scans cover a whole multi-view batch
(the batched ``forward_batch`` path of the packed backend).
"""

from __future__ import annotations

import dataclasses
import functools

import numpy as np

from ..projection import ALPHA_EPS, ProjectedGaussians
from ..tiling import TileAssignment, TileGrid

# A splat cannot clear the ALPHA_EPS intersect test beyond this Mahalanobis
# quadratic value even at opacity 1 (``exp(-q/2) < 1/255``); the margin keeps
# the exact threshold decision on the computed alpha.
QUAD_CUTOFF = -2.0 * float(np.log(ALPHA_EPS)) + 1e-6


@dataclasses.dataclass(frozen=True)
class TileLaneGeometry:
    """Per-tile pixel-lane layout of a grid.

    A *lane* is one of the ``tile_size`` x-columns of a tile; edge tiles
    mark lanes beyond the image width invalid.
    """

    grid: TileGrid
    origin_x: np.ndarray  # (T,) tile pixel origin, float
    origin_y: np.ndarray  # (T,)
    lane_x: np.ndarray  # (ts,) lane centre offsets within a tile (l + 0.5)
    lane_valid: np.ndarray  # (T, ts) lane inside the image width


@functools.lru_cache(maxsize=16)
def tile_lane_geometry(grid: TileGrid) -> TileLaneGeometry:
    ts = grid.tile_size
    ids = np.arange(grid.num_tiles, dtype=np.int64)
    origin_x = (ids % grid.tiles_x) * ts
    origin_y = (ids // grid.tiles_x) * ts
    lanes = np.arange(ts, dtype=np.int64)
    return TileLaneGeometry(
        grid=grid,
        origin_x=origin_x.astype(np.float64),
        origin_y=origin_y.astype(np.float64),
        lane_x=lanes + 0.5,
        lane_valid=origin_x[:, None] + lanes[None, :] < grid.width,
    )


@dataclasses.dataclass(frozen=True)
class SegmentIndex:
    """CSR-style index of contiguous segments along axis 0 of a flat array."""

    starts: np.ndarray  # (S,) first row of each segment
    lens: np.ndarray  # (S,)
    of_item: np.ndarray  # (R,) segment id of every row

    @property
    def num_segments(self) -> int:
        return int(self.starts.shape[0])

    @property
    def last(self) -> np.ndarray:
        """Row index of the final item of every segment, ``(S,)``."""
        return self.starts + self.lens - 1

    @staticmethod
    def from_lengths(lens: np.ndarray) -> "SegmentIndex":
        lens = np.asarray(lens, dtype=np.int64)
        starts = np.zeros(lens.shape[0], dtype=np.int64)
        if lens.size:
            starts[1:] = np.cumsum(lens[:-1])
        return SegmentIndex(
            starts=starts,
            lens=lens,
            of_item=np.repeat(np.arange(lens.shape[0], dtype=np.int64), lens),
        )


def segmented_cumsum_exclusive(
    values: np.ndarray, index: SegmentIndex, consume: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Per-segment exclusive cumulative sum of ``values`` along the last axis.

    Numpy-namespace wrapper around the backend-agnostic scan in
    :mod:`repro.splat.backends.kernels` (see there for semantics: one
    global ``cumsum`` re-centred at every segment boundary; length-0
    segments allowed; ``consume=True`` lets the scan scribble over
    ``values``).  Returns ``(exclusive_cumsum, segment_totals)``.
    """
    from .kernels import segmented_cumsum_exclusive as _impl

    return _impl(values, index, consume=consume)


def segment_transmittance_exclusive(alphas: np.ndarray, index: SegmentIndex) -> np.ndarray:
    """Front-to-back exclusive transmittance ``T_i = Π_{j<i} (1 − α_j)``.

    Numpy-namespace wrapper around the log-space segmented scan in
    :mod:`repro.splat.backends.kernels`; alphas are clamped below 1, so
    the logs are finite and every segment starts at an exact 1.0.
    """
    from .kernels import segment_transmittance_exclusive as _impl

    return _impl(alphas, index)


@dataclasses.dataclass
class PackedSegments:
    """Flattened intersection pairs, segmented by (non-empty) tile."""

    geometry: TileLaneGeometry
    pair_tiles: np.ndarray  # (K,)
    pair_splats: np.ndarray  # (K,)
    index: SegmentIndex  # segments = non-empty tiles
    seg_tiles: np.ndarray  # (S,) tile id of each segment
    tile_last_pair: np.ndarray  # (T,) last pair row of each tile (-1 if empty)

    @property
    def grid(self) -> TileGrid:
        return self.geometry.grid

    @property
    def num_pairs(self) -> int:
        return int(self.pair_tiles.shape[0])


def build_segments(assignment: TileAssignment) -> PackedSegments:
    """Pack a (depth-sorted) tile assignment into contiguous segments."""
    counts = np.diff(assignment.tile_offsets)
    nonempty = np.flatnonzero(counts > 0)
    tile_last_pair = assignment.tile_offsets[1:].astype(np.int64) - 1
    tile_last_pair[counts == 0] = -1
    return PackedSegments(
        geometry=tile_lane_geometry(assignment.grid),
        pair_tiles=assignment.pair_tiles,
        pair_splats=assignment.pair_splats,
        index=SegmentIndex(
            starts=assignment.tile_offsets[nonempty].astype(np.int64),
            lens=counts[nonempty].astype(np.int64),
            of_item=np.repeat(
                np.arange(nonempty.size, dtype=np.int64), counts[nonempty]
            ),
        ),
        seg_tiles=nonempty.astype(np.int64),
        tile_last_pair=tile_last_pair,
    )


@dataclasses.dataclass
class RowSpans:
    """Pairs expanded to reachable pixel rows, in ``(tile, row, depth)`` order.

    ``span_pair`` indexes back into the pair arrays; a *group* is the
    contiguous run of spans covering one ``(tile, row)`` — i.e. the packed
    per-pixel fragment lists of the row's ``tile_size`` pixels.  Rows a
    splat's ellipse cannot reach (its alpha is below the intersect test at
    every pixel of the row) carry no span at all, which is where the packed
    engine's work savings come from.
    """

    seg: PackedSegments
    span_pair: np.ndarray  # (R,) pair row of each span
    span_tile: np.ndarray  # (R,)
    span_y: np.ndarray  # (R,) global pixel row
    groups: SegmentIndex  # segments = (tile, row) groups
    group_tile: np.ndarray  # (Q,)
    group_y: np.ndarray  # (Q,) global pixel row
    group_has_tile_last: np.ndarray  # (Q,) last span is the tile's last pair

    @property
    def num_spans(self) -> int:
        return int(self.span_pair.shape[0])

    @property
    def num_groups(self) -> int:
        return self.groups.num_segments

    def subset(self, tile_mask: np.ndarray) -> tuple["RowSpans", np.ndarray]:
        """Restrict to selected tiles; also returns the kept-span row mask."""
        keep_spans = tile_mask[self.span_tile]
        keep_groups = tile_mask[self.group_tile]
        return (
            RowSpans(
                seg=self.seg,
                span_pair=self.span_pair[keep_spans],
                span_tile=self.span_tile[keep_spans],
                span_y=self.span_y[keep_spans],
                groups=SegmentIndex.from_lengths(self.groups.lens[keep_groups]),
                group_tile=self.group_tile[keep_groups],
                group_y=self.group_y[keep_groups],
                group_has_tile_last=self.group_has_tile_last[keep_groups],
            ),
            keep_spans,
        )

    def subset_spans(self, span_mask: np.ndarray) -> "RowSpans":
        """Restrict to an arbitrary span subset, dropping emptied groups.

        Unlike :meth:`subset` (whole tiles), the mask may cut *within* a
        ``(tile, row)`` group — the foveated filtering stage prunes spans
        whose pair fails a quality bound.  Group order and per-group depth
        order are preserved; ``group_has_tile_last`` is recomputed from each
        group's last surviving span.
        """
        span_mask = np.asarray(span_mask, dtype=bool)
        if span_mask.shape != (self.num_spans,):
            raise ValueError(
                f"span_mask must be ({self.num_spans},), got {span_mask.shape}"
            )
        if self.num_spans == 0:
            return self
        lens = np.add.reduceat(
            span_mask.astype(np.int64), self.groups.starts
        )
        keep_groups = lens > 0
        # Flat position of each group's last surviving span (groups are
        # non-empty, so the reduceat maximum is well-defined where kept).
        pos = np.where(span_mask, np.arange(self.num_spans, dtype=np.int64), -1)
        last_kept = np.maximum.reduceat(pos, self.groups.starts)[keep_groups]
        group_tile = self.group_tile[keep_groups]
        return RowSpans(
            seg=self.seg,
            span_pair=self.span_pair[span_mask],
            span_tile=self.span_tile[span_mask],
            span_y=self.span_y[span_mask],
            groups=SegmentIndex.from_lengths(lens[keep_groups]),
            group_tile=group_tile,
            group_y=self.group_y[keep_groups],
            group_has_tile_last=(
                self.span_pair[last_kept] == self.seg.tile_last_pair[group_tile]
            ),
        )


@dataclasses.dataclass
class SpanBatch:
    """Several views' :class:`RowSpans` concatenated into one batch scan.

    Pair rows of view ``v`` are shifted by ``pair_offsets[v]`` so the batch
    owns one flat pair-index space; the per-view structures stay available
    for the scatter back into each view's frame.  Group segments remain
    non-empty and contiguous (empty views simply contribute no rows), so the
    segmented-scan machinery above applies to the whole batch unchanged —
    one alpha-eval / compositing / stats pass covers every frame.
    """

    views: list[RowSpans]
    groups: SegmentIndex  # concatenated (view, tile, row) groups
    group_has_tile_last: np.ndarray  # (Q,)
    span_pair: np.ndarray  # (R,) rows into the batch-wide pair tables
    span_y: np.ndarray  # (R,) pixel row within the owning view
    span_offsets: np.ndarray  # (V + 1,) span range of each view
    group_offsets: np.ndarray  # (V + 1,) group range of each view
    pair_offsets: np.ndarray  # (V + 1,) pair range of each view

    @property
    def num_views(self) -> int:
        return len(self.views)

    @property
    def num_spans(self) -> int:
        return int(self.span_pair.shape[0])

    @property
    def num_groups(self) -> int:
        return self.groups.num_segments

    def view_groups(self, v: int) -> slice:
        """Group range of view ``v`` in the concatenated arrays."""
        return slice(int(self.group_offsets[v]), int(self.group_offsets[v + 1]))


def concat_spans(spans_list: list[RowSpans]) -> SpanBatch:
    """Concatenate several views' row spans into one segmented batch.

    Views may have different grids (mixed frame sizes) but must share a tile
    size, so every span owns the same ``tile_size``-wide lane vector and the
    whole batch composites in a single ``(tile_size, R)`` scan.
    """
    if not spans_list:
        raise ValueError("need at least one view to batch")
    sizes = {s.seg.grid.tile_size for s in spans_list}
    if len(sizes) > 1:
        raise ValueError(f"views must share one tile size, got {sorted(sizes)}")

    pair_offsets = np.zeros(len(spans_list) + 1, dtype=np.int64)
    span_offsets = np.zeros(len(spans_list) + 1, dtype=np.int64)
    group_offsets = np.zeros(len(spans_list) + 1, dtype=np.int64)
    np.cumsum([s.seg.num_pairs for s in spans_list], out=pair_offsets[1:])
    np.cumsum([s.num_spans for s in spans_list], out=span_offsets[1:])
    np.cumsum([s.num_groups for s in spans_list], out=group_offsets[1:])

    return SpanBatch(
        views=list(spans_list),
        groups=SegmentIndex.from_lengths(
            np.concatenate([s.groups.lens for s in spans_list])
        ),
        group_has_tile_last=np.concatenate(
            [s.group_has_tile_last for s in spans_list]
        ),
        span_pair=np.concatenate(
            [s.span_pair + off for s, off in zip(spans_list, pair_offsets[:-1])]
        ),
        span_y=np.concatenate([s.span_y for s in spans_list]),
        span_offsets=span_offsets,
        group_offsets=group_offsets,
        pair_offsets=pair_offsets,
    )


def build_row_spans(
    projected: ProjectedGaussians, seg: PackedSegments, full_rows: bool = False
) -> RowSpans:
    """Expand intersection pairs into per-row spans, sorted per pixel row.

    A row survives only if some pixel of it can pass the alpha intersect
    test: minimising the Mahalanobis form over the x offset gives
    ``q ≥ dy² / Σ_yy``, so rows with ``|dy| > sqrt(QUAD_CUTOFF · Σ_yy)`` are
    provably below threshold everywhere (the dilated covariance ``Σ`` is the
    inverse of the rasterized conic).  One guard row is kept on each side so
    the exact threshold decision always happens on a computed alpha.

    ``full_rows=True`` keeps every tile row for every pair (only clipped to
    the image).  The per-pixel-sorted path needs this: its early-termination
    gate sits at the per-pixel *deepest* tile splat, which the reach bound
    could otherwise prune away.
    """
    grid = seg.grid
    ts = grid.tile_size
    geom = seg.geometry

    my = projected.means2d[seg.pair_splats, 1]
    tile_y0 = geom.origin_y[seg.pair_tiles]
    if full_rows:
        y_lo = tile_y0.astype(np.int64)
        y_hi = np.minimum(tile_y0.astype(np.int64) + ts, grid.height) - 1
    else:
        cov_yy = projected.cov2d[seg.pair_splats, 2]
        reach = np.sqrt(QUAD_CUTOFF * np.maximum(cov_yy, 0.0))
        y_lo = np.floor(my - reach - 0.5).astype(np.int64)
        y_hi = np.ceil(my + reach - 0.5).astype(np.int64)
        y_lo = np.maximum(y_lo, tile_y0.astype(np.int64))
        y_hi = np.minimum(
            y_hi, np.minimum(tile_y0.astype(np.int64) + ts, grid.height) - 1
        )
    counts = np.maximum(y_hi - y_lo + 1, 0)

    total = int(counts.sum())
    span_pair = np.repeat(np.arange(seg.num_pairs, dtype=np.int64), counts)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    ramp = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], counts)
    span_y = np.repeat(y_lo, counts) + ramp
    span_tile = seg.pair_tiles[span_pair]

    # (tile, row) key — exact integers, so the stable sort keeps depth order
    # within every pixel row.
    key = span_tile * ts + (span_y - np.repeat(tile_y0.astype(np.int64), counts))
    order = np.argsort(key, kind="stable")
    span_pair = span_pair[order]
    span_y = span_y[order]
    span_tile = span_tile[order]
    key = key[order]

    if total:
        starts = np.concatenate([[0], np.flatnonzero(np.diff(key)) + 1]).astype(np.int64)
        lens = np.diff(np.concatenate([starts, [total]])).astype(np.int64)
    else:
        starts = np.empty(0, dtype=np.int64)
        lens = np.empty(0, dtype=np.int64)
    groups = SegmentIndex(
        starts=starts,
        lens=lens,
        of_item=np.repeat(np.arange(starts.size, dtype=np.int64), lens),
    )
    group_tile = span_tile[starts] if total else np.empty(0, dtype=np.int64)
    group_y = span_y[starts] if total else np.empty(0, dtype=np.int64)
    has_last = (
        span_pair[groups.last] == seg.tile_last_pair[group_tile]
        if total
        else np.empty(0, dtype=bool)
    )
    return RowSpans(
        seg=seg,
        span_pair=span_pair,
        span_tile=span_tile,
        span_y=span_y,
        groups=groups,
        group_tile=group_tile,
        group_y=group_y,
        group_has_tile_last=has_last,
    )
