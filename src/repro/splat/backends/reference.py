"""Reference rasterization backend: the original per-tile Python loops.

Kept verbatim (modulo the vectorized per-pixel-sort compositing) as the
regression oracle for the packed engine — every other backend must match it
to within 1e-10 on images, statistics, and gradients.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..projection import ALPHA_EPS, ProjectedGaussians
from ..rasterizer import (
    ALPHA_CLAMP,
    TRANSMITTANCE_EPS,
    RasterGradients,
    _per_pixel_reorder,
    composite,
    composite_per_pixel,
    splat_alphas,
    tile_pixel_centers,
)
from ..tiling import TileAssignment
from .base import FoveatedFrame


def _tile_blend_mask(
    maps: Any, primary: int, second: int, bounds: tuple[int, int, int, int]
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Pixels of a tile that blend two levels.

    Returns ``(mix mask (h, w), weight toward the outer level, lo, hi)``.
    """
    x0, y0, x1, y1 = bounds
    lo, hi = (primary, second) if second > primary else (second, primary)
    band = maps.band_level[y0:y1, x0:x1]
    mix = (band == lo) & maps.needs_blend[y0:y1, x0:x1]
    weight = maps.weight_next[y0:y1, x0:x1]
    return mix, weight, lo, hi


def _composite_masked(
    base_exp: np.ndarray,
    opacities: np.ndarray,
    splat_mask: np.ndarray,
    colors: np.ndarray,
    background: np.ndarray,
    pixel_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Composite one quality level, optionally over a pixel subset."""
    exp_term = base_exp if pixel_mask is None else base_exp[:, pixel_mask]
    alphas = opacities[:, None] * exp_term
    alphas = np.where(alphas < ALPHA_EPS, 0.0, np.minimum(alphas, ALPHA_CLAMP))
    alphas = alphas * splat_mask[:, None]
    pixel_colors, _, _ = composite(alphas, colors, background)
    return pixel_colors


class ReferenceBackend:
    """Per-tile loop engine (the seed implementation)."""

    name = "reference"

    def forward(
        self,
        projected: ProjectedGaussians,
        assignment: TileAssignment,
        num_points: int,
        background: np.ndarray,
        collect_stats: bool,
        per_pixel_sort: bool,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        grid = assignment.grid
        image = np.empty((grid.height, grid.width, 3), dtype=np.float64)
        dominated = np.zeros(num_points, dtype=np.int64) if collect_stats else None

        for tile_id in range(grid.num_tiles):
            splat_idx = assignment.splats_in_tile(tile_id)
            x0, y0, x1, y1 = grid.tile_pixel_bounds(tile_id)
            pixels = tile_pixel_centers(grid, tile_id)

            alphas, _ = splat_alphas(projected, splat_idx, pixels)
            order = None
            if per_pixel_sort and splat_idx.size:
                alphas, order = _per_pixel_reorder(projected, splat_idx, pixels, alphas)

            colors = projected.colors[splat_idx]
            if order is not None:
                # Colours must follow the per-pixel permutation; composite
                # every pixel column with its own colour ordering, then
                # scatter the weights back to the original splat rows.
                pixel_colors, weights_sorted, _ = composite_per_pixel(
                    alphas, colors[order], background
                )
                weights = np.zeros_like(weights_sorted)
                np.put_along_axis(weights, order, weights_sorted, axis=0)
            else:
                pixel_colors, weights, _ = composite(alphas, colors, background)

            image[y0:y1, x0:x1] = pixel_colors.reshape(y1 - y0, x1 - x0, 3)

            if collect_stats and splat_idx.size:
                winners = np.argmax(weights, axis=0)
                has_any = weights.max(axis=0) > 0.0
                winner_points = projected.point_ids[splat_idx[winners[has_any]]]
                np.add.at(dominated, winner_points, 1)

        return image, dominated

    def forward_batch(
        self,
        views: list[tuple[ProjectedGaussians, TileAssignment]],
        num_points: int,
        background: np.ndarray,
        collect_stats: bool,
        per_pixel_sort: bool,
    ) -> list[tuple[np.ndarray, np.ndarray | None]]:
        """Loop-over-``forward`` fallback (the oracle has no shared work)."""
        return [
            self.forward(
                projected, assignment, num_points, background, collect_stats,
                per_pixel_sort,
            )
            for projected, assignment in views
        ]

    def backward(
        self,
        projected: ProjectedGaussians,
        assignment: TileAssignment,
        num_points: int,
        grad_image: np.ndarray,
        background: np.ndarray,
    ) -> RasterGradients:
        grid = assignment.grid
        grad_color = np.zeros((num_points, 3))
        grad_opacity = np.zeros(num_points)
        grad_log_scale = np.zeros(num_points)

        for tile_id in range(grid.num_tiles):
            splat_idx = assignment.splats_in_tile(tile_id)
            if splat_idx.size == 0:
                continue
            x0, y0, x1, y1 = grid.tile_pixel_bounds(tile_id)
            pixels = tile_pixel_centers(grid, tile_id)
            g = grad_image[y0:y1, x0:x1].reshape(-1, 3)  # (P, 3)

            alphas, quad = splat_alphas(projected, splat_idx, pixels)
            one_minus = 1.0 - alphas
            trans_incl = np.cumprod(one_minus, axis=0)
            trans_excl = np.vstack([np.ones((1, pixels.shape[0])), trans_incl[:-1]])
            active = trans_excl >= TRANSMITTANCE_EPS
            weights = trans_excl * alphas * active
            final_trans = np.where(active[-1], trans_incl[-1], 0.0)

            colors = projected.colors[splat_idx]  # (S, 3)
            gc = colors @ g.T  # (S, P): g·c_i per pixel
            contrib = weights * gc  # (S, P): T_i α_i (g·c_i)

            # Suffix sums S_i = Σ_{j>i} contrib_j + T_N (g·bg).
            bg_term = final_trans * (g @ background)  # (P,)
            suffix = np.cumsum(contrib[::-1], axis=0)[::-1]
            suffix_after = np.vstack([suffix[1:], np.zeros((1, pixels.shape[0]))])
            suffix_after = suffix_after + bg_term[None, :]

            grad_alpha = trans_excl * gc - suffix_after / np.maximum(one_minus, 1e-6)
            grad_alpha = grad_alpha * active * (alphas > 0.0) * (alphas < ALPHA_CLAMP)

            # dα/do = e^{-q/2}; dα/du = α·q (since dq/du = -2q, dα/dq = -α/2).
            exp_term = np.exp(-0.5 * quad)
            pids = projected.point_ids[splat_idx]
            np.add.at(grad_color, pids, weights @ g)
            np.add.at(grad_opacity, pids, (grad_alpha * exp_term).sum(axis=1))
            np.add.at(grad_log_scale, pids, (grad_alpha * alphas * quad).sum(axis=1))

        return RasterGradients(
            color=grad_color, opacity=grad_opacity, log_scale=grad_log_scale
        )

    def foveated_frame(
        self,
        projected: ProjectedGaussians,
        assignment: TileAssignment,
        maps: Any,
        bounds: np.ndarray,
        level_opacity: dict[int, np.ndarray],
        level_delta: dict[int, np.ndarray],
        background: np.ndarray,
    ) -> FoveatedFrame:
        grid = assignment.grid
        image = np.empty((grid.height, grid.width, 3))
        sort_ints = np.zeros(grid.num_tiles, dtype=np.int64)
        raster_ints = np.zeros(grid.num_tiles, dtype=np.float64)
        blend_pixels = 0
        tile_pixels = grid.tile_size**2

        for tile_id in range(grid.num_tiles):
            splat_idx = assignment.splats_in_tile(tile_id)
            x0, y0, x1, y1 = grid.tile_pixel_bounds(tile_id)
            pixels = tile_pixel_centers(grid, tile_id)
            t = int(maps.tile_level[tile_id])
            second = int(maps.tile_second_level[tile_id])

            if splat_idx.size == 0:
                image[y0:y1, x0:x1] = background
                continue

            pids = projected.point_ids[splat_idx]
            # Filtering stage: points with quality bound below a level never
            # reach sorting/rasterization for that level.
            mask_primary = bounds[pids] >= t
            sort_level = min(t, second) if second else t
            sort_ints[tile_id] = int((bounds[pids] >= sort_level).sum())
            raster_ints[tile_id] = float(mask_primary.sum())

            _, quad = splat_alphas(projected, splat_idx, pixels)
            base_exp = np.exp(-0.5 * quad)
            shared_colors = projected.colors[splat_idx]

            primary_img = _composite_masked(
                base_exp,
                level_opacity[t][pids],
                mask_primary,
                shared_colors + level_delta[t][pids],
                background,
            ).reshape(y1 - y0, x1 - x0, 3)

            out = primary_img
            if second:
                mix, weight, lo, hi = _tile_blend_mask(maps, t, second, (x0, y0, x1, y1))
                if mix.any():
                    mask_second = bounds[pids] >= second
                    second_img = _composite_masked(
                        base_exp,
                        level_opacity[second][pids],
                        mask_second,
                        shared_colors + level_delta[second][pids],
                        background,
                        pixel_mask=mix.ravel(),
                    )
                    lo_img = primary_img[mix] if t == lo else second_img
                    hi_img = second_img if t == lo else primary_img[mix]
                    w = weight[mix][:, None]
                    out = primary_img.copy()
                    out[mix] = (1.0 - w) * lo_img + w * hi_img
                    blend_pixels += int(mix.sum())
                    # Second-level pass touches only the band pixels.
                    raster_ints[tile_id] += mask_second.sum() * mix.sum() / tile_pixels
            image[y0:y1, x0:x1] = out

        return FoveatedFrame(
            image=image,
            sort_intersections_per_tile=sort_ints,
            raster_intersections_per_tile=raster_ints,
            blend_pixels=blend_pixels,
        )

    def foveated_frame_batch(
        self,
        views: list[tuple[ProjectedGaussians, TileAssignment]],
        maps_list: list[Any],
        bounds: np.ndarray,
        level_opacity: dict[int, np.ndarray],
        level_delta: dict[int, np.ndarray],
        background: np.ndarray,
    ) -> list[FoveatedFrame]:
        """Loop-over-``foveated_frame`` fallback (the oracle shares no work)."""
        return [
            self.foveated_frame(
                projected, assignment, maps, bounds, level_opacity, level_delta,
                background,
            )
            for (projected, assignment), maps in zip(views, maps_list)
        ]

    def multi_model_frame(
        self,
        views: list[tuple[ProjectedGaussians, TileAssignment]],
        maps: Any,
        background: np.ndarray,
    ) -> FoveatedFrame:
        grid = views[0][1].grid
        image = np.empty((grid.height, grid.width, 3))
        sort_ints = np.zeros(grid.num_tiles, dtype=np.int64)
        raster_ints = np.zeros(grid.num_tiles, dtype=np.float64)
        blend_pixels = 0
        tile_pixels = grid.tile_size**2

        for tile_id in range(grid.num_tiles):
            x0, y0, x1, y1 = grid.tile_pixel_bounds(tile_id)
            pixels = tile_pixel_centers(grid, tile_id)
            t = int(maps.tile_level[tile_id])
            second = int(maps.tile_second_level[tile_id])

            def _level_image(
                level: int, pixel_mask: np.ndarray | None
            ) -> tuple[np.ndarray, int]:
                projected, assignment = views[level - 1]
                splat_idx = assignment.splats_in_tile(tile_id)
                if splat_idx.size == 0:
                    n_px = pixels.shape[0] if pixel_mask is None else int(pixel_mask.sum())
                    return np.broadcast_to(background, (n_px, 3)).copy(), 0
                px = pixels if pixel_mask is None else pixels[pixel_mask]
                alphas, _ = splat_alphas(projected, splat_idx, px)
                colors, _, _ = composite(alphas, projected.colors[splat_idx], background)
                return colors, splat_idx.size

            primary_flat, n_primary = _level_image(t, None)
            sort_ints[tile_id] = n_primary
            raster_ints[tile_id] = float(n_primary)
            primary_img = primary_flat.reshape(y1 - y0, x1 - x0, 3)

            out = primary_img
            if second:
                mix, weight, lo, hi = _tile_blend_mask(maps, t, second, (x0, y0, x1, y1))
                if mix.any():
                    second_flat, n_second = _level_image(second, mix.ravel())
                    lo_img = primary_img[mix] if t == lo else second_flat
                    hi_img = second_flat if t == lo else primary_img[mix]
                    w = weight[mix][:, None]
                    out = primary_img.copy()
                    out[mix] = (1.0 - w) * lo_img + w * hi_img
                    blend_pixels += int(mix.sum())
                    raster_ints[tile_id] += n_second * mix.sum() / tile_pixels
            image[y0:y1, x0:x1] = out

        return FoveatedFrame(
            image=image,
            sort_intersections_per_tile=sort_ints,
            raster_intersections_per_tile=raster_ints,
            blend_pixels=blend_pixels,
        )
