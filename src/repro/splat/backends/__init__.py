"""Pluggable rasterization backends for the render engine.

Two engines ship with the repo:

- ``packed`` (default): flattens all tile–splat intersections of a frame
  into contiguous, depth-sorted segment arrays and runs compositing, stats
  and the backward pass as whole-frame vectorized segment operations.
- ``reference``: the original per-tile Python loop, kept as the regression
  oracle — ``packed`` must match it to within 1e-10.

Selection precedence (first match wins):

1. an explicit ``backend=`` argument / ``RenderConfig.backend``,
2. :func:`set_default_backend` (what ``--backend`` CLI flags call),
3. the ``REPRO_BACKEND`` environment variable,
4. the built-in default, ``packed``.
"""

from __future__ import annotations

import os
from typing import Callable

from .base import FoveatedFrame, RasterBackend
from .packed import PackedBackend
from .reference import ReferenceBackend
from .segments import (
    QUAD_CUTOFF,
    PackedSegments,
    RowSpans,
    SegmentIndex,
    SpanBatch,
    TileLaneGeometry,
    build_row_spans,
    build_segments,
    concat_spans,
    segment_transmittance_exclusive,
    segmented_cumsum_exclusive,
    tile_lane_geometry,
)

DEFAULT_BACKEND = "packed"
ENV_VAR = "REPRO_BACKEND"

_REGISTRY: dict[str, Callable[[], RasterBackend]] = {
    "packed": PackedBackend,
    "reference": ReferenceBackend,
}
_instances: dict[str, RasterBackend] = {}
_default_override: str | None = None


def available_backends() -> tuple[str, ...]:
    """Names of all registered backends."""
    return tuple(sorted(_REGISTRY))


def register_backend(name: str, factory: Callable[[], RasterBackend]) -> None:
    """Register a custom backend under ``name`` (overwrites existing)."""
    _REGISTRY[name] = factory
    _instances.pop(name, None)


def set_default_backend(name: str | None) -> None:
    """Override the process-wide default backend (``None`` resets)."""
    global _default_override
    if name is not None and name not in _REGISTRY:
        raise ValueError(
            f"unknown rasterization backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        )
    _default_override = name


def resolve_backend_name(name: str | None = None) -> str:
    """Apply the selection precedence, returning a backend name."""
    return name or _default_override or os.environ.get(ENV_VAR) or DEFAULT_BACKEND


def get_backend(backend: str | RasterBackend | None = None) -> RasterBackend:
    """Resolve a backend name (or pass an instance through)."""
    if backend is not None and not isinstance(backend, str):
        return backend
    name = resolve_backend_name(backend)
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown rasterization backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        )
    if name not in _instances:
        _instances[name] = _REGISTRY[name]()
    return _instances[name]


__all__ = [
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "FoveatedFrame",
    "PackedBackend",
    "PackedSegments",
    "QUAD_CUTOFF",
    "RasterBackend",
    "ReferenceBackend",
    "RowSpans",
    "SegmentIndex",
    "SpanBatch",
    "TileLaneGeometry",
    "available_backends",
    "build_row_spans",
    "build_segments",
    "concat_spans",
    "get_backend",
    "register_backend",
    "resolve_backend_name",
    "segment_transmittance_exclusive",
    "segmented_cumsum_exclusive",
    "set_default_backend",
    "tile_lane_geometry",
]
