"""Pluggable rasterization backends for the render engine.

Four engines ship with the repo, listed in a capability-flagged registry
(:func:`backend_registry` / ``repro.cli --backend list``):

- ``packed`` (default): flattens all tile–splat intersections of a frame
  into contiguous, depth-sorted segment arrays and runs compositing, stats
  and the backward pass as whole-frame vectorized segment operations over
  the numpy kernel namespace.
- ``packed-xp``: the same engine with its numeric kernels retargeted onto
  a runtime-resolved array namespace (numpy default; torch / cupy when
  installed) — see :mod:`repro.splat.backends.kernels` and the
  ``REPRO_ARRAY_API`` env var / ``--array-api`` CLI flag.
- ``packed-tiled``: the packed engine with very large frames split into
  group-aligned cache-resident sub-chunk scans; the tile extent comes
  from the per-host tuner (:mod:`repro.tune`), falling back to an LLC
  cost-model prediction.
- ``reference``: the original per-tile Python loop, kept as the regression
  oracle — ``packed`` must match it to within 1e-10.

Selection precedence (first match wins):

1. an explicit ``backend=`` argument / ``RenderConfig.backend``,
2. :func:`set_default_backend` (what ``--backend`` CLI flags call),
3. the ``REPRO_BACKEND`` environment variable,
4. the built-in default, ``packed``.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Callable

from .base import FoveatedFrame, RasterBackend
from .kernels import (
    ArrayNamespace,
    CupyNamespace,
    NumpyNamespace,
    TorchNamespace,
    Workspace,
    array_api_installed,
    available_array_apis,
    get_array_namespace,
    resolve_array_api_name,
)
from .kernels import set_default_array_api as _set_default_array_api
from .packed import (
    PackedBackend,
    TiledPackedBackend,
    span_chunk_budget,
    split_spans,
    tile_span_budget,
)
from .reference import ReferenceBackend
from .segments import (
    QUAD_CUTOFF,
    PackedSegments,
    RowSpans,
    SegmentIndex,
    SpanBatch,
    TileLaneGeometry,
    build_row_spans,
    build_segments,
    concat_spans,
    segment_transmittance_exclusive,
    segmented_cumsum_exclusive,
    tile_lane_geometry,
)

DEFAULT_BACKEND = "packed"
ENV_VAR = "REPRO_BACKEND"


@dataclasses.dataclass(frozen=True)
class BackendInfo:
    """One registry entry: factory plus the capabilities dispatchers and
    tooling introspect without instantiating the backend.

    ``has_forward_batch`` / ``has_foveated_batch`` are tri-state:
    ``True``/``False`` assert the batched entry point's presence/absence,
    ``None`` (the default for backends registered without capability flags)
    means "probe the instance" — so a pre-existing
    ``register_backend(name, factory)`` call whose engine implements the
    method keeps its batched dispatch.  ``device`` is ``"cpu"`` for host
    engines and ``"xp"`` for namespace-retargeted ones whose device follows
    the resolved array API.
    """

    name: str
    factory: Callable[[], RasterBackend]
    description: str = ""
    device: str = "cpu"
    has_forward_batch: bool | None = None
    has_foveated_batch: bool | None = None
    experimental: bool = False


def _make_packed_xp() -> RasterBackend:
    return PackedBackend(array_namespace=get_array_namespace(), name="packed-xp")


_REGISTRY: dict[str, BackendInfo] = {}
_instances: dict[str, RasterBackend] = {}
_default_override: str | None = None


def register_backend(
    name: str,
    factory: Callable[[], RasterBackend],
    *,
    description: str = "",
    device: str = "cpu",
    has_forward_batch: bool | None = None,
    has_foveated_batch: bool | None = None,
    experimental: bool = False,
) -> None:
    """Register a custom backend under ``name`` (overwrites existing)."""
    _REGISTRY[name] = BackendInfo(
        name=name,
        factory=factory,
        description=description,
        device=device,
        has_forward_batch=has_forward_batch,
        has_foveated_batch=has_foveated_batch,
        experimental=experimental,
    )
    _instances.pop(name, None)


register_backend(
    "packed",
    PackedBackend,
    description="whole-frame vectorized span engine (numpy kernels)",
    device="cpu",
    has_forward_batch=True,
    has_foveated_batch=True,
)
register_backend(
    "packed-xp",
    _make_packed_xp,
    description=(
        "span engine on a pluggable array namespace "
        "(REPRO_ARRAY_API / --array-api: numpy|torch|cupy)"
    ),
    device="xp",
    has_forward_batch=True,
    has_foveated_batch=True,
)
register_backend(
    "packed-tiled",
    TiledPackedBackend,
    description=(
        "cache-tiled span engine for very large frames (tile extent from "
        "the tuner: $REPRO_TILE_SPAN_BUDGET / host profile / LLC model)"
    ),
    device="cpu",
    has_forward_batch=True,
    has_foveated_batch=True,
)
register_backend(
    "reference",
    ReferenceBackend,
    description="per-tile Python loop, the regression oracle (batch = per-view loop)",
    device="cpu",
    has_forward_batch=True,
    has_foveated_batch=True,
)


def available_backends() -> tuple[str, ...]:
    """Names of all registered backends."""
    return tuple(sorted(_REGISTRY))


def backend_info(name: str) -> BackendInfo:
    """The registry entry for ``name`` (raises on unknown backends)."""
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown rasterization backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        )
    return _REGISTRY[name]


def backend_registry() -> tuple[BackendInfo, ...]:
    """All registry entries, sorted by name."""
    return tuple(_REGISTRY[name] for name in available_backends())


def _engine_info(engine: RasterBackend) -> BackendInfo | None:
    """The registry entry backing an engine instance, if any.

    Instances created through :func:`get_backend` are matched to their
    registration key by identity, so an engine registered under a name
    different from its ``.name`` attribute still consults its own entry.
    """
    for reg_name, instance in _instances.items():
        if instance is engine:
            return _REGISTRY.get(reg_name)
    return _REGISTRY.get(getattr(engine, "name", None))


def _supports_batch_method(engine: RasterBackend, flag: bool | None, method: str) -> bool:
    """Capability-flag resolution shared by the batched dispatchers.

    An explicit flag answers directly (``True`` still requires the instance
    to actually expose the method, so a mis-flagged backend cannot crash a
    dispatcher); a ``None`` flag — flagless registrations and unregistered
    instances — probes the instance for the method, preserving the PR 2
    dispatcher semantics for custom backends.
    """
    if flag is not None:
        return flag and hasattr(engine, method)
    return getattr(engine, method, None) is not None


def supports_forward_batch(engine: RasterBackend) -> bool:
    """Whether ``engine`` implements the batched standard-forward entry."""
    info = _engine_info(engine)
    return _supports_batch_method(
        engine, None if info is None else info.has_forward_batch, "forward_batch"
    )


def supports_foveated_batch(engine: RasterBackend) -> bool:
    """Whether ``engine`` implements the batched foveated entry point.

    Consulted by :func:`repro.foveation.render_foveated_batch`: engines
    without the method (or flagged ``has_foveated_batch=False``) are looped
    over :meth:`RasterBackend.foveated_frame` per frame by the dispatcher.
    """
    info = _engine_info(engine)
    return _supports_batch_method(
        engine,
        None if info is None else info.has_foveated_batch,
        "foveated_frame_batch",
    )


def describe_backends() -> str:
    """Human-readable registry table (what ``--backend list`` prints)."""
    lines = [
        f"{'backend':<12} {'device':<6} {'batch':<5} {'fov-b':<5} description",
    ]
    default = resolve_backend_name(None)

    def flag(value: bool | None) -> str:
        return "auto" if value is None else "yes" if value else "no"

    for info in backend_registry():
        marker = "*" if info.name == default else " "
        lines.append(
            f"{info.name:<11}{marker} {info.device:<6} "
            f"{flag(info.has_forward_batch):<5} {flag(info.has_foveated_batch):<5} "
            f"{info.description}"
        )
    lines.append("")
    lines.append(f"(* = current default; select with --backend / ${ENV_VAR})")
    api = resolve_array_api_name(None)
    apis = ", ".join(
        f"{name}{'' if array_api_installed(name) else ' (not installed)'}"
        for name in available_array_apis()
    )
    lines.append(
        f"array namespaces for packed-xp (--array-api / $REPRO_ARRAY_API, "
        f"current: {api}): {apis}"
    )
    return "\n".join(lines)


def set_default_backend(name: str | None) -> None:
    """Override the process-wide default backend (``None`` resets)."""
    global _default_override
    if name is not None and name not in _REGISTRY:
        raise ValueError(
            f"unknown rasterization backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        )
    _default_override = name


def set_array_api(name: str | None) -> None:
    """Select the array namespace the ``packed-xp`` backend resolves.

    Drops the cached ``packed-xp`` instance so the next :func:`get_backend`
    re-resolves against the new namespace.  This is the only setter the
    package exports: the lower-level ``kernels.set_default_array_api``
    changes the resolution without invalidating cached engines, so a
    backend instantiated earlier would silently keep its old namespace.
    """
    _set_default_array_api(name)
    _instances.pop("packed-xp", None)


def resolve_backend_name(name: str | None = None) -> str:
    """Apply the selection precedence, returning a backend name."""
    return name or _default_override or os.environ.get(ENV_VAR) or DEFAULT_BACKEND


def get_backend(backend: str | RasterBackend | None = None) -> RasterBackend:
    """Resolve a backend name (or pass an instance through)."""
    if backend is not None and not isinstance(backend, str):
        return backend
    name = resolve_backend_name(backend)
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown rasterization backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        )
    if name not in _instances:
        _instances[name] = _REGISTRY[name].factory()
    return _instances[name]


__all__ = [
    "ArrayNamespace",
    "BackendInfo",
    "CupyNamespace",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "FoveatedFrame",
    "NumpyNamespace",
    "PackedBackend",
    "PackedSegments",
    "QUAD_CUTOFF",
    "RasterBackend",
    "ReferenceBackend",
    "RowSpans",
    "SegmentIndex",
    "SpanBatch",
    "TileLaneGeometry",
    "TiledPackedBackend",
    "TorchNamespace",
    "Workspace",
    "array_api_installed",
    "available_array_apis",
    "available_backends",
    "backend_info",
    "backend_registry",
    "build_row_spans",
    "build_segments",
    "concat_spans",
    "describe_backends",
    "get_array_namespace",
    "get_backend",
    "register_backend",
    "resolve_array_api_name",
    "resolve_backend_name",
    "segment_transmittance_exclusive",
    "segmented_cumsum_exclusive",
    "set_array_api",
    "set_default_backend",
    "span_chunk_budget",
    "split_spans",
    "supports_forward_batch",
    "supports_foveated_batch",
    "tile_lane_geometry",
    "tile_span_budget",
]
