"""Backend-agnostic span kernels, parameterized by an array namespace.

Every numeric span operation of the packed render engine — alpha
evaluation, the exclusive transmittance scan, segmented reductions,
compositing, the Val_i statistics and the analytic backward pass — lives
here, written against a small numpy-flavoured adapter (:class:`ArrayNamespace`)
instead of numpy directly.  The adapter is the ``xp`` of the array-API
ecosystem: :class:`NumpyNamespace` (the default) maps every call onto the
exact numpy expression the engine always ran, so results and performance
are unchanged bit for bit; :class:`TorchNamespace` and
:class:`CupyNamespace` re-target the same kernels onto torch / cupy
tensors, resolved at runtime via ``REPRO_ARRAY_API`` (or the CLI
``--array-api`` flag) so none of them is an import-time dependency.

The contract (see also ``backends/README.md``):

- **Host-side structure, device-side math.**  Span/group index
  construction (``build_row_spans``, ``concat_spans``) and per-pair gather
  tables stay numpy on the host; kernels move them across the namespace
  boundary once (:meth:`ArrayNamespace.asarray` /
  :class:`BatchTables`) and run the rate-matched scans on whatever the
  namespace owns.  Images are scattered back on the host.
- **Pooled kernels own their scratch.**  :class:`Workspace` is a
  namespace-owned arena: named slots are grown with headroom and sliced to
  shape, so steady-state batched rendering touches only warm pages (CPU)
  or reuses device allocations without allocator churn (GPU namespaces).
- **Segment primitives are the only non-elementwise surface.**  A
  namespace must provide ``segment_sum`` / ``segment_max`` /
  ``segment_min`` over CSR-style segments of the last axis plus a stable
  ``argsort``; everything else is elementwise, ``cumsum``, gathers and
  fancy-index assignment, which every numpy-alike already has.

The numpy namespace is pinned to the ``reference`` backend within 1e-10 by
``tests/test_backends.py`` (via ``packed`` / ``packed-xp``); alternative
namespaces are pinned to numpy by ``tests/test_kernels_xp.py``, which
skips cleanly when the optional package is absent.
"""

from __future__ import annotations

import dataclasses
import importlib.util
import os
import threading
from typing import Any, Callable

import numpy as np

from ..projection import ALPHA_EPS, ProjectedGaussians
from ..rasterizer import ALPHA_CLAMP, TRANSMITTANCE_EPS, RasterGradients
from .segments import RowSpans, SegmentIndex, SpanBatch

ENV_ARRAY_API = "REPRO_ARRAY_API"
DEFAULT_ARRAY_API = "numpy"


# ---------------------------------------------------------------------------
# Array namespaces
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class SegmentArrays:
    """Namespace-resident copy of a :class:`SegmentIndex` (CSR segments).

    ``starts`` / ``of_item`` / ``last`` live on the namespace's device so
    segment reductions and boundary-slot assignments never bounce through
    the host inside a kernel.
    """

    starts: Any  # (S,) int64, namespace array
    of_item: Any  # (R,) int64
    last: Any  # (S,) int64
    num_segments: int


class ArrayNamespace:
    """Numpy-flavoured op surface the span kernels are written against.

    The base class implements everything in terms of ``self.xp``, a module
    with numpy's API (numpy itself, or cupy); torch overrides each method.
    ``device`` is ``"cpu"`` for host namespaces — the packed engine keeps
    its cache-residency chunking only there, and runs one concatenated
    scan per batch on device namespaces.
    """

    name = "abstract"
    device = "cpu"
    xp: Any = None

    # dtype handles (namespace-native objects)
    @property
    def float64(self):
        return self.xp.float64

    @property
    def int64(self):
        return self.xp.int64

    @property
    def bool_(self):
        return self.xp.bool_

    # -- conversion --------------------------------------------------------
    def asarray(self, a, dtype=None):
        """Host (or namespace) array → namespace array."""
        return self.xp.asarray(a, dtype=dtype) if dtype is not None else self.xp.asarray(a)

    def index(self, a):
        """Host int array → namespace index array."""
        return self.asarray(a)

    def to_numpy(self, a) -> np.ndarray:
        return np.asarray(a)

    def segments(self, index: SegmentIndex) -> SegmentArrays:
        return SegmentArrays(
            starts=self.index(index.starts),
            of_item=self.index(index.of_item),
            last=self.index(index.last),
            num_segments=index.num_segments,
        )

    # -- allocation --------------------------------------------------------
    def empty(self, shape, dtype=None):
        return self.xp.empty(shape, dtype=dtype if dtype is not None else self.float64)

    def zeros(self, shape, dtype=None):
        return self.xp.zeros(shape, dtype=dtype if dtype is not None else self.float64)

    def copy(self, a):
        return a.copy()

    def fill(self, a, value) -> None:
        a[...] = value

    def size(self, a) -> int:
        return int(a.size)

    def dtype_of(self, a):
        return a.dtype

    # -- elementwise (optionally into a workspace buffer) ------------------
    def add(self, a, b, out=None):
        return self.xp.add(a, b, out=out)

    def multiply(self, a, b, out=None):
        return self.xp.multiply(a, b, out=out)

    def negative(self, a, out=None):
        return self.xp.negative(a, out=out)

    def exp(self, a, out=None):
        return self.xp.exp(a, out=out)

    def log1p(self, a, out=None):
        return self.xp.log1p(a, out=out)

    def minimum(self, a, b, out=None):
        return self.xp.minimum(a, b, out=out)

    def maximum(self, a, b, out=None):
        return self.xp.maximum(a, b, out=out)

    def greater(self, a, b, out=None):
        return self.xp.greater(a, b, out=out)

    def greater_equal(self, a, b, out=None):
        return self.xp.greater_equal(a, b, out=out)

    def equal(self, a, b, out=None):
        return self.xp.equal(a, b, out=out)

    def where(self, cond, a, b):
        return self.xp.where(cond, a, b)

    def cumsum_last(self, a, out=None):
        return self.xp.cumsum(a, axis=-1, out=out)

    def masked_assign(self, dst, src, mask) -> None:
        """``dst[mask] = src[mask]`` with broadcasting of ``src``."""
        self.xp.copyto(dst, src, where=mask)

    # -- gathers / ordering ------------------------------------------------
    def take(self, a, idx, axis=0, out=None):
        """Gather rows/columns along ``axis`` (out-of-range ids clipped)."""
        return self.xp.take(a, idx, axis=axis, out=out, mode="clip")

    def take_along_last(self, a, idx):
        return self.xp.take_along_axis(a, idx, axis=-1)

    def argsort_stable_last(self, a):
        return self.xp.argsort(a, axis=-1, kind="stable")

    # -- reductions --------------------------------------------------------
    def sum_axis0(self, a):
        return a.sum(axis=0)

    def matvec(self, a, b):
        return a @ b

    def segment_sum(self, values, seg: SegmentArrays, out=None):
        """Per-segment sum along the last axis (segments cover every item)."""
        return self.xp.add.reduceat(values, seg.starts, axis=-1, out=out)

    def segment_max(self, values, seg: SegmentArrays, out=None):
        return self.xp.maximum.reduceat(values, seg.starts, axis=-1, out=out)

    def segment_min(self, values, seg: SegmentArrays, out=None):
        return self.xp.minimum.reduceat(values, seg.starts, axis=-1, out=out)


class NumpyNamespace(ArrayNamespace):
    """The default namespace: every op is the literal numpy call the packed
    engine always executed, so the kernels stay bit-identical to PR 1/2."""

    name = "numpy"
    device = "cpu"
    xp = np

    def asarray(self, a, dtype=None):
        return np.asarray(a) if dtype is None else np.asarray(a, dtype=dtype)

    def to_numpy(self, a) -> np.ndarray:
        return a

    def segments(self, index: SegmentIndex) -> SegmentArrays:
        # Already host-resident; no copies.
        return SegmentArrays(
            starts=index.starts,
            of_item=index.of_item,
            last=index.last,
            num_segments=index.num_segments,
        )


class TorchNamespace(ArrayNamespace):
    """Torch drop-in (CPU or CUDA) for the span kernels.

    Dtypes are pinned to float64/int64 so results stay within the 1e-10
    equivalence band of the numpy namespace; segment reductions map onto
    ``index_add_`` / ``index_reduce_`` over the CSR ``of_item`` ids, which
    on CPU accumulate in the same sequential order as ``ufunc.reduceat``.
    """

    name = "torch"

    def __init__(self, device: str | None = None) -> None:
        import torch  # deferred: optional dependency

        self.torch = torch
        self.device = device or os.environ.get("REPRO_TORCH_DEVICE") or (
            "cuda" if torch.cuda.is_available() else "cpu"
        )

    @property
    def float64(self):
        return self.torch.float64

    @property
    def int64(self):
        return self.torch.int64

    @property
    def bool_(self):
        return self.torch.bool

    # -- conversion --------------------------------------------------------
    def asarray(self, a, dtype=None):
        if isinstance(a, self.torch.Tensor):
            return a.to(dtype) if dtype is not None else a
        arr = np.ascontiguousarray(a)
        t = self.torch.from_numpy(arr).to(self.device)
        return t.to(dtype) if dtype is not None else t

    def index(self, a):
        return self.asarray(a, dtype=self.torch.int64)

    def to_numpy(self, a) -> np.ndarray:
        return a.detach().cpu().numpy()

    # -- allocation --------------------------------------------------------
    def empty(self, shape, dtype=None):
        return self.torch.empty(
            shape, dtype=dtype if dtype is not None else self.torch.float64,
            device=self.device,
        )

    def zeros(self, shape, dtype=None):
        return self.torch.zeros(
            shape, dtype=dtype if dtype is not None else self.torch.float64,
            device=self.device,
        )

    def copy(self, a):
        return a.clone()

    def fill(self, a, value) -> None:
        a.fill_(value)

    def size(self, a) -> int:
        return a.numel()

    # -- elementwise -------------------------------------------------------
    def _scalar(self, v, like):
        return self.torch.as_tensor(v, dtype=like.dtype, device=like.device)

    def _binary(self, fn, a, b, out=None):
        if not isinstance(a, self.torch.Tensor):
            a = self._scalar(a, b)
        if not isinstance(b, self.torch.Tensor):
            b = self._scalar(b, a)
        return fn(a, b, out=out) if out is not None else fn(a, b)

    def add(self, a, b, out=None):
        return self._binary(self.torch.add, a, b, out=out)

    def multiply(self, a, b, out=None):
        return self._binary(self.torch.mul, a, b, out=out)

    def negative(self, a, out=None):
        return self.torch.neg(a, out=out) if out is not None else self.torch.neg(a)

    def exp(self, a, out=None):
        return self.torch.exp(a, out=out) if out is not None else self.torch.exp(a)

    def log1p(self, a, out=None):
        return self.torch.log1p(a, out=out) if out is not None else self.torch.log1p(a)

    def minimum(self, a, b, out=None):
        if not isinstance(b, self.torch.Tensor):
            return self.torch.clamp(a, max=b, out=out) if out is not None else self.torch.clamp(a, max=b)
        return self._binary(self.torch.minimum, a, b, out=out)

    def maximum(self, a, b, out=None):
        if not isinstance(b, self.torch.Tensor):
            return self.torch.clamp(a, min=b, out=out) if out is not None else self.torch.clamp(a, min=b)
        return self._binary(self.torch.maximum, a, b, out=out)

    def greater(self, a, b, out=None):
        return self._binary(self.torch.gt, a, b, out=out)

    def greater_equal(self, a, b, out=None):
        return self._binary(self.torch.ge, a, b, out=out)

    def equal(self, a, b, out=None):
        return self._binary(self.torch.eq, a, b, out=out)

    def where(self, cond, a, b):
        if not isinstance(a, self.torch.Tensor):
            a = self._scalar(a, b)
        if not isinstance(b, self.torch.Tensor):
            b = self._scalar(b, a)
        return self.torch.where(cond, a, b)

    def cumsum_last(self, a, out=None):
        # torch.cumsum does not document in-place aliasing; compute fresh
        # and copy when a workspace slot was requested.
        result = self.torch.cumsum(a, dim=-1)
        if out is not None:
            out.copy_(result)
            return out
        return result

    def masked_assign(self, dst, src, mask) -> None:
        if not isinstance(src, self.torch.Tensor):
            src = self._scalar(src, dst)
        dst.copy_(self.torch.where(mask, src, dst))

    # -- gathers / ordering ------------------------------------------------
    def take(self, a, idx, axis=0, out=None):
        idx = self.torch.clamp(idx, 0, max(a.shape[axis] - 1, 0))
        if out is not None:
            return self.torch.index_select(a, axis, idx, out=out)
        return self.torch.index_select(a, axis, idx)

    def take_along_last(self, a, idx):
        return self.torch.gather(a, -1, idx)

    def argsort_stable_last(self, a):
        return self.torch.argsort(a, dim=-1, stable=True)

    # -- reductions --------------------------------------------------------
    def sum_axis0(self, a):
        return a.sum(dim=0)

    def matvec(self, a, b):
        return a @ b

    def _segment_shape(self, values, seg):
        return values.shape[:-1] + (seg.num_segments,)

    def segment_sum(self, values, seg: SegmentArrays, out=None):
        if out is None:
            out = self.zeros(self._segment_shape(values, seg), dtype=values.dtype)
        else:
            out.zero_()
        out.index_add_(values.dim() - 1, seg.of_item, values)
        return out

    def _segment_reduce(self, values, seg, out, mode, init):
        if out is None:
            out = self.empty(self._segment_shape(values, seg), dtype=values.dtype)
        out.fill_(init)
        out.index_reduce_(values.dim() - 1, seg.of_item, values, mode, include_self=False)
        return out

    def segment_max(self, values, seg: SegmentArrays, out=None):
        init = True if values.dtype == self.torch.bool else (
            self.torch.iinfo(values.dtype).min
            if not values.dtype.is_floating_point
            else -self.torch.inf
        )
        return self._segment_reduce(values, seg, out, "amax", init)

    def segment_min(self, values, seg: SegmentArrays, out=None):
        init = True if values.dtype == self.torch.bool else (
            self.torch.iinfo(values.dtype).max
            if not values.dtype.is_floating_point
            else self.torch.inf
        )
        return self._segment_reduce(values, seg, out, "amin", init)


class CupyNamespace(ArrayNamespace):
    """CuPy drop-in (experimental — exercised only where cupy is installed).

    CuPy mirrors numpy's module surface except ``ufunc.reduceat``; segment
    reductions fall back to cumulative-sum differences (sum) and a
    sort-free two-pass gather (max/min), which stay within the equivalence
    band for the segment lengths the engine produces.
    """

    name = "cupy"
    device = "cuda"

    def __init__(self) -> None:
        import cupy  # deferred: optional dependency

        self.xp = cupy

    def to_numpy(self, a) -> np.ndarray:
        return self.xp.asnumpy(a)

    def take(self, a, idx, axis=0, out=None):
        result = self.xp.take(a, idx, axis=axis)
        if out is not None:
            out[...] = result
            return out
        return result

    def argsort_stable_last(self, a):
        # cupy argsort is radix-based (stable) for the dtypes we sort.
        return self.xp.argsort(a, axis=-1)

    def segment_sum(self, values, seg: SegmentArrays, out=None):
        csum = self.xp.cumsum(values, axis=-1)
        totals = csum[..., seg.last]
        totals[..., 1:] -= csum[..., seg.last[:-1]]
        if out is not None:
            out[...] = totals
            return out
        return totals

    def _segment_extreme(self, values, seg, out, scatter_fn, init):
        # One scatter-reduce over the whole array: max/min are
        # order-independent, so the atomic scatter is exact.
        shape = values.shape[:-1] + (seg.num_segments,)
        result = self.xp.full(shape, init, dtype=values.dtype)
        scatter_fn(result, (Ellipsis, seg.of_item), values)
        if out is not None:
            out[...] = result
            return out
        return result

    def _extreme_init(self, dtype, sign):
        if self.xp.issubdtype(dtype, self.xp.floating):
            return sign * self.xp.inf
        return self.xp.iinfo(dtype).min if sign < 0 else self.xp.iinfo(dtype).max

    def segment_max(self, values, seg: SegmentArrays, out=None):
        import cupyx  # pragma: no cover - cupy only

        return self._segment_extreme(
            values, seg, out, cupyx.scatter_max,
            self._extreme_init(values.dtype, -1),
        )

    def segment_min(self, values, seg: SegmentArrays, out=None):
        import cupyx  # pragma: no cover - cupy only

        return self._segment_extreme(
            values, seg, out, cupyx.scatter_min,
            self._extreme_init(values.dtype, +1),
        )


# ---------------------------------------------------------------------------
# Namespace resolution
# ---------------------------------------------------------------------------

_FACTORIES: dict[str, Callable[[], ArrayNamespace]] = {
    "numpy": NumpyNamespace,
    "torch": TorchNamespace,
    "cupy": CupyNamespace,
}
_numpy_singleton = NumpyNamespace()
_default_api_override: str | None = None


def available_array_apis() -> tuple[str, ...]:
    """Registered namespace names (regardless of installability)."""
    return tuple(sorted(_FACTORIES))


def array_api_installed(name: str) -> bool:
    """Whether ``name``'s backing package is importable right now."""
    if name == "numpy":
        return True
    return importlib.util.find_spec(name) is not None


def set_default_array_api(name: str | None) -> None:
    """Override the process-wide array namespace (``None`` resets).

    This is what the ``--array-api`` CLI flag calls; it outranks the
    ``REPRO_ARRAY_API`` environment variable.
    """
    global _default_api_override
    if name is not None and name not in _FACTORIES:
        raise ValueError(
            f"unknown array namespace {name!r}; "
            f"available: {', '.join(available_array_apis())}"
        )
    _default_api_override = name


def resolve_array_api_name(name: str | None = None) -> str:
    """Selection precedence: explicit > override > env > numpy."""
    return (
        name
        or _default_api_override
        or os.environ.get(ENV_ARRAY_API)
        or DEFAULT_ARRAY_API
    )


def get_array_namespace(name: str | None = None) -> ArrayNamespace:
    """Instantiate the selected namespace (numpy is a shared singleton)."""
    resolved = resolve_array_api_name(name)
    if resolved not in _FACTORIES:
        raise ValueError(
            f"unknown array namespace {resolved!r}; "
            f"available: {', '.join(available_array_apis())}"
        )
    if resolved == "numpy":
        return _numpy_singleton
    try:
        return _FACTORIES[resolved]()
    except ImportError as exc:
        raise RuntimeError(
            f"array namespace {resolved!r} selected "
            f"({ENV_ARRAY_API} / --array-api) but the package is not "
            f"installed: {exc}"
        ) from None


# ---------------------------------------------------------------------------
# Workspace: namespace-owned scratch arena
# ---------------------------------------------------------------------------


class Workspace:
    """Persistent scratch buffers for the pooled span kernels.

    A batch's ``(tile_size, R)`` temporaries run to several MB each; fresh
    allocations of that size pay page faults on every first touch, which
    measured ~2x on the whole batched pass.  Named slots are grown (with
    headroom) when a batch outsizes them and sliced to shape otherwise, so
    steady-state pooled rendering touches only warm pages.  The arena is
    owned by an :class:`ArrayNamespace`, so on a device namespace the slots
    are device allocations and refilling them never round-trips the host.
    Call :meth:`trim` to drop every slot.

    Slots are **thread-local**: the backends holding a workspace are
    process-wide singletons, and the pooled single-view ``forward`` runs
    through the arena on every render, so two threads rendering
    concurrently must not scribble over one another's scan buffers.  Each
    thread warms its own slot set instead.
    """

    def __init__(self, nsx: ArrayNamespace | None = None) -> None:
        self.nsx = nsx or _numpy_singleton
        self._local = threading.local()

    @property
    def _slots(self) -> dict[str, Any]:
        slots = getattr(self._local, "slots", None)
        if slots is None:
            slots = self._local.slots = {}
        return slots

    def take(self, name: str, shape: tuple[int, ...], dtype=None):
        nsx = self.nsx
        if dtype is None:
            dtype = nsx.float64
        n = int(np.prod(shape, dtype=np.int64)) if shape else 1
        buf = self._slots.get(name)
        if buf is None or nsx.dtype_of(buf) != dtype or nsx.size(buf) < n:
            buf = nsx.empty((n + (n >> 2) + 16,), dtype=dtype)
            self._slots[name] = buf
        return buf[:n].reshape(shape)

    def trim(self) -> None:
        """Drop the calling thread's slots (other threads keep theirs)."""
        self._slots.clear()


# ---------------------------------------------------------------------------
# Segmented scans (shared by unbatched and backward paths)
# ---------------------------------------------------------------------------


def segmented_cumsum_exclusive(
    values,
    index: SegmentIndex,
    consume: bool = False,
    nsx: ArrayNamespace | None = None,
):
    """Per-segment exclusive cumulative sum of ``values`` along the last axis.

    Returns ``(exclusive_cumsum, segment_totals)``.  One global ``cumsum``
    re-centred at every segment boundary: the running total is reset by
    subtracting the previous segment's (exactly re-computed) total, so
    intermediate magnitudes — and with them the floating-point drift a naive
    global scan accumulates across thousands of segments — stay bounded by a
    single segment's range.

    Length-0 segments are allowed (they own no items and report a zero
    total), as is an entirely empty index/value pair.

    ``consume=True`` lets the scan scribble over ``values``.
    """
    nsx = nsx or _numpy_singleton
    totals_shape = values.shape[:-1] + (index.num_segments,)
    if values.shape[-1] == 0 or index.num_segments == 0:
        return nsx.zeros(values.shape, dtype=nsx.dtype_of(values)), nsx.zeros(totals_shape)
    empty = index.lens == 0
    if empty.any():
        # Segment-sum primitives misread duplicated starts; scan the
        # non-empty segments (which still cover every item) and widen the
        # totals.
        sub_lens = index.lens[~empty]
        sub = SegmentIndex(
            starts=index.starts[~empty],
            lens=sub_lens,
            of_item=np.repeat(np.arange(sub_lens.shape[0], dtype=np.int64), sub_lens),
        )
        excl, sub_totals = segmented_cumsum_exclusive(values, sub, consume=consume, nsx=nsx)
        totals = nsx.zeros(totals_shape)
        totals[..., nsx.asarray(~empty)] = sub_totals
        return excl, totals
    seg = nsx.segments(index)
    totals = nsx.segment_sum(values, seg)
    adj = values if consume else nsx.copy(values)
    if index.starts.size > 1:
        adj[..., seg.starts[1:]] -= totals[..., :-1]
    adj = nsx.cumsum_last(adj, out=adj)
    excl = nsx.empty(adj.shape, dtype=nsx.dtype_of(adj))
    excl[..., 0] = 0.0
    excl[..., 1:] = adj[..., :-1]
    # The shifted scan leaks the previous segment's (re-centred) running
    # total into each segment's first slot; an exclusive scan starts at zero.
    excl[..., seg.starts] = 0.0
    return excl, totals


def segment_transmittance_exclusive(
    alphas, index: SegmentIndex, nsx: ArrayNamespace | None = None
):
    """Front-to-back exclusive transmittance ``T_i = Π_{j<i} (1 − α_j)``.

    Computed per segment (along the last axis) in log space; alphas are
    clamped below 1, so the logs are finite (``log1p(0) = 0`` keeps zero
    alphas out of the scan), and every segment starts at an exact 1.0.
    """
    nsx = nsx or _numpy_singleton
    log_one_minus = nsx.negative(alphas)
    nsx.log1p(log_one_minus, out=log_one_minus)
    log_excl, _ = segmented_cumsum_exclusive(log_one_minus, index, consume=True, nsx=nsx)
    nsx.minimum(log_excl, 0.0, out=log_excl)
    return nsx.exp(log_excl, out=log_excl)


# ---------------------------------------------------------------------------
# Unpooled span kernels (single view; foveated / backward / oracle paths)
#
# These take host-resident spans and return host-resident results; the
# namespace round-trip happens inside each kernel.  On the numpy namespace
# every call below is the exact expression the engine always ran.
# ---------------------------------------------------------------------------


def span_quad(nsx: ArrayNamespace, projected: ProjectedGaussians, spans: RowSpans):
    """Mahalanobis quadratic form per (lane, span), ``(ts, R)``, host array.

    The x offsets are shared by all rows of a pair (one gather from a
    per-pair table); the y offsets are scalars per span.  Evaluation order
    matches :func:`repro.splat.rasterizer.splat_alphas` bit for bit.
    """
    seg = spans.seg
    geom = seg.geometry
    means = projected.means2d[seg.pair_splats]
    conics = projected.conics[seg.pair_splats]

    # (ts, K) pixel-centre x minus mean; both terms exactly representable.
    dx_pair = geom.lane_x[:, None] + geom.origin_x[seg.pair_tiles][None, :]
    dx_pair -= means[None, :, 0]

    sp = spans.span_pair
    dx_host = dx_pair[:, sp]  # (ts, R)
    dy_host = (spans.span_y + 0.5) - means[sp, 1]  # (R,)

    dx = nsx.asarray(dx_host)
    dy = nsx.asarray(dy_host)
    quad = nsx.multiply(nsx.asarray((2.0 * conics[sp, 1]))[None, :], dx)
    quad = nsx.multiply(quad, dy[None, :], out=quad)
    dx = nsx.multiply(dx, dx, out=dx)
    dx = nsx.multiply(dx, nsx.asarray(conics[sp, 0])[None, :], out=dx)
    quad = nsx.add(quad, dx, out=quad)
    quad = nsx.add(quad, nsx.asarray(conics[sp, 2] * (dy_host * dy_host))[None, :], out=quad)
    return nsx.to_numpy(nsx.maximum(quad, 0.0, out=quad))


def exp_neg_half(nsx: ArrayNamespace, quad):
    """``exp(-quad/2)`` (off-ellipse slots underflow toward zero)."""
    out = nsx.multiply(nsx.asarray(quad), -0.5)
    return nsx.to_numpy(nsx.exp(out, out=out))


def clamp_alphas(nsx: ArrayNamespace, raw):
    """The rasterizer's intersect test: zero below 1/255, clamp near 1.

    Multiplying by the boolean keep-mask zeroes sub-threshold slots
    exactly, matching the reference ``np.where``.  On the numpy namespace
    this runs in place over ``raw``.
    """
    a = nsx.asarray(raw)
    keep = nsx.greater_equal(a, ALPHA_EPS)
    a = nsx.minimum(a, ALPHA_CLAMP, out=a)
    a = nsx.multiply(a, keep, out=a)
    return nsx.to_numpy(a)


def span_alphas(nsx: ArrayNamespace, projected: ProjectedGaussians, spans: RowSpans):
    """Per-(lane, span) alphas and the quadratic form, ``(ts, R)``.

    Off-image lanes of edge tiles are evaluated like any other slot; they
    form lane columns that are never scattered into the frame, and the
    statistics/gradient reductions mask them out explicitly.

    The exp/opacity/intersect-test chain runs namespace-resident in one
    pass (the op-for-op fusion of :func:`exp_neg_half` +
    :func:`clamp_alphas`), so device namespaces cross the host boundary
    once instead of per step.
    """
    quad = span_quad(nsx, projected, spans)
    opac = projected.opacities[spans.seg.pair_splats][spans.span_pair]
    a = nsx.multiply(nsx.asarray(quad), -0.5)
    a = nsx.exp(a, out=a)
    a = nsx.multiply(a, nsx.asarray(opac)[None, :], out=a)
    keep = nsx.greater_equal(a, ALPHA_EPS)
    a = nsx.minimum(a, ALPHA_CLAMP, out=a)
    a = nsx.multiply(a, keep, out=a)
    return nsx.to_numpy(a), quad


def foveated_level_alphas(nsx: ArrayNamespace, base_exp, span_opacities, span_mask):
    """One quality level's span alphas from the shared Gaussian-exp table.

    The foveated pipeline evaluates ``exp(-q/2)`` once per frame (the spans
    are shared across levels thanks to subsetting) and re-scales it per
    level: ``base_exp`` is the ``(ts, R_sub)`` slice of the frame's exp
    table covering the level's span subset, ``span_opacities`` the per-span
    level opacity ``(R_sub,)``, and ``span_mask`` the level-filtering
    bound mask ``(R_sub,)`` — spans whose pair fails the quality bound
    contribute exactly zero.  Operation order matches the historical
    monolithic foveated path bit for bit on the numpy namespace.
    """
    alphas = clamp_alphas(nsx, span_opacities[None, :] * base_exp)
    alphas *= span_mask[None, :]
    return alphas


def weights_final(
    nsx: ArrayNamespace, alphas, spans: RowSpans, keep_trans: bool = False
):
    """Transmittance scan: ``(trans_excl, weights, final_trans (ts, Q))``.

    ``final_trans`` replicates the reference early-termination rule exactly:
    the reference evaluates ``active`` at the *tile's* last splat, which for
    a pixel whose trailing splats carry no span is the group's final
    transmittance itself rather than the transmittance before the last
    contribution.

    Unless ``keep_trans``, the weights are computed in the scan's buffer and
    the first element of the returned tuple is ``None``.
    """
    a = nsx.asarray(alphas)
    trans = segment_transmittance_exclusive(a, spans.groups, nsx=nsx)
    seg = nsx.segments(spans.groups)
    trans_last = nsx.copy(trans[:, seg.last])
    tau = trans_last * (1.0 - a[:, seg.last])
    gate = nsx.where(nsx.asarray(spans.group_has_tile_last)[None, :], trans_last, tau)
    final = nsx.where(nsx.greater_equal(gate, TRANSMITTANCE_EPS), tau, 0.0)

    active = nsx.greater_equal(trans, TRANSMITTANCE_EPS)
    weights = trans * a if keep_trans else nsx.multiply(trans, a, out=trans)
    weights = nsx.multiply(weights, active, out=weights)
    return (
        nsx.to_numpy(trans) if keep_trans else None,
        nsx.to_numpy(weights),
        nsx.to_numpy(final),
    )


def composite_groups(
    nsx: ArrayNamespace,
    weights,
    final,
    span_colors,
    groups: SegmentIndex,
    tile_size: int,
    background: np.ndarray,
    color_perm=None,
):
    """Per-group composited colours, ``(Q, ts, 3)`` host array.

    The per-channel reduction ``Σ w_i c_i`` over every pixel-row group,
    plus the final-transmittance background term; the caller scatters the
    result into its frame(s).
    """
    seg = nsx.segments(groups)
    w = nsx.asarray(weights)
    f = nsx.asarray(final)
    colors = nsx.asarray(span_colors)
    perm = None if color_perm is None else nsx.index(color_perm)
    scratch = nsx.empty(w.shape, dtype=nsx.dtype_of(w))
    pixels = nsx.empty((groups.num_segments, tile_size, 3))
    for c in range(3):
        channel = colors[:, c]
        slot = channel[None, :] if perm is None else channel[perm]
        nsx.multiply(w, slot, out=scratch)
        pixel = nsx.segment_sum(scratch, seg)  # (ts, Q)
        pixel = nsx.add(pixel, f * background[c], out=pixel)
        pixels[:, :, c] = pixel.T
    return nsx.to_numpy(pixels)


def per_pixel_permutation(
    nsx: ArrayNamespace, pair_depths, span_pair, quad, groups: SegmentIndex
):
    """StopThePop ordering: per-pixel depth permutation within each group.

    Matches the reference backend exactly (including ties): a stable sort by
    per-pixel depth followed by a stable sort by group id keeps groups
    contiguous while ordering each lane by depth with original-order
    tie-breaking.
    """
    base = nsx.asarray(pair_depths[span_pair])
    depths = base[None, :] * (1.0 + 0.01 * nsx.asarray(quad))
    by_depth = nsx.argsort_stable_last(depths)
    of_item = nsx.segments(groups).of_item
    groups_sorted = of_item[by_depth]
    by_group = nsx.argsort_stable_last(groups_sorted)
    return nsx.to_numpy(nsx.take_along_last(by_depth, by_group))


def dominated_counts(
    nsx: ArrayNamespace,
    projected: ProjectedGaussians,
    spans: RowSpans,
    weights,
    num_points: int,
    lane_ok: np.ndarray,
    orig_cols=None,
):
    """Val_i: per-point count of pixels it dominates (max ``T_i α_i``).

    Ties resolve to the earliest pair in depth order, matching the
    reference ``argmax``; ``orig_cols`` maps permuted slots back to their
    original spans on the per-pixel-sorted path.  ``lane_ok`` is the host
    ``(Q, ts)`` on-image lane mask.
    """
    dominated = np.zeros(num_points, dtype=np.int64)
    seg = nsx.segments(spans.groups)
    w = nsx.asarray(weights)
    wmax = nsx.segment_max(w, seg)  # (ts, Q)
    has_any = nsx.to_numpy(nsx.greater(wmax, 0.0)) & lane_ok.T
    if orig_cols is None:
        cols = nsx.index(np.arange(spans.num_spans, dtype=np.int64))[None, :]
    else:
        cols = nsx.index(orig_cols)
    # cand = where(weights == per-group max and > 0, span column, R): the
    # winners minimum then resolves ties to the earliest span in depth order.
    is_max = nsx.equal(w, nsx.take(wmax, seg.of_item, axis=w.ndim - 1))
    is_max = is_max & nsx.greater(w, 0.0)
    cand = nsx.where(is_max, cols, spans.num_spans)
    winners = nsx.to_numpy(nsx.segment_min(cand, seg))  # (ts, Q)
    winner_pairs = spans.span_pair[winners[has_any]]
    pids = projected.point_ids[spans.seg.pair_splats[winner_pairs]]
    np.add.at(dominated, pids, 1)
    return dominated


def backward_grads(
    nsx: ArrayNamespace,
    projected: ProjectedGaussians,
    spans: RowSpans,
    grad_image: np.ndarray,
    background: np.ndarray,
    num_points: int,
    lane_index: np.ndarray,
    lane_ok: np.ndarray,
) -> RasterGradients:
    """Analytic backward over one view's spans (see ``rasterize_backward``).

    ``lane_index`` / ``lane_ok`` are the host ``(Q, ts)`` flat-image index
    and on-image mask of every group lane.
    """
    seg = spans.seg
    alphas_h, quad = span_alphas(nsx, projected, spans)
    trans_h, weights_h, final_h = weights_final(nsx, alphas_h, spans, keep_trans=True)

    # dL/dimage per group lane (zero on off-image lanes), lanes-first.
    ts = seg.grid.tile_size
    g_group = np.zeros((spans.num_groups, ts, 3))
    g_group[lane_ok] = grad_image.reshape(-1, 3)[lane_index[lane_ok]]
    g_lanes_h = np.ascontiguousarray(g_group.transpose(1, 0, 2))  # (ts, Q, 3)

    span_colors = projected.colors[seg.pair_splats][spans.span_pair]  # (R, 3)
    g_lanes = nsx.asarray(g_lanes_h)
    weights = nsx.asarray(weights_h)
    trans = nsx.asarray(trans_h)
    alphas = nsx.asarray(alphas_h)
    of_item = nsx.segments(spans.groups).of_item
    gc = nsx.zeros(weights.shape, dtype=nsx.dtype_of(weights))  # (ts, R): g·c_i
    span_grad_color = np.empty((spans.num_spans, 3))
    for c in range(3):
        g_c = nsx.take(g_lanes[:, :, c], of_item, axis=1)
        gc = nsx.add(gc, nsx.asarray(span_colors[:, c])[None, :] * g_c, out=gc)
        span_grad_color[:, c] = nsx.to_numpy(nsx.sum_axis0(weights * g_c))

    # Suffix sums S_i = Σ_{j>i} contrib_j + T_N (g·bg), per pixel.
    contrib = weights * gc
    excl, totals = segmented_cumsum_exclusive(contrib, spans.groups, nsx=nsx)
    bg_term = nsx.matvec(g_lanes, nsx.asarray(background))  # (ts, Q)
    bg_term = nsx.multiply(nsx.asarray(final_h), bg_term, out=bg_term)
    suffix_after = nsx.take(totals, of_item, axis=totals.ndim - 1) - (excl + contrib)
    suffix_after = nsx.add(
        suffix_after, nsx.take(bg_term, of_item, axis=bg_term.ndim - 1),
        out=suffix_after,
    )

    grad_alpha = trans * gc
    grad_alpha = nsx.add(
        grad_alpha, -(suffix_after / nsx.maximum(1.0 - alphas, 1e-6)), out=grad_alpha
    )
    live = (
        nsx.greater_equal(trans, TRANSMITTANCE_EPS)
        & nsx.greater(alphas, 0.0)
        & nsx.greater(ALPHA_CLAMP, alphas)
    )
    grad_alpha = nsx.multiply(grad_alpha, live, out=grad_alpha)

    # dα/do = e^{-q/2}; dα/du = α·q (since dq/du = -2q, dα/dq = -α/2).
    exp_term = nsx.asarray(exp_neg_half(nsx, quad))
    pids = projected.point_ids[seg.pair_splats][spans.span_pair]
    grad_color = np.zeros((num_points, 3))
    grad_opacity = np.zeros(num_points)
    grad_log_scale = np.zeros(num_points)
    np.add.at(grad_color, pids, span_grad_color)
    np.add.at(grad_opacity, pids, nsx.to_numpy(nsx.sum_axis0(grad_alpha * exp_term)))
    np.add.at(
        grad_log_scale,
        pids,
        nsx.to_numpy(nsx.sum_axis0(grad_alpha * alphas * nsx.asarray(quad))),
    )
    return RasterGradients(
        color=grad_color, opacity=grad_opacity, log_scale=grad_log_scale
    )


# ---------------------------------------------------------------------------
# Pooled batch kernels (forward / forward_batch fast path)
#
# These keep intermediates namespace-resident between kernels: the caller
# builds a BatchTables once per chunk and every scan below reads/writes
# workspace slots, so a batch of one view is bit-identical to the PR 1
# unbatched forward pass on the numpy namespace.
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class BatchTables:
    """Namespace-resident gather tables and span indexes of one batch chunk."""

    tile_size: int
    num_spans: int
    num_groups: int
    span_pair: Any  # (R,) int64 rows into the pair tables
    span_y: Any  # (R,) float64 pixel rows (exact integers)
    groups: SegmentArrays
    group_has_tile_last: Any  # (Q,) bool
    means: Any  # (K, 2)
    conics: Any  # (K, 3)
    opacities: Any  # (K,)
    colors: Any  # (K, 3)
    origin_x: Any  # (K,)
    depths: Any  # (K,)

    @staticmethod
    def build(
        nsx: ArrayNamespace,
        batch: SpanBatch,
        tile_size: int,
        pair_means: np.ndarray,
        pair_conics: np.ndarray,
        pair_opacities: np.ndarray,
        pair_colors: np.ndarray,
        pair_origin_x: np.ndarray,
        pair_depths: np.ndarray,
    ) -> "BatchTables":
        return BatchTables(
            tile_size=tile_size,
            num_spans=batch.num_spans,
            num_groups=batch.num_groups,
            span_pair=nsx.index(batch.span_pair),
            span_y=nsx.asarray(np.asarray(batch.span_y, dtype=np.float64)),
            groups=nsx.segments(batch.groups),
            group_has_tile_last=nsx.asarray(batch.group_has_tile_last),
            means=nsx.asarray(pair_means),
            conics=nsx.asarray(pair_conics),
            opacities=nsx.asarray(pair_opacities),
            colors=nsx.asarray(pair_colors),
            origin_x=nsx.asarray(pair_origin_x),
            depths=nsx.asarray(pair_depths),
        )


def batch_span_quad(nsx: ArrayNamespace, ws: Workspace, bt: BatchTables):
    """Mahalanobis quadratic form over a whole batch, ``(ts, R)``.

    Same evaluation order as :func:`span_quad` (every rewrite into a
    workspace buffer commutes bitwise), so a batch of one view is
    bit-identical to the unbatched forward pass.
    """
    sp = bt.span_pair
    ts, k, r = bt.tile_size, bt.means.shape[0], bt.num_spans
    lane_x = nsx.asarray(np.arange(ts, dtype=np.int64) + 0.5)

    dx_pair = ws.take("dx_pair", (ts, k))
    nsx.add(lane_x[:, None], bt.origin_x[None, :], out=dx_pair)
    dx_pair -= bt.means[None, :, 0]
    dx = ws.take("dx", (ts, r))
    nsx.take(dx_pair, sp, axis=1, out=dx)

    dy = ws.take("dy", (r,))
    nsx.add(bt.span_y, 0.5, out=dy)
    gather = ws.take("conic_gather", (r,))
    nsx.take(bt.means[:, 1], sp, axis=0, out=gather)
    dy -= gather

    quad = ws.take("quad", (ts, r))
    nsx.take(bt.conics[:, 1], sp, axis=0, out=gather)
    gather *= 2.0
    nsx.multiply(gather[None, :], dx, out=quad)
    quad = nsx.multiply(quad, dy[None, :], out=quad)
    dx = nsx.multiply(dx, dx, out=dx)
    nsx.take(bt.conics[:, 0], sp, axis=0, out=gather)
    dx = nsx.multiply(dx, gather[None, :], out=dx)
    quad = nsx.add(quad, dx, out=quad)
    nsx.take(bt.conics[:, 2], sp, axis=0, out=gather)
    dy = nsx.multiply(dy, dy, out=dy)
    gather = nsx.multiply(gather, dy, out=gather)
    quad = nsx.add(quad, gather[None, :], out=quad)
    return nsx.maximum(quad, 0.0, out=quad)


def batch_span_alphas(nsx: ArrayNamespace, ws: Workspace, bt: BatchTables, quad):
    """Alphas over a whole batch (cf. :func:`span_alphas`), ``quad`` kept."""
    alphas = ws.take("alphas", quad.shape)
    nsx.multiply(quad, -0.5, out=alphas)
    nsx.exp(alphas, out=alphas)
    alphas = nsx.multiply(alphas, bt.opacities[bt.span_pair][None, :], out=alphas)
    keep = ws.take("keep", alphas.shape, nsx.bool_)
    nsx.greater_equal(alphas, ALPHA_EPS, out=keep)
    nsx.minimum(alphas, ALPHA_CLAMP, out=alphas)
    alphas = nsx.multiply(alphas, keep, out=alphas)
    return alphas


def batch_weights_final(nsx: ArrayNamespace, ws: Workspace, bt: BatchTables, alphas):
    """Transmittance scan over a whole batch: ``(weights, final)``.

    Inlines :func:`weights_final` / :func:`segment_transmittance_exclusive`
    with workspace buffers, in the exact same operation order.  Batch groups
    are never empty (each view contributes only its non-empty ``(tile,
    row)`` runs), so the scan needs no empty-segment widening.
    """
    seg = bt.groups

    logt = ws.take("logt", alphas.shape)
    nsx.negative(alphas, out=logt)
    nsx.log1p(logt, out=logt)
    totals = ws.take("totals", alphas.shape[:-1] + (seg.num_segments,))
    nsx.segment_sum(logt, seg, out=totals)
    if seg.num_segments > 1:
        logt[..., seg.starts[1:]] -= totals[..., :-1]
    logt = nsx.cumsum_last(logt, out=logt)
    excl = ws.take("excl", alphas.shape)
    excl[..., 0] = 0.0
    excl[..., 1:] = logt[..., :-1]
    excl[..., seg.starts] = 0.0
    nsx.minimum(excl, 0.0, out=excl)
    trans = nsx.exp(excl, out=excl)

    trans_last = nsx.copy(trans[:, seg.last])
    tau = trans_last * (1.0 - alphas[:, seg.last])
    gate = nsx.where(bt.group_has_tile_last[None, :], trans_last, tau)
    final = nsx.where(nsx.greater_equal(gate, TRANSMITTANCE_EPS), tau, 0.0)

    active = ws.take("active", alphas.shape, nsx.bool_)
    nsx.greater_equal(trans, TRANSMITTANCE_EPS, out=active)
    weights = nsx.multiply(trans, alphas, out=trans)
    weights = nsx.multiply(weights, active, out=weights)
    return weights, final


def batch_per_pixel_permutation(nsx: ArrayNamespace, bt: BatchTables, quad):
    """StopThePop ordering across a batch (cf. :func:`per_pixel_permutation`).

    The stable depth-then-group double sort permutes only within groups, and
    group ids are strictly increasing across views, so each view's pixels get
    exactly the ordering the unbatched path would produce.
    """
    base = bt.depths[bt.span_pair]
    depths = base[None, :] * (1.0 + 0.01 * quad)
    by_depth = nsx.argsort_stable_last(depths)
    groups_sorted = bt.groups.of_item[by_depth]
    by_group = nsx.argsort_stable_last(groups_sorted)
    return nsx.take_along_last(by_depth, by_group)


def batch_composite(
    nsx: ArrayNamespace,
    ws: Workspace,
    bt: BatchTables,
    weights,
    final,
    background: np.ndarray,
    perm=None,
) -> np.ndarray:
    """One compositing reduction over the whole batch → host ``(Q, ts, 3)``."""
    ts, r, q = bt.tile_size, bt.num_spans, bt.num_groups
    span_colors = ws.take("span_colors", (r, 3))
    nsx.take(bt.colors, bt.span_pair, axis=0, out=span_colors)
    scratch = ws.take("scratch", weights.shape)
    pixel = ws.take("pixel", (ts, q))
    pixels = ws.take("pixels", (q, ts, 3))
    for c in range(3):
        channel = span_colors[:, c]
        slot = channel[None, :] if perm is None else channel[perm]
        nsx.multiply(weights, slot, out=scratch)
        nsx.segment_sum(scratch, bt.groups, out=pixel)  # (ts, Q)
        pixel = nsx.add(pixel, final * background[c], out=pixel)
        pixels[:, :, c] = pixel.T
    return nsx.to_numpy(pixels)


def batch_dominated_winners(
    nsx: ArrayNamespace,
    ws: Workspace,
    bt: BatchTables,
    weights,
    lane_ok: np.ndarray,
    perm=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Val_i winner selection over a whole batch → host ``(winners, has_any)``.

    ``winners`` is the ``(ts, Q)`` span column dominating each pixel (or
    ``R`` where no span contributes), ``has_any`` the ``(ts, Q)`` mask of
    pixels with a positive, on-image dominating weight.  The caller maps
    winners through the batch pair tables and accumulates per view.
    """
    ts, r, q = bt.tile_size, bt.num_spans, bt.num_groups
    seg = bt.groups
    wmax = ws.take("wmax", (ts, q))
    nsx.segment_max(weights, seg, out=wmax)
    has_any = nsx.to_numpy(nsx.greater(wmax, 0.0)) & lane_ok.T
    # cand = where(weights == per-group max and > 0, span column, R): the
    # winners minimum then resolves ties to the earliest span in depth
    # order, exactly like the unbatched path.
    is_max = ws.take("is_max", weights.shape, nsx.bool_)
    gather = ws.take("wmax_gather", weights.shape)
    nsx.take(wmax, seg.of_item, axis=weights.ndim - 1, out=gather)
    nsx.equal(weights, gather, out=is_max)
    positive = ws.take("positive", weights.shape, nsx.bool_)
    nsx.greater(weights, 0.0, out=positive)
    is_max &= positive
    cand = ws.take("cand", weights.shape, nsx.int64)
    nsx.fill(cand, r)
    orig_cols = (
        nsx.index(np.arange(r, dtype=np.int64))[None, :] if perm is None else perm
    )
    nsx.masked_assign(cand, orig_cols, is_max)
    winners = ws.take("winners", (ts, q), nsx.int64)
    nsx.segment_min(cand, seg, out=winners)
    return nsx.to_numpy(winners), has_any


def batch_scan_bytes_per_span(tile_size: int = 16) -> int:
    """Peak scan working-set bytes one span contributes to a batch chunk.

    The residency unit behind ``span_chunk_budget`` and the tuner's cost
    model (:mod:`repro.tune.model`): a batched forward keeps about five
    ``(tile_size, R)`` float64 lane matrices live across one pass over the
    spans (``quad``, ``alphas``, the log-transmittance scan buffer, its
    exclusive shift, and the compositing scratch), two bool lane matrices
    (the intersect-test ``keep`` and the early-termination ``active``
    gates), plus O(1)-per-span scalars (span→pair index, pixel row, the
    gathered colour row and group bookkeeping).  At the default 16-px
    tiles this is ~0.8 KB per span — the measured 8k-span default budget
    of PR 2 puts one chunk at ~6.5 MB, squarely inside the 12–32 MB LLCs
    it was tuned on.

    An estimate, not an audit: workspace slots persist between calls, so
    the figure counts bytes *touched per scan pass* (what residency is
    about), not allocated bytes.
    """
    f64_lane_matrices = 5
    bool_lane_matrices = 2
    per_span_scalars = 64
    return (
        f64_lane_matrices * tile_size * 8
        + bool_lane_matrices * tile_size
        + per_span_scalars
    )
