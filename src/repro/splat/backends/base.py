"""The rasterization backend protocol.

A backend implements the pixel-producing operations of the render engine —
standard forward (single and batched), analytic backward, foveated frame
(single and batched), and multi-model (MMFR) frame — over a projected
splat set and its depth-sorted tile assignment.  Everything around those
operations (stage prefix, stats assembly, clipping, region maps) lives in
the callers, so backends stay interchangeable: ``reference`` is the
per-tile loop kept for regression, ``packed`` the vectorized segment
engine.  The batched entry points are optional on custom backends — the
dispatchers consult the registry's capability flags and fall back to
per-frame loops (see ``supports_forward_batch`` /
``supports_foveated_batch`` in the package root).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

import numpy as np

if TYPE_CHECKING:
    from ..projection import ProjectedGaussians
    from ..rasterizer import RasterGradients
    from ..tiling import TileAssignment
    from .segments import RowSpans


@dataclasses.dataclass
class FoveatedFrame:
    """Raw output of one foveated / multi-model frame (pre-clipping).

    ``level_spans`` surfaces the per-level *filtered* row-span lists the
    primary pass actually rasterized (level ``t`` → spans in level-``t``
    tiles whose pair passes the quality bound) so the accelerator model can
    be driven from the real foveated workload.  Span-based engines fill it;
    backends without a span representation (``reference``) leave ``None``.
    """

    image: np.ndarray  # (H, W, 3), not yet clipped to [0, 1]
    sort_intersections_per_tile: np.ndarray  # (T,) int64
    raster_intersections_per_tile: np.ndarray  # (T,) float64
    blend_pixels: int
    level_spans: "dict[int, RowSpans] | None" = None


@runtime_checkable
class RasterBackend(Protocol):
    """Interchangeable rasterization engine."""

    name: str

    def forward(
        self,
        projected: "ProjectedGaussians",
        assignment: "TileAssignment",
        num_points: int,
        background: np.ndarray,
        collect_stats: bool,
        per_pixel_sort: bool,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Rasterize one frame.

        Returns the (unclipped) ``(H, W, 3)`` image and, when
        ``collect_stats``, the per-point dominated-pixel counts ``(N,)``.
        """
        ...

    def forward_batch(
        self,
        views: list[tuple["ProjectedGaussians", "TileAssignment"]],
        num_points: int,
        background: np.ndarray,
        collect_stats: bool,
        per_pixel_sort: bool,
    ) -> list[tuple[np.ndarray, np.ndarray | None]]:
        """Rasterize several views of one model, one result tuple per view.

        Views share a tile size but may differ in frame dimensions.  The
        ``packed`` engine concatenates the views' span lists into a single
        batch-segmented scan; ``reference`` falls back to a per-view loop.
        Dispatchers treat this method as optional on custom backends and
        loop over :meth:`forward` when it is missing.
        """
        ...

    def backward(
        self,
        projected: "ProjectedGaussians",
        assignment: "TileAssignment",
        num_points: int,
        grad_image: np.ndarray,
        background: np.ndarray,
    ) -> "RasterGradients":
        """Propagate ``dL/dimage`` to per-point colour/opacity/log-scale."""
        ...

    def foveated_frame(
        self,
        projected: "ProjectedGaussians",
        assignment: "TileAssignment",
        maps: Any,
        bounds: np.ndarray,
        level_opacity: dict[int, np.ndarray],
        level_delta: dict[int, np.ndarray],
        background: np.ndarray,
    ) -> FoveatedFrame:
        """Render one foveated frame from a shared (subset-filtered) view.

        ``maps`` is a :class:`repro.foveation.regions.RegionMaps`;
        ``bounds`` the per-point quality bounds; ``level_opacity`` /
        ``level_delta`` the per-level multi-versioned parameter tables.
        """
        ...

    def foveated_frame_batch(
        self,
        views: list[tuple["ProjectedGaussians", "TileAssignment"]],
        maps_list: list[Any],
        bounds: np.ndarray,
        level_opacity: dict[int, np.ndarray],
        level_delta: dict[int, np.ndarray],
        background: np.ndarray,
    ) -> list["FoveatedFrame"]:
        """Render several foveated frames of one model, one result per frame.

        ``views`` holds each frame's shared view prefix (gaze samples of one
        pose typically repeat the same prepared view object), ``maps_list``
        the per-frame :class:`~repro.foveation.regions.RegionMaps`; the
        hierarchy tables (``bounds`` / ``level_opacity`` / ``level_delta``)
        are per-model and shared by every frame.  The ``packed`` engine
        concatenates each frame's level-filtered span subsets — primary
        composite plus the blend-band second-level pass — as extra batch
        segments of a single segmented scan; ``reference`` falls back to a
        per-frame loop.  Dispatchers treat this method as optional on custom
        backends and loop over :meth:`foveated_frame` when it is missing.
        """
        ...

    def multi_model_frame(
        self,
        views: list[tuple["ProjectedGaussians", "TileAssignment"]],
        maps: Any,
        background: np.ndarray,
    ) -> FoveatedFrame:
        """Render one MMFR frame from independently projected level models."""
        ...
