"""The rasterization backend protocol.

A backend implements the four pixel-producing operations of the render
engine — standard forward, analytic backward, foveated frame, and
multi-model (MMFR) frame — over a projected splat set and its depth-sorted
tile assignment.  Everything around those operations (stage prefix, stats
assembly, clipping, region maps) lives in the callers, so backends stay
interchangeable: ``reference`` is the per-tile loop kept for regression,
``packed`` the vectorized segment engine.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

import numpy as np

if TYPE_CHECKING:
    from ..projection import ProjectedGaussians
    from ..rasterizer import RasterGradients
    from ..tiling import TileAssignment


@dataclasses.dataclass
class FoveatedFrame:
    """Raw output of one foveated / multi-model frame (pre-clipping)."""

    image: np.ndarray  # (H, W, 3), not yet clipped to [0, 1]
    sort_intersections_per_tile: np.ndarray  # (T,) int64
    raster_intersections_per_tile: np.ndarray  # (T,) float64
    blend_pixels: int


@runtime_checkable
class RasterBackend(Protocol):
    """Interchangeable rasterization engine."""

    name: str

    def forward(
        self,
        projected: "ProjectedGaussians",
        assignment: "TileAssignment",
        num_points: int,
        background: np.ndarray,
        collect_stats: bool,
        per_pixel_sort: bool,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Rasterize one frame.

        Returns the (unclipped) ``(H, W, 3)`` image and, when
        ``collect_stats``, the per-point dominated-pixel counts ``(N,)``.
        """
        ...

    def forward_batch(
        self,
        views: list[tuple["ProjectedGaussians", "TileAssignment"]],
        num_points: int,
        background: np.ndarray,
        collect_stats: bool,
        per_pixel_sort: bool,
    ) -> list[tuple[np.ndarray, np.ndarray | None]]:
        """Rasterize several views of one model, one result tuple per view.

        Views share a tile size but may differ in frame dimensions.  The
        ``packed`` engine concatenates the views' span lists into a single
        batch-segmented scan; ``reference`` falls back to a per-view loop.
        Dispatchers treat this method as optional on custom backends and
        loop over :meth:`forward` when it is missing.
        """
        ...

    def backward(
        self,
        projected: "ProjectedGaussians",
        assignment: "TileAssignment",
        num_points: int,
        grad_image: np.ndarray,
        background: np.ndarray,
    ) -> "RasterGradients":
        """Propagate ``dL/dimage`` to per-point colour/opacity/log-scale."""
        ...

    def foveated_frame(
        self,
        projected: "ProjectedGaussians",
        assignment: "TileAssignment",
        maps: Any,
        bounds: np.ndarray,
        level_opacity: dict[int, np.ndarray],
        level_delta: dict[int, np.ndarray],
        background: np.ndarray,
    ) -> FoveatedFrame:
        """Render one foveated frame from a shared (subset-filtered) view.

        ``maps`` is a :class:`repro.foveation.regions.RegionMaps`;
        ``bounds`` the per-point quality bounds; ``level_opacity`` /
        ``level_delta`` the per-level multi-versioned parameter tables.
        """
        ...

    def multi_model_frame(
        self,
        views: list[tuple["ProjectedGaussians", "TileAssignment"]],
        maps: Any,
        background: np.ndarray,
    ) -> FoveatedFrame:
        """Render one MMFR frame from independently projected level models."""
        ...
