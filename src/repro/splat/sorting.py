"""Sorting stage: depth-order the splats of each tile.

Standard 3DGS sorts splats *per tile* by the depth of the Gaussian centre;
because a splat can span several tiles whose pixels see it at slightly
different depths, this global per-tile order can "pop" as the camera moves.
StopThePop fixes that with per-pixel ordering; we expose that variant too
(``per_pixel=True``) and charge its extra cost in the performance model.
"""

from __future__ import annotations

import numpy as np

from .projection import ProjectedGaussians
from .tiling import TileAssignment


def sort_tile_splats(projected: ProjectedGaussians, assignment: TileAssignment) -> TileAssignment:
    """Return a new assignment whose per-tile splat lists are depth sorted."""
    depths = projected.depths
    offsets = assignment.tile_offsets
    pair_splats = assignment.pair_splats.copy()

    # Sort by (tile, depth) in one pass: tiles are already contiguous, so a
    # stable argsort of depth keyed within tile blocks suffices.
    key = assignment.pair_tiles.astype(np.float64) * (depths.max(initial=0.0) + 1.0)
    key = key + depths[pair_splats] if pair_splats.size else key
    order = np.argsort(key, kind="stable")
    pair_splats = assignment.pair_splats[order]
    pair_tiles = assignment.pair_tiles[order]

    return TileAssignment(
        grid=assignment.grid,
        pair_tiles=pair_tiles,
        pair_splats=pair_splats,
        tile_offsets=offsets,
    )


def per_pixel_depths(
    projected: ProjectedGaussians,
    splat_indices: np.ndarray,
    pixel_centers: np.ndarray,
) -> np.ndarray:
    """StopThePop-style per-pixel depth estimate, ``(S, P)``.

    Approximates the depth at which each pixel's ray meets each splat by the
    splat-centre depth adjusted along the screen-space depth gradient — enough
    to produce per-pixel order differences for overlapping splats, which is
    the behaviour StopThePop exists to handle.
    """
    means = projected.means2d[splat_indices]  # (S, 2)
    base = projected.depths[splat_indices]  # (S,)
    conics = projected.conics[splat_indices]  # (S, 3)

    delta = pixel_centers[None, :, :] - means[:, None, :]  # (S, P, 2)
    # Depth varies across a splat roughly proportionally to the Mahalanobis
    # offset; scale by a small fraction of the centre depth.
    quad = (
        conics[:, None, 0] * delta[:, :, 0] ** 2
        + 2.0 * conics[:, None, 1] * delta[:, :, 0] * delta[:, :, 1]
        + conics[:, None, 2] * delta[:, :, 1] ** 2
    )
    return base[:, None] * (1.0 + 0.01 * quad)


def sort_cost_ops(intersections_per_tile: np.ndarray, per_pixel: bool = False) -> float:
    """Abstract operation count of the sorting stage, used by perf models.

    Per-tile bitonic/merge sorting costs ``n log2(n)`` compare ops; the
    StopThePop hierarchical per-pixel resorting roughly quadruples the work.
    """
    n = np.asarray(intersections_per_tile, dtype=np.float64)
    n = n[n > 1]
    ops = float(np.sum(n * np.log2(n)))
    return ops * (4.0 if per_pixel else 1.0)
