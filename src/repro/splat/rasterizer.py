"""Rasterization stage: tile-based alpha compositing (Eqn 1 of the paper).

For every tile, the depth-sorted splats are composited front-to-back:

    p = Σ_i T_i α_i c_i,   T_i = Π_{j<i} (1 − α_j)

with early termination once transmittance drops below a threshold.

This module additionally produces the two per-point statistics the paper's
Computational Efficiency metric (Sec 3.2) is built on:

- ``dominated_pixels`` (Val_i): for every pixel, the splat with the highest
  numerical contribution ``T_i α_i`` dominates it; Val_i counts dominated
  pixels per point.
- tile usage (Comp_i) comes from the tiling stage
  (:meth:`TileAssignment.tiles_per_splat`).

It also implements the analytic backward pass used for re-training after
pruning: gradients of an image-space loss w.r.t. per-point colour, opacity,
and an isotropic log-scale offset (the exact knobs scale decay and selective
multi-versioning train).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .projection import ALPHA_EPS, ProjectedGaussians
from .sorting import per_pixel_depths
from .tiling import TileAssignment, TileGrid

# Transmittance threshold for early termination (matches 3DGS).
TRANSMITTANCE_EPS = 1e-4
# Per-splat alpha is clamped below this to keep (1 - alpha) > 0.
ALPHA_CLAMP = 0.999


@dataclasses.dataclass
class RenderStats:
    """Aggregate statistics of one rendered frame."""

    intersections_per_tile: np.ndarray  # (T,)
    tiles_per_point: np.ndarray  # (N,) Comp_i (bincount over model points)
    dominated_pixels: np.ndarray  # (N,) Val_i
    num_projected: int  # splats that survived culling
    num_points: int  # model size

    @property
    def total_intersections(self) -> int:
        return int(self.intersections_per_tile.sum())

    @property
    def mean_intersections_per_tile(self) -> float:
        if self.intersections_per_tile.size == 0:
            return 0.0
        return float(self.intersections_per_tile.mean())


def tile_pixel_centers(grid: TileGrid, tile_id: int) -> np.ndarray:
    """Pixel-centre coordinates of a tile, ``(P, 2)`` (row-major order)."""
    x0, y0, x1, y1 = grid.tile_pixel_bounds(tile_id)
    xs = np.arange(x0, x1) + 0.5
    ys = np.arange(y0, y1) + 0.5
    grid_x, grid_y = np.meshgrid(xs, ys)
    return np.stack([grid_x.ravel(), grid_y.ravel()], axis=1)


def splat_alphas(
    projected: ProjectedGaussians,
    splat_indices: np.ndarray,
    pixel_centers: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-(splat, pixel) alpha matrix ``(S, P)`` and the quadratic form.

    Alphas below ``ALPHA_EPS`` are zeroed (the rasterizer's intersect test)
    and clamped at ``ALPHA_CLAMP`` above.
    """
    means = projected.means2d[splat_indices]
    conics = projected.conics[splat_indices]
    opacities = projected.opacities[splat_indices]

    delta = pixel_centers[None, :, :] - means[:, None, :]  # (S, P, 2)
    quad = (
        conics[:, None, 0] * delta[:, :, 0] ** 2
        + 2.0 * conics[:, None, 1] * delta[:, :, 0] * delta[:, :, 1]
        + conics[:, None, 2] * delta[:, :, 1] ** 2
    )
    quad = np.maximum(quad, 0.0)
    alphas = opacities[:, None] * np.exp(-0.5 * quad)
    alphas = np.where(alphas < ALPHA_EPS, 0.0, np.minimum(alphas, ALPHA_CLAMP))
    return alphas, quad


def composite(
    alphas: np.ndarray,
    colors: np.ndarray,
    background: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Front-to-back compositing of an ``(S, P)`` alpha matrix.

    Returns ``(pixel_colors (P, 3), weights (S, P), final_transmittance (P,))``
    where ``weights[i, p] = T_i α_i`` after early termination.
    """
    s, p = alphas.shape
    if s == 0:
        bg = np.broadcast_to(background, (p, 3)).copy()
        return bg, np.zeros((0, p)), np.ones(p)

    one_minus = 1.0 - alphas
    trans_incl = np.cumprod(one_minus, axis=0)
    trans_excl = np.vstack([np.ones((1, p)), trans_incl[:-1]])
    active = trans_excl >= TRANSMITTANCE_EPS
    weights = trans_excl * alphas * active

    final_trans = np.where(
        active[-1], trans_incl[-1], np.maximum(trans_excl[-1] * one_minus[-1], 0.0)
    )
    # Early-terminated pixels keep the transmittance they had when they
    # stopped, which is below the threshold — visually negligible; treat the
    # leftover as zero contribution to the background.
    final_trans = np.where(active[-1], final_trans, 0.0)

    pixel_colors = weights.T @ colors + final_trans[:, None] * background[None, :]
    return pixel_colors, weights, final_trans


def _per_pixel_reorder(
    projected: ProjectedGaussians,
    splat_indices: np.ndarray,
    pixel_centers: np.ndarray,
    alphas: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """StopThePop variant: per-pixel depth order for the alpha matrix.

    Returns the reordered alphas and the per-pixel permutation ``(S, P)``.
    """
    depths = per_pixel_depths(projected, splat_indices, pixel_centers)
    order = np.argsort(depths, axis=0, kind="stable")
    return np.take_along_axis(alphas, order, axis=0), order


def rasterize(
    projected: ProjectedGaussians,
    assignment: TileAssignment,
    num_points: int,
    background: np.ndarray | None = None,
    collect_stats: bool = True,
    per_pixel_sort: bool = False,
) -> tuple[np.ndarray, RenderStats | None]:
    """Rasterize all tiles into an ``(H, W, 3)`` image.

    ``assignment`` must already be depth-sorted (see
    :func:`repro.splat.sorting.sort_tile_splats`).
    """
    grid = assignment.grid
    if background is None:
        background = np.zeros(3)
    background = np.asarray(background, dtype=np.float64)

    image = np.empty((grid.height, grid.width, 3), dtype=np.float64)
    dominated = np.zeros(num_points, dtype=np.int64)

    for tile_id in range(grid.num_tiles):
        splat_idx = assignment.splats_in_tile(tile_id)
        x0, y0, x1, y1 = grid.tile_pixel_bounds(tile_id)
        pixels = tile_pixel_centers(grid, tile_id)

        alphas, _ = splat_alphas(projected, splat_idx, pixels)
        order = None
        if per_pixel_sort and splat_idx.size:
            alphas, order = _per_pixel_reorder(projected, splat_idx, pixels, alphas)

        colors = projected.colors[splat_idx]
        if order is not None:
            # Colours must follow the per-pixel permutation: composite each
            # pixel column with its own ordering.
            pixel_colors = np.empty((pixels.shape[0], 3))
            weights_max = np.zeros((splat_idx.size, pixels.shape[0]))
            for p in range(pixels.shape[0]):
                col_alphas = alphas[:, p : p + 1]
                col_colors = colors[order[:, p]]
                pc, w, _ = composite(col_alphas, col_colors, background)
                pixel_colors[p] = pc[0]
                weights_max[order[:, p], p] = w[:, 0]
            weights = weights_max
        else:
            pixel_colors, weights, _ = composite(alphas, colors, background)

        image[y0:y1, x0:x1] = pixel_colors.reshape(y1 - y0, x1 - x0, 3)

        if collect_stats and splat_idx.size:
            winners = np.argmax(weights, axis=0)
            has_any = weights.max(axis=0) > 0.0
            winner_points = projected.point_ids[splat_idx[winners[has_any]]]
            np.add.at(dominated, winner_points, 1)

    stats = None
    if collect_stats:
        tiles_per_splat = assignment.tiles_per_splat(projected.num_visible)
        tiles_per_point = np.zeros(num_points, dtype=np.int64)
        np.add.at(tiles_per_point, projected.point_ids, tiles_per_splat)
        stats = RenderStats(
            intersections_per_tile=assignment.intersections_per_tile(),
            tiles_per_point=tiles_per_point,
            dominated_pixels=dominated,
            num_projected=projected.num_visible,
            num_points=num_points,
        )
    return np.clip(image, 0.0, 1.0), stats


@dataclasses.dataclass
class RasterGradients:
    """Gradients of an image loss w.r.t. per-point render parameters.

    All arrays are indexed by model point id (length N).  ``log_scale`` is
    the gradient w.r.t. an isotropic log-scale offset ``u`` applied to the
    point's 3D covariance (``Σ → e^{2u} Σ``), the knob scale decay trains.
    """

    color: np.ndarray  # (N, 3)
    opacity: np.ndarray  # (N,)
    log_scale: np.ndarray  # (N,)


def rasterize_backward(
    projected: ProjectedGaussians,
    assignment: TileAssignment,
    num_points: int,
    grad_image: np.ndarray,
    background: np.ndarray | None = None,
) -> RasterGradients:
    """Backward pass: propagate ``dL/dimage`` to per-point parameters.

    Derivation (per pixel, sorted splats ``i``):

        p = Σ_i T_i α_i c_i + T_N · bg
        dL/dc_i = T_i α_i · g
        dL/dα_i = T_i (g·c_i) − S_i / (1 − α_i)

    where ``g = dL/dp`` and ``S_i = Σ_{j>i} T_j α_j (g·c_j) + T_N (g·bg)`` is
    the suffix contribution, computed with a reverse cumulative sum.  The
    alpha then chains into opacity (``α = o e^{−q/2}``) and into the isotropic
    log-scale offset (``dq/du = −2q``, ignoring the constant screen dilation).
    """
    grid = assignment.grid
    if background is None:
        background = np.zeros(3)
    background = np.asarray(background, dtype=np.float64)

    grad_color = np.zeros((num_points, 3))
    grad_opacity = np.zeros(num_points)
    grad_log_scale = np.zeros(num_points)

    for tile_id in range(grid.num_tiles):
        splat_idx = assignment.splats_in_tile(tile_id)
        if splat_idx.size == 0:
            continue
        x0, y0, x1, y1 = grid.tile_pixel_bounds(tile_id)
        pixels = tile_pixel_centers(grid, tile_id)
        g = grad_image[y0:y1, x0:x1].reshape(-1, 3)  # (P, 3)

        alphas, quad = splat_alphas(projected, splat_idx, pixels)
        one_minus = 1.0 - alphas
        trans_incl = np.cumprod(one_minus, axis=0)
        trans_excl = np.vstack([np.ones((1, pixels.shape[0])), trans_incl[:-1]])
        active = trans_excl >= TRANSMITTANCE_EPS
        weights = trans_excl * alphas * active
        final_trans = np.where(active[-1], trans_incl[-1], 0.0)

        colors = projected.colors[splat_idx]  # (S, 3)
        gc = colors @ g.T  # (S, P): g·c_i per pixel
        contrib = weights * gc  # (S, P): T_i α_i (g·c_i)

        # Suffix sums S_i = Σ_{j>i} contrib_j + T_N (g·bg).
        bg_term = final_trans * (g @ background)  # (P,)
        suffix = np.cumsum(contrib[::-1], axis=0)[::-1]
        suffix_after = np.vstack([suffix[1:], np.zeros((1, pixels.shape[0]))])
        suffix_after = suffix_after + bg_term[None, :]

        grad_alpha = trans_excl * gc - suffix_after / np.maximum(one_minus, 1e-6)
        grad_alpha = grad_alpha * active * (alphas > 0.0) * (alphas < ALPHA_CLAMP)

        # dα/do = e^{-q/2}; dα/du = α·q (since dq/du = -2q, dα/dq = -α/2).
        exp_term = np.exp(-0.5 * quad)
        pids = projected.point_ids[splat_idx]
        np.add.at(grad_color, pids, weights @ g)
        np.add.at(grad_opacity, pids, (grad_alpha * exp_term).sum(axis=1))
        np.add.at(grad_log_scale, pids, (grad_alpha * alphas * quad).sum(axis=1))

    return RasterGradients(color=grad_color, opacity=grad_opacity, log_scale=grad_log_scale)
