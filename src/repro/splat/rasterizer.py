"""Rasterization stage: tile-based alpha compositing (Eqn 1 of the paper).

For every tile, the depth-sorted splats are composited front-to-back:

    p = Σ_i T_i α_i c_i,   T_i = Π_{j<i} (1 − α_j)

with early termination once transmittance drops below a threshold.

This module additionally produces the two per-point statistics the paper's
Computational Efficiency metric (Sec 3.2) is built on:

- ``dominated_pixels`` (Val_i): for every pixel, the splat with the highest
  numerical contribution ``T_i α_i`` dominates it; Val_i counts dominated
  pixels per point.
- tile usage (Comp_i) comes from the tiling stage
  (:meth:`TileAssignment.tiles_per_splat`).

It also implements the analytic backward pass used for re-training after
pruning: gradients of an image-space loss w.r.t. per-point colour, opacity,
and an isotropic log-scale offset (the exact knobs scale decay and selective
multi-versioning train).

The pixel-producing loops themselves live in pluggable engines under
:mod:`repro.splat.backends` — ``packed`` (whole-frame vectorized segment
operations, the default) and ``reference`` (the per-tile loop, kept as the
regression oracle).  :func:`rasterize` and :func:`rasterize_backward` are
thin dispatchers; this module keeps the shared compositing math both
backends (and their tests) build on.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .projection import ALPHA_EPS, ProjectedGaussians
from .sorting import per_pixel_depths
from .tiling import TileAssignment, TileGrid

# Transmittance threshold for early termination (matches 3DGS).
TRANSMITTANCE_EPS = 1e-4
# Per-splat alpha is clamped below this to keep (1 - alpha) > 0.
ALPHA_CLAMP = 0.999


@dataclasses.dataclass
class RenderStats:
    """Aggregate statistics of one rendered frame."""

    intersections_per_tile: np.ndarray  # (T,)
    tiles_per_point: np.ndarray  # (N,) Comp_i (bincount over model points)
    dominated_pixels: np.ndarray  # (N,) Val_i
    num_projected: int  # splats that survived culling
    num_points: int  # model size

    @property
    def total_intersections(self) -> int:
        return int(self.intersections_per_tile.sum())

    @property
    def mean_intersections_per_tile(self) -> float:
        if self.intersections_per_tile.size == 0:
            return 0.0
        return float(self.intersections_per_tile.mean())


def tile_pixel_centers(grid: TileGrid, tile_id: int) -> np.ndarray:
    """Pixel-centre coordinates of a tile, ``(P, 2)`` (row-major order)."""
    x0, y0, x1, y1 = grid.tile_pixel_bounds(tile_id)
    xs = np.arange(x0, x1) + 0.5
    ys = np.arange(y0, y1) + 0.5
    grid_x, grid_y = np.meshgrid(xs, ys)
    return np.stack([grid_x.ravel(), grid_y.ravel()], axis=1)


def splat_alphas(
    projected: ProjectedGaussians,
    splat_indices: np.ndarray,
    pixel_centers: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-(splat, pixel) alpha matrix ``(S, P)`` and the quadratic form.

    Alphas below ``ALPHA_EPS`` are zeroed (the rasterizer's intersect test)
    and clamped at ``ALPHA_CLAMP`` above.
    """
    means = projected.means2d[splat_indices]
    conics = projected.conics[splat_indices]
    opacities = projected.opacities[splat_indices]

    delta = pixel_centers[None, :, :] - means[:, None, :]  # (S, P, 2)
    quad = (
        conics[:, None, 0] * delta[:, :, 0] ** 2
        + 2.0 * conics[:, None, 1] * delta[:, :, 0] * delta[:, :, 1]
        + conics[:, None, 2] * delta[:, :, 1] ** 2
    )
    quad = np.maximum(quad, 0.0)
    alphas = opacities[:, None] * np.exp(-0.5 * quad)
    alphas = np.where(alphas < ALPHA_EPS, 0.0, np.minimum(alphas, ALPHA_CLAMP))
    return alphas, quad


def _transmittance_weights(alphas: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Front-to-back weights ``T_i α_i`` (after early termination) and the
    per-pixel final transmittance of an ``(S, P)`` alpha matrix."""
    s, p = alphas.shape
    one_minus = 1.0 - alphas
    trans_incl = np.cumprod(one_minus, axis=0)
    trans_excl = np.vstack([np.ones((1, p)), trans_incl[:-1]])
    active = trans_excl >= TRANSMITTANCE_EPS
    weights = trans_excl * alphas * active
    # Early-terminated pixels keep transmittance below the threshold —
    # visually negligible; treat the leftover as zero contribution to the
    # background.
    final_trans = np.where(active[-1], trans_incl[-1], 0.0)
    return weights, final_trans


def composite(
    alphas: np.ndarray,
    colors: np.ndarray,
    background: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Front-to-back compositing of an ``(S, P)`` alpha matrix.

    Returns ``(pixel_colors (P, 3), weights (S, P), final_transmittance (P,))``
    where ``weights[i, p] = T_i α_i`` after early termination.
    """
    s, p = alphas.shape
    if s == 0:
        bg = np.broadcast_to(background, (p, 3)).copy()
        return bg, np.zeros((0, p)), np.ones(p)

    weights, final_trans = _transmittance_weights(alphas)
    pixel_colors = weights.T @ colors + final_trans[:, None] * background[None, :]
    return pixel_colors, weights, final_trans


def composite_per_pixel(
    alphas: np.ndarray,
    colors: np.ndarray,
    background: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Like :func:`composite`, but every pixel has its own colour ordering.

    ``colors`` is ``(S, P, 3)``: the colour composited at slot ``(i, p)``.
    Used by the per-pixel-sorted (StopThePop) path, where the alpha matrix is
    depth-ordered per pixel column and the colours follow each column's
    permutation.
    """
    s, p = alphas.shape
    if s == 0:
        bg = np.broadcast_to(background, (p, 3)).copy()
        return bg, np.zeros((0, p)), np.ones(p)

    weights, final_trans = _transmittance_weights(alphas)
    pixel_colors = (weights[:, :, None] * colors).sum(axis=0)
    pixel_colors += final_trans[:, None] * background[None, :]
    return pixel_colors, weights, final_trans


def _per_pixel_reorder(
    projected: ProjectedGaussians,
    splat_indices: np.ndarray,
    pixel_centers: np.ndarray,
    alphas: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """StopThePop variant: per-pixel depth order for the alpha matrix.

    Returns the reordered alphas and the per-pixel permutation ``(S, P)``.
    """
    depths = per_pixel_depths(projected, splat_indices, pixel_centers)
    order = np.argsort(depths, axis=0, kind="stable")
    return np.take_along_axis(alphas, order, axis=0), order


def rasterize(
    projected: ProjectedGaussians,
    assignment: TileAssignment,
    num_points: int,
    background: np.ndarray | None = None,
    collect_stats: bool = True,
    per_pixel_sort: bool = False,
    backend: str | None = None,
) -> tuple[np.ndarray, RenderStats | None]:
    """Rasterize all tiles into an ``(H, W, 3)`` image.

    ``assignment`` must already be depth-sorted (see
    :func:`repro.splat.sorting.sort_tile_splats`).  ``backend`` selects the
    rasterization engine (see :mod:`repro.splat.backends`); ``None`` uses
    the process default (``REPRO_BACKEND`` or ``packed``).
    """
    from .backends import get_backend

    if background is None:
        background = np.zeros(3)
    background = np.asarray(background, dtype=np.float64)

    engine = get_backend(backend)
    image, dominated = engine.forward(
        projected, assignment, num_points, background, collect_stats, per_pixel_sort
    )

    stats = None
    if collect_stats:
        stats = _frame_stats(projected, assignment, num_points, dominated)
    return np.clip(image, 0.0, 1.0), stats


def _frame_stats(
    projected: ProjectedGaussians,
    assignment: TileAssignment,
    num_points: int,
    dominated: np.ndarray | None,
) -> RenderStats:
    """Assemble the per-frame statistics every backend shares."""
    tiles_per_splat = assignment.tiles_per_splat(projected.num_visible)
    tiles_per_point = np.zeros(num_points, dtype=np.int64)
    np.add.at(tiles_per_point, projected.point_ids, tiles_per_splat)
    return RenderStats(
        intersections_per_tile=assignment.intersections_per_tile(),
        tiles_per_point=tiles_per_point,
        dominated_pixels=dominated,
        num_projected=projected.num_visible,
        num_points=num_points,
    )


def rasterize_batch(
    views: list[tuple[ProjectedGaussians, TileAssignment]],
    num_points: int,
    background: np.ndarray | None = None,
    collect_stats: bool = True,
    per_pixel_sort: bool = False,
    backend: str | None = None,
) -> list[tuple[np.ndarray, RenderStats | None]]:
    """Rasterize several (depth-sorted) views of one model, one pass.

    The batched entry point of the render engine: backends that implement
    ``forward_batch`` (the ``packed`` default concatenates every view's span
    list into one segmented scan) amortize alpha evaluation, compositing and
    statistics across the whole batch; backends without it fall back to a
    per-view :meth:`forward` loop.  Returns one ``(image, stats)`` tuple per
    view, identical in meaning to :func:`rasterize`.
    """
    from .backends import get_backend, supports_forward_batch

    if background is None:
        background = np.zeros(3)
    background = np.asarray(background, dtype=np.float64)

    engine = get_backend(backend)
    if supports_forward_batch(engine):
        raw = engine.forward_batch(
            views, num_points, background, collect_stats, per_pixel_sort
        )
    else:
        raw = [
            engine.forward(
                projected, assignment, num_points, background, collect_stats,
                per_pixel_sort,
            )
            for projected, assignment in views
        ]

    results = []
    for (projected, assignment), (image, dominated) in zip(views, raw):
        stats = None
        if collect_stats:
            stats = _frame_stats(projected, assignment, num_points, dominated)
        results.append((np.clip(image, 0.0, 1.0), stats))
    return results


@dataclasses.dataclass
class RasterGradients:
    """Gradients of an image loss w.r.t. per-point render parameters.

    All arrays are indexed by model point id (length N).  ``log_scale`` is
    the gradient w.r.t. an isotropic log-scale offset ``u`` applied to the
    point's 3D covariance (``Σ → e^{2u} Σ``), the knob scale decay trains.
    """

    color: np.ndarray  # (N, 3)
    opacity: np.ndarray  # (N,)
    log_scale: np.ndarray  # (N,)


def rasterize_backward(
    projected: ProjectedGaussians,
    assignment: TileAssignment,
    num_points: int,
    grad_image: np.ndarray,
    background: np.ndarray | None = None,
    backend: str | None = None,
) -> RasterGradients:
    """Backward pass: propagate ``dL/dimage`` to per-point parameters.

    Derivation (per pixel, sorted splats ``i``):

        p = Σ_i T_i α_i c_i + T_N · bg
        dL/dc_i = T_i α_i · g
        dL/dα_i = T_i (g·c_i) − S_i / (1 − α_i)

    where ``g = dL/dp`` and ``S_i = Σ_{j>i} T_j α_j (g·c_j) + T_N (g·bg)`` is
    the suffix contribution, computed with a reverse cumulative sum.  The
    alpha then chains into opacity (``α = o e^{−q/2}``) and into the isotropic
    log-scale offset (``dq/du = −2q``, ignoring the constant screen dilation).
    """
    from .backends import get_backend

    if background is None:
        background = np.zeros(3)
    background = np.asarray(background, dtype=np.float64)

    engine = get_backend(backend)
    return engine.backward(projected, assignment, num_points, grad_image, background)
