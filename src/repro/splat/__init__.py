"""PBNR substrate: a pure-NumPy 3D Gaussian Splatting renderer.

Implements the full Projection → Sorting → Rasterization pipeline the paper
describes in Sec 2.1, including the statistics (tile–ellipse intersections,
dominated pixels) that MetaSapiens' pruning and accelerator build on.
"""

from .camera import Camera
from .gaussians import GaussianModel, inverse_sigmoid, random_model, sigmoid
from .projection import ProjectedGaussians, project_gaussians
from .rasterizer import (
    RasterGradients,
    RenderStats,
    composite,
    rasterize,
    rasterize_backward,
    splat_alphas,
)
from .renderer import RenderConfig, RenderResult, prepare_view, render, render_views
from .sh import eval_sh, num_sh_coeffs, rgb_to_dc, sh_basis
from .sorting import sort_cost_ops, sort_tile_splats
from .tiling import DEFAULT_TILE_SIZE, TileAssignment, TileGrid, assign_tiles

__all__ = [
    "Camera",
    "GaussianModel",
    "ProjectedGaussians",
    "RasterGradients",
    "RenderConfig",
    "RenderResult",
    "RenderStats",
    "TileAssignment",
    "TileGrid",
    "DEFAULT_TILE_SIZE",
    "assign_tiles",
    "composite",
    "eval_sh",
    "inverse_sigmoid",
    "num_sh_coeffs",
    "prepare_view",
    "project_gaussians",
    "random_model",
    "rasterize",
    "rasterize_backward",
    "render",
    "render_views",
    "rgb_to_dc",
    "sh_basis",
    "sigmoid",
    "sort_cost_ops",
    "sort_tile_splats",
    "splat_alphas",
]
