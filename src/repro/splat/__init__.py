"""PBNR substrate: a pure-NumPy 3D Gaussian Splatting renderer.

Implements the full Projection → Sorting → Rasterization pipeline the paper
describes in Sec 2.1, including the statistics (tile–ellipse intersections,
dominated pixels) that MetaSapiens' pruning and accelerator build on.

Backend selection
-----------------
The pixel-producing stages run on a pluggable rasterization engine
(:mod:`repro.splat.backends`).  Three backends ship with the repo:

- ``packed`` (default): flattens every tile–splat intersection of a frame
  into contiguous, depth-sorted span arrays and executes compositing,
  statistics and the analytic backward pass as whole-frame vectorized
  segment operations — no Python loop over tiles.  Work scales with the
  rasterized splat area, so frames with realistic (small) splat footprints
  render several times faster than under the per-tile loop.
- ``packed-xp``: the same engine with its numeric kernels retargeted onto
  a runtime-resolved array namespace (numpy by default, torch/cupy when
  installed — ``REPRO_ARRAY_API`` / ``--array-api``); see
  :mod:`repro.splat.backends.kernels`.
- ``reference``: the original per-tile loop, kept as the regression oracle;
  ``packed`` matches it to within 1e-10 on images, statistics and
  gradients (see ``tests/test_backends.py``).

Pick a backend per call (``rasterize(..., backend="reference")``), per
configuration (``RenderConfig(backend=...)`` — also honoured by the
foveated renderer), per process (``repro.splat.backends.set_default_backend``
or the ``--backend`` CLI flag), or per environment (``REPRO_BACKEND``).
"""

from .cachekey import (
    camera_fingerprint,
    content_fingerprint,
    model_fingerprint,
    prepare_config_fingerprint,
    render_config_fingerprint,
)
from .backends import (
    BackendInfo,
    available_backends,
    backend_info,
    backend_registry,
    describe_backends,
    get_array_namespace,
    get_backend,
    register_backend,
    set_array_api,
    set_default_backend,
)
from .camera import Camera
from .gaussians import GaussianModel, inverse_sigmoid, random_model, sigmoid
from .projection import ProjectedGaussians, project_gaussians
from .rasterizer import (
    RasterGradients,
    RenderStats,
    composite,
    composite_per_pixel,
    rasterize,
    rasterize_backward,
    rasterize_batch,
    splat_alphas,
)
from .renderer import (
    PreparedView,
    RenderConfig,
    RenderResult,
    ViewCache,
    prepare_view,
    render,
    render_batch,
    render_views,
)
from .sh import eval_sh, num_sh_coeffs, rgb_to_dc, sh_basis
from .sorting import sort_cost_ops, sort_tile_splats
from .tiling import DEFAULT_TILE_SIZE, TileAssignment, TileGrid, assign_tiles

__all__ = [
    "BackendInfo",
    "Camera",
    "GaussianModel",
    "PreparedView",
    "ProjectedGaussians",
    "RasterGradients",
    "RenderConfig",
    "RenderResult",
    "RenderStats",
    "TileAssignment",
    "TileGrid",
    "ViewCache",
    "DEFAULT_TILE_SIZE",
    "assign_tiles",
    "available_backends",
    "backend_info",
    "backend_registry",
    "camera_fingerprint",
    "content_fingerprint",
    "model_fingerprint",
    "prepare_config_fingerprint",
    "render_config_fingerprint",
    "composite",
    "composite_per_pixel",
    "describe_backends",
    "eval_sh",
    "get_array_namespace",
    "get_backend",
    "register_backend",
    "set_array_api",
    "inverse_sigmoid",
    "num_sh_coeffs",
    "prepare_view",
    "project_gaussians",
    "random_model",
    "rasterize",
    "rasterize_backward",
    "rasterize_batch",
    "render",
    "render_batch",
    "render_views",
    "rgb_to_dc",
    "set_default_backend",
    "sh_basis",
    "sigmoid",
    "sort_cost_ops",
    "sort_tile_splats",
    "splat_alphas",
]
