"""End-to-end PBNR renderer: Projection → Tiling → Sorting → Rasterization.

This is the reference (non-foveated) pipeline every baseline uses.  Options
map directly to the baselines in the paper's evaluation:

- ``smoothing_3d`` → Mip-Splatting's 3D smoothing filter,
- ``per_pixel_sort`` → StopThePop's per-pixel ordered compositing.

Multi-view consumers (trajectory evaluation, CE computation, the harness)
render through :func:`render_batch`, which rasterizes many poses of one
model in a single backend pass, and share the view-preparation prefix
(projection, tiling, depth sorting) through :class:`ViewCache` so repeated
measurements of the same (model, pose) never re-project.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..obs.metrics import Counter, MetricsRegistry
from ..obs.trace import backend_span
from .cachekey import (
    camera_fingerprint,
    model_fingerprint,
    prepare_config_fingerprint,
)
from .camera import Camera
from .gaussians import GaussianModel
from .projection import ProjectedGaussians, project_gaussians
from .rasterizer import RenderStats, rasterize, rasterize_batch
from .sorting import sort_tile_splats
from .tiling import DEFAULT_TILE_SIZE, TileAssignment, TileGrid, assign_tiles


@dataclasses.dataclass
class RenderResult:
    """A rendered frame plus everything the rest of the system consumes."""

    image: np.ndarray  # (H, W, 3) in [0, 1]
    stats: RenderStats | None
    projected: ProjectedGaussians
    assignment: TileAssignment


@dataclasses.dataclass
class RenderConfig:
    """Renderer options (defaults reproduce vanilla 3DGS behaviour).

    ``backend`` selects the rasterization engine (``"packed"`` /
    ``"reference"``, see :mod:`repro.splat.backends`); ``None`` defers to the
    process default (``REPRO_BACKEND`` env var, else ``packed``).
    """

    tile_size: int = DEFAULT_TILE_SIZE
    background: tuple[float, float, float] = (0.0, 0.0, 0.0)
    smoothing_3d: float = 0.0
    per_pixel_sort: bool = False
    collect_stats: bool = True
    backend: str | None = None


@dataclasses.dataclass
class PreparedView:
    """The render-prefix of one (model, pose): projected splats plus their
    depth-sorted tile assignment.

    Iterates and indexes like the ``(projected, assignment)`` tuple
    :func:`prepare_view` used to return, so existing unpacking call sites
    keep working.
    """

    projected: ProjectedGaussians
    assignment: TileAssignment

    def __iter__(self):
        return iter((self.projected, self.assignment))

    def __getitem__(self, i: int):
        return (self.projected, self.assignment)[i]

    def __len__(self) -> int:
        return 2


def prepare_view(
    model: GaussianModel,
    camera: Camera,
    config: RenderConfig | None = None,
    opacity_override: np.ndarray | None = None,
    color_override: np.ndarray | None = None,
) -> PreparedView:
    """Run Projection, Tiling and Sorting for one view (no rasterization).

    The foveated pipeline shares this prefix across quality levels (the
    paper's key compute saving from subsetting: projection runs once), and
    :class:`ViewCache` shares it across repeated renders of one pose.
    """
    config = config or RenderConfig()
    with backend_span("prepare", args={"w": camera.width, "h": camera.height}):
        projected = project_gaussians(
            model,
            camera,
            smoothing_3d=config.smoothing_3d,
            opacity_override=opacity_override,
            color_override=color_override,
        )
        grid = TileGrid(width=camera.width, height=camera.height, tile_size=config.tile_size)
        assignment = assign_tiles(projected, grid)
        assignment = sort_tile_splats(projected, assignment)
    return PreparedView(projected=projected, assignment=assignment)


class ViewCache:
    """Memoizes :func:`prepare_view` per (model, pose, prepare-config).

    Keys are content fingerprints (:mod:`repro.splat.cachekey`, shared with
    the serve tier's :class:`repro.serve.FrameCache`) — the model's
    parameter arrays, the camera's geometry and the config fields that
    affect preparation — so a
    cache survives model copies and fresh ``Camera`` objects, and a mutated
    model (e.g. mid-finetuning) never serves stale projections.  ``hits`` /
    ``misses`` make the sharing observable for tests and benchmarks.

    Eviction is LRU: a hit refreshes an entry's recency, and under
    ``maxsize`` pressure the least-recently-used entry is dropped — so a
    looped trajectory whose pose count exceeds ``maxsize`` by a few still
    keeps its hottest poses resident instead of cycling everything out.
    """

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        # Int-like metric objects (repro.obs): existing `cache.hits` int
        # comparisons keep working, and register_metrics() can attach a
        # registry to the live values.
        self.hits = Counter()
        self.misses = Counter()
        self.evictions = Counter()
        self._entries: dict[tuple, PreparedView] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        """Plain-int counters snapshot (thin view over the live objects)."""
        return {
            "hits": int(self.hits),
            "misses": int(self.misses),
            "evictions": int(self.evictions),
            "entries": len(self._entries),
        }

    def register_metrics(self, registry: MetricsRegistry, **labels: str) -> None:
        """Attach the live hit/miss/eviction counters onto ``registry``."""
        registry.register("view_cache_hits", self.hits, help="prepared-view cache hits", **labels)
        registry.register("view_cache_misses", self.misses, help="prepared-view cache misses", **labels)
        registry.register(
            "view_cache_evictions", self.evictions, help="prepared-view LRU evictions", **labels
        )
        registry.gauge_fn(
            "view_cache_entries", lambda: len(self._entries), help="prepared views resident", **labels
        )

    def get(
        self,
        model: GaussianModel,
        camera: Camera,
        config: RenderConfig | None = None,
    ) -> PreparedView:
        """The prepared view for (model, camera), computing it on first use."""
        return self.get_batch(model, [camera], config)[0]

    def get_batch(
        self,
        model: GaussianModel,
        cameras: list[Camera],
        config: RenderConfig | None = None,
    ) -> list[PreparedView]:
        """Prepared views for many poses of one model.

        The model fingerprint — an O(parameter-bytes) hash — is computed
        once for the whole batch, not once per camera.
        """
        config = config or RenderConfig()
        model_key = model_fingerprint(model)
        config_key = prepare_config_fingerprint(config)
        views = []
        for camera in cameras:
            key = (model_key, camera_fingerprint(camera), config_key)
            view = self._entries.pop(key, None)
            if view is not None:
                self.hits += 1
            else:
                self.misses += 1
                view = prepare_view(model, camera, config)
                if len(self._entries) >= self.maxsize:
                    # Dict order is insertion order and every access
                    # re-inserts, so the first key is the LRU entry.
                    self._entries.pop(next(iter(self._entries)))
                    self.evictions += 1
            self._entries[key] = view
            views.append(view)
        return views


def render(
    model: GaussianModel,
    camera: Camera,
    config: RenderConfig | None = None,
    prepared: PreparedView | None = None,
) -> RenderResult:
    """Render one frame with full statistics.

    ``prepared`` skips the Projection/Tiling/Sorting prefix (e.g. a
    :class:`ViewCache` entry); the caller is responsible for it matching
    (model, camera, config).
    """
    config = config or RenderConfig()
    if prepared is None:
        prepared = prepare_view(model, camera, config)
    image, stats = rasterize(
        prepared.projected,
        prepared.assignment,
        num_points=model.num_points,
        background=np.asarray(config.background, dtype=np.float64),
        collect_stats=config.collect_stats,
        per_pixel_sort=config.per_pixel_sort,
        backend=config.backend,
    )
    return RenderResult(
        image=image,
        stats=stats,
        projected=prepared.projected,
        assignment=prepared.assignment,
    )


def render_batch(
    model: GaussianModel,
    cameras: list[Camera],
    config: RenderConfig | None = None,
    batch_size: int | None = None,
    cache: ViewCache | None = None,
) -> list[RenderResult]:
    """Render many views of one model through the batched backend path.

    View preparation still runs per pose (through ``cache`` when given), but
    rasterization — alpha evaluation, the transmittance scan, compositing
    and statistics — executes once per batch over the concatenated span
    lists.  ``batch_size`` caps how many views share one scan (``None``
    batches everything); results are identical to per-view :func:`render`
    within the backend-equivalence tolerance, and bit-identical at batch
    size 1.
    """
    config = config or RenderConfig()
    if batch_size is not None and batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if not cameras:
        return []

    background = np.asarray(config.background, dtype=np.float64)
    step = batch_size or len(cameras)
    results: list[RenderResult] = []
    for i in range(0, len(cameras), step):
        # Preparation runs per chunk, so ``batch_size`` bounds the prepared
        # working set too, not just the scan temporaries.
        if cache is not None:
            chunk = cache.get_batch(model, cameras[i : i + step], config)
        else:
            chunk = [
                prepare_view(model, camera, config)
                for camera in cameras[i : i + step]
            ]
        outputs = rasterize_batch(
            [(view.projected, view.assignment) for view in chunk],
            num_points=model.num_points,
            background=background,
            collect_stats=config.collect_stats,
            per_pixel_sort=config.per_pixel_sort,
            backend=config.backend,
        )
        for view, (image, stats) in zip(chunk, outputs):
            results.append(
                RenderResult(
                    image=image,
                    stats=stats,
                    projected=view.projected,
                    assignment=view.assignment,
                )
            )
    return results


def render_views(
    model: GaussianModel,
    cameras: list[Camera],
    config: RenderConfig | None = None,
) -> list[RenderResult]:
    """Render a list of views (training poses or a trajectory), batched."""
    return render_batch(model, cameras, config)
