"""End-to-end PBNR renderer: Projection → Tiling → Sorting → Rasterization.

This is the reference (non-foveated) pipeline every baseline uses.  Options
map directly to the baselines in the paper's evaluation:

- ``smoothing_3d`` → Mip-Splatting's 3D smoothing filter,
- ``per_pixel_sort`` → StopThePop's per-pixel ordered compositing.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .camera import Camera
from .gaussians import GaussianModel
from .projection import ProjectedGaussians, project_gaussians
from .rasterizer import RenderStats, rasterize
from .sorting import sort_tile_splats
from .tiling import DEFAULT_TILE_SIZE, TileAssignment, TileGrid, assign_tiles


@dataclasses.dataclass
class RenderResult:
    """A rendered frame plus everything the rest of the system consumes."""

    image: np.ndarray  # (H, W, 3) in [0, 1]
    stats: RenderStats | None
    projected: ProjectedGaussians
    assignment: TileAssignment


@dataclasses.dataclass
class RenderConfig:
    """Renderer options (defaults reproduce vanilla 3DGS behaviour).

    ``backend`` selects the rasterization engine (``"packed"`` /
    ``"reference"``, see :mod:`repro.splat.backends`); ``None`` defers to the
    process default (``REPRO_BACKEND`` env var, else ``packed``).
    """

    tile_size: int = DEFAULT_TILE_SIZE
    background: tuple[float, float, float] = (0.0, 0.0, 0.0)
    smoothing_3d: float = 0.0
    per_pixel_sort: bool = False
    collect_stats: bool = True
    backend: str | None = None


def prepare_view(
    model: GaussianModel,
    camera: Camera,
    config: RenderConfig | None = None,
    opacity_override: np.ndarray | None = None,
    color_override: np.ndarray | None = None,
) -> tuple[ProjectedGaussians, TileAssignment]:
    """Run Projection, Tiling and Sorting for one view (no rasterization).

    The foveated pipeline shares this prefix across quality levels (the
    paper's key compute saving from subsetting: projection runs once).
    """
    config = config or RenderConfig()
    projected = project_gaussians(
        model,
        camera,
        smoothing_3d=config.smoothing_3d,
        opacity_override=opacity_override,
        color_override=color_override,
    )
    grid = TileGrid(width=camera.width, height=camera.height, tile_size=config.tile_size)
    assignment = assign_tiles(projected, grid)
    assignment = sort_tile_splats(projected, assignment)
    return projected, assignment


def render(
    model: GaussianModel,
    camera: Camera,
    config: RenderConfig | None = None,
) -> RenderResult:
    """Render one frame with full statistics."""
    config = config or RenderConfig()
    projected, assignment = prepare_view(model, camera, config)
    image, stats = rasterize(
        projected,
        assignment,
        num_points=model.num_points,
        background=np.asarray(config.background, dtype=np.float64),
        collect_stats=config.collect_stats,
        per_pixel_sort=config.per_pixel_sort,
        backend=config.backend,
    )
    return RenderResult(image=image, stats=stats, projected=projected, assignment=assignment)


def render_views(
    model: GaussianModel,
    cameras: list[Camera],
    config: RenderConfig | None = None,
) -> list[RenderResult]:
    """Render a list of views (training poses or a trajectory)."""
    return [render(model, camera, config) for camera in cameras]
