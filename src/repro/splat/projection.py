"""Projection stage of the PBNR pipeline (3D ellipsoids → 2D screen ellipses).

Implements EWA splatting: the world-space covariance ``Σ`` of each Gaussian
is pushed through the camera transform and the local affine approximation of
the perspective projection, producing a 2D covariance ``Σ' = J W Σ Wᵀ Jᵀ``.
The rasterizer consumes the *conic* (inverse 2D covariance) and a conservative
screen-space radius (3σ of the major axis).

Also implements the Mip-Splatting 3D smoothing filter (a per-point scale
floor proportional to the sampling interval) as an optional projection knob;
it is used by the ``mip-splatting`` baseline.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .camera import Camera
from .gaussians import GaussianModel
from .sh import eval_sh

# Low-pass dilation added to the 2D covariance (in pixels^2); matches the
# +0.3 antialiasing dilation in the 3DGS reference rasterizer.
SCREEN_DILATION = 0.3

# Cut-off for the conservative splat radius: 3 standard deviations.
RADIUS_SIGMAS = 3.0

# Alpha below which a Gaussian is considered not to touch a pixel (1/255).
ALPHA_EPS = 1.0 / 255.0

# Frustum-culling margin (1.3x the viewing cone, as in 3DGS) and the minimum
# depth at which points are rendered (3DGS uses 0.2).
FRUSTUM_MARGIN = 1.3
MIN_DEPTH = 0.2


@dataclasses.dataclass
class ProjectedGaussians:
    """Screen-space splats, ready for tiling/sorting/rasterization.

    All arrays are aligned: entry ``i`` describes the same visible splat.
    ``point_ids`` maps each splat back to its index in the source model.
    """

    means2d: np.ndarray  # (M, 2) pixel coordinates
    depths: np.ndarray  # (M,) camera-space z
    conics: np.ndarray  # (M, 3) upper-triangular inverse covariance (a, b, c)
    radii: np.ndarray  # (M,) conservative pixel radius
    colors: np.ndarray  # (M, 3) SH-evaluated RGB for this view
    opacities: np.ndarray  # (M,) base opacity in (0, 1)
    point_ids: np.ndarray  # (M,) indices into the source model
    cov2d: np.ndarray  # (M, 3) the (dilated) 2D covariance (a, b, c)

    @property
    def num_visible(self) -> int:
        return self.means2d.shape[0]


def compute_cov2d(
    model: GaussianModel,
    camera: Camera,
    visible: np.ndarray,
    smoothing_3d: float = 0.0,
) -> np.ndarray:
    """2D screen-space covariances for the ``visible`` subset, ``(M, 2, 2)``.

    ``smoothing_3d`` > 0 enables the Mip-Splatting 3D filter: each Gaussian's
    3D covariance receives an isotropic floor of ``(smoothing_3d * z / f)²``,
    the world-space footprint of one pixel at the point's depth.
    """
    positions = model.positions[visible]
    cam_points = camera.world_to_camera(positions)
    z = cam_points[:, 2]

    cov3d = model.covariances()[visible]
    if smoothing_3d > 0.0:
        pixel_world = smoothing_3d * z / camera.fx
        floor = (pixel_world**2)[:, None, None] * np.eye(3)[None, :, :]
        cov3d = cov3d + floor

    # Jacobian of the perspective projection at each point (2x3).
    x, y = cam_points[:, 0], cam_points[:, 1]
    inv_z = 1.0 / z
    m = visible.sum() if visible.dtype == bool else len(visible)
    jac = np.zeros((m, 2, 3), dtype=np.float64)
    jac[:, 0, 0] = camera.fx * inv_z
    jac[:, 0, 2] = -camera.fx * x * inv_z**2
    jac[:, 1, 1] = camera.fy * inv_z
    jac[:, 1, 2] = -camera.fy * y * inv_z**2

    rot = camera.world_to_cam_rotation
    jw = jac @ rot[None, :, :]  # (M, 2, 3)
    return jw @ cov3d @ jw.transpose(0, 2, 1)


def project_gaussians(
    model: GaussianModel,
    camera: Camera,
    smoothing_3d: float = 0.0,
    opacity_override: np.ndarray | None = None,
    color_override: np.ndarray | None = None,
) -> ProjectedGaussians:
    """Run the Projection stage: cull, splat, and shade all points.

    Parameters
    ----------
    model:
        Source Gaussian model.
    camera:
        Viewpoint.
    smoothing_3d:
        Mip-Splatting 3D smoothing filter strength (0 disables).
    opacity_override / color_override:
        Full-length ``(N,)`` / ``(N, 3)`` arrays replacing the model's own
        opacity / RGB.  Used by the foveation pipeline, where opacity and
        SH-DC are multi-versioned per quality level.
    """
    cam_points = camera.world_to_camera(model.positions)
    z = cam_points[:, 2]
    # Frustum culling with the standard 1.3x margin: points far outside the
    # viewing cone would otherwise get near-singular projection Jacobians
    # (x/z, y/z unbounded as z → 0) and degenerate, screen-filling splats.
    z_safe = np.maximum(z, 1e-9)
    tan_x = FRUSTUM_MARGIN * (camera.width / 2.0) / camera.fx
    tan_y = FRUSTUM_MARGIN * (camera.height / 2.0) / camera.fy
    visible = (
        (z > max(camera.near, MIN_DEPTH))
        & (z < camera.far)
        & (np.abs(cam_points[:, 0] / z_safe) < tan_x)
        & (np.abs(cam_points[:, 1] / z_safe) < tan_y)
    )
    visible_idx = np.flatnonzero(visible)

    if visible_idx.size == 0:
        empty2 = np.empty((0, 2))
        empty3 = np.empty((0, 3))
        empty = np.empty((0,))
        return ProjectedGaussians(
            means2d=empty2,
            depths=empty,
            conics=empty3,
            radii=empty,
            colors=empty3,
            opacities=empty,
            point_ids=np.empty((0,), dtype=np.int64),
            cov2d=empty3,
        )

    cov2d = compute_cov2d(model, camera, visible_idx, smoothing_3d=smoothing_3d)
    a = cov2d[:, 0, 0] + SCREEN_DILATION
    b = cov2d[:, 0, 1]
    c = cov2d[:, 1, 1] + SCREEN_DILATION

    det = a * c - b * b
    well_formed = det > 1e-12
    inv_det = np.where(well_formed, 1.0 / np.maximum(det, 1e-12), 0.0)
    conic_a = c * inv_det
    conic_b = -b * inv_det
    conic_c = a * inv_det

    # Conservative radius: 3 sigma of the major eigenvalue.
    mid = 0.5 * (a + c)
    disc = np.sqrt(np.maximum(mid * mid - det, 1e-12))
    lambda_max = mid + disc
    radii = np.ceil(RADIUS_SIGMAS * np.sqrt(np.maximum(lambda_max, 0.0)))

    means2d = camera.camera_to_screen(cam_points[visible_idx])

    # Cull splats whose extent misses the image entirely.
    on_screen = (
        (means2d[:, 0] + radii > 0)
        & (means2d[:, 0] - radii < camera.width)
        & (means2d[:, 1] + radii > 0)
        & (means2d[:, 1] - radii < camera.height)
        & well_formed
        & (radii > 0)
    )

    keep = np.flatnonzero(on_screen)
    point_ids = visible_idx[keep]

    if color_override is not None:
        colors = np.asarray(color_override, dtype=np.float64)[point_ids]
    else:
        directions = camera.view_directions(model.positions[point_ids])
        colors = eval_sh(model.sh[point_ids], directions)

    if opacity_override is not None:
        opacities = np.asarray(opacity_override, dtype=np.float64)[point_ids]
    else:
        opacities = model.opacities[point_ids]

    return ProjectedGaussians(
        means2d=means2d[keep],
        depths=z[point_ids],
        conics=np.stack([conic_a[keep], conic_b[keep], conic_c[keep]], axis=1),
        radii=radii[keep],
        colors=colors,
        opacities=opacities,
        point_ids=point_ids,
        cov2d=np.stack([a[keep], b[keep], c[keep]], axis=1),
    )
