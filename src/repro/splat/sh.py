"""Real spherical harmonics used for view-dependent colour in PBNR.

3DGS parameterizes per-point colour with real spherical harmonics (SH) up to
degree 3.  The degree-0 ("DC") component carries most of the colour energy;
MetaSapiens' selective multi-versioning keeps a per-level copy of exactly the
DC component (plus opacity) and shares the higher-order coefficients.

Coefficients are stored as ``(N, K, 3)`` arrays where ``K = (degree + 1)**2``;
index 0 is the DC term and indices ``1..K-1`` are the "rest" coefficients.
"""

from __future__ import annotations

import numpy as np

# Real SH normalization constants, following the 3DGS reference implementation.
SH_C0 = 0.28209479177387814
SH_C1 = 0.4886025119029199
SH_C2 = (
    1.0925484305920792,
    -1.0925484305920792,
    0.31539156525252005,
    -1.0925484305920792,
    0.5462742152960396,
)
SH_C3 = (
    -0.5900435899266435,
    2.890611442640554,
    -0.4570457994644658,
    0.3731763325901154,
    -0.4570457994644658,
    1.445305721320277,
    -0.5900435899266435,
)

MAX_SH_DEGREE = 3


def num_sh_coeffs(degree: int) -> int:
    """Number of SH basis functions for ``degree`` (inclusive)."""
    if not 0 <= degree <= MAX_SH_DEGREE:
        raise ValueError(f"SH degree must be in [0, {MAX_SH_DEGREE}], got {degree}")
    return (degree + 1) ** 2


def sh_basis(directions: np.ndarray, degree: int) -> np.ndarray:
    """Evaluate the real SH basis for unit ``directions``.

    Parameters
    ----------
    directions:
        ``(N, 3)`` array of (not necessarily normalized) view directions.
    degree:
        Maximum SH degree, 0..3.

    Returns
    -------
    ``(N, K)`` basis matrix with ``K = (degree + 1)**2``.
    """
    directions = np.asarray(directions, dtype=np.float64)
    if directions.ndim != 2 or directions.shape[1] != 3:
        raise ValueError(f"directions must be (N, 3), got {directions.shape}")
    # Pre-scale by the largest component so squaring cannot underflow to
    # denormals (which would break unit normalization for tiny vectors).
    scale = np.max(np.abs(directions), axis=1, keepdims=True)
    scale = np.where(scale == 0.0, 1.0, scale)
    d = directions / scale
    norms = np.linalg.norm(d, axis=1, keepdims=True)
    norms = np.where(norms == 0.0, 1.0, norms)
    d = d / norms
    x, y, z = d[:, 0], d[:, 1], d[:, 2]

    n = directions.shape[0]
    basis = np.empty((n, num_sh_coeffs(degree)), dtype=np.float64)
    basis[:, 0] = SH_C0
    if degree >= 1:
        basis[:, 1] = -SH_C1 * y
        basis[:, 2] = SH_C1 * z
        basis[:, 3] = -SH_C1 * x
    if degree >= 2:
        xx, yy, zz = x * x, y * y, z * z
        xy, yz, xz = x * y, y * z, x * z
        basis[:, 4] = SH_C2[0] * xy
        basis[:, 5] = SH_C2[1] * yz
        basis[:, 6] = SH_C2[2] * (2.0 * zz - xx - yy)
        basis[:, 7] = SH_C2[3] * xz
        basis[:, 8] = SH_C2[4] * (xx - yy)
    if degree >= 3:
        xx, yy, zz = x * x, y * y, z * z
        xy, yz, xz = x * y, y * z, x * z
        basis[:, 9] = SH_C3[0] * y * (3.0 * xx - yy)
        basis[:, 10] = SH_C3[1] * xy * z
        basis[:, 11] = SH_C3[2] * y * (4.0 * zz - xx - yy)
        basis[:, 12] = SH_C3[3] * z * (2.0 * zz - 3.0 * xx - 3.0 * yy)
        basis[:, 13] = SH_C3[4] * x * (4.0 * zz - xx - yy)
        basis[:, 14] = SH_C3[5] * z * (xx - yy)
        basis[:, 15] = SH_C3[6] * x * (xx - 3.0 * yy)
    return basis


def eval_sh(coeffs: np.ndarray, directions: np.ndarray, degree: int | None = None) -> np.ndarray:
    """Evaluate SH colour for each point along its view direction.

    Follows the 3DGS convention: the evaluated polynomial is offset by +0.5
    and clamped at zero, so a coefficient vector of zeros yields mid-grey.

    Parameters
    ----------
    coeffs:
        ``(N, K, 3)`` SH coefficients.
    directions:
        ``(N, 3)`` directions from the camera centre to each point.
    degree:
        Degree to evaluate at; defaults to the full degree implied by ``K``.

    Returns
    -------
    ``(N, 3)`` non-negative RGB colours.
    """
    coeffs = np.asarray(coeffs, dtype=np.float64)
    if coeffs.ndim != 3 or coeffs.shape[2] != 3:
        raise ValueError(f"coeffs must be (N, K, 3), got {coeffs.shape}")
    full_degree = int(np.sqrt(coeffs.shape[1])) - 1
    if (full_degree + 1) ** 2 != coeffs.shape[1]:
        raise ValueError(f"K={coeffs.shape[1]} is not a valid SH coefficient count")
    if degree is None:
        degree = full_degree
    if degree > full_degree:
        raise ValueError(f"requested degree {degree} exceeds stored degree {full_degree}")
    k = num_sh_coeffs(degree)
    basis = sh_basis(directions, degree)  # (N, k)
    rgb = np.einsum("nk,nkc->nc", basis, coeffs[:, :k, :]) + 0.5
    return np.clip(rgb, 0.0, None)


def rgb_to_dc(rgb: np.ndarray) -> np.ndarray:
    """Convert a target RGB colour into the DC SH coefficient producing it."""
    rgb = np.asarray(rgb, dtype=np.float64)
    return (rgb - 0.5) / SH_C0


def dc_to_rgb(dc: np.ndarray) -> np.ndarray:
    """Colour produced by a DC coefficient alone (degree-0 evaluation)."""
    dc = np.asarray(dc, dtype=np.float64)
    return np.clip(dc * SH_C0 + 0.5, 0.0, None)
