"""Content-fingerprint cache keys shared by every render cache.

:class:`~repro.splat.renderer.ViewCache` (the view-preparation cache) and
:class:`repro.serve.FrameCache` (the serve tier's rendered-frame cache) key
their entries on *content*, not object identity: the model's parameter
arrays, the camera's geometry, and the config fields the cached stage
depends on.  Both caches build their keys from the helpers here, so the two
can never drift on fingerprint semantics — a model mutation invalidates
entries in every cache the same way.

Fingerprints are cheap relative to the work they memoize (one BLAKE2 pass
over the parameter bytes vs a full projection or render), and robust to
copies: two models with equal parameters share a fingerprint even when they
are distinct objects.
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np

from .camera import Camera
from .gaussians import GaussianModel


def fingerprint_bytes(obj) -> bytes:
    """Canonical byte encoding of a fingerprint structure (for hashing).

    Cache keys are nested tuples of ints, floats, strings, bytes and small
    frozen dataclasses (e.g. the serve tier's gaze-region key).  Consistent-
    hash routing needs those keys as *stable bytes*: equal keys must encode
    identically in every process and across sessions, so one request always
    lands on the same shard.  Python's ``hash()`` cannot provide that
    (string hashing is salted per process); this encoding can — ``repr`` of
    ints/floats is exact and deterministic, and containers are framed with
    type tags so distinct structures never collide by concatenation.
    """
    if obj is None:
        return b"n;"
    if isinstance(obj, bool):
        return b"B1;" if obj else b"B0;"
    if isinstance(obj, (int, float)):
        return f"{type(obj).__name__[0]}{obj!r};".encode()
    if isinstance(obj, str):
        data = obj.encode()
        return b"s%d:" % len(data) + data + b";"
    if isinstance(obj, bytes):
        return b"b%d:" % len(obj) + obj + b";"
    if isinstance(obj, np.ndarray):
        data = np.ascontiguousarray(obj).tobytes()
        return b"a%d:" % len(data) + data + b";"
    if isinstance(obj, (tuple, list)):
        return b"(" + b"".join(fingerprint_bytes(item) for item in obj) + b");"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        name = type(obj).__name__.encode()
        fields = tuple(
            getattr(obj, f.name) for f in dataclasses.fields(obj)
        )
        return b"d" + name + b":" + fingerprint_bytes(fields)
    raise TypeError(f"cannot canonically encode {type(obj).__name__} for hashing")


def content_fingerprint(*arrays: np.ndarray) -> bytes:
    """16-byte BLAKE2 digest of the given arrays' contents (order-sensitive)."""
    digest = hashlib.blake2b(digest_size=16)
    for array in arrays:
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.digest()


def model_fingerprint(model: GaussianModel) -> bytes:
    """Content fingerprint of a model's parameters (robust to mutation)."""
    return content_fingerprint(
        model.positions,
        model.log_scales,
        model.rotations,
        model.opacity_logits,
        model.sh,
    )


def camera_fingerprint(camera: Camera) -> tuple:
    """Hashable key of everything that defines a camera's geometry."""
    return (
        camera.width,
        camera.height,
        camera.fx,
        camera.fy,
        camera.cx,
        camera.cy,
        camera.near,
        camera.far,
        camera.world_to_cam_rotation.tobytes(),
        camera.world_to_cam_translation.tobytes(),
    )


def prepare_config_fingerprint(config) -> tuple:
    """The config fields the view-preparation prefix depends on.

    Projection/tiling/sorting only see the tile size and the 3D smoothing
    filter; rasterization-only options (background, per-pixel sort, backend)
    deliberately do not invalidate prepared views.
    """
    return (config.tile_size, config.smoothing_3d)


def render_config_fingerprint(config) -> tuple:
    """The config fields a *rendered frame* depends on.

    Every field that can change output pixels participates, including the
    backend: engines agree only to the equivalence tolerance (1e-10), so a
    frame cache promising exact-key bit-identity must not serve one
    backend's pixels for another's.  ``backend=None`` is resolved to the
    effective process default at key time — flipping the default via
    ``set_default_backend`` / ``REPRO_BACKEND`` starts a fresh key space
    instead of serving stale cross-backend frames.
    """
    from .backends import resolve_backend_name

    return (
        config.tile_size,
        tuple(float(c) for c in config.background),
        config.smoothing_3d,
        config.per_pixel_sort,
        resolve_backend_name(config.backend),
    )
