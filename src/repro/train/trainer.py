"""Fine-tuning loop used after each pruning round (Fig 6's "re-training").

Trains exactly the parameters the paper's procedure touches:

- opacity logits,
- the SH DC colour component,
- per-point isotropic log-scale (the scale-decay knob).

Gradients of the photometric loss come from the rasterizer's analytic
backward pass; an optional regularizer callback injects extra loss terms
(scale decay's γ·WS from :mod:`repro.core.scale_decay`) without this module
depending on :mod:`repro.core`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

import numpy as np

from ..splat.camera import Camera
from ..splat.gaussians import GaussianModel
from ..splat.rasterizer import rasterize, rasterize_backward
from ..splat.renderer import RenderConfig, prepare_view
from ..splat.sh import SH_C0
from .losses import image_loss
from .optimizer import Adam

# A regularizer maps the model to (loss, gradient dict); gradient keys must
# be parameter names understood by the trainer.
Regularizer = Callable[[GaussianModel], tuple[float, dict[str, np.ndarray]]]


@dataclasses.dataclass
class TrainConfig:
    """Hyper-parameters of the fine-tuning loop."""

    iterations: int = 20
    lr_opacity: float = 0.05
    lr_sh_dc: float = 0.01
    lr_log_scale: float = 0.005
    l1_weight: float = 0.8
    render: RenderConfig = dataclasses.field(default_factory=RenderConfig)


@dataclasses.dataclass
class TrainResult:
    """Loss history of a fine-tuning run."""

    photometric: list[float]
    regularizer: list[float]

    @property
    def total(self) -> list[float]:
        return [p + r for p, r in zip(self.photometric, self.regularizer)]


def _model_step_grads(
    model: GaussianModel,
    camera: Camera,
    target: np.ndarray,
    config: TrainConfig,
) -> tuple[float, dict[str, np.ndarray]]:
    """One view's photometric loss and parameter gradients."""
    projected, assignment = prepare_view(model, camera, config.render)
    image, _ = rasterize(
        projected,
        assignment,
        num_points=model.num_points,
        background=np.asarray(config.render.background),
        collect_stats=False,
        backend=config.render.backend,
    )
    loss, grad_image = image_loss(image, target, l1_weight=config.l1_weight)
    raster_grads = rasterize_backward(
        projected,
        assignment,
        num_points=model.num_points,
        grad_image=grad_image,
        background=np.asarray(config.render.background),
        backend=config.render.backend,
    )

    opacities = model.opacities
    grads = {
        # Chain rule: colour → DC coefficient (d rgb / d dc = SH_C0),
        # opacity → logit (d o / d logit = o (1 − o)).
        "sh_dc": raster_grads.color * SH_C0,
        "opacity_logits": raster_grads.opacity * opacities * (1.0 - opacities),
        "log_scales": raster_grads.log_scale,
    }
    return loss, grads


def finetune(
    model: GaussianModel,
    cameras: Sequence[Camera],
    targets: Sequence[np.ndarray],
    config: TrainConfig | None = None,
    regularizer: Regularizer | None = None,
) -> TrainResult:
    """Fine-tune ``model`` in place against per-view target images.

    Each iteration accumulates gradients over all views (full-batch — view
    counts here are small), adds the regularizer's gradient, and applies one
    Adam step.
    """
    if len(cameras) != len(targets):
        raise ValueError("need one target image per camera")
    if not cameras:
        raise ValueError("need at least one training view")
    config = config or TrainConfig()

    optimizer = Adam(
        {
            "sh_dc": config.lr_sh_dc,
            "opacity_logits": config.lr_opacity,
            "log_scales": config.lr_log_scale,
        }
    )

    photometric_history: list[float] = []
    regularizer_history: list[float] = []

    for _ in range(config.iterations):
        total_photo = 0.0
        acc = {
            "sh_dc": np.zeros((model.num_points, 3)),
            "opacity_logits": np.zeros(model.num_points),
            "log_scales": np.zeros(model.num_points),
        }
        for camera, target in zip(cameras, targets):
            loss, grads = _model_step_grads(model, camera, target, config)
            total_photo += loss / len(cameras)
            for name in acc:
                acc[name] += grads[name] / len(cameras)

        reg_loss = 0.0
        if regularizer is not None:
            reg_loss, reg_grads = regularizer(model)
            for name, grad in reg_grads.items():
                if name not in acc:
                    raise KeyError(f"regularizer produced unknown parameter {name!r}")
                acc[name] = acc[name] + grad

        params = {
            "sh_dc": model.sh[:, 0, :],
            "opacity_logits": model.opacity_logits,
            # Isotropic scale update: broadcast the scalar per-point gradient
            # to all three axes of log_scales.
            "log_scales": model.log_scales,
        }
        optimizer.step(
            params,
            {
                "sh_dc": acc["sh_dc"],
                "opacity_logits": acc["opacity_logits"],
                "log_scales": np.repeat(acc["log_scales"][:, None], 3, axis=1),
            },
        )

        photometric_history.append(total_photo)
        regularizer_history.append(reg_loss)

    return TrainResult(photometric=photometric_history, regularizer=regularizer_history)
