"""Re-training substrate: losses, Adam, and the fine-tuning loop."""

from .losses import image_loss, l1_loss, l2_loss
from .optimizer import Adam
from .trainer import Regularizer, TrainConfig, TrainResult, finetune

__all__ = [
    "Adam",
    "Regularizer",
    "TrainConfig",
    "TrainResult",
    "finetune",
    "image_loss",
    "l1_loss",
    "l2_loss",
]
