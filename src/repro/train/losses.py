"""Image-space losses and their gradients for model re-training.

The iterative procedure of Fig 6 re-trains a pruned model with a composite
loss ``L = L_quality + γ·WS`` (Eqn 6).  We provide L_quality as an L1 /
L2-mixture image loss (3DGS itself uses L1 + D-SSIM; the L2 component makes
the analytic gradient exact and cheap) together with its gradient w.r.t. the
rendered image, which the rasterizer's backward pass consumes.
"""

from __future__ import annotations

import numpy as np


def l1_loss(rendered: np.ndarray, target: np.ndarray) -> float:
    return float(np.mean(np.abs(rendered - target)))


def l2_loss(rendered: np.ndarray, target: np.ndarray) -> float:
    return float(np.mean((rendered - target) ** 2))


def image_loss(
    rendered: np.ndarray,
    target: np.ndarray,
    l1_weight: float = 0.8,
) -> tuple[float, np.ndarray]:
    """Mixed L1/L2 photometric loss and its gradient w.r.t. ``rendered``.

    Returns ``(loss, dL/drendered)`` with the gradient shaped like the image.
    """
    rendered = np.asarray(rendered, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if rendered.shape != target.shape:
        raise ValueError(f"shape mismatch: {rendered.shape} vs {target.shape}")
    diff = rendered - target
    n = diff.size
    loss = l1_weight * float(np.mean(np.abs(diff))) + (1.0 - l1_weight) * float(
        np.mean(diff**2)
    )
    grad = (l1_weight * np.sign(diff) + (1.0 - l1_weight) * 2.0 * diff) / n
    return loss, grad
