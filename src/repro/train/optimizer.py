"""A small Adam optimizer over named NumPy parameter arrays."""

from __future__ import annotations

import numpy as np


class Adam:
    """Adam with per-parameter-group learning rates.

    Parameters are identified by name; ``step`` applies one update given a
    dict of gradients (missing names are skipped, so sparse updates work).
    """

    def __init__(
        self,
        learning_rates: dict[str, float],
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        self.learning_rates = dict(learning_rates)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t = 0

    def step(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        """Update ``params`` in place from ``grads``."""
        self._t += 1
        for name, grad in grads.items():
            if name not in params:
                raise KeyError(f"gradient for unknown parameter {name!r}")
            lr = self.learning_rates.get(name)
            if lr is None or lr == 0.0:
                continue
            grad = np.asarray(grad, dtype=np.float64)
            if name not in self._m:
                self._m[name] = np.zeros_like(grad)
                self._v[name] = np.zeros_like(grad)
            m = self._m[name]
            v = self._v[name]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / (1.0 - self.beta1**self._t)
            v_hat = v / (1.0 - self.beta2**self._t)
            params[name] -= lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def reset(self) -> None:
        self._m.clear()
        self._v.clear()
        self._t = 0
