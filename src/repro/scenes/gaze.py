"""Gaze dynamics: fixation/saccade trajectories for dynamic foveation.

The paper evaluates FR with a real eye tracker (Quest Pro).  Offline we
model the two regimes of human gaze:

- **fixations**: the gaze dwells on a point with small ocular drift
  (fractions of a degree) for 200–600 ms;
- **saccades**: rapid ballistic jumps (tens of degrees within ~30–80 ms)
  to a new fixation target.

The generated trajectory drives :func:`repro.foveation.render_foveated`'s
``gaze`` argument frame by frame; workload follows the gaze, which is what
makes dynamic foveation interesting for the accelerator (the heavy foveal
tiles move across the tile grid).
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class GazeModel:
    """Statistical parameters of the simulated scanpath."""

    fixation_mean_s: float = 0.35
    fixation_min_s: float = 0.15
    drift_deg_per_s: float = 0.5
    saccade_duration_s: float = 0.05
    # Saccade targets are drawn within this fraction of the display extent
    # around the centre (viewers rarely fixate extreme corners).
    target_spread: float = 0.7


def gaze_trajectory(
    width: int,
    height: int,
    n_frames: int,
    fps: float = 90.0,
    model: GazeModel | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Simulate a scanpath, returning per-frame gaze pixels ``(N, 2)``.

    Alternates fixations (with Brownian drift) and linearly interpolated
    saccades; all positions stay inside the display.
    """
    model = model or GazeModel()
    rng = np.random.default_rng(seed)
    dt = 1.0 / fps
    center = np.array([width / 2.0, height / 2.0])
    half = np.array([width / 2.0, height / 2.0]) * model.target_spread

    def sample_target() -> np.ndarray:
        return center + rng.uniform(-1.0, 1.0, size=2) * half

    # Rough pixels-per-degree for drift amplitude (display-agnostic scale).
    px_per_deg = width / 90.0

    gaze = np.empty((n_frames, 2))
    position = sample_target()
    frame = 0
    while frame < n_frames:
        # Fixation.
        duration = max(model.fixation_min_s, rng.exponential(model.fixation_mean_s))
        n_fix = max(1, int(round(duration * fps)))
        drift_sd = model.drift_deg_per_s * px_per_deg * dt
        for _ in range(min(n_fix, n_frames - frame)):
            position = position + rng.normal(scale=drift_sd, size=2)
            position = np.clip(position, [0, 0], [width - 1, height - 1])
            gaze[frame] = position
            frame += 1
        if frame >= n_frames:
            break
        # Saccade to a new target.
        target = sample_target()
        n_sac = max(1, int(round(model.saccade_duration_s * fps)))
        for i in range(min(n_sac, n_frames - frame)):
            t = (i + 1) / n_sac
            gaze[frame] = np.clip(
                position + (target - position) * t, [0, 0], [width - 1, height - 1]
            )
            frame += 1
        position = target
    return gaze


def saccade_frames(gaze: np.ndarray, threshold_px: float = 4.0) -> np.ndarray:
    """Boolean mask of frames whose gaze jumped more than ``threshold_px``."""
    gaze = np.asarray(gaze)
    if gaze.shape[0] < 2:
        return np.zeros(gaze.shape[0], dtype=bool)
    steps = np.linalg.norm(np.diff(gaze, axis=0), axis=1)
    mask = np.zeros(gaze.shape[0], dtype=bool)
    mask[1:] = steps > threshold_px
    return mask
