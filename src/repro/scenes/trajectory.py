"""Camera pose generation: sparse "dataset" poses and smooth trajectories.

The paper notes that dataset camera poses are too sparse to represent
continuous VR rendering, and interpolates between them to produce ~1,440
poses (16 seconds at 90 FPS).  We reproduce both halves: orbit-style sparse
training poses around each scene, and Catmull-Rom-smoothed interpolation
between them for evaluation trajectories.
"""

from __future__ import annotations

import numpy as np

from ..splat.camera import Camera
from .synthetic import SceneSpec, scene_spec

PAPER_TRAJECTORY_POSES = 1440  # 16 s @ 90 FPS
PAPER_TRAJECTORY_FPS = 90.0


def orbit_poses(
    spec: SceneSpec,
    n_poses: int,
    width: int,
    height: int,
    fov_x_deg: float = 70.0,
    seed: int = 0,
) -> list[Camera]:
    """Sparse training-style poses orbiting the scene centre.

    Indoor scenes orbit tighter and lower; outdoor scenes sweep a wider ring,
    mimicking the capture styles of the respective datasets.
    """
    rng = np.random.default_rng(seed)
    radius = spec.extent * (0.8 if spec.indoor else 1.4)
    elevation = spec.extent * (0.2 if spec.indoor else 0.35)
    cameras = []
    for i in range(n_poses):
        angle = 2.0 * np.pi * i / n_poses + rng.normal(scale=0.03)
        pos = np.array(
            [
                radius * np.cos(angle),
                -elevation + rng.normal(scale=0.05 * spec.extent),
                radius * np.sin(angle),
            ]
        )
        target = rng.normal(scale=0.05 * spec.extent, size=3)
        cameras.append(
            Camera.from_fov(
                width=width,
                height=height,
                fov_x_deg=fov_x_deg,
                position=pos,
                look_at=target,
            )
        )
    return cameras


def _catmull_rom(points: np.ndarray, samples_per_segment: int) -> np.ndarray:
    """Closed-loop Catmull-Rom interpolation of ``(K, 3)`` control points."""
    k = points.shape[0]
    out = []
    for i in range(k):
        p0 = points[(i - 1) % k]
        p1 = points[i]
        p2 = points[(i + 1) % k]
        p3 = points[(i + 2) % k]
        ts = np.linspace(0.0, 1.0, samples_per_segment, endpoint=False)
        for t in ts:
            t2, t3 = t * t, t * t * t
            out.append(
                0.5
                * (
                    (2.0 * p1)
                    + (-p0 + p2) * t
                    + (2.0 * p0 - 5.0 * p1 + 4.0 * p2 - p3) * t2
                    + (-p0 + 3.0 * p1 - 3.0 * p2 + p3) * t3
                )
            )
    return np.asarray(out)


def interpolate_trajectory(
    control_cameras: list[Camera],
    n_poses: int,
) -> list[Camera]:
    """Smooth closed trajectory through the control cameras' positions.

    Positions and look-at targets are Catmull-Rom interpolated; intrinsics
    are taken from the first control camera (constant through a trace).
    """
    if len(control_cameras) < 4:
        raise ValueError("need at least 4 control poses for Catmull-Rom interpolation")
    ref = control_cameras[0]
    positions = np.asarray([c.position for c in control_cameras])
    # Recover each camera's look-at point one unit along its forward axis.
    forwards = np.asarray([c.world_to_cam_rotation[2] for c in control_cameras])
    targets = positions + forwards

    per_segment = max(1, n_poses // len(control_cameras))
    smooth_pos = _catmull_rom(positions, per_segment)
    smooth_tgt = _catmull_rom(targets, per_segment)

    cameras = []
    for pos, tgt in zip(smooth_pos[:n_poses], smooth_tgt[:n_poses]):
        cameras.append(
            Camera.from_fov(
                width=ref.width,
                height=ref.height,
                fov_x_deg=ref.fov_x_deg,
                position=pos,
                look_at=tgt,
            )
        )
    return cameras


def trace_cameras(
    name: str,
    n_train: int = 8,
    n_eval: int = 4,
    width: int = 128,
    height: int = 96,
    fov_x_deg: float = 70.0,
    seed: int = 0,
) -> tuple[list[Camera], list[Camera]]:
    """Convenience: (training poses, smooth evaluation poses) for a trace."""
    spec = scene_spec(name)
    train = orbit_poses(spec, n_train, width, height, fov_x_deg, seed=seed)
    # Catmull-Rom needs ≥ 4 control points; pad with extra orbit poses if the
    # caller asked for a very sparse training set.
    controls = train if len(train) >= 4 else orbit_poses(
        spec, 4, width, height, fov_x_deg, seed=seed
    )
    n_interp = max(n_eval, len(controls))
    smooth = interpolate_trajectory(controls, n_interp)
    step = max(1, len(smooth) // n_eval)
    return train, smooth[::step][:n_eval]
