"""Procedural ground-truth scenes standing in for the paper's datasets.

The paper evaluates on 13 traces: nine Mip-NeRF 360 scenes (bicycle, garden,
stump, room, counter, kitchen, bonsai, flowers, treehill), two Tanks&Temples
scenes (truck, train) and two DeepBlending scenes (drjohnson, playroom).  We
have none of that data offline, so each trace gets a procedural Gaussian
scene with matched qualitative structure:

- *outdoor* traces: large spatial extent, a textured ground plane, several
  foreground clutter clusters and a sparse far background shell;
- *indoor* traces: a bounded room box (walls as flattened Gaussians), dense
  furniture-like clusters.

Relative complexity (point budget multipliers) follows the real datasets —
bicycle/garden are the heaviest, DeepBlending rooms the lightest — so the
per-trace spread in figures like Fig 3 and Fig 14 survives the substitution.

The generated model is the *ground truth*: evaluation images are rendered
from it, and "trained" models (3DGS, Mini-Splatting-D, …) are derived from
it by :mod:`repro.baselines` with dataset-style redundancy injected.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..splat.gaussians import GaussianModel, inverse_sigmoid, normalize_quaternions
from ..splat.sh import num_sh_coeffs, rgb_to_dc


@dataclasses.dataclass(frozen=True)
class SceneSpec:
    """Static description of one dataset trace."""

    name: str
    dataset: str
    indoor: bool
    complexity: float  # point-budget multiplier relative to the median trace
    extent: float  # world-space half-extent of the main content


SCENE_SPECS: dict[str, SceneSpec] = {
    # Mip-NeRF 360 (outdoor)
    "bicycle": SceneSpec("bicycle", "mipnerf360", False, 1.8, 8.0),
    "garden": SceneSpec("garden", "mipnerf360", False, 1.6, 7.0),
    "stump": SceneSpec("stump", "mipnerf360", False, 1.3, 6.0),
    "flowers": SceneSpec("flowers", "mipnerf360", False, 1.4, 6.0),
    "treehill": SceneSpec("treehill", "mipnerf360", False, 1.4, 7.0),
    # Mip-NeRF 360 (indoor)
    "room": SceneSpec("room", "mipnerf360", True, 1.0, 4.0),
    "counter": SceneSpec("counter", "mipnerf360", True, 1.0, 3.5),
    "kitchen": SceneSpec("kitchen", "mipnerf360", True, 1.1, 4.0),
    "bonsai": SceneSpec("bonsai", "mipnerf360", True, 0.9, 3.0),
    # Tanks & Temples
    "truck": SceneSpec("truck", "tanksandtemples", False, 1.2, 6.0),
    "train": SceneSpec("train", "tanksandtemples", False, 1.1, 6.5),
    # Deep Blending
    "drjohnson": SceneSpec("drjohnson", "deepblending", True, 0.9, 4.0),
    "playroom": SceneSpec("playroom", "deepblending", True, 0.8, 3.5),
}

ALL_TRACES: tuple[str, ...] = tuple(SCENE_SPECS)
MIPNERF360_TRACES: tuple[str, ...] = tuple(
    name for name, spec in SCENE_SPECS.items() if spec.dataset == "mipnerf360"
)
DATASETS: tuple[str, ...] = ("mipnerf360", "tanksandtemples", "deepblending")


def _seed_for(name: str) -> int:
    """Stable per-trace seed (independent of PYTHONHASHSEED)."""
    return sum(ord(ch) * (31**i) for i, ch in enumerate(name)) % (2**31)


def _cluster(
    rng: np.random.Generator,
    n: int,
    center: np.ndarray,
    spread: np.ndarray,
    scale_range: tuple[float, float],
    base_color: np.ndarray,
    sh_degree: int,
) -> GaussianModel:
    """A blob of Gaussians around ``center`` with colour variation."""
    k = num_sh_coeffs(sh_degree)
    positions = rng.normal(loc=center, scale=spread, size=(n, 3))
    log_scales = np.log(rng.uniform(*scale_range, size=(n, 3)))
    rotations = normalize_quaternions(rng.normal(size=(n, 4)))
    opacity = inverse_sigmoid(rng.uniform(0.55, 0.98, size=n))
    colors = np.clip(base_color + rng.normal(scale=0.12, size=(n, 3)), 0.02, 0.98)
    sh = np.zeros((n, k, 3))
    sh[:, 0, :] = rgb_to_dc(colors)
    if k > 1:
        sh[:, 1:, :] = rng.normal(scale=0.04, size=(n, k - 1, 3))
    return GaussianModel(positions, log_scales, rotations, opacity, sh)


def _plane(
    rng: np.random.Generator,
    n: int,
    extent: float,
    offset: float,
    base_color: np.ndarray,
    sh_degree: int,
    normal_axis: int = 1,
) -> GaussianModel:
    """A planar slab of flattened Gaussians.

    ``normal_axis`` selects the plane's normal (0 = x wall, 1 = y floor,
    2 = z back wall); ``offset`` places the plane along that axis.
    """
    k = num_sh_coeffs(sh_degree)
    in_plane = [axis for axis in range(3) if axis != normal_axis]
    positions = np.empty((n, 3))
    positions[:, normal_axis] = offset + rng.normal(scale=0.02, size=n)
    for axis in in_plane:
        positions[:, axis] = rng.uniform(-extent, extent, size=n)
    # Flat along the normal, broad in the plane.
    scales = np.empty((n, 3))
    scales[:, normal_axis] = rng.uniform(0.01, 0.03, size=n)
    for axis in in_plane:
        scales[:, axis] = rng.uniform(0.08, 0.25, size=n)
    log_scales = np.log(scales)
    rotations = np.tile(np.array([1.0, 0.0, 0.0, 0.0]), (n, 1))
    opacity = inverse_sigmoid(rng.uniform(0.7, 0.98, size=n))
    colors = np.clip(base_color + rng.normal(scale=0.08, size=(n, 3)), 0.02, 0.98)
    sh = np.zeros((n, k, 3))
    sh[:, 0, :] = rgb_to_dc(colors)
    return GaussianModel(positions, log_scales, rotations, opacity, sh)


def _background_shell(
    rng: np.random.Generator,
    n: int,
    radius: float,
    sh_degree: int,
) -> GaussianModel:
    """Sparse distant shell (sky/far geometry) for outdoor scenes."""
    k = num_sh_coeffs(sh_degree)
    directions = rng.normal(size=(n, 3))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    directions[:, 1] = -np.abs(directions[:, 1]) * 0.5  # keep above the horizon
    positions = directions * radius
    log_scales = np.log(rng.uniform(0.4, 1.2, size=(n, 3)))
    rotations = normalize_quaternions(rng.normal(size=(n, 4)))
    opacity = inverse_sigmoid(rng.uniform(0.4, 0.8, size=n))
    sky = np.array([0.55, 0.65, 0.85])
    colors = np.clip(sky + rng.normal(scale=0.1, size=(n, 3)), 0.02, 0.98)
    sh = np.zeros((n, k, 3))
    sh[:, 0, :] = rgb_to_dc(colors)
    return GaussianModel(positions, log_scales, rotations, opacity, sh)


def generate_scene(
    name: str,
    n_points: int = 4000,
    sh_degree: int = 1,
    seed: int | None = None,
) -> GaussianModel:
    """Generate the ground-truth Gaussian scene for a trace.

    Parameters
    ----------
    name:
        One of the 13 trace names in :data:`SCENE_SPECS`.
    n_points:
        Point budget for a complexity-1.0 trace; the actual count scales
        with the trace's complexity multiplier.
    sh_degree:
        SH degree of the generated model (1 keeps tests fast; 3 matches
        full 3DGS).
    seed:
        Optional explicit seed; defaults to a stable per-trace seed.
    """
    if name not in SCENE_SPECS:
        raise KeyError(f"unknown trace {name!r}; valid traces: {sorted(SCENE_SPECS)}")
    spec = SCENE_SPECS[name]
    rng = np.random.default_rng(_seed_for(name) if seed is None else seed)
    total = max(64, int(n_points * spec.complexity))

    parts: list[GaussianModel] = []
    palette = rng.uniform(0.15, 0.85, size=(6, 3))

    if spec.indoor:
        n_walls = total // 4
        n_floor = total // 8
        n_objects = total - n_walls - n_floor
        # Floor (world +y is "down": cameras use an up vector of -y) and two
        # vertical walls at the back (+z) and side (+x) of the room.
        parts.append(
            _plane(rng, n_floor, spec.extent, spec.extent * 0.5, palette[0], sh_degree, 1)
        )
        parts.append(
            _plane(rng, n_walls // 2, spec.extent, spec.extent, palette[1], sh_degree, 2)
        )
        parts.append(
            _plane(rng, n_walls - n_walls // 2, spec.extent, spec.extent, palette[1], sh_degree, 0)
        )
        n_clusters = 5
    else:
        n_ground = total // 4
        n_shell = total // 10
        n_objects = total - n_ground - n_shell
        parts.append(
            _plane(rng, n_ground, spec.extent, spec.extent * 0.35, palette[0], sh_degree, 1)
        )
        parts.append(_background_shell(rng, n_shell, spec.extent * 3.0, sh_degree))
        n_clusters = 7

    per_cluster = max(1, n_objects // n_clusters)
    for i in range(n_clusters):
        center = rng.uniform(-spec.extent * 0.45, spec.extent * 0.45, size=3)
        center[1] = rng.uniform(-spec.extent * 0.1, spec.extent * 0.3)
        spread = rng.uniform(0.2, 0.9, size=3) * (spec.extent / 5.0)
        color = palette[2 + i % 4]
        parts.append(
            _cluster(rng, per_cluster, center, spread, (0.03, 0.12), color, sh_degree)
        )

    return GaussianModel.concatenate(parts)


def scene_spec(name: str) -> SceneSpec:
    """Look up a trace's static description."""
    if name not in SCENE_SPECS:
        raise KeyError(f"unknown trace {name!r}")
    return SCENE_SPECS[name]


def traces_for_dataset(dataset: str) -> list[str]:
    """All trace names belonging to one of the three datasets."""
    if dataset not in DATASETS:
        raise KeyError(f"unknown dataset {dataset!r}; valid: {DATASETS}")
    return [name for name, spec in SCENE_SPECS.items() if spec.dataset == dataset]
