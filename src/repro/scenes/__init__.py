"""Dataset substitute: procedural scenes and camera trajectories.

Stands in for Mip-NeRF 360, Tanks & Temples and Deep Blending (13 traces);
see DESIGN.md for the substitution rationale.
"""

from .synthetic import (
    ALL_TRACES,
    DATASETS,
    MIPNERF360_TRACES,
    SCENE_SPECS,
    SceneSpec,
    generate_scene,
    scene_spec,
    traces_for_dataset,
)
from .gaze import GazeModel, gaze_trajectory, saccade_frames
from .trajectory import (
    PAPER_TRAJECTORY_FPS,
    PAPER_TRAJECTORY_POSES,
    interpolate_trajectory,
    orbit_poses,
    trace_cameras,
)

__all__ = [
    "ALL_TRACES",
    "GazeModel",
    "gaze_trajectory",
    "saccade_frames",
    "DATASETS",
    "MIPNERF360_TRACES",
    "PAPER_TRAJECTORY_FPS",
    "PAPER_TRAJECTORY_POSES",
    "SCENE_SPECS",
    "SceneSpec",
    "generate_scene",
    "interpolate_trajectory",
    "orbit_poses",
    "scene_spec",
    "trace_cameras",
    "traces_for_dataset",
]
