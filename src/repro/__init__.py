"""repro — a reproduction of MetaSapiens (ASPLOS 2025).

Real-time point-based neural rendering with efficiency-aware pruning,
foveated rendering, and accelerator support.  Subpackages:

- :mod:`repro.splat`      — Gaussian-splatting substrate (render pipeline)
- :mod:`repro.scenes`     — procedural dataset stand-ins + trajectories
- :mod:`repro.hvs`        — human-visual-system model and quality metrics
- :mod:`repro.train`      — differentiable fine-tuning substrate
- :mod:`repro.core`       — efficiency-aware pruning (contribution #1)
- :mod:`repro.foveation`  — foveated PBNR (contribution #2)
- :mod:`repro.baselines`  — the seven comparison PBNR models
- :mod:`repro.perf`       — mobile-GPU performance model
- :mod:`repro.accel`      — accelerator simulator (contribution #3)
- :mod:`repro.study`      — simulated 2IFC user study
- :mod:`repro.harness`    — end-to-end experiment helpers
"""

from . import accel, baselines, compress, core, foveation, harness, hvs, perf, scenes, splat, study, train
from .harness import (
    EVAL_LEVEL_FRACTIONS,
    EVAL_REGION_LAYOUT,
    MetaSapiensModels,
    MethodMeasurement,
    TraceSetup,
    build_metasapiens,
    measure_baseline,
    measure_foveated,
    setup_trace,
)
from .splat import Camera, GaussianModel, RenderConfig, render

__version__ = "1.0.0"

__all__ = [
    "Camera",
    "EVAL_LEVEL_FRACTIONS",
    "EVAL_REGION_LAYOUT",
    "GaussianModel",
    "MetaSapiensModels",
    "MethodMeasurement",
    "RenderConfig",
    "TraceSetup",
    "accel",
    "baselines",
    "build_metasapiens",
    "compress",
    "core",
    "foveation",
    "harness",
    "hvs",
    "measure_baseline",
    "measure_foveated",
    "perf",
    "render",
    "scenes",
    "setup_trace",
    "splat",
    "study",
    "train",
]
