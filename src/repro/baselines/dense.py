"""Dense PBNR baselines: 3DGS, Mini-Splatting-D, Mip-Splatting, StopThePop.

We have no way to run the authors' training pipelines offline, so each dense
baseline is *derived from the ground-truth scene* with the redundancy its
training procedure is known to produce (DESIGN.md, substitution table):

- **3DGS**: adaptive densification leaves many near-duplicate, bloated
  Gaussians — we add jittered low-opacity clones and mild scale bloat, plus
  slight colour error.  Some clone points receive pose-inconsistent colour
  (the "incorrect luminance changes" the paper's user-study participants
  noticed in dense models — Sec 7.1).
- **Mini-Splatting-D**: densification with better point *distribution* —
  clones are well-placed and small; least colour error (quality reference).
- **Mip-Splatting**: a 3DGS-like model *rendered with the 3D smoothing
  filter* (implemented in the projection stage).
- **StopThePop**: a 3DGS-like model *rendered with per-pixel depth ordering*
  (implemented in the rasterizer).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..splat.gaussians import GaussianModel, inverse_sigmoid
from ..splat.renderer import RenderConfig


@dataclasses.dataclass
class BaselineModel:
    """A named baseline: the model plus the renderer options it needs."""

    name: str
    model: GaussianModel
    render_config: RenderConfig
    dense: bool
    # Fraction of points with pose-inconsistent colour (temporal flicker);
    # consumed by the simulated user study.
    flicker_fraction: float = 0.0


def _densify(
    scene: GaussianModel,
    rng: np.random.Generator,
    clone_fraction: float,
    jitter: float,
    clone_opacity: tuple[float, float],
    scale_bloat: float,
    color_noise: float,
) -> GaussianModel:
    """Simulate training redundancy: jittered clones + parameter noise."""
    n_clones = int(scene.num_points * clone_fraction)
    base = scene.copy()
    if color_noise > 0.0:
        base.sh[:, 0, :] += rng.normal(scale=color_noise, size=(base.num_points, 3))

    if n_clones == 0:
        return base

    idx = rng.choice(scene.num_points, size=n_clones, replace=True)
    clones = scene.subset(idx)
    spread = np.exp(clones.log_scales.mean(axis=1, keepdims=True))
    clones.positions += rng.normal(scale=jitter, size=(n_clones, 3)) * spread
    clones.opacity_logits[:] = inverse_sigmoid(rng.uniform(*clone_opacity, size=n_clones))
    clones.log_scales += np.log(scale_bloat) + rng.normal(scale=0.1, size=(n_clones, 3))
    clones.sh[:, 0, :] += rng.normal(scale=color_noise * 2.0, size=(n_clones, 3))
    return GaussianModel.concatenate([base, clones])


def make_3dgs(scene: GaussianModel, seed: int = 0) -> BaselineModel:
    """A "trained 3DGS checkpoint": heavy redundancy, bloated scales."""
    rng = np.random.default_rng(seed)
    model = _densify(
        scene,
        rng,
        clone_fraction=1.0,
        jitter=0.6,
        clone_opacity=(0.05, 0.45),
        scale_bloat=1.35,
        color_noise=0.02,
    )
    return BaselineModel(
        name="3DGS",
        model=model,
        render_config=RenderConfig(),
        dense=True,
        flicker_fraction=0.08,
    )


def make_mini_splatting_d(scene: GaussianModel, seed: int = 1) -> BaselineModel:
    """Mini-Splatting-D: dense but well-distributed — the quality reference."""
    rng = np.random.default_rng(seed)
    model = _densify(
        scene,
        rng,
        clone_fraction=0.8,
        jitter=0.25,
        clone_opacity=(0.15, 0.6),
        scale_bloat=0.9,
        color_noise=0.008,
    )
    return BaselineModel(
        name="Mini-Splatting-D",
        model=model,
        render_config=RenderConfig(),
        dense=True,
        flicker_fraction=0.05,
    )


def make_mip_splatting(scene: GaussianModel, seed: int = 2) -> BaselineModel:
    """Mip-Splatting: 3DGS-like model + the 3D smoothing filter at render."""
    rng = np.random.default_rng(seed)
    model = _densify(
        scene,
        rng,
        clone_fraction=0.9,
        jitter=0.45,
        clone_opacity=(0.1, 0.5),
        scale_bloat=1.15,
        color_noise=0.012,
    )
    return BaselineModel(
        name="Mip-Splatting",
        model=model,
        render_config=RenderConfig(smoothing_3d=1.0),
        dense=True,
        flicker_fraction=0.05,
    )


def make_stopthepop(scene: GaussianModel, seed: int = 3) -> BaselineModel:
    """StopThePop: 3DGS-like model + per-pixel sorted compositing."""
    rng = np.random.default_rng(seed)
    model = _densify(
        scene,
        rng,
        clone_fraction=0.95,
        jitter=0.5,
        clone_opacity=(0.08, 0.5),
        scale_bloat=1.25,
        color_noise=0.015,
    )
    return BaselineModel(
        name="StopThePop",
        model=model,
        render_config=RenderConfig(per_pixel_sort=True),
        dense=True,
        flicker_fraction=0.02,  # view-consistent ordering removes most popping
    )
