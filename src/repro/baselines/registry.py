"""Registry assembling all seven comparison baselines for a trace."""

from __future__ import annotations

from typing import Sequence

from ..splat.camera import Camera
from ..splat.gaussians import GaussianModel
from .dense import (
    BaselineModel,
    make_3dgs,
    make_mini_splatting_d,
    make_mip_splatting,
    make_stopthepop,
)
from .pruned import make_compactgs, make_lightgs, make_mini_splatting

DENSE_BASELINES = ("3DGS", "Mini-Splatting-D", "Mip-Splatting", "StopThePop")
PRUNED_BASELINES = ("LightGS", "CompactGS", "Mini-Splatting")
ALL_BASELINES = DENSE_BASELINES + PRUNED_BASELINES

# Fig 3 compares this subset (the five models the paper profiles on Xavier).
FIG3_BASELINES = ("3DGS", "Mini-Splatting-D", "CompactGS", "LightGS", "Mini-Splatting")


def build_baseline(
    name: str,
    scene: GaussianModel,
    cameras: Sequence[Camera],
    seed: int = 0,
) -> BaselineModel:
    """Build one baseline by name from the ground-truth scene.

    Pruned baselines are derived from their parent dense model exactly as in
    the paper: LightGS and CompactGS prune 3DGS; Mini-Splatting prunes
    Mini-Splatting-D.
    """
    if name == "3DGS":
        return make_3dgs(scene, seed=seed)
    if name == "Mini-Splatting-D":
        return make_mini_splatting_d(scene, seed=seed + 1)
    if name == "Mip-Splatting":
        return make_mip_splatting(scene, seed=seed + 2)
    if name == "StopThePop":
        return make_stopthepop(scene, seed=seed + 3)
    if name == "LightGS":
        return make_lightgs(make_3dgs(scene, seed=seed), cameras, seed=seed)
    if name == "CompactGS":
        return make_compactgs(make_3dgs(scene, seed=seed), cameras, seed=seed)
    if name == "Mini-Splatting":
        return make_mini_splatting(make_mini_splatting_d(scene, seed=seed + 1), cameras, seed=seed)
    raise KeyError(f"unknown baseline {name!r}; valid: {ALL_BASELINES}")


def build_baselines(
    scene: GaussianModel,
    cameras: Sequence[Camera],
    names: Sequence[str] = ALL_BASELINES,
    seed: int = 0,
) -> dict[str, BaselineModel]:
    """Build several baselines, sharing parent dense models where possible."""
    results: dict[str, BaselineModel] = {}
    parent_3dgs: BaselineModel | None = None
    parent_msd: BaselineModel | None = None
    for name in names:
        if name in ("LightGS", "CompactGS"):
            if parent_3dgs is None:
                parent_3dgs = results.get("3DGS") or make_3dgs(scene, seed=seed)
            if name == "LightGS":
                results[name] = make_lightgs(parent_3dgs, cameras, seed=seed)
            else:
                results[name] = make_compactgs(parent_3dgs, cameras, seed=seed)
        elif name == "Mini-Splatting":
            if parent_msd is None:
                parent_msd = results.get("Mini-Splatting-D") or make_mini_splatting_d(
                    scene, seed=seed + 1
                )
            results[name] = make_mini_splatting(parent_msd, cameras, seed=seed)
        else:
            results[name] = build_baseline(name, scene, cameras, seed=seed)
            if name == "3DGS":
                parent_3dgs = results[name]
            elif name == "Mini-Splatting-D":
                parent_msd = results[name]
    return results
