"""The seven PBNR comparison baselines of the paper's evaluation."""

from .dense import (
    BaselineModel,
    make_3dgs,
    make_mini_splatting_d,
    make_mip_splatting,
    make_stopthepop,
)
from .pruned import lightgs_scores, make_compactgs, make_lightgs, make_mini_splatting
from .registry import (
    ALL_BASELINES,
    DENSE_BASELINES,
    FIG3_BASELINES,
    PRUNED_BASELINES,
    build_baseline,
    build_baselines,
)

__all__ = [
    "ALL_BASELINES",
    "BaselineModel",
    "DENSE_BASELINES",
    "FIG3_BASELINES",
    "PRUNED_BASELINES",
    "build_baseline",
    "build_baselines",
    "lightgs_scores",
    "make_3dgs",
    "make_compactgs",
    "make_lightgs",
    "make_mini_splatting",
    "make_mini_splatting_d",
    "make_mip_splatting",
    "make_stopthepop",
]
