"""Pruned PBNR baselines: LightGS, CompactGS, Mini-Splatting.

Each implements the pruning criterion of the corresponding paper — all of
them *point-count-oriented* (they score points by visual contribution but
ignore per-point compute cost), which is exactly the deficiency the
MetaSapiens CE metric addresses (Sec 3.1):

- **LightGS** (LightGaussian): global significance = accumulated hit count
  weighted by opacity and a volume term; prune the lowest-scoring points.
- **CompactGS**: a learned removal mask, in practice dominated by opacity —
  modelled as opacity-threshold pruning.
- **Mini-Splatting**: importance *sampling* — points are kept with
  probability proportional to their rendering contribution.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..splat.camera import Camera
from ..splat.gaussians import GaussianModel
from ..splat.renderer import RenderConfig, render
from .dense import BaselineModel


def _accumulate_stats(
    model: GaussianModel,
    cameras: Sequence[Camera],
    config: RenderConfig | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """(total tile usage, total dominated pixels) across poses."""
    usage = np.zeros(model.num_points)
    dominated = np.zeros(model.num_points)
    for camera in cameras:
        stats = render(model, camera, config).stats
        usage += stats.tiles_per_point
        dominated += stats.dominated_pixels
    return usage, dominated


def lightgs_scores(
    model: GaussianModel,
    cameras: Sequence[Camera],
    config: RenderConfig | None = None,
    volume_power: float = 0.5,
) -> np.ndarray:
    """LightGaussian's global significance score per point."""
    usage, _ = _accumulate_stats(model, cameras, config)
    volume = np.prod(model.scales, axis=1)
    volume_norm = (volume / max(volume.max(), 1e-12)) ** volume_power
    return usage * model.opacities * volume_norm


def make_lightgs(
    dense: BaselineModel,
    cameras: Sequence[Camera],
    prune_fraction: float = 0.66,
    seed: int = 0,
) -> BaselineModel:
    """LightGS: prune the lowest-significance fraction of a 3DGS model."""
    scores = lightgs_scores(dense.model, cameras, dense.render_config)
    order = np.argsort(scores, kind="stable")
    n_remove = min(int(dense.model.num_points * prune_fraction), dense.model.num_points - 1)
    kept = np.sort(order[n_remove:])
    return BaselineModel(
        name="LightGS",
        model=dense.model.subset(kept),
        render_config=dense.render_config,
        dense=False,
        flicker_fraction=dense.flicker_fraction * 0.6,
    )


def make_compactgs(
    dense: BaselineModel,
    cameras: Sequence[Camera],
    prune_fraction: float = 0.6,
    seed: int = 0,
) -> BaselineModel:
    """CompactGS: learned-mask pruning, modelled as opacity-ordered removal."""
    opacities = dense.model.opacities
    order = np.argsort(opacities, kind="stable")
    n_remove = min(int(dense.model.num_points * prune_fraction), dense.model.num_points - 1)
    kept = np.sort(order[n_remove:])
    return BaselineModel(
        name="CompactGS",
        model=dense.model.subset(kept),
        render_config=dense.render_config,
        dense=False,
        flicker_fraction=dense.flicker_fraction * 0.7,
    )


def make_mini_splatting(
    dense: BaselineModel,
    cameras: Sequence[Camera],
    keep_fraction: float = 0.3,
    seed: int = 0,
) -> BaselineModel:
    """Mini-Splatting: importance sampling by rendering contribution."""
    rng = np.random.default_rng(seed)
    _, dominated = _accumulate_stats(dense.model, cameras, dense.render_config)
    importance = dominated + 1e-3  # every point keeps a small chance
    prob = importance / importance.sum()
    n_keep = max(1, int(dense.model.num_points * keep_fraction))
    kept = np.sort(
        rng.choice(dense.model.num_points, size=n_keep, replace=False, p=prob)
    )
    return BaselineModel(
        name="Mini-Splatting",
        model=dense.model.subset(kept),
        render_config=dense.render_config,
        dense=False,
        flicker_fraction=dense.flicker_fraction * 0.5,
    )
