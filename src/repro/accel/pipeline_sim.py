"""Cycle-level simulation of the tile pipeline (Fig 10).

Three stages — Projection, Sorting, Rasterization — pipelined over (merged)
tiles.  Two inter-stage handoff disciplines:

- **Double buffering** (baseline): a stage may run at most one tile ahead of
  its consumer; the consumer starts a tile only when the producer has
  finished it entirely.  Imbalanced tiles stall the pipe (Fig 10 top).
- **Incremental pipelining** (ours): line buffers let the consumer start on
  the first sub-tile as soon as it is produced, and stages proceed
  rate-matched; a tile's rasterization can no longer be delayed by the tail
  of its own sorting (Fig 10 bottom).

Per-tile stage cycles:

- projection: ``n / num_ccu`` (points stream through the CCUs),
- sorting:    ``n · ceil(log2 n) / (lanes · units)`` (hierarchical merge),
- raster:     ``n · ceil(tile_pixels / num_vrc)`` per constituent tile
  (the VRC array applies one splat to the whole sub-array per cycle).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .config import AcceleratorConfig
from .tile_merge import MergedTiles, auto_threshold, identity_merge, merge_tiles


@dataclasses.dataclass
class PipelineResult:
    """Timing of one frame through the accelerator."""

    total_cycles: float
    sort_busy_cycles: float
    raster_busy_cycles: float
    num_scheduled_tiles: int
    config: AcceleratorConfig

    @property
    def raster_utilization(self) -> float:
        """Fraction of the makespan the VRC array is busy — the paper's
        'low hardware utilization' problem is exactly this number."""
        if self.total_cycles == 0:
            return 0.0
        return self.raster_busy_cycles / self.total_cycles

    def latency_ms(self) -> float:
        return self.total_cycles / (self.config.frequency_ghz * 1e6)


def stage_cycles(
    group_counts: np.ndarray,
    group_sizes: np.ndarray,
    config: AcceleratorConfig,
    sort_work: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(projection, sorting, rasterization) cycles per scheduled tile.

    ``sort_work`` overrides the sorting stage's synthetic
    ``n · ceil(log2 n)`` estimate with a measured per-group element-step
    workload (e.g. :func:`repro.accel.spans.spans_to_sort_work`'s span
    group lengths); it shares the estimate's units, so both divide by the
    same sorter throughput.
    """
    n = np.asarray(group_counts, dtype=np.float64)
    sizes = np.asarray(group_sizes, dtype=np.float64)

    proj = n / config.num_ccu
    if sort_work is None:
        log_n = np.ceil(np.log2(np.maximum(n, 2.0)))
        sort_work = n * log_n
    else:
        sort_work = np.asarray(sort_work, dtype=np.float64)
    sort = sort_work / (config.sort_lanes * config.num_sort_units)
    # A VRC array smaller than a tile needs several passes per splat; an
    # array larger than a tile rasterizes several splats in parallel
    # (sub-array replication), hence the fractional pass count.
    passes = config.tile_pixels / config.raster_pixels_per_cycle
    raster = n * passes + sizes  # +1 cycle per constituent tile for writeback
    return proj, sort, raster


def simulate_pipeline(
    intersections_per_tile: np.ndarray,
    config: AcceleratorConfig,
    merge_threshold: float | None = None,
    sort_work_per_tile: np.ndarray | None = None,
) -> PipelineResult:
    """Simulate one frame; returns makespan and per-stage busy time.

    ``sort_work_per_tile`` drives the sorting stage from a measured
    per-tile workload (aligned with ``intersections_per_tile``; see
    :func:`stage_cycles`) instead of the synthetic count-based estimate.
    It is aggregated over merged tiles exactly like the counts; work on
    tiles whose intersection count is zero is dropped with them.
    """
    all_counts = np.asarray(intersections_per_tile, dtype=np.float64)
    sort_work = None
    if sort_work_per_tile is not None:
        sort_work = np.asarray(sort_work_per_tile, dtype=np.float64)
        if sort_work.shape != all_counts.shape:
            raise ValueError(
                f"sort_work_per_tile must align with intersections_per_tile: "
                f"{sort_work.shape} vs {all_counts.shape}"
            )
    nonzero = all_counts > 0
    counts = all_counts[nonzero]
    if counts.size == 0:
        return PipelineResult(0.0, 0.0, 0.0, 0, config)
    if sort_work is not None:
        sort_work = sort_work[nonzero]

    if config.tile_merge:
        beta = merge_threshold if merge_threshold is not None else auto_threshold(counts)
        merged: MergedTiles = merge_tiles(counts, beta)
    else:
        merged = identity_merge(counts)
    if sort_work is not None:
        sort_work = np.bincount(
            merged.group_of_tile, weights=sort_work, minlength=merged.num_groups
        )

    proj, sort, raster = stage_cycles(
        merged.group_counts, merged.group_sizes, config, sort_work=sort_work
    )
    k = merged.num_groups

    end_proj = np.zeros(k)
    end_sort = np.zeros(k)
    start_raster = np.zeros(k)
    end_raster = np.zeros(k)

    if config.incremental_pipelining:
        # Sub-tile startup latency: the sorter must emit the first chunk
        # before the VRCs can start (one line-buffer row's worth of work).
        startup = np.minimum(
            sort, config.line_buffer_rows * config.tile_pixels / config.raster_pixels_per_cycle
        )
        for i in range(k):
            prev_end_proj = end_proj[i - 1] if i else 0.0
            end_proj[i] = max(prev_end_proj, end_sort[i - 1] - sort[i] if i else 0.0) + proj[i]
            start_sort = max(end_sort[i - 1] if i else 0.0, end_proj[i])
            end_sort[i] = start_sort + sort[i]
            # Raster streams behind sorting: may start once the first chunk
            # lands, finishes no earlier than its own work or the sort tail.
            start_raster[i] = max(end_raster[i - 1] if i else 0.0, start_sort + startup[i])
            end_raster[i] = max(start_raster[i] + raster[i], end_sort[i])
    else:
        for i in range(k):
            # Double-buffer constraint: producer may run one tile ahead.
            proj_gate = end_sort[i - 2] if i >= 2 else 0.0
            end_proj[i] = max(end_proj[i - 1] if i else 0.0, proj_gate) + proj[i]
            sort_gate = end_raster[i - 2] if i >= 2 else 0.0
            start_sort = max(end_sort[i - 1] if i else 0.0, end_proj[i], sort_gate)
            end_sort[i] = start_sort + sort[i]
            start_raster[i] = max(end_raster[i - 1] if i else 0.0, end_sort[i])
            end_raster[i] = start_raster[i] + raster[i]

    return PipelineResult(
        total_cycles=float(end_raster[-1]),
        sort_busy_cycles=float(sort.sum()),
        raster_busy_cycles=float(raster.sum()),
        num_scheduled_tiles=k,
        config=config,
    )
