"""Area model (TSMC 16nm, mm²) — Sec 6 / Sec 7.5.

Per-unit budgets are fitted to the paper's reported breakdown: the full
MetaSapiens design is 2.73 mm² with the VRC array at 63%, SRAMs at 7% and
the remaining stages ~30%; GSCore (scaled to 16nm via DeepScaleTool in the
paper) is 1.45 mm².  Fig 15 sweeps both designs by proportional resource
scaling; :func:`area_mm2` recomputes area from unit counts so the sweep's
x-axis is honest about what each configuration contains.
"""

from __future__ import annotations

from .config import GSCORE, METASAPIENS_TM_IP, AcceleratorConfig

# Unit areas in mm² (16 nm).
AREA_PER_VRC = 1.72 / 256  # 16×16 array = 1.72 mm² (63% of 2.73)
AREA_PER_SORT_UNIT = 0.33
AREA_PER_CCU = 0.040
AREA_SRAM_PER_KB = 0.0024
AREA_MISC = 0.11  # NoC, control, DRAM PHY share
AREA_FR_UNITS = 0.02  # foveation filter + blend units (tiny adders/lerps)
AREA_TMU = 0.015  # tile-merge counters/aggregator


def sram_kb(config: AcceleratorConfig) -> float:
    """Total SRAM capacity implied by a configuration (KB).

    Incremental pipelining replaces the inter-stage double buffers with line
    buffers (1 KB each, one per VRC row) — the paper's energy win in Sec 7.3
    comes from exactly this substitution.
    """
    if config.incremental_pipelining:
        inter_stage = 2 * config.vrc_rows * config.line_buffer_bytes / 1024.0
    else:
        inter_stage = 2 * config.double_buffer_bytes / 1024.0
    sort_scratch = config.num_sort_units * 16.0  # sorter working SRAM
    return inter_stage + sort_scratch


def area_mm2(config: AcceleratorConfig) -> float:
    """Total area of a configuration under the per-unit budgets."""
    area = (
        config.num_vrc * AREA_PER_VRC
        + config.num_sort_units * AREA_PER_SORT_UNIT
        + config.num_ccu * AREA_PER_CCU
        + sram_kb(config) * AREA_SRAM_PER_KB
        + AREA_MISC
    )
    if config.fr_support:
        area += AREA_FR_UNITS
    if config.tile_merge:
        area += AREA_TMU
    return area


def reference_areas() -> dict[str, float]:
    """Areas of the two headline designs (≈ 2.73 and ≈ 1.45 mm²)."""
    return {
        "MetaSapiens": area_mm2(METASAPIENS_TM_IP),
        "GSCore": area_mm2(GSCORE),
    }
