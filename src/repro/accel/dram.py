"""DRAM model: four channels of Micron 16 Gb LPDDR3-1600 (Sec 6).

The accelerator streams Gaussian parameters from DRAM during Projection and
writes the frame back after Rasterization.  This module answers the question
the pipeline simulator needs: *is the frame compute-bound or memory-bound?*

LPDDR3-1600 moves 1600 MT/s × 4 bytes per channel ≈ 6.4 GB/s; four channels
give ≈ 25.6 GB/s peak, derated by a utilization factor for real access
streams.  Traffic per frame:

- read: one parameter record per point through Projection (shared across FR
  levels thanks to subsetting — MMFR re-reads per level),
- read/write: intersection records spilled between stages when they exceed
  on-chip buffering (we charge only the spilled fraction),
- write: the final framebuffer.
"""

from __future__ import annotations

import dataclasses

from ..perf.workload import FrameWorkload
from .config import AcceleratorConfig
from .energy import BYTES_PER_INTERSECTION, BYTES_PER_POINT_DRAM
from .scale import WORKLOAD_SCALE

FRAMEBUFFER_BYTES_PER_PIXEL = 4  # RGBA8 output


@dataclasses.dataclass(frozen=True)
class DRAMModel:
    """Bandwidth description of the memory system."""

    channels: int = 4
    transfer_rate_mt_s: float = 1600.0
    bytes_per_transfer: int = 4
    utilization: float = 0.7  # achievable fraction of peak for streams

    @property
    def peak_gb_s(self) -> float:
        return self.channels * self.transfer_rate_mt_s * self.bytes_per_transfer / 1e3

    @property
    def effective_bytes_per_us(self) -> float:
        return self.peak_gb_s * self.utilization * 1e3  # GB/s → B/µs


DEFAULT_DRAM = DRAMModel()


@dataclasses.dataclass
class DRAMTraffic:
    """Per-frame DRAM traffic in bytes (at deployment scale)."""

    parameter_read: float
    intersection_spill: float
    framebuffer_write: float

    @property
    def total_bytes(self) -> float:
        return self.parameter_read + self.intersection_spill + self.framebuffer_write


def frame_traffic(
    workload: FrameWorkload,
    config: AcceleratorConfig,
    image_pixels: int = 96 * 64,
    spill_fraction: float = 0.1,
) -> DRAMTraffic:
    """Estimate one frame's DRAM traffic.

    ``spill_fraction`` is the share of intersection records that overflow
    on-chip buffers and round-trip through DRAM (small for tile-local
    scheduling; larger buffers reduce it further).
    """
    scale = WORKLOAD_SCALE
    points = workload.num_projected * workload.projection_runs * scale
    intersections = workload.raster_splat_pixels / max(config.tile_pixels, 1) * scale
    return DRAMTraffic(
        parameter_read=points * BYTES_PER_POINT_DRAM,
        intersection_spill=intersections * BYTES_PER_INTERSECTION * 2.0 * spill_fraction,
        framebuffer_write=image_pixels * scale * FRAMEBUFFER_BYTES_PER_PIXEL,
    )


def dram_time_ms(
    workload: FrameWorkload,
    config: AcceleratorConfig,
    dram: DRAMModel | None = None,
    **traffic_kwargs,
) -> float:
    """Time to move one frame's DRAM traffic (lower bound, full overlap)."""
    dram = dram or DEFAULT_DRAM
    traffic = frame_traffic(workload, config, **traffic_kwargs)
    return traffic.total_bytes / dram.effective_bytes_per_us / 1e3


def is_memory_bound(
    compute_ms: float,
    workload: FrameWorkload,
    config: AcceleratorConfig,
    dram: DRAMModel | None = None,
) -> bool:
    """Whether the DRAM stream, fully overlapped, exceeds compute time."""
    return dram_time_ms(workload, config, dram) > compute_ms


def bound_latency_ms(
    compute_ms: float,
    workload: FrameWorkload,
    config: AcceleratorConfig,
    dram: DRAMModel | None = None,
) -> float:
    """Frame latency with DRAM overlap: max(compute, memory)."""
    return max(compute_ms, dram_time_ms(workload, config, dram))
