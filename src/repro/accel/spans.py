"""Bridge from the render engine's span lists to the accelerator model.

:func:`repro.accel.pipeline_sim.simulate_pipeline` is driven by a per-tile
workload array.  Historically that array was the tiling stage's
*intersection* counts — a synthetic aggregate that charges every
tile–splat pair the full tile area.  The packed render engine knows
better: its :class:`~repro.splat.backends.segments.RowSpans` carry exactly
the per-row fragments the paper's Sorting/Rasterization stages stream, so
the accelerator simulator can be fed the rasterized workload a real frame
actually produces.

:func:`spans_to_tile_counts` is that adapter.  In ``units="spans"`` it
returns the raw span-row count per tile (each span is one
``tile_size``-wide lane vector of work); ``units="intersections"`` divides
by the tile's row count, yielding tile-equivalent units directly
comparable to — and on realistic footprints smaller than — the synthetic
``intersections_per_tile`` aggregates.
"""

from __future__ import annotations

import numpy as np

from ..splat.backends.segments import RowSpans


def spans_to_tile_counts(
    spans: RowSpans, units: str = "intersections"
) -> np.ndarray:
    """Per-tile rasterization workload from real row-span fragments.

    Returns a ``(num_tiles,)`` float array aligned with the span list's
    tile grid (zero for tiles no span reaches), suitable for
    :func:`repro.accel.pipeline_sim.simulate_pipeline`.

    ``units="spans"`` counts span rows per tile; ``units="intersections"``
    (default) rescales by the rows-per-tile so the numbers live in the
    same tile-equivalent units as ``TileAssignment.intersections_per_tile``
    — a splat whose ellipse reaches only 3 of a 16-row tile then costs
    3/16 of a synthetic intersection, which is exactly the work-
    proportionality the paper's rate-matched pipeline exploits.
    """
    grid = spans.seg.grid
    counts = np.bincount(spans.span_tile, minlength=grid.num_tiles).astype(np.float64)
    if units == "spans":
        return counts
    if units == "intersections":
        return counts / float(grid.tile_size)
    raise ValueError(f"unknown units {units!r}; expected 'spans' or 'intersections'")
