"""Bridge from the render engine's span lists to the accelerator model.

:func:`repro.accel.pipeline_sim.simulate_pipeline` is driven by a per-tile
workload array.  Historically that array was the tiling stage's
*intersection* counts — a synthetic aggregate that charges every
tile–splat pair the full tile area.  The packed render engine knows
better: its :class:`~repro.splat.backends.segments.RowSpans` carry exactly
the per-row fragments the paper's Sorting/Rasterization stages stream, so
the accelerator simulator can be fed the rasterized workload a real frame
actually produces.

:func:`spans_to_tile_counts` is that adapter.  In ``units="spans"`` it
returns the raw span-row count per tile (each span is one
``tile_size``-wide lane vector of work); ``units="intersections"`` divides
by the tile's row count, yielding tile-equivalent units directly
comparable to — and on realistic footprints smaller than — the synthetic
``intersections_per_tile`` aggregates.
"""

from __future__ import annotations

import numpy as np

from ..splat.backends.segments import RowSpans


def spans_to_tile_counts(
    spans: RowSpans, units: str = "intersections"
) -> np.ndarray:
    """Per-tile rasterization workload from real row-span fragments.

    Returns a ``(num_tiles,)`` float array aligned with the span list's
    tile grid (zero for tiles no span reaches), suitable for
    :func:`repro.accel.pipeline_sim.simulate_pipeline`.

    ``units="spans"`` counts span rows per tile; ``units="intersections"``
    (default) rescales by the rows-per-tile so the numbers live in the
    same tile-equivalent units as ``TileAssignment.intersections_per_tile``
    — a splat whose ellipse reaches only 3 of a 16-row tile then costs
    3/16 of a synthetic intersection, which is exactly the work-
    proportionality the paper's rate-matched pipeline exploits.
    """
    grid = spans.seg.grid
    counts = np.bincount(spans.span_tile, minlength=grid.num_tiles).astype(np.float64)
    if units == "spans":
        return counts
    if units == "intersections":
        return counts / float(grid.tile_size)
    raise ValueError(f"unknown units {units!r}; expected 'spans' or 'intersections'")


def spans_to_sort_work(spans: RowSpans) -> np.ndarray:
    """Per-tile sorting workload from the span *group* lengths.

    The incremental pipeline's hierarchical merge sorter emits per-row
    fragment streams: each ``(tile, row)`` group of ``n`` spans costs
    ``n · ceil(log2 max(n, 2))`` element-steps, the same units as the
    synthetic per-tile ``n · ceil(log2 n)`` the simulator's sorting stage
    otherwise charges on intersection counts.  Feed the result to
    :func:`repro.accel.pipeline_sim.simulate_pipeline` via
    ``sort_work_per_tile=`` to price sorting from the fragment lists a real
    frame streams.
    """
    grid = spans.seg.grid
    out = np.zeros(grid.num_tiles, dtype=np.float64)
    if spans.num_spans == 0:
        return out
    lens = spans.groups.lens.astype(np.float64)
    work = lens * np.ceil(np.log2(np.maximum(lens, 2.0)))
    np.add.at(out, spans.group_tile, work)
    return out


def foveated_tile_counts(
    level_spans: dict[int, RowSpans], units: str = "intersections"
) -> np.ndarray:
    """Per-tile rasterization workload of a real *foveated* frame.

    ``level_spans`` is the per-level filtered span dict a span-based
    backend surfaces on :class:`repro.foveation.FRRenderResult` — level
    ``t`` holds exactly the fragments the primary pass rasterized in
    level-``t`` tiles after quality-bound filtering.  Levels partition the
    tile grid, so summing their per-tile counts yields the frame's true
    post-filtering workload (blend-band second passes are charged via the
    frame's ``raster_intersections_per_tile`` statistics instead).
    """
    if not level_spans:
        raise ValueError(
            "empty level_spans; the selected backend does not surface "
            "foveated span lists (the reference oracle reports None)"
        )
    total = None
    for spans in level_spans.values():
        counts = spans_to_tile_counts(spans, units=units)
        total = counts if total is None else total + counts
    return total


def foveated_sort_work(level_spans: dict[int, RowSpans]) -> np.ndarray:
    """Per-tile sorting workload of a real foveated frame (see
    :func:`spans_to_sort_work`), summed over the level-partitioned tiles."""
    if not level_spans:
        raise ValueError(
            "empty level_spans; the selected backend does not surface "
            "foveated span lists (the reference oracle reports None)"
        )
    total = None
    for spans in level_spans.values():
        work = spans_to_sort_work(spans)
        total = work if total is None else total + work
    return total
