"""Tile Merge Unit (TMU) model — Sec 5.2.

The TMU aggregates incoming tiles into *merged tiles* whose cumulative
intersection count stays below a threshold β, evening out the work that
flows down the pipeline.  Hardware-wise it is a two-stage counter/aggregator
in front of the sorting unit; functionally, the pipeline then schedules
merged tiles instead of native tiles.

Merging never reorders tiles (the raster output must land in its native
tile's framebuffer position — each constituent keeps its native tile id,
augmented with the merged-tile id).
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass
class MergedTiles:
    """Result of tile merging: contiguous groups of native tiles."""

    group_of_tile: np.ndarray  # (T,) merged-group index of each native tile
    group_counts: np.ndarray  # (G,) total intersections per merged tile
    group_sizes: np.ndarray  # (G,) native tiles per merged tile

    @property
    def num_groups(self) -> int:
        return int(self.group_counts.shape[0])

    def imbalance(self) -> float:
        """Coefficient of variation of per-group work (lower = better)."""
        counts = self.group_counts.astype(np.float64)
        if counts.size == 0 or counts.mean() == 0:
            return 0.0
        return float(counts.std() / counts.mean())


def merge_tiles(intersections_per_tile: np.ndarray, threshold: float) -> MergedTiles:
    """Greedy streaming merge: accumulate tiles until β would be exceeded.

    A tile that alone exceeds β forms its own group (it cannot be split —
    that is Incremental Pipelining's job).
    """
    counts = np.asarray(intersections_per_tile, dtype=np.float64)
    if threshold <= 0:
        raise ValueError("merge threshold must be positive")

    group_of_tile = np.empty(counts.shape[0], dtype=np.int64)
    group_counts: list[float] = []
    group_sizes: list[int] = []

    acc = 0.0
    size = 0
    group = 0
    for i, c in enumerate(counts):
        if size > 0 and acc + c > threshold:
            group_counts.append(acc)
            group_sizes.append(size)
            group += 1
            acc = 0.0
            size = 0
        group_of_tile[i] = group
        acc += c
        size += 1
    if size > 0:
        group_counts.append(acc)
        group_sizes.append(size)

    return MergedTiles(
        group_of_tile=group_of_tile,
        group_counts=np.asarray(group_counts),
        group_sizes=np.asarray(group_sizes, dtype=np.int64),
    )


def identity_merge(intersections_per_tile: np.ndarray) -> MergedTiles:
    """No merging: one group per native tile (baseline pipeline input)."""
    counts = np.asarray(intersections_per_tile, dtype=np.float64)
    t = counts.shape[0]
    return MergedTiles(
        group_of_tile=np.arange(t, dtype=np.int64),
        group_counts=counts.copy(),
        group_sizes=np.ones(t, dtype=np.int64),
    )


def auto_threshold(intersections_per_tile: np.ndarray, target_groups: int | None = None) -> float:
    """Pick β: default to twice the mean per-tile work (empirically robust)."""
    counts = np.asarray(intersections_per_tile, dtype=np.float64)
    if counts.size == 0:
        return 1.0
    if target_groups:
        return max(1.0, float(counts.sum() / target_groups))
    return max(1.0, 2.0 * float(counts.mean()))
