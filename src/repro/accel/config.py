"""Accelerator configurations (Sec 5 / Sec 6).

The MetaSapiens accelerator builds on GSCore's three-stage tile pipeline
(Projection → Sorting → Rasterization) with re-balanced resources — 8
Culling-and-Conversion Units, a single Hierarchical Sorting Unit, and a
16×16 Volume Rendering Core array — plus the FR filter/blend units and the
two load-balance mechanisms (Tile Merging, Incremental Pipelining).

GSCore's published configuration has 4× fewer VRCs and 2× the sorting units
(Sec 7.5), which we mirror here.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class AcceleratorConfig:
    """Resource + feature description of one accelerator design point."""

    name: str
    num_ccu: int = 8  # Culling & Conversion Units (projection)
    num_sort_units: int = 1  # Hierarchical Sorting Units
    sort_lanes: int = 8  # merge lanes per sorting unit (elems/cycle)
    vrc_rows: int = 16  # Volume Rendering Core array
    vrc_cols: int = 16
    tile_pixels: int = 256  # 16×16 tiles
    frequency_ghz: float = 1.0
    # Load-balance features.
    tile_merge: bool = False
    merge_threshold: float = 64.0  # β: max cumulative intersections per merged tile
    incremental_pipelining: bool = False
    line_buffer_rows: int = 4  # sub-tile granularity under IP (pixel rows)
    # Buffers (bytes) — drive SRAM area and energy.
    double_buffer_bytes: int = 64 * 1024
    line_buffer_bytes: int = 1024
    # FR support units (filtering in projection, blending in raster).
    fr_support: bool = True

    @property
    def num_vrc(self) -> int:
        return self.vrc_rows * self.vrc_cols

    @property
    def raster_pixels_per_cycle(self) -> int:
        return self.num_vrc

    def scaled(self, factor: float, name: str | None = None) -> "AcceleratorConfig":
        """Proportionally scale compute resources (Fig 15's area sweep).

        The VRC array keeps its aspect ratio; discrete unit counts never drop
        below one.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        side = max(1, int(round((self.num_vrc * factor) ** 0.5)))
        return dataclasses.replace(
            self,
            name=name or f"{self.name}-x{factor:g}",
            num_ccu=max(1, int(round(self.num_ccu * factor))),
            num_sort_units=max(1, int(round(self.num_sort_units * factor))),
            vrc_rows=side,
            vrc_cols=side,
        )


METASAPIENS_BASE = AcceleratorConfig(name="MetaSapiens-Base")
METASAPIENS_TM = AcceleratorConfig(name="MetaSapiens-TM", tile_merge=True)
METASAPIENS_TM_IP = AcceleratorConfig(
    name="MetaSapiens-TM-IP", tile_merge=True, incremental_pipelining=True
)

GSCORE = AcceleratorConfig(
    name="GSCore",
    num_ccu=4,
    num_sort_units=2,
    vrc_rows=8,
    vrc_cols=8,
    tile_merge=False,
    incremental_pipelining=False,
    fr_support=False,
)
