"""Top-level accelerator API: latency, speedup and utilization per frame.

Glues together the pipeline simulator, the workload scale normalization and
the GPU reference model, so benchmarks can ask one question: *how much
faster is design X than the mobile GPU on this frame?*
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..perf.gpu_model import GPUModel
from ..perf.workload import FrameWorkload
from .config import AcceleratorConfig
from .dram import DRAMModel, dram_time_ms
from .pipeline_sim import PipelineResult, simulate_pipeline
from .scale import WORKLOAD_SCALE


@dataclasses.dataclass
class AcceleratorRun:
    """Result of running one frame through an accelerator design."""

    config: AcceleratorConfig
    pipeline: PipelineResult
    latency_ms: float
    gpu_latency_ms: float
    compute_ms: float = 0.0
    dram_ms: float = 0.0

    @property
    def memory_bound(self) -> bool:
        """Whether the modelled DRAM stream exceeds compute time.

        Reported for analysis; ``latency_ms`` includes the DRAM bound only
        when ``run_accelerator(..., include_dram=True)`` — the parameter
        stream is heavily prefetched/cached across frames in practice, and
        the single workload-scale constant (see repro.accel.scale) is
        calibrated on rasterization work, so applying the raw per-frame
        stream as a hard bound would over-penalize small models."""
        return self.dram_ms > self.compute_ms

    @property
    def speedup(self) -> float:
        if self.latency_ms == 0.0:
            return float("inf")
        return self.gpu_latency_ms / self.latency_ms

    @property
    def utilization(self) -> float:
        return self.pipeline.raster_utilization


def accel_latency_ms(pipeline: PipelineResult, config: AcceleratorConfig) -> float:
    """Cycles → milliseconds, at deployment scale (see repro.accel.scale)."""
    cycles = pipeline.total_cycles * WORKLOAD_SCALE
    return cycles / (config.frequency_ghz * 1e6)


def run_accelerator(
    intersections_per_tile: np.ndarray,
    workload: FrameWorkload,
    config: AcceleratorConfig,
    gpu: GPUModel | None = None,
    merge_threshold: float | None = None,
    dram: DRAMModel | None = None,
    include_dram: bool = False,
    sort_work_per_tile: np.ndarray | None = None,
) -> AcceleratorRun:
    """Simulate one frame and compare against the GPU reference.

    ``intersections_per_tile`` carries the spatial workload distribution the
    pipeline schedules over; ``workload`` carries the aggregate counts the
    GPU model prices.  Both come from the same render.
    ``sort_work_per_tile`` optionally prices the sorting stage from a
    measured workload (e.g. span group lengths) — see
    :func:`repro.accel.pipeline_sim.simulate_pipeline`.
    """
    gpu = gpu or GPUModel()
    pipeline = simulate_pipeline(
        intersections_per_tile, config, merge_threshold,
        sort_work_per_tile=sort_work_per_tile,
    )
    compute_ms = accel_latency_ms(pipeline, config)
    dram_ms = dram_time_ms(workload, config, dram)
    latency = max(compute_ms, dram_ms) if include_dram else compute_ms
    return AcceleratorRun(
        config=config,
        pipeline=pipeline,
        latency_ms=latency,
        gpu_latency_ms=gpu.latency_ms(workload),
        compute_ms=compute_ms,
        dram_ms=dram_ms,
    )


def geomean_speedup(runs: list[AcceleratorRun]) -> float:
    """Geometric-mean speedup across traces (the paper's headline stat)."""
    speedups = np.asarray([r.speedup for r in runs], dtype=np.float64)
    if speedups.size == 0:
        raise ValueError("need at least one run")
    return float(np.exp(np.mean(np.log(speedups))))
