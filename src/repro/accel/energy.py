"""Accelerator energy model — Sec 7.3.

Per-operation energies (pJ, 16 nm class) for the datapath, SRAM traffic
priced by macro size (line buffers are much cheaper per access than the
64 KB double buffers — the source of the TM+IP energy win), and DRAM traffic
for streaming model parameters.  The GPU side comes from the perf model
(power × latency).  The paper reports a 54.4× energy reduction for the base
accelerator and 56.8× with TM+IP; our constants land in that band without
per-method tuning (verified by the energy benchmark).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..perf.gpu_model import GPUModel
from ..perf.workload import FrameWorkload
from .config import AcceleratorConfig
from .scale import WORKLOAD_SCALE

# Datapath energies, pJ per operation.
ENERGY_VRC_OP_PJ = 24.0  # one splat×pixel step (exp eval + blend datapath)
ENERGY_SORT_OP_PJ = 6.0  # one compare-exchange
ENERGY_CCU_POINT_PJ = 150.0  # project + cull one point
ENERGY_BLEND_PIXEL_PJ = 20.0  # FR blend lerp

# Memory energies, pJ per byte.
ENERGY_DRAM_PJ_PER_B = 20.0
BYTES_PER_POINT_DRAM = 240  # ~60 float32 parameters streamed per point
BYTES_PER_INTERSECTION = 64  # splat record through the inter-stage buffer


def sram_pj_per_byte(capacity_kb: float) -> float:
    """Per-access energy grows roughly with sqrt(capacity) (CACTI-style)."""
    return 0.15 + 0.06 * float(np.sqrt(max(capacity_kb, 0.25)))


@dataclasses.dataclass
class EnergyBreakdown:
    """Per-frame accelerator energy in millijoules, by component."""

    compute_mj: float
    sram_mj: float
    dram_mj: float

    @property
    def total_mj(self) -> float:
        return self.compute_mj + self.sram_mj + self.dram_mj


def accelerator_energy(
    workload: FrameWorkload,
    config: AcceleratorConfig,
) -> EnergyBreakdown:
    """Energy of rendering one frame on the accelerator."""
    scale = WORKLOAD_SCALE
    raster_ops = workload.raster_splat_pixels * scale
    sort_ops = workload.sort_ops * scale
    points = workload.num_projected * workload.projection_runs * scale
    intersections = workload.raster_splat_pixels / max(config.tile_pixels, 1) * scale

    compute_pj = (
        raster_ops * ENERGY_VRC_OP_PJ
        + sort_ops * ENERGY_SORT_OP_PJ
        + points * ENERGY_CCU_POINT_PJ
        + workload.blend_pixels * scale * ENERGY_BLEND_PIXEL_PJ
    )

    if config.incremental_pipelining:
        buffer_kb = config.line_buffer_bytes / 1024.0
    else:
        buffer_kb = config.double_buffer_bytes / 1024.0
    # Each intersection record crosses the inter-stage buffer twice
    # (write by producer, read by consumer).
    sram_bytes = intersections * BYTES_PER_INTERSECTION * 2.0
    sram_pj = sram_bytes * sram_pj_per_byte(buffer_kb)

    dram_pj = points * BYTES_PER_POINT_DRAM * ENERGY_DRAM_PJ_PER_B

    return EnergyBreakdown(
        compute_mj=compute_pj * 1e-9,
        sram_mj=sram_pj * 1e-9,
        dram_mj=dram_pj * 1e-9,
    )


def gpu_energy_mj(workload: FrameWorkload, gpu: GPUModel | None = None) -> float:
    """GPU-side energy of the same frame (power × modelled latency)."""
    gpu = gpu or GPUModel()
    return gpu.energy_mj(workload)


def energy_reduction(
    workload: FrameWorkload,
    config: AcceleratorConfig,
    gpu: GPUModel | None = None,
) -> float:
    """GPU energy / accelerator energy (the paper's 54.4× / 56.8×)."""
    accel = accelerator_energy(workload, config).total_mj
    if accel == 0.0:
        return float("inf")
    return gpu_energy_mj(workload, gpu) / accel
