"""Workload scale normalization between evaluation scale and deployment.

Our offline evaluation runs scenes ~10³ smaller than the paper's (thousands
of splats at ≈ 100×128 px instead of millions at headset resolution).  The
GPU latency model absorbs that gap in its calibrated per-op coefficients; to
keep the accelerator simulator *consistent* with it — so that "speedup over
GPU" compares like with like — accelerator cycle counts are scaled by the
same factor before being converted to time.

``WORKLOAD_SCALE`` is the ratio between a deployment frame's rasterization
work (≈ 1.3 G splat×pixel ops: millions of intersections × 256-pixel tiles)
and our evaluation frames (≈ 1.2 M ops).  Equivalently: the GPU model's
140 ns/op effective cost equals a realistic 0.125 ns/op mobile-GPU
throughput times this scale.  The accelerator's raw advantage is then

    peak ratio = (256 VRC ops/cycle @ 1 GHz) / (8 G GPU ops/s) = 32×

and everything below that in Fig 14 is pipeline-stall loss measured by the
simulator — the quantity TM and IP exist to recover.
"""

WORKLOAD_SCALE = 1100.0

# Effective mobile-GPU rasterization throughput at deployment scale,
# implied by the paper's measured FPS (used for documentation/validation).
GPU_EFFECTIVE_GOPS = 8.0
