"""MetaSapiens contribution #3: accelerator support (paper Sec 5)."""

from .accelerator import AcceleratorRun, accel_latency_ms, geomean_speedup, run_accelerator
from .area import area_mm2, reference_areas, sram_kb
from .dram import (
    DEFAULT_DRAM,
    DRAMModel,
    DRAMTraffic,
    bound_latency_ms,
    dram_time_ms,
    frame_traffic,
    is_memory_bound,
)
from .config import (
    GSCORE,
    METASAPIENS_BASE,
    METASAPIENS_TM,
    METASAPIENS_TM_IP,
    AcceleratorConfig,
)
from .energy import (
    EnergyBreakdown,
    accelerator_energy,
    energy_reduction,
    gpu_energy_mj,
    sram_pj_per_byte,
)
from .pipeline_sim import PipelineResult, simulate_pipeline, stage_cycles
from .scale import GPU_EFFECTIVE_GOPS, WORKLOAD_SCALE
from .spans import (
    foveated_sort_work,
    foveated_tile_counts,
    spans_to_sort_work,
    spans_to_tile_counts,
)
from .tile_merge import MergedTiles, auto_threshold, identity_merge, merge_tiles

__all__ = [
    "AcceleratorConfig",
    "AcceleratorRun",
    "DEFAULT_DRAM",
    "DRAMModel",
    "DRAMTraffic",
    "bound_latency_ms",
    "dram_time_ms",
    "frame_traffic",
    "is_memory_bound",
    "EnergyBreakdown",
    "GPU_EFFECTIVE_GOPS",
    "GSCORE",
    "METASAPIENS_BASE",
    "METASAPIENS_TM",
    "METASAPIENS_TM_IP",
    "MergedTiles",
    "PipelineResult",
    "WORKLOAD_SCALE",
    "accel_latency_ms",
    "accelerator_energy",
    "area_mm2",
    "auto_threshold",
    "energy_reduction",
    "foveated_sort_work",
    "foveated_tile_counts",
    "geomean_speedup",
    "gpu_energy_mj",
    "identity_merge",
    "merge_tiles",
    "reference_areas",
    "run_accelerator",
    "simulate_pipeline",
    "spans_to_sort_work",
    "spans_to_tile_counts",
    "sram_kb",
    "sram_pj_per_byte",
    "stage_cycles",
]
