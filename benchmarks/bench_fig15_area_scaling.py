"""Fig 15: speedup vs area — MetaSapiens vs GSCore, proportionally scaled.

Both designs run MetaSapiens-H on the flowers trace; resources are scaled by
each design's own ratio.  Paper shape: ours achieves higher speedup at a
slightly smaller area, and the gap widens as area grows (more idle resources
for the imbalance to waste).
"""

import numpy as np
import pytest

from repro.accel import GSCORE, METASAPIENS_TM_IP, area_mm2, run_accelerator
from repro.foveation import render_foveated_batch
from repro.perf import mean_workload, workload_from_fr
from repro.scenes import gaze_trajectory

from _report import report

SCALES = (0.5, 1.0, 2.0, 3.0)
GAZE_FRAMES = 4


@pytest.fixture(scope="module")
def frame(env):
    # Both designs are scaled over the mean workload of a short gaze
    # trajectory (one batched foveated pass) rather than a single fixed
    # gaze, so the area sweep prices the moving-fovea load the accelerator
    # actually schedules.
    setup = env.setup("flowers")
    fr = env.fr_model("flowers").model
    cam = setup.eval_cameras[0]
    gazes = [
        tuple(g) for g in gaze_trajectory(cam.width, cam.height, GAZE_FRAMES, seed=0)
    ]
    results = render_foveated_batch(fr, cam, gazes=gazes, cache=env.view_cache)
    ints = np.mean(
        [r.stats.raster_intersections_per_tile for r in results], axis=0
    )
    workload = mean_workload([workload_from_fr(r.stats) for r in results])
    return ints, workload


@pytest.fixture(scope="module")
def sweep(frame):
    ints, workload = frame
    rows = []
    for scale in SCALES:
        for base in (METASAPIENS_TM_IP, GSCORE):
            config = base.scaled(scale)
            run = run_accelerator(ints, workload, config)
            rows.append(
                dict(
                    design=base.name,
                    scale=scale,
                    area=area_mm2(config),
                    speedup=run.speedup,
                )
            )
    return rows


def test_fig15_speedup_vs_area(sweep, frame, benchmark):
    ints, workload = frame
    benchmark(lambda: run_accelerator(ints, workload, METASAPIENS_TM_IP.scaled(2.0)))

    lines = [f"{'design':<20} {'scale':>6} {'area mm2':>9} {'speedup':>8}"]
    for row in sweep:
        lines.append(
            f"{row['design']:<20} {row['scale']:6.1f} {row['area']:9.2f} "
            f"{row['speedup']:7.1f}x"
        )
    report("Fig 15 speedup vs area (ours vs GSCore)", lines)

    ours = {r["scale"]: r for r in sweep if r["design"] == "MetaSapiens-TM-IP"}
    gscore = {r["scale"]: r for r in sweep if r["design"] == "GSCore"}

    # At every scale ours is faster at a comparable or smaller area ratio.
    for scale in SCALES:
        assert ours[scale]["speedup"] > gscore[scale]["speedup"]
    # The advantage grows with area (paper: more pronounced imbalance).
    gap_small = ours[SCALES[0]]["speedup"] / gscore[SCALES[0]]["speedup"]
    gap_large = ours[SCALES[-1]]["speedup"] / gscore[SCALES[-1]]["speedup"]
    assert gap_large >= gap_small * 0.9
    # Speedup grows with area for our design (no early saturation).
    assert ours[SCALES[-1]]["speedup"] > ours[SCALES[0]]["speedup"]
