"""Fig 15: speedup vs area — MetaSapiens vs GSCore, proportionally scaled.

Both designs run MetaSapiens-H on the flowers trace; resources are scaled by
each design's own ratio.  Paper shape: ours achieves higher speedup at a
slightly smaller area, and the gap widens as area grows (more idle resources
for the imbalance to waste).
"""

import numpy as np
import pytest

from repro.accel import GSCORE, METASAPIENS_TM_IP, area_mm2, run_accelerator
from repro.foveation import render_foveated
from repro.perf import workload_from_fr

from _report import report

SCALES = (0.5, 1.0, 2.0, 3.0)


@pytest.fixture(scope="module")
def frame(env):
    setup = env.setup("flowers")
    fr = env.fr_model("flowers").model
    result = render_foveated(fr, setup.eval_cameras[0])
    return result.stats.raster_intersections_per_tile, workload_from_fr(result.stats)


@pytest.fixture(scope="module")
def sweep(frame):
    ints, workload = frame
    rows = []
    for scale in SCALES:
        for base in (METASAPIENS_TM_IP, GSCORE):
            config = base.scaled(scale)
            run = run_accelerator(ints, workload, config)
            rows.append(
                dict(
                    design=base.name,
                    scale=scale,
                    area=area_mm2(config),
                    speedup=run.speedup,
                )
            )
    return rows


def test_fig15_speedup_vs_area(sweep, frame, benchmark):
    ints, workload = frame
    benchmark(lambda: run_accelerator(ints, workload, METASAPIENS_TM_IP.scaled(2.0)))

    lines = [f"{'design':<20} {'scale':>6} {'area mm2':>9} {'speedup':>8}"]
    for row in sweep:
        lines.append(
            f"{row['design']:<20} {row['scale']:6.1f} {row['area']:9.2f} "
            f"{row['speedup']:7.1f}x"
        )
    report("Fig 15 speedup vs area (ours vs GSCore)", lines)

    ours = {r["scale"]: r for r in sweep if r["design"] == "MetaSapiens-TM-IP"}
    gscore = {r["scale"]: r for r in sweep if r["design"] == "GSCore"}

    # At every scale ours is faster at a comparable or smaller area ratio.
    for scale in SCALES:
        assert ours[scale]["speedup"] > gscore[scale]["speedup"]
    # The advantage grows with area (paper: more pronounced imbalance).
    gap_small = ours[SCALES[0]]["speedup"] / gscore[SCALES[0]]["speedup"]
    gap_large = ours[SCALES[-1]]["speedup"] / gscore[SCALES[-1]]["speedup"]
    assert gap_large >= gap_small * 0.9
    # Speedup grows with area for our design (no early saturation).
    assert ours[SCALES[-1]]["speedup"] > ours[SCALES[0]]["speedup"]
