"""Shared benchmark environment.

Benchmarks reproduce the paper's tables/figures at evaluation scale (small
procedural scenes, 96×64 px — see DESIGN.md).  Model construction is cached
per session so each figure's bench times only its own pipeline.

Run with ``pytest benchmarks/ --benchmark-only``; each bench also prints the
paper-style table and appends it to ``benchmarks/results/``.
"""

from __future__ import annotations

import pytest

import repro
from repro.baselines import build_baselines
from repro.foveation import FRTrainConfig, build_foveated_model
from repro.harness import EVAL_LEVEL_FRACTIONS, EVAL_REGION_LAYOUT, quick_l1_model
from repro.splat import ViewCache


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="smoke-test scale: shrink benchmark workloads for CI",
    )


@pytest.fixture(scope="session")
def quick(request) -> bool:
    return request.config.getoption("--quick")

# Evaluation scale for all benchmarks.
BENCH_WIDTH = 96
BENCH_HEIGHT = 64
BENCH_POINTS = 800
BENCH_TRAIN = 3
BENCH_EVAL = 2


class BenchEnv:
    """Caches trace setups and derived models across benchmarks."""

    def __init__(self) -> None:
        self._setups: dict[str, repro.TraceSetup] = {}
        self._baselines: dict[tuple, dict] = {}
        self._l1: dict[str, object] = {}
        self._fr: dict[tuple, object] = {}
        # Shared view-preparation cache: one PreparedView per (model, pose),
        # reused across measurement repeats instead of re-projecting.
        self.view_cache = ViewCache(maxsize=512)

    def setup(self, trace: str) -> repro.TraceSetup:
        if trace not in self._setups:
            self._setups[trace] = repro.setup_trace(
                trace,
                n_points=BENCH_POINTS,
                width=BENCH_WIDTH,
                height=BENCH_HEIGHT,
                n_train=BENCH_TRAIN,
                n_eval=BENCH_EVAL,
            )
        return self._setups[trace]

    def baselines(self, trace: str, names: tuple) -> dict:
        key = (trace, names)
        if key not in self._baselines:
            setup = self.setup(trace)
            self._baselines[key] = build_baselines(
                setup.scene, setup.train_cameras, names=names
            )
        return self._baselines[key]

    def l1_model(self, trace: str, keep_fraction: float = 0.35):
        """MetaSapiens-H-style L1 model: CE-pruned from Mini-Splatting-D."""
        key = (trace, keep_fraction)
        if key not in self._l1:
            setup = self.setup(trace)
            dense = self.baselines(trace, ("Mini-Splatting-D",))["Mini-Splatting-D"]
            self._l1[key] = quick_l1_model(setup, dense, keep_fraction=keep_fraction)
        return self._l1[key]

    def study_l1(self, trace: str):
        """Study-grade L1: CE-pruned at 70%% keep + real fine-tuning."""
        key = ("study", trace)
        if key not in self._l1:
            from repro.train import TrainConfig, finetune as finetune_model

            setup = self.setup(trace)
            dense = self.baselines(trace, ("Mini-Splatting-D",))["Mini-Splatting-D"]
            l1 = quick_l1_model(setup, dense, keep_fraction=0.7)
            finetune_model(
                l1, setup.train_cameras, setup.train_targets, TrainConfig(iterations=10)
            )
            self._l1[key] = l1
        return self._l1[key]

    def study_model(self, trace: str):
        """Study-grade MetaSapiens-H: trained L1 + HVS-guided level training.

        This is the build whose HVSQ matches the dense baseline (Fig 11 and
        Table 1); slower to construct than :meth:`fr_model`.
        """
        key = ("study", trace)
        if key not in self._fr:
            setup = self.setup(trace)
            self._fr[key] = build_foveated_model(
                self.study_l1(trace),
                setup.train_cameras,
                setup.train_targets,
                EVAL_REGION_LAYOUT,
                FRTrainConfig(
                    level_fractions=(1.0, 0.6, 0.4, 0.25), finetune_iterations=15
                ),
                finetune=True,
            )
        return self._fr[key]

    def fr_model(self, trace: str, finetune: bool = False, keep_fraction: float = 0.35):
        key = (trace, finetune, keep_fraction)
        if key not in self._fr:
            setup = self.setup(trace)
            l1 = self.l1_model(trace, keep_fraction)
            result = build_foveated_model(
                l1,
                setup.train_cameras,
                setup.train_targets,
                EVAL_REGION_LAYOUT,
                FRTrainConfig(
                    level_fractions=EVAL_LEVEL_FRACTIONS, finetune_iterations=3
                ),
                finetune=finetune,
            )
            self._fr[key] = result
        return self._fr[key]


@pytest.fixture(scope="session")
def env() -> BenchEnv:
    return BenchEnv()
