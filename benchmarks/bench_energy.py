"""Sec 7.3: energy — base accelerator vs TM+IP vs the mobile GPU.

Paper: 54.4x energy reduction for the base accelerator, improved to 56.8x by
TM+IP (smaller line-buffer SRAMs).  Our constants land in that band; the
TM+IP > base ordering must hold on every trace.
"""

import numpy as np
import pytest

from repro.accel import (
    METASAPIENS_BASE,
    METASAPIENS_TM_IP,
    accelerator_energy,
    energy_reduction,
    gpu_energy_mj,
)
from repro.foveation import render_foveated
from repro.perf import workload_from_fr
from repro.scenes import ALL_TRACES

from _report import report

TRACES = ALL_TRACES[:6]


@pytest.fixture(scope="module")
def workloads(env):
    result = []
    for trace in TRACES:
        setup = env.setup(trace)
        fr = env.fr_model(trace).model
        stats = render_foveated(fr, setup.eval_cameras[0]).stats
        result.append((trace, workload_from_fr(stats)))
    return result


def test_energy_reduction(workloads, benchmark):
    _, first = workloads[0]
    benchmark(lambda: accelerator_energy(first, METASAPIENS_TM_IP))

    lines = [f"{'trace':<10} {'GPU mJ':>8} {'base mJ':>8} {'tm-ip mJ':>9} "
             f"{'base x':>7} {'tm-ip x':>8}"]
    base_ratios, ip_ratios = [], []
    for trace, workload in workloads:
        gpu = gpu_energy_mj(workload)
        e_base = accelerator_energy(workload, METASAPIENS_BASE).total_mj
        e_ip = accelerator_energy(workload, METASAPIENS_TM_IP).total_mj
        base_ratios.append(gpu / e_base)
        ip_ratios.append(gpu / e_ip)
        lines.append(
            f"{trace:<10} {gpu:8.1f} {e_base:8.2f} {e_ip:9.2f} "
            f"{gpu / e_base:6.1f}x {gpu / e_ip:7.1f}x"
        )
    lines.append(
        f"{'mean':<10} {'':>8} {'':>8} {'':>9} "
        f"{np.mean(base_ratios):6.1f}x {np.mean(ip_ratios):7.1f}x"
    )
    report("Energy reduction vs mobile GPU (Sec 7.3)", lines)

    # Paper band: tens of x; TM+IP strictly better on every trace.
    assert 25.0 < np.mean(base_ratios) < 120.0
    for base, ip in zip(base_ratios, ip_ratios):
        assert ip > base


def test_energy_breakdown_components(workloads, benchmark):
    _, workload = workloads[0]
    energy = benchmark(lambda: accelerator_energy(workload, METASAPIENS_BASE))
    # Compute + DRAM dominate; SRAM is the small term TM+IP shrinks.
    assert energy.compute_mj > energy.sram_mj
    assert energy.dram_mj > energy.sram_mj
