"""Ablation: Tile Merge Unit threshold β sweep.

Sec 5.2: β controls how aggressively small tiles merge.  Too small → no
merging (baseline stalls remain); too large → giant merged tiles re-create
the imbalance at coarser granularity.  The sweep exposes the sweet spot
around ~2× the mean per-tile work (our auto threshold).
"""

import numpy as np
import pytest

from repro.accel import METASAPIENS_TM, auto_threshold, merge_tiles, simulate_pipeline
from repro.foveation import render_foveated

from _report import report

TRACE = "bicycle"
BETA_FACTORS = (0.5, 1.0, 2.0, 4.0, 8.0)


@pytest.fixture(scope="module")
def workload(env):
    setup = env.setup(TRACE)
    fr = env.fr_model(TRACE).model
    result = render_foveated(fr, setup.eval_cameras[0])
    ints = result.stats.raster_intersections_per_tile
    return ints[ints > 0].astype(float)


@pytest.fixture(scope="module")
def sweep(workload):
    mean = workload.mean()
    rows = []
    for factor in BETA_FACTORS:
        beta = factor * mean
        merged = merge_tiles(workload, beta)
        sim = simulate_pipeline(workload, METASAPIENS_TM, merge_threshold=beta)
        rows.append(
            dict(
                factor=factor,
                beta=beta,
                groups=merged.num_groups,
                imbalance=merged.imbalance(),
                cycles=sim.total_cycles,
                util=sim.raster_utilization,
            )
        )
    return rows


def test_merge_threshold_ablation(sweep, workload, benchmark):
    benchmark(lambda: merge_tiles(workload, auto_threshold(workload)))

    lines = [f"{'beta/mean':>9} {'groups':>7} {'imbalance':>10} {'cycles':>9} {'util':>6}"]
    for row in sweep:
        lines.append(
            f"{row['factor']:9.1f} {row['groups']:7d} {row['imbalance']:10.2f} "
            f"{row['cycles']:9.0f} {row['util']:6.2f}"
        )
    report("Ablation tile-merge threshold (beta sweep)", lines)

    # Larger beta → fewer scheduled groups (monotone).
    groups = [row["groups"] for row in sweep]
    assert all(np.diff(groups) <= 0)
    # The default (2x mean) must be within 10% of the best cycle count found.
    cycles = {row["factor"]: row["cycles"] for row in sweep}
    assert cycles[2.0] <= 1.1 * min(cycles.values())
