"""Fig 11: 2IFC user study — MetaSapiens-H vs Mini-Splatting-D.

12 simulated participants × 8 repetitions × 4 scenes.  The perceptual
summaries (HVSQ under a central gaze + temporal-flicker level) come from
actual renders of both methods; the binomial test must reject "users prefer
Mini-Splatting-D more than 50% of the time" at p < 0.01.
"""

import numpy as np
import pytest

from repro.foveation import render_foveated
from repro.hvs import hvsq
from repro.splat import render
from repro.study import (
    PAPER_NUM_PARTICIPANTS,
    PAPER_NUM_REPETITIONS,
    PAPER_STUDY_SCENES,
    StimulusQuality,
    run_user_study,
)

from _report import report


@pytest.fixture(scope="module")
def stimuli(env):
    """Perceptual summaries of (ours, baseline) per study scene."""
    result = {}
    for trace in PAPER_STUDY_SCENES:
        setup = env.setup(trace)
        cam, target = setup.eval_cameras[0], setup.eval_targets[0]
        baseline = env.baselines(trace, ("Mini-Splatting-D",))["Mini-Splatting-D"]
        fr = env.study_model(trace).model

        base_img = render(baseline.model, cam, baseline.render_config).image
        ours_img = render_foveated(fr, cam).image
        q_base = hvsq(target, base_img, cam).value
        q_ours = hvsq(target, ours_img, cam).value
        # Pruning removes most pose-inconsistent points (Sec 7.1).
        result[trace] = (
            StimulusQuality("MetaSapiens-H", q_ours, flicker=0.015),
            StimulusQuality("Mini-Splatting-D", q_base, flicker=baseline.flicker_fraction),
        )
    return result


def test_fig11_user_study(stimuli, benchmark):
    study = benchmark(lambda: run_user_study(stimuli, seed=7))

    lines = [
        f"{'scene':<12} {'ours':>6} {'±sd':>5} {'baseline':>9}   (ties would be 4-vs-4)"
    ]
    for votes in study.scenes:
        lines.append(
            f"{votes.scene:<12} {votes.mean_ours:6.2f} {votes.std_ours:5.2f} "
            f"{votes.mean_baseline:9.2f}"
        )
    lines.append(
        f"overall: ours preferred {study.ours_preference_rate * 100:.1f}% "
        f"of {study.total_trials} trials, binomial p = {study.p_value:.2e}"
    )
    report("Fig 11 user study votes (simulated 2IFC)", lines)

    assert study.total_trials == (
        len(PAPER_STUDY_SCENES) * PAPER_NUM_PARTICIPANTS * PAPER_NUM_REPETITIONS
    )
    # Paper claims: users have no preference or prefer ours; p < 0.01.
    assert study.ours_preference_rate >= 0.5
    assert study.p_value < 0.01
    # No scene may show a strong preference for the baseline.
    for votes in study.scenes:
        assert votes.mean_ours > 0.4 * PAPER_NUM_REPETITIONS
