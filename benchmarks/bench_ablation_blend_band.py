"""Ablation: blending band width — overhead vs boundary smoothness.

Sec 4.1: blending renders boundary pixels twice (~25% of pixels in the
paper) to remove the visible seam between quality levels.  Sweeping the band
width trades double-render overhead for seam magnitude (the max colour jump
across a region boundary).
"""

import numpy as np
import pytest

from repro.foveation import RegionLayout, render_foveated, uniform_foveated_model

from _report import report

TRACE = "room"
BAND_WIDTHS = (0.0, 0.75, 1.5, 3.0)


def seam_magnitude(image: np.ndarray, maps) -> float:
    """Mean colour discontinuity across region-boundary pixel pairs."""
    level = maps.pixel_level
    diff_x = np.abs(np.diff(image, axis=1)).sum(axis=2)
    boundary_x = np.diff(level, axis=1) != 0
    diff_y = np.abs(np.diff(image, axis=0)).sum(axis=2)
    boundary_y = np.diff(level, axis=0) != 0
    values = np.concatenate([diff_x[boundary_x], diff_y[boundary_y]])
    return float(values.mean()) if values.size else 0.0


@pytest.fixture(scope="module")
def sweep(env):
    setup = env.setup(TRACE)
    l1 = env.l1_model(TRACE)
    rows = []
    for band in BAND_WIDTHS:
        layout = RegionLayout(boundaries_deg=(0.0, 12.0, 20.0, 28.0), blend_band_deg=band)
        fm = uniform_foveated_model(l1, layout, (1.0, 0.45, 0.22, 0.1))
        result = render_foveated(fm, setup.eval_cameras[0])
        rows.append(
            dict(
                band=band,
                blend_pixels=result.stats.blend_pixels,
                raster=result.stats.total_raster_intersections,
                seam=seam_magnitude(result.image, result.maps),
            )
        )
    return rows


def test_blend_band_ablation(sweep, benchmark, env):
    setup = env.setup(TRACE)
    l1 = env.l1_model(TRACE)
    layout = RegionLayout(boundaries_deg=(0.0, 12.0, 20.0, 28.0), blend_band_deg=1.5)
    fm = uniform_foveated_model(l1, layout, (1.0, 0.45, 0.22, 0.1))
    benchmark(lambda: render_foveated(fm, setup.eval_cameras[0]))

    lines = [f"{'band deg':>8} {'blend px':>9} {'raster ints':>12} {'seam':>8}"]
    for row in sweep:
        lines.append(
            f"{row['band']:8.2f} {row['blend_pixels']:9d} "
            f"{row['raster']:12.0f} {row['seam']:8.4f}"
        )
    report("Ablation blend band width", lines)

    by_band = {row["band"]: row for row in sweep}
    # No band → zero double-render overhead.
    assert by_band[0.0]["blend_pixels"] == 0
    # Wider bands blend more pixels and add raster work (monotone overhead).
    blend_counts = [r["blend_pixels"] for r in sweep]
    assert all(np.diff(blend_counts) >= 0)
    raster = [r["raster"] for r in sweep]
    assert all(np.diff(raster) >= 0)
    # A generous band smooths the boundary relative to the hard cut.  (The
    # narrow 0.75-degree band can *raise* the measured discontinuity at our
    # tile granularity — partial ramps end mid-tile — which is itself a
    # useful finding; the paper's 1.5-degree-class band is safe.)
    assert by_band[3.0]["seam"] <= by_band[0.0]["seam"]
