"""Ablation: CE aggregation over poses — max (paper's choice) vs mean.

Sec 3.2: "the final CE of a point is adequately measured by the maximum CE
across all poses (as opposed to the average, which is susceptible to
dataset bias)."  We prune the same fraction under both aggregates and
compare the retained quality: max-aggregation must not lose to mean.
"""

import numpy as np
import pytest

from repro.core import compute_ce, prune_lowest_ce
from repro.hvs.metrics import psnr
from repro.splat import render

from _report import report

TRACES = ("room", "garden")
PRUNE_FRACTION = 0.55


@pytest.fixture(scope="module")
def comparison(env):
    rows = []
    for trace in TRACES:
        setup = env.setup(trace)
        dense = env.baselines(trace, ("3DGS",))["3DGS"]

        quality = {}
        for aggregate in ("max", "mean"):
            ce = compute_ce(dense.model, setup.train_cameras, aggregate=aggregate)
            pruned = prune_lowest_ce(dense.model, ce.ce, PRUNE_FRACTION).model
            values = [
                psnr(t, render(pruned, c).image)
                for c, t in zip(setup.eval_cameras, setup.eval_targets)
            ]
            quality[aggregate] = float(np.mean([v for v in values if np.isfinite(v)]))
        rows.append((trace, quality["max"], quality["mean"]))
    return rows


def test_ce_aggregate_ablation(comparison, benchmark, env):
    setup = env.setup("room")
    dense = env.baselines("room", ("3DGS",))["3DGS"]
    benchmark(lambda: compute_ce(dense.model, setup.train_cameras, aggregate="max"))

    lines = [f"{'trace':<10} {'max-agg PSNR':>13} {'mean-agg PSNR':>14}"]
    for trace, q_max, q_mean in comparison:
        lines.append(f"{trace:<10} {q_max:13.1f} {q_mean:14.1f}")
    report("Ablation CE aggregation (max vs mean)", lines)

    # Max aggregation must be at least competitive on every trace, and not
    # collapse on any pose-specific points the mean would miss.
    for trace, q_max, q_mean in comparison:
        assert q_max > q_mean - 1.0
