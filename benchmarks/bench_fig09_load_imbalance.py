"""Fig 9: per-tile workload imbalance of the foveated model.

(a) a heatmap of intersections per tile for bicycle (centre-heavy under a
central gaze), (b) the per-tile intersection distribution across five
Mip-NeRF-360 outdoor traces.  The paper's observation: intersections vary by
orders of magnitude across tiles, concentrated where the high-quality levels
render.
"""

import numpy as np
import pytest

from repro.foveation import render_foveated

from _report import report

TRACES = ("flowers", "treehill", "stump", "garden", "bicycle")


@pytest.fixture(scope="module")
def per_tile(env):
    data = {}
    for trace in TRACES:
        setup = env.setup(trace)
        fr = env.fr_model(trace).model
        result = render_foveated(fr, setup.eval_cameras[0])
        data[trace] = result
    return data


def test_fig9a_heatmap_center_heavy(per_tile, benchmark, env):
    setup = env.setup("bicycle")
    fr = env.fr_model("bicycle").model
    benchmark(lambda: render_foveated(fr, setup.eval_cameras[0]))

    result = per_tile["bicycle"]
    ints = result.stats.raster_intersections_per_tile
    grid_x = (setup.eval_cameras[0].width + 15) // 16
    heat = ints.reshape(-1, grid_x)

    lines = ["intersections per tile (rows = tile rows):"]
    for row in heat:
        lines.append(" ".join(f"{int(v):5d}" for v in row))
    report("Fig 9a per-tile intersection heatmap (bicycle, foveated)", lines)

    # Centre tiles (level 1/2) must carry more work than border tiles.
    levels = result.stats.tile_levels
    center_mean = ints[levels <= 2].mean()
    border_mean = ints[levels >= 3].mean()
    assert center_mean > border_mean


def test_fig9b_imbalance_universal(per_tile, benchmark):
    ints = per_tile["flowers"].stats.raster_intersections_per_tile
    benchmark(lambda: np.percentile(ints[ints > 0], [0, 25, 50, 75, 100]))
    lines = [f"{'trace':<10} {'min':>6} {'q1':>6} {'med':>6} {'q3':>6} {'max':>6} {'cv':>6}"]
    for trace, result in per_tile.items():
        ints = result.stats.raster_intersections_per_tile
        nz = ints[ints > 0].astype(float)
        q = np.percentile(nz, [0, 25, 50, 75, 100])
        cv = nz.std() / nz.mean()
        lines.append(f"{trace:<10} " + " ".join(f"{v:6.0f}" for v in q) + f" {cv:6.2f}")
        # The imbalance is universal: spread of at least ~3x between
        # light and heavy tiles in every trace.
        assert q[4] > 3.0 * max(q[0], 1.0)
    report("Fig 9b per-tile intersection distribution (Mip-NeRF 360)", lines)
