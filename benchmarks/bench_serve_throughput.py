"""Serve-tier throughput: batched+cached ServeLoop vs naive per-request.

Replays one seeded multi-client trace (Zipf-skewed pose popularity, human
gaze scanpaths) two ways:

- **naive per-request**: the pre-serve consumer loop — one synchronous
  ``render_foveated`` per request, full projection prefix every time, no
  cache, no batching;
- **serve loop**: ``repro.serve.ServeLoop`` — exact-key frame-cache hits
  served without rendering, misses coalesced into
  ``render_foveated_batch`` calls sharing pose prefixes through a
  ``ViewCache``.

The win is structural (hits skip rendering entirely; misses amortize
projection and ride one concatenated span scan), so the ≥1.3x gate runs in
the ``--quick`` CI smoke step, not just under ``REPRO_BENCH_STRICT``.
Correctness is asserted alongside: every cache-miss response is
bit-identical to its per-request ``render_foveated`` frame, and two
replays of the trace produce identical frame checksums.
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np
import pytest

from repro.baselines import make_mini_splatting_d
from repro.foveation import render_foveated, uniform_foveated_model
from repro.harness import (
    EVAL_LEVEL_FRACTIONS,
    EVAL_REGION_LAYOUT,
    quick_l1_model,
    setup_trace,
)
from repro.scenes import trace_cameras
from repro.serve import (
    PredictorConfig,
    RenderWorkerPool,
    ServeConfig,
    WorkloadSpec,
    active_segments,
    frames_checksum,
    generate_serve_trace,
    oracle_problem_from_trace,
    replay_naive,
    replay_trace,
    replay_trace_sharded,
    schedule_gap,
    shm_available,
)
from repro.splat import random_model

from _report import report

# Acceptance scale: a real serving burst over a handful of hot poses.
SCALE = dict(size=128, points=1200, clients=6, frames=32, poses=8)
QUICK_SCALE = dict(size=64, points=400, clients=4, frames=16, poses=5)

BATCH_BUDGET = 8
ZIPF_S = 1.1

# Shard-scaling configurations: (label, n_shards, use worker pool).  The
# worker count is capped to the cores actually available — the scaling
# gate is only meaningful (and only enforced) when the host can run the
# shards in parallel.
CORES = (
    len(os.sched_getaffinity(0))
    if hasattr(os, "sched_getaffinity")
    else (os.cpu_count() or 1)
)
SCALING_WORKERS = max(1, min(4, CORES))
SCALING_GATE_MIN_CORES = 4


@pytest.fixture(scope="module")
def scale(request):
    if request.config.getoption("--quick"):
        return dict(**QUICK_SCALE, tag=" [quick]")
    return dict(**SCALE, tag="")


@pytest.fixture(scope="module")
def serve_env(scale):
    size = scale["size"]
    setup = setup_trace(
        "kitchen", n_points=scale["points"], width=size, height=int(size * 0.75)
    )
    dense = make_mini_splatting_d(setup.scene, seed=0)
    l1 = quick_l1_model(setup, dense, keep_fraction=0.4)
    fmodel = uniform_foveated_model(l1, EVAL_REGION_LAYOUT, EVAL_LEVEL_FRACTIONS)
    _, poses = trace_cameras(
        "kitchen",
        n_train=4,
        n_eval=scale["poses"],
        width=size,
        height=int(size * 0.75),
    )
    trace = generate_serve_trace(
        poses,
        WorkloadSpec(
            n_clients=scale["clients"],
            frames_per_client=scale["frames"],
            zipf_s=ZIPF_S,
            seed=0,
        ),
    )
    return fmodel, trace


@pytest.fixture(scope="module")
def replay_rows(serve_env, scale):
    fmodel, trace = serve_env
    serve_config = ServeConfig(batch_budget=BATCH_BUDGET)

    # Warm-up: page in the span workspace and model tables for both paths
    # so the comparison measures serving policy, not first-touch faults.
    replay_naive(fmodel, trace)
    replay_trace(fmodel, trace, serve_config=serve_config)

    t0 = time.perf_counter()
    _, naive_report = replay_naive(fmodel, trace)
    naive_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    responses, serve_report = replay_trace(
        fmodel, trace, serve_config=serve_config
    )
    serve_s = time.perf_counter() - t0

    _, serve_report_2 = replay_trace(fmodel, trace, serve_config=serve_config)

    # Report-only: exact_frames=False rides each pose group on one
    # concatenated span scan (1e-10-equivalent frames instead of bit-exact).
    fast_config = ServeConfig(batch_budget=BATCH_BUDGET, exact_frames=False)
    replay_trace(fmodel, trace, serve_config=fast_config)  # warm-up
    t0 = time.perf_counter()
    _, fast_report = replay_trace(fmodel, trace, serve_config=fast_config)
    fast_s = time.perf_counter() - t0
    return dict(
        naive_s=naive_s,
        serve_s=serve_s,
        fast_s=fast_s,
        naive_report=naive_report,
        serve_report=serve_report,
        serve_report_2=serve_report_2,
        fast_report=fast_report,
        responses=responses,
        fmodel=fmodel,
        trace=trace,
        tag=scale["tag"],
    )


def test_serve_throughput(replay_rows, quick):
    r = replay_rows
    naive, served = r["naive_report"], r["serve_report"]
    speedup = r["naive_s"] / r["serve_s"]
    report(
        f"Serve throughput{r['tag']}",
        [
            f"{r['trace'].n_requests} requests, "
            f"{len(r['trace'].cameras)} poses, zipf {ZIPF_S}, "
            f"batch budget {BATCH_BUDGET}",
            *naive.lines(),
            *served.lines(),
            f"serve speedup: {speedup:.2f}x",
            f"throughput mode (exact_frames=False, 1e-10 frames): "
            f"{r['naive_s'] / r['fast_s']:.2f}x",
        ],
    )
    # The cache really served a meaningful share of the skewed trace, and
    # the batcher really coalesced (otherwise the tier is mislabeled).
    assert served.cache_hit_rate > 0.2, f"hit rate {served.cache_hit_rate:.0%}"
    assert served.mean_batch_size > 1.0, f"mean batch {served.mean_batch_size:.2f}"
    # Batched+cached serving must beat the naive per-request loop ≥1.3x —
    # enforced in the CI --quick smoke step (structural win: hits skip
    # rendering, misses amortize projection), and at acceptance scale on a
    # quiet machine via REPRO_BENCH_STRICT.
    if quick or os.environ.get("REPRO_BENCH_STRICT") == "1":
        assert speedup >= 1.3, f"serve speedup: {speedup:.2f}x"


def test_replay_is_deterministic(replay_rows):
    # Same trace, same config → bit-identical frame stream and identical
    # serving decisions, replay after replay.
    r1, r2 = replay_rows["serve_report"], replay_rows["serve_report_2"]
    assert r1.frames_checksum == r2.frames_checksum
    assert r1.cache_hit_rate == r2.cache_hit_rate
    assert r1.batch_histogram == r2.batch_histogram


@pytest.fixture(scope="module")
def scaling_rows(serve_env):
    """Replay one trace through 1 → 2 → 4 consistent-hash shards.

    The single inline loop is the baseline every cluster row is measured
    against; every other row shares one process pool of
    ``SCALING_WORKERS`` render workers across its shards.  Wall time is
    the replay's own clock and deliberately *includes* cluster cold start
    (pool fork + first-render workspace warm-up) — a scale-out that only
    wins after amortizing its startup is not a win the serve tier can
    claim.  Frame checksums are collected per row: sharding and worker
    pools must never change the served frame stream.
    """
    fmodel, trace = serve_env
    configs = [
        ("1 loop, inline", 1, 0),
        (f"1 shard,  {SCALING_WORKERS}w", 1, SCALING_WORKERS),
        (f"2 shards, {SCALING_WORKERS}w", 2, SCALING_WORKERS),
        (f"4 shards, {SCALING_WORKERS}w", 4, SCALING_WORKERS),
    ]
    # Warm the span workspace and model tables once so the baseline row is
    # not paying first-touch faults the cluster rows then get for free.
    replay_trace(
        fmodel, trace, serve_config=ServeConfig(batch_budget=BATCH_BUDGET)
    )
    rows = []
    for label, n_shards, workers in configs:
        serve_config = ServeConfig(batch_budget=BATCH_BUDGET, workers=workers)
        if n_shards == 1 and workers == 0:
            _, rep = replay_trace(fmodel, trace, serve_config=serve_config)
        else:
            _, rep = replay_trace_sharded(
                fmodel, trace, serve_config=serve_config, n_shards=n_shards
            )
        rows.append((label, n_shards, workers, rep))
    return rows


def test_shard_scaling(scaling_rows, scale, quick):
    rows = scaling_rows
    base = rows[0][3]
    lines = [
        f"{CORES} cores available, shared pool of {SCALING_WORKERS} workers",
        f"{'config':<14} {'req/s':>8} {'speedup':>8} {'hit':>5} "
        f"{'imbalance':>9}",
    ]
    for label, _, _, rep in rows:
        imbalance = (
            f"{rep.shard_stats['imbalance_factor']:.2f}x"
            if rep.shard_stats
            else "-"
        )
        lines.append(
            f"{label:<14} {rep.throughput_rps:8.1f} "
            f"{base.wall_s / rep.wall_s:7.2f}x "
            f"{rep.cache_hit_rate:4.0%} {imbalance:>9}"
        )
    report(f"Serve shard scaling{scale['tag']}", lines)

    # Correctness is unconditional: every cluster shape serves the exact
    # frame stream (and hit pattern) of the single inline loop — workers
    # render bit-identically and shard routing matches cache-key
    # granularity.
    for label, _, _, rep in rows[1:]:
        assert rep.frames_checksum == base.frames_checksum, label
        assert rep.cache_hit_rate == base.cache_hit_rate, label

    # The scaling gate needs cores to scale onto: enforced in CI's
    # --quick smoke (≥1.5x) and under REPRO_BENCH_STRICT at acceptance
    # scale (≥2x), skipped informationally on hosts without ≥4 cores.
    speedup_4 = base.wall_s / rows[3][3].wall_s
    if CORES < SCALING_GATE_MIN_CORES:
        pytest.skip(
            f"shard-scaling gate needs >= {SCALING_GATE_MIN_CORES} cores "
            f"(host has {CORES}); measured 4-shard speedup {speedup_4:.2f}x"
        )
    if quick:
        assert speedup_4 >= 1.5, f"4-shard speedup: {speedup_4:.2f}x"
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        assert speedup_4 >= 2.0, f"4-shard speedup: {speedup_4:.2f}x"


# Deadline/prefetch regime: a paced replay (real inter-arrival gaps give
# the speculative tier idle slack to fill) against a refresh budget renders
# cannot make (2 ms at 500 Hz vs ~5 ms renders), with degrade disabled so
# the deadline-miss rate is exactly the miss fraction.  Prefetch hits then
# reduce the miss rate deterministically — no wall-clock luck involved.
PREFETCH_REFRESH_HZ = 500.0


@pytest.fixture(scope="module")
def prefetch_rows():
    fmodel = uniform_foveated_model(
        random_model(80, np.random.default_rng(5)),
        EVAL_REGION_LAYOUT,
        EVAL_LEVEL_FRACTIONS,
    )
    _, poses = trace_cameras("kitchen", n_train=4, n_eval=4, width=64, height=48)
    trace = generate_serve_trace(
        poses,
        WorkloadSpec(
            n_clients=4,
            frames_per_client=24,
            fps=30.0,
            pose_dwell_frames=(8, 16),
            refresh_hz=PREFETCH_REFRESH_HZ,
            seed=3,
        ),
    )

    def paced(prefetch):
        serve_config = ServeConfig(
            refresh_hz=PREFETCH_REFRESH_HZ,
            degrade_on_deadline=False,
            prefetch=prefetch,
        )
        return replay_trace(
            fmodel, trace, serve_config=serve_config, time_scale=1.0
        )

    paced(None)  # warm-up: page in span workspace + model tables
    base_responses, base = paced(None)
    pf_responses, pf = paced(PredictorConfig(horizon=2))
    gap = schedule_gap(oracle_problem_from_trace(trace, n_requests=6))
    return dict(
        trace=trace,
        base=base,
        pf=pf,
        base_responses=base_responses,
        pf_responses=pf_responses,
        gap=gap,
    )


def test_prefetch_lifts_hits_and_cuts_deadline_misses(prefetch_rows, quick):
    base, pf, gap = prefetch_rows["base"], prefetch_rows["pf"], prefetch_rows["gap"]
    report(
        "Serve prefetch vs no-prefetch (paced replay)",
        [
            f"{prefetch_rows['trace'].n_requests} requests, "
            f"{PREFETCH_REFRESH_HZ:.0f} Hz refresh "
            f"({1e3 / PREFETCH_REFRESH_HZ:.1f} ms budget), degrade off",
            f"{'config':<12} {'hit':>5} {'miss rate':>9} {'p99 ms':>7}",
            f"{'no prefetch':<12} {base.cache_hit_rate:4.0%} "
            f"{base.deadline_miss_rate:8.1%} {base.latency_p99_ms:7.2f}",
            f"{'prefetch':<12} {pf.cache_hit_rate:4.0%} "
            f"{pf.deadline_miss_rate:8.1%} {pf.latency_p99_ms:7.2f}",
            f"prefetch: {pf.prefetch_stats['enqueued']} enqueued, "
            f"{pf.prefetch_stats['rendered']} rendered, "
            f"{pf.prefetch_stats['useful']} useful",
            f"schedule oracle ({gap['n_requests']} requests): "
            f"optimal {gap['optimal'].deadline_misses} misses vs "
            f"heuristic {gap['heuristic'].deadline_misses} "
            f"(latency gap {gap['latency_gap']:+.1%})",
        ],
    )
    # The oracle is optimal by construction; the greedy heuristic must not
    # beat it (that would mean the cost model or search is broken).
    assert gap["miss_gap"] >= 0
    # The prefetch gate runs in CI --quick: speculation must lift the exact
    # cache hit rate and cut the deadline-miss rate on the seeded paced
    # trace.  Both rates are structural (budget < render time, degrade
    # off), so the comparison is deterministic up to scheduler interleave.
    if quick or os.environ.get("REPRO_BENCH_STRICT") == "1":
        assert pf.cache_hit_rate >= base.cache_hit_rate, (
            f"prefetch hit {pf.cache_hit_rate:.0%} < "
            f"baseline {base.cache_hit_rate:.0%}"
        )
        assert pf.deadline_miss_rate <= base.deadline_miss_rate, (
            f"prefetch miss rate {pf.deadline_miss_rate:.1%} > "
            f"baseline {base.deadline_miss_rate:.1%}"
        )


def test_prefetch_preserves_exact_render_path(prefetch_rows):
    # Speculation adds cache contents, never pixels: requests that took the
    # exact render path in both replays produce bit-identical frames.
    compared = 0
    for base, pf in zip(
        prefetch_rows["base_responses"], prefetch_rows["pf_responses"]
    ):
        if base.cache_hit or pf.cache_hit or base.degraded or pf.degraded:
            continue
        assert np.array_equal(base.result.image, pf.result.image)
        compared += 1
    assert compared > 0, "no shared exact-render-path requests to compare"


# Frame transport: pickle-over-pipe vs zero-copy shared memory.  The
# transport only matters once frames are big — at ≥512² the executor
# result pipeline (pickle + pipe + unpickle) moves ~11 MB per frame — so
# this bench keeps 512×384 frames even under --quick and trims the model
# to the render-cost floor instead.  ``workers = cores`` keeps the host
# CPU-saturated, where wall time tracks total CPU work and the transport
# saving (no serialize, no deserialize, no frame copy) shows directly;
# an undersubscribed host hides it behind idle render overlap.  The gate
# degrades to an informational skip on 1-core hosts; checksum identity
# and segment-leak checks run unconditionally.
TRANSPORT_SIZE = 512
TRANSPORT_GAZES = [(5.0, 5.0), (25.0, 18.0), (40.0, 30.0), None]
TRANSPORT_WORKERS = max(1, min(CORES, 4))
TRANSPORT_GATE_MIN_CORES = 2
TRANSPORT_GATE = 1.15


@pytest.fixture(scope="module")
def transport_rows():
    if not shm_available():  # pragma: no cover - POSIX-only CI
        pytest.skip("POSIX shared memory unavailable on this host")
    fmodel = uniform_foveated_model(
        random_model(16, np.random.default_rng(7)),
        EVAL_REGION_LAYOUT,
        EVAL_LEVEL_FRACTIONS,
    )
    _, poses = trace_cameras(
        "kitchen",
        n_train=4,
        n_eval=2,
        width=TRANSPORT_SIZE,
        height=int(TRANSPORT_SIZE * 0.75),
    )
    n_frames = len(poses) * len(TRANSPORT_GAZES)

    def measure(shm_bytes):
        def run_burst(pool, sink):
            # Frames land in ``sink``, not the task result — returning
            # them from asyncio.run repr()s every array on Runner teardown
            # (see replay_trace), which would swamp the transport signal.
            async def burst():
                results = []
                for camera in poses:
                    results.extend(await pool.render(camera, TRANSPORT_GAZES))
                sink["results"] = results

            asyncio.run(burst())

        sink: dict = {}
        with RenderWorkerPool(
            fmodel, workers=TRANSPORT_WORKERS, shm_bytes=shm_bytes
        ) as pool:
            run_burst(pool, sink)  # warm-up: worker init + first-touch
            times = []
            for _ in range(3):
                t0 = time.perf_counter()
                run_burst(pool, sink)
                times.append(time.perf_counter() - t0)
            stats = pool.transport_stats()  # counts warm-up + timed bursts
        checksum = frames_checksum(r.image for r in sink["results"])
        return dict(
            wall_s=sorted(times)[1],
            stats=stats,
            checksum=checksum,
            n_frames=n_frames,
        )

    rows = {"pipe": measure(0), "shm": measure(256 << 20)}
    assert active_segments() == [], "transport bench leaked shm segments"
    return rows


def test_transport_shm_vs_pipe(transport_rows, quick):
    pipe, shm = transport_rows["pipe"], transport_rows["shm"]
    speedup = pipe["wall_s"] / shm["wall_s"]
    lines = [
        f"{pipe['n_frames']} frames/burst at "
        f"{TRANSPORT_SIZE}x{int(TRANSPORT_SIZE * 0.75)}, "
        f"{TRANSPORT_WORKERS} workers, {CORES} cores",
        f"{'transport':<10} {'wall ms':>8} {'frames/s':>9} "
        f"{'MB shm':>7} {'MB pipe':>8} {'fallbacks':>9}",
    ]
    for label in ("pipe", "shm"):
        row = transport_rows[label]
        s = row["stats"]
        lines.append(
            f"{label:<10} {row['wall_s'] * 1e3:8.1f} "
            f"{row['n_frames'] / row['wall_s']:9.1f} "
            f"{s['bytes_via_shm'] / 1e6:7.1f} "
            f"{s['bytes_via_pipe'] / 1e6:8.1f} {s['shm_fallbacks']:9d}"
        )
    lines.append(f"shm speedup: {speedup:.2f}x")
    report("Serve frame transport", lines)

    # Correctness is unconditional: both transports serve the identical
    # frame stream, frames really rode the transport they claim, and no
    # /dev/shm segment survived the pools.
    assert shm["checksum"] == pipe["checksum"]
    # Warm-up + timed bursts all rode the claimed transport end to end.
    assert shm["stats"]["frames_via_shm"] == 4 * shm["n_frames"]
    assert shm["stats"]["shm_fallbacks"] == 0
    assert pipe["stats"]["frames_via_shm"] == 0
    assert pipe["stats"]["bytes_via_pipe"] > 0
    assert active_segments() == []

    if CORES < TRANSPORT_GATE_MIN_CORES:
        pytest.skip(
            f"transport gate needs >= {TRANSPORT_GATE_MIN_CORES} cores "
            f"(host has {CORES}); measured shm speedup {speedup:.2f}x"
        )
    # Enforced in the CI --quick smoke step and under REPRO_BENCH_STRICT:
    # zero-copy transport must beat pickling multi-megabyte frames.
    if quick or os.environ.get("REPRO_BENCH_STRICT") == "1":
        assert speedup >= TRANSPORT_GATE, f"shm speedup: {speedup:.2f}x"


# Tracing overhead: the observability tentpole must be free when off.
# The gate prices the *disabled* path — the null backend_span checks and
# always-on stage-histogram observes every request pays even with tracing
# off — via a primitive microbench, scaled by a generous per-request op
# count, as a fraction of the measured untraced replay wall.  A direct
# traced-off-vs-seed A/B would diff two runs of identical code and gate on
# scheduler noise; this gate is deterministic in what it measures.  The
# traced-on row is informational: span recording is allowed to cost.
TRACE_OPS_PER_REQUEST = 32  # ~3 backend spans + ~6 scheduler probes, x3 slack
TRACE_OVERHEAD_GATE = 0.02


def test_tracing_overhead(replay_rows, quick):
    from repro.obs.metrics import Histogram
    from repro.obs.trace import backend_span

    r = replay_rows
    fmodel, trace = r["fmodel"], r["trace"]
    n_requests = trace.n_requests

    # Off-path primitive cost: a disabled backend_span (one global load +
    # None check, null context manager) plus a log-bucket histogram observe.
    hist = Histogram()
    iters = 100_000
    t0 = time.perf_counter()
    for _ in range(iters):
        with backend_span("x"):
            pass
        hist.observe(1e-3)
    per_op_s = (time.perf_counter() - t0) / iters
    off_frac = per_op_s * TRACE_OPS_PER_REQUEST * n_requests / r["serve_s"]

    # Traced-on replay (informational): full span recording + Chrome export.
    traced_config = ServeConfig(batch_budget=BATCH_BUDGET, trace=True)
    replay_trace(fmodel, trace, serve_config=traced_config)  # warm-up
    t0 = time.perf_counter()
    replay_trace(fmodel, trace, serve_config=traced_config)
    traced_s = time.perf_counter() - t0

    report(
        f"Serve tracing overhead{r['tag']}",
        [
            f"{n_requests} requests; disabled-path primitive "
            f"{per_op_s * 1e9:.0f} ns/op x {TRACE_OPS_PER_REQUEST} ops/req",
            f"tracing off: {off_frac:.3%} of the {r['serve_s'] * 1e3:.1f} ms "
            f"replay wall (gate <= {TRACE_OVERHEAD_GATE:.0%})",
            f"tracing on (informational): {traced_s * 1e3:.1f} ms vs "
            f"{r['serve_s'] * 1e3:.1f} ms off "
            f"({traced_s / r['serve_s']:.2f}x)",
        ],
    )
    # CI-gated: the disabled instrumentation path must stay within 2% of
    # the untraced replay wall.
    if quick or os.environ.get("REPRO_BENCH_STRICT") == "1":
        assert off_frac <= TRACE_OVERHEAD_GATE, (
            f"disabled-path tracing overhead {off_frac:.3%} "
            f"> {TRACE_OVERHEAD_GATE:.0%}"
        )


def test_cache_misses_bit_identical(replay_rows):
    # Every miss the loop rendered matches a per-request render_foveated
    # call at the same (camera, gaze) — the serve tier adds scheduling and
    # caching, never pixels.
    misses = [p for p in replay_rows["responses"] if not p.cache_hit]
    assert misses, "trace produced no cache misses to verify"
    fmodel = replay_rows["fmodel"]
    for response in misses:
        ref = render_foveated(
            fmodel, response.request.camera, gaze=response.request.gaze
        )
        assert np.array_equal(ref.image, response.result.image)
