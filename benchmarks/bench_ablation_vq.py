"""Extension: SH vector quantization — codebook size vs storage vs quality.

The paper's related work (LightGaussian) composes pruning with VQ
compression; this bench quantifies the trade-off on our models: compression
ratio grows as codes shrink, while rendered PSNR degrades gracefully.
"""

import numpy as np
import pytest

from repro.compress import compress_model, quantization_error
from repro.hvs.metrics import psnr
from repro.scenes import generate_scene, trace_cameras
from repro.splat import render

from _report import report

CODE_COUNTS = (4, 16, 64, 256)


@pytest.fixture(scope="module")
def scene_and_target():
    scene = generate_scene("garden", n_points=500, sh_degree=2)
    train, _ = trace_cameras("garden", n_train=4, width=96, height=64)
    target = render(scene, train[0]).image
    return scene, train[0], target


@pytest.fixture(scope="module")
def sweep(scene_and_target):
    scene, cam, target = scene_and_target
    rows = []
    for codes in CODE_COUNTS:
        compressed = compress_model(scene, num_codes=codes, iterations=8)
        image = render(compressed.decompress(), cam).image
        rows.append(
            dict(
                codes=codes,
                ratio=compressed.compression_ratio(),
                vq_error=quantization_error(scene, compressed),
                psnr=psnr(target, image),
            )
        )
    return rows


def test_vq_tradeoff(sweep, scene_and_target, benchmark):
    scene, _, _ = scene_and_target
    benchmark(lambda: compress_model(scene, num_codes=64, iterations=4))

    lines = [f"{'codes':>6} {'ratio':>7} {'vq rmse':>9} {'PSNR dB':>8}"]
    for row in sweep:
        lines.append(
            f"{row['codes']:6d} {row['ratio']:6.2f}x {row['vq_error']:9.4f} "
            f"{row['psnr']:8.1f}"
        )
    report("Ablation SH vector quantization", lines)

    # More codes → lower quantization error, better PSNR, same-ish ratio.
    errors = [row["vq_error"] for row in sweep]
    assert all(np.diff(errors) <= 1e-12)
    psnrs = [row["psnr"] for row in sweep]
    assert psnrs[-1] >= psnrs[0]
    # Small codebooks compress the degree-2 model well; the 256-entry
    # codebook's fixed cost is visible at this small point count but the
    # ratio stays >1.5 (it amortizes to ~2.6x at realistic model sizes).
    assert sweep[0]["ratio"] > 2.2
    assert sweep[-1]["ratio"] > 1.5
    # And quality stays usable at 256 codes.
    assert sweep[-1]["psnr"] > 30.0
