"""Ablation: which parameters to multi-version per quality level.

Sec 4.2 / 7.4: strict subsetting (no versions) collapses peripheral quality;
multi-versioning everything (MMFR) wastes storage and speed; the paper's
sweet spot is opacity + SH-DC.  We train the L3 level under four policies —
none / opacity-only / DC-only / both — and compare the level's HVSQ.
"""

import numpy as np
import pytest

from repro.foveation import (
    FRTrainConfig,
    build_foveated_model,
    finetune_level,
    measure_level_hvsq,
)
from repro.harness import EVAL_REGION_LAYOUT

from _report import report

TRACE = "room"
LEVEL = 3
FRACTIONS = (1.0, 0.55, 0.35, 0.2)

POLICIES = {
    "none (strict subset)": dict(lr_opacity=0.0, lr_sh_dc=0.0),
    "opacity only": dict(lr_opacity=0.05, lr_sh_dc=0.0),
    "SH-DC only": dict(lr_opacity=0.0, lr_sh_dc=0.01),
    "opacity + SH-DC (ours)": dict(lr_opacity=0.05, lr_sh_dc=0.01),
}


@pytest.fixture(scope="module")
def hvsq_by_policy(env):
    setup = env.setup(TRACE)
    l1 = env.study_l1(TRACE)
    results = {}
    for name, lrs in POLICIES.items():
        built = build_foveated_model(
            l1, setup.train_cameras, setup.train_targets, EVAL_REGION_LAYOUT,
            FRTrainConfig(level_fractions=FRACTIONS, finetune_iterations=0),
            finetune=False,
        ).model
        if lrs["lr_opacity"] or lrs["lr_sh_dc"]:
            finetune_level(
                built, LEVEL, setup.train_cameras, setup.train_targets,
                FRTrainConfig(
                    level_fractions=FRACTIONS, finetune_iterations=12, **lrs
                ),
            )
        results[name] = measure_level_hvsq(
            built, LEVEL, setup.eval_cameras, setup.eval_targets
        )
    return results


def test_multiversion_ablation(hvsq_by_policy, benchmark, env):
    setup = env.setup(TRACE)
    l1 = env.study_l1(TRACE)
    benchmark(
        lambda: build_foveated_model(
            l1, setup.train_cameras[:1], setup.train_targets[:1], EVAL_REGION_LAYOUT,
            FRTrainConfig(level_fractions=FRACTIONS, finetune_iterations=0),
            finetune=False,
        )
    )

    lines = [f"{'policy':<24} {'L3 HVSQ':>10}"]
    for name, value in hvsq_by_policy.items():
        lines.append(f"{name:<24} {value:10.2e}")
    report("Ablation selective multi-versioning (level 3 HVSQ)", lines)

    none = hvsq_by_policy["none (strict subset)"]
    ours = hvsq_by_policy["opacity + SH-DC (ours)"]
    # Training the multi-versioned parameters must improve over strict
    # subsetting, and combining both knobs must beat either alone-or-tie.
    assert ours < none
    assert ours <= hvsq_by_policy["opacity only"] * 1.05
    assert ours <= hvsq_by_policy["SH-DC only"] * 1.05
