"""Table 1: FR method comparison — SMFR vs MMFR vs MetaSapiens-H.

Columns: FPS (GPU model), storage, HVSQ per quality level (L1..L4).
Paper shape: SMFR fastest but its L4 HVSQ is ~10x worse; MMFR has the best
peripheral HVSQ but ~0.42x the speed and ~1.9x the storage; ours is close to
SMFR speed at ~1.06x storage with near-uniform HVSQ.
"""

import numpy as np
import pytest

from repro.foveation import (
    make_mmfr,
    make_smfr,
    measure_level_hvsq,
    mmfr_storage_bytes,
    render_foveated,
    render_multi_model,
    smfr_storage_bytes,
)
from repro.harness import EVAL_LEVEL_FRACTIONS, EVAL_REGION_LAYOUT
from repro.hvs import hvsq
from repro.foveation.regions import region_masks
from repro.perf import DEFAULT_GPU, workload_from_fr
from repro.splat import render

from _report import report

TRACES = ("room", "truck")
LEVEL_FRACTIONS = (1.0, 0.6, 0.4, 0.25)  # match the study-grade build


def level_hvsq_multi_model(models, layout, setup):
    """Per-level HVSQ for MMFR: render each level model, evaluate its region."""
    values = []
    cam, target = setup.eval_cameras[0], setup.eval_targets[0]
    masks = region_masks(cam, layout)
    for level, model in enumerate(models, start=1):
        image = render(model, cam).image
        values.append(hvsq(target, image, cam, region_mask=masks[level - 1]).value)
    return values


@pytest.fixture(scope="module")
def table(env):
    rows = {"SMFR": [], "MMFR": [], "MetaSapiens-H": []}
    for trace in TRACES:
        setup = env.setup(trace)
        l1 = env.study_l1(trace)
        layout = EVAL_REGION_LAYOUT
        cam = setup.eval_cameras[0]

        # SMFR: random subsetting, no training.
        smfr = make_smfr(l1, layout, level_fractions=LEVEL_FRACTIONS)
        smfr_fps = DEFAULT_GPU.fps(workload_from_fr(render_foveated(smfr, cam).stats))
        smfr_hvsq = [
            measure_level_hvsq(smfr, lv, [cam], [setup.eval_targets[0]])
            for lv in range(1, 5)
        ]
        rows["SMFR"].append((smfr_fps, smfr_storage_bytes(smfr), smfr_hvsq))

        # MMFR: independent models, full fine-tuning.  The shared view cache
        # memoizes each level model's projection prefix, so repeated frames
        # of this pose stop re-projecting identical per-level views (the
        # *charged* workload still prices every level's projection run).
        mmfr = make_mmfr(
            l1, setup.train_cameras, setup.train_targets, layout,
            level_fractions=LEVEL_FRACTIONS, finetune_iterations=4,
        )
        mm_result = render_multi_model(mmfr, layout, cam, cache=env.view_cache)
        mmfr_fps = DEFAULT_GPU.fps(workload_from_fr(mm_result.stats))
        mmfr_hvsq = level_hvsq_multi_model(mmfr, layout, setup)
        rows["MMFR"].append((mmfr_fps, mmfr_storage_bytes(mmfr), mmfr_hvsq))

        # Ours: subsetting + selective multi-versioning, HVS-guided training.
        ours = env.study_model(trace)
        ours_fps = DEFAULT_GPU.fps(
            workload_from_fr(render_foveated(ours.model, cam).stats)
        )
        ours_hvsq = [
            measure_level_hvsq(ours.model, lv, [cam], [setup.eval_targets[0]])
            for lv in range(1, 5)
        ]
        rows["MetaSapiens-H"].append((ours_fps, ours.model.storage_bytes(), ours_hvsq))
    return rows


def test_table1_fr_methods(table, benchmark, env):
    setup = env.setup("room")
    ours = env.study_model("room").model
    benchmark(lambda: render_foveated(ours, setup.eval_cameras[0]))

    summary = {}
    for name, entries in table.items():
        summary[name] = dict(
            fps=np.mean([e[0] for e in entries]),
            storage=np.mean([e[1] for e in entries]),
            hvsq=np.mean([e[2] for e in entries], axis=0),
        )

    smfr_fps = summary["SMFR"]["fps"]
    smfr_storage = summary["SMFR"]["storage"]
    lines = [
        f"{'method':<15} {'FPS':>7} {'rel':>6} {'storage':>9} {'rel':>6} "
        f"{'L1':>9} {'L2':>9} {'L3':>9} {'L4':>9}"
    ]
    for name, s in summary.items():
        hv = " ".join(f"{v:9.2e}" for v in s["hvsq"])
        lines.append(
            f"{name:<15} {s['fps']:7.1f} {s['fps'] / smfr_fps:5.2f}x "
            f"{s['storage'] / 1024:8.0f}K {s['storage'] / smfr_storage:5.2f}x {hv}"
        )
    report("Table 1 FR methods (SMFR / MMFR / ours)", lines)

    # Paper shape assertions.
    assert summary["SMFR"]["fps"] >= summary["MetaSapiens-H"]["fps"] * 0.95
    # Paper: 0.42x; at our evaluation scale projection is a smaller share
    # of frame time, so MMFR's penalty is milder but must remain visible.
    assert summary["MMFR"]["fps"] < 0.95 * summary["SMFR"]["fps"]
    assert summary["MMFR"]["storage"] > 1.5 * smfr_storage
    assert summary["MetaSapiens-H"]["storage"] < 1.25 * smfr_storage
    # Peripheral quality: SMFR's L4 HVSQ is far worse than ours.
    assert summary["SMFR"]["hvsq"][3] > 2.0 * summary["MetaSapiens-H"]["hvsq"][3]
    # And SMFR degrades steeply from L1 to L4 (paper: >10x).
    assert summary["SMFR"]["hvsq"][3] > 5.0 * max(summary["SMFR"]["hvsq"][0], 1e-12)
    # Ours is much flatter across levels than SMFR (uniform perceived quality).
    ours_range = summary["MetaSapiens-H"]["hvsq"][3] / max(
        summary["MetaSapiens-H"]["hvsq"][0], 1e-12
    )
    smfr_range = summary["SMFR"]["hvsq"][3] / max(summary["SMFR"]["hvsq"][0], 1e-12)
    assert ours_range < smfr_range
