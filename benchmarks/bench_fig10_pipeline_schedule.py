"""Fig 10: pipeline stalls under imbalance — Baseline vs TM vs TM+IP.

Reproduces both the didactic 4-tile example of the figure and the same
comparison on a real foveated frame: tile merging removes most stalls,
incremental pipelining removes the intra-tile serialization on top.
"""

import numpy as np
import pytest

from repro.accel import (
    METASAPIENS_BASE,
    METASAPIENS_TM,
    METASAPIENS_TM_IP,
    foveated_sort_work,
    foveated_tile_counts,
    simulate_pipeline,
    spans_to_sort_work,
    spans_to_tile_counts,
)
from repro.foveation import render_foveated
from repro.splat import prepare_view
from repro.splat.backends import build_row_spans, build_segments

from _report import report

# The figure's four imbalanced tiles (S1 big, S2/S3 small, S4 medium).
FIGURE_TILES = np.array([300.0, 40.0, 40.0, 150.0])


def schedule_row(name, result):
    return (
        f"{name:<20} cycles {result.total_cycles:9.0f}  "
        f"raster-util {result.raster_utilization:5.2f}  "
        f"tiles {result.num_scheduled_tiles:4d}"
    )


def test_fig10_four_tile_example(benchmark):
    base = simulate_pipeline(FIGURE_TILES, METASAPIENS_BASE)
    tm = simulate_pipeline(FIGURE_TILES, METASAPIENS_TM, merge_threshold=200.0)
    tm_ip = benchmark(
        lambda: simulate_pipeline(FIGURE_TILES, METASAPIENS_TM_IP, merge_threshold=200.0)
    )

    report(
        "Fig 10 pipeline schedule (4-tile example)",
        [
            schedule_row("Baseline", base),
            schedule_row("TM", tm),
            schedule_row("TM+IP", tm_ip),
        ],
    )
    assert tm.total_cycles <= base.total_cycles
    assert tm_ip.total_cycles < tm.total_cycles
    # The paper's point: S2+S3 are merged into one scheduled unit.
    assert tm.num_scheduled_tiles < base.num_scheduled_tiles


def test_fig10_real_frame(env, benchmark):
    setup = env.setup("bicycle")
    fr = env.fr_model("bicycle").model
    result = render_foveated(fr, setup.eval_cameras[0])
    ints = result.stats.raster_intersections_per_tile

    base = simulate_pipeline(ints, METASAPIENS_BASE)
    tm = simulate_pipeline(ints, METASAPIENS_TM)
    tm_ip = benchmark(lambda: simulate_pipeline(ints, METASAPIENS_TM_IP))

    # Span-driven row: the packed engine's row spans carry the per-row
    # fragment counts the paper's Sorting/Rasterization stages stream, so
    # the simulator runs on the workload a real frame produces instead of
    # the synthetic full-tile intersection aggregate.  The sorting stage
    # is additionally priced from the span *group* lengths (the per-row
    # fragment lists the rate-matched sorter emits) rather than the
    # synthetic n·log n over intersection counts.
    projected, assignment = prepare_view(setup.scene, setup.eval_cameras[0])
    spans = build_row_spans(projected, build_segments(assignment))
    span_ints = spans_to_tile_counts(spans, units="intersections")
    tm_ip_spans = simulate_pipeline(span_ints, METASAPIENS_TM_IP)
    tm_ip_sorted = simulate_pipeline(
        span_ints, METASAPIENS_TM_IP, sort_work_per_tile=spans_to_sort_work(spans)
    )

    # Foveated rows: the per-level filtered span lists the foveated frame
    # surfaced are the true post-filtering workload (ROADMAP's "deeper
    # accelerator alignment" hook) — not the dense view's spans.
    if result.level_spans is None:  # e.g. running under REPRO_BACKEND=reference
        from repro.splat import RenderConfig

        result = render_foveated(
            fr, setup.eval_cameras[0], config=RenderConfig(backend="packed")
        )
    fov_ints = foveated_tile_counts(result.level_spans)
    tm_ip_fov = simulate_pipeline(
        fov_ints, METASAPIENS_TM_IP,
        sort_work_per_tile=foveated_sort_work(result.level_spans),
    )

    report(
        "Fig 10 pipeline schedule (real foveated frame, bicycle)",
        [
            schedule_row("Baseline", base),
            schedule_row("TM", tm),
            schedule_row("TM+IP", tm_ip),
            schedule_row("TM+IP (span-driven)", tm_ip_spans),
            schedule_row("TM+IP (span-sorted)", tm_ip_sorted),
            schedule_row("TM+IP (foveated spans)", tm_ip_fov),
        ],
    )
    assert tm.total_cycles <= base.total_cycles
    assert tm_ip.total_cycles <= tm.total_cycles
    assert tm_ip.raster_utilization > base.raster_utilization
    # The span-derived workload is real rasterized area: it must be
    # positive and no larger than charging every intersection a full tile.
    assert span_ints.sum() > 0
    assert span_ints.sum() <= assignment.intersections_per_tile().sum()
    # Span-group sorting only reprices the sorting stage.
    assert tm_ip_sorted.raster_busy_cycles == tm_ip_spans.raster_busy_cycles
    assert tm_ip_sorted.sort_busy_cycles != tm_ip_spans.sort_busy_cycles
    assert tm_ip_sorted.total_cycles > 0
    # The foveated frame's filtered spans are the post-filtering workload:
    # positive, and never exceeding the frame's raster-intersection charge.
    assert 0 < fov_ints.sum() <= ints.sum() + 1e-9
