"""Fig 14: accelerator speedup over the mobile GPU, per trace.

Base accelerator / +TM / +TM+IP, each marker a trace running MetaSapiens-H.
Paper shape: base ≈18.5x geomean (up to ~24.8x); TM helps consistently;
TM+IP ≈20.9x geomean (up to ~27.7x).
"""

import numpy as np
import pytest

from repro.accel import (
    METASAPIENS_BASE,
    METASAPIENS_TM,
    METASAPIENS_TM_IP,
    geomean_speedup,
    run_accelerator,
)
from repro.foveation import render_foveated
from repro.perf import workload_from_fr
from repro.scenes import ALL_TRACES

from _report import report

CONFIGS = (METASAPIENS_BASE, METASAPIENS_TM, METASAPIENS_TM_IP)


@pytest.fixture(scope="module")
def runs(env):
    per_config = {cfg.name: [] for cfg in CONFIGS}
    for trace in ALL_TRACES:
        setup = env.setup(trace)
        fr = env.fr_model(trace).model
        result = render_foveated(fr, setup.eval_cameras[0])
        workload = workload_from_fr(result.stats)
        ints = result.stats.raster_intersections_per_tile
        for cfg in CONFIGS:
            per_config[cfg.name].append(run_accelerator(ints, workload, cfg))
    return per_config


def test_fig14_accel_speedups(runs, benchmark, env):
    setup = env.setup("bicycle")
    fr = env.fr_model("bicycle").model
    result = render_foveated(fr, setup.eval_cameras[0])
    workload = workload_from_fr(result.stats)
    ints = result.stats.raster_intersections_per_tile
    benchmark(lambda: run_accelerator(ints, workload, METASAPIENS_TM_IP))

    lines = [f"{'config':<18} {'geomean':>8} {'min':>7} {'max':>7} {'util':>6}"]
    geo = {}
    for name, config_runs in runs.items():
        speedups = np.asarray([r.speedup for r in config_runs])
        utils = np.asarray([r.utilization for r in config_runs])
        geo[name] = geomean_speedup(config_runs)
        lines.append(
            f"{name:<18} {geo[name]:7.1f}x {speedups.min():6.1f}x "
            f"{speedups.max():6.1f}x {utils.mean():6.2f}"
        )
    report("Fig 14 accelerator speedup over mobile GPU (13 traces)", lines)

    # Shape: every design point is an order of magnitude over the GPU;
    # TM never hurts; TM+IP is the best.
    assert geo["MetaSapiens-Base"] > 10.0
    assert geo["MetaSapiens-TM"] >= geo["MetaSapiens-Base"] * 0.99
    assert geo["MetaSapiens-TM-IP"] > geo["MetaSapiens-TM"]
    assert geo["MetaSapiens-TM-IP"] > 15.0
    # Per-trace: TM+IP wins on every trace (the paper's "consistently").
    for base_run, ip_run in zip(runs["MetaSapiens-Base"], runs["MetaSapiens-TM-IP"]):
        assert ip_run.speedup >= base_run.speedup * 0.99
