"""Autotuner validation: measured knees, model predictions, tiled backend.

Three tables, three contracts:

1. **Selection quality** — the span-budget sweep's knee fit must keep at
   least 95% of the best swept setting's throughput (the whole point of
   preferring the knee over the argmax is *not* giving up throughput for
   leanness).  Asserted always: the guarantee is part of the fit's
   definition, and the table shows the measured curve it held on.

2. **Cost model** — the analytic LLC model (:mod:`repro.tune.model`)
   predicts the span-budget knee from cache geometry alone; the table
   reports the predicted-vs-measured gap.  The gap is *reported*, not
   tightly gated: on hosts whose LLC dwarfs the bench workload (or CI
   runners with huge shared L3s) the measured curve is flat and the knee
   ill-defined, and an analytic model should be judged across hosts, not
   pinned to one.

3. **Tiled backend** — ``packed-tiled`` must match ``packed`` to the
   backend-equivalence tolerance (1e-10, asserted always) and beat it by
   ≥ 1.1x on a ≥ 1024² frame *when the frame's working set overflows the
   LLC and a measured tile extent is active* (gated in ``--quick``/strict
   mode).  Two informational skips: where the LLC holds the whole working
   set tiling has nothing to win, and without a tuned tile extent (host
   profile or ``$REPRO_TILE_SPAN_BUDGET`` — run ``repro.cli tune``, as
   the CI tune leg does) the backend falls back to the analytic
   prediction, whose accuracy is exactly what table 2 reports rather
   than gates.

Run with ``--quick`` for the CI-sized pass of the same assertions.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.scenes import generate_scene, trace_cameras
from repro.splat import prepare_view
from repro.splat.backends import get_backend, tile_span_budget
from repro.splat.backends.segments import build_row_spans, build_segments
from repro.tune import span_cost_model
from repro.tune.sweep import sweep_span_budget

from _report import report

TOL = 1e-10
TILED_SIZE = 1024  # acceptance scale: >= 1024^2 for the tiled-backend gate
TILED_POINTS = 2048


def _strict() -> bool:
    return os.environ.get("REPRO_BENCH_STRICT") == "1"


@pytest.fixture(scope="module")
def tag(request):
    return " [quick]" if request.config.getoption("--quick") else ""


def test_tuner_selection_quality(quick, tag):
    result = sweep_span_budget(quick=quick, seed=0)
    lines = result.lines()
    lines.append(
        f"selected keeps {result.fit.relative:.1%} of peak throughput "
        f"(gate: >= 95%)"
    )
    report(f"Autotune span-budget sweep{tag}", lines)
    # The knee fit's defining guarantee, shown holding on measured data.
    assert result.fit.relative >= 0.95
    # The selection must be one of the swept settings.
    assert result.fit.selected in result.settings


def test_cost_model_prediction(quick, tag):
    model = span_cost_model()
    result = sweep_span_budget(quick=quick, seed=1)
    lines = []
    if model is None:
        lines.append("cache geometry not detectable on this host (no sysfs)")
    else:
        lines.append(
            f"LLC {model.llc_bytes >> 20} MiB, {model.bytes_per_span} B/span, "
            f"residency fraction {model.residency_fraction}"
        )
        lines.append(f"predicted span-budget knee: {model.predicted_span_budget}")
        lines.append(f"measured knee (seed 1 sweep): {int(result.fit.selected)}")
        gap = model.predicted_span_budget / result.fit.selected
        lines.append(
            f"predicted-vs-measured gap: {gap:.2f}x "
            "(reported, not gated: flat curves leave the measured knee "
            "ill-defined on big-LLC hosts)"
        )
    report(f"Autotune cost model vs measurement{tag}", lines)
    if model is not None:
        assert model.predicted_span_budget >= 1
        assert model.working_set_bytes(model.predicted_span_budget) <= (
            model.llc_bytes
        )


@pytest.fixture(scope="module")
def tiled_rows(request):
    quick = request.config.getoption("--quick")
    reps = 2 if quick else 4
    scene = generate_scene("kitchen", n_points=TILED_POINTS)
    # The synthetic generator sizes splats for tiny eval frames; rescale to
    # the few-pixel screen footprints real captures exhibit at this size.
    scene.log_scales += np.log(0.15 * TILED_SIZE / 256.0)
    train, _ = trace_cameras(
        "kitchen", n_train=1, n_eval=1, width=TILED_SIZE, height=TILED_SIZE
    )
    camera = train[0]
    projected, assignment = prepare_view(scene, camera)
    n_spans = build_row_spans(projected, build_segments(assignment)).num_spans
    background = np.zeros(3)

    def frame_ms(engine) -> float:
        def run():
            return engine.forward(
                projected, assignment, scene.num_points, background, False, False
            )

        run()  # warm-up
        times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            run()
            times.append(time.perf_counter() - t0)
        return min(times) * 1e3

    packed = get_backend("packed")
    tiled = get_backend("packed-tiled")
    packed_ms = frame_ms(packed)
    tiled_ms = frame_ms(tiled)
    packed_img = packed.forward(
        projected, assignment, scene.num_points, background, False, False
    )[0]
    tiled_img = tiled.forward(
        projected, assignment, scene.num_points, background, False, False
    )[0]
    return dict(
        packed_ms=packed_ms,
        tiled_ms=tiled_ms,
        max_diff=float(np.max(np.abs(packed_img - tiled_img))),
        n_spans=n_spans,
        quick=quick,
    )


def _tuned_tile_budget_active() -> bool:
    """Whether the tile extent comes from a *measurement* (env or profile)
    rather than the analytic fallback prediction."""
    from repro.splat.backends.packed import TILE_BUDGET_ENV
    from repro.tune import profile_value

    if os.environ.get(TILE_BUDGET_ENV, "").strip():
        return True
    return profile_value("tile_spans") is not None


def test_tiled_backend_large_frame(tiled_rows, tag):
    r = tiled_rows
    model = span_cost_model()
    budget = tile_span_budget()
    tuned = _tuned_tile_budget_active()
    speedup = r["packed_ms"] / r["tiled_ms"]
    overflows = model is not None and model.overflows_llc(r["n_spans"])
    lines = [
        f"{TILED_SIZE}x{TILED_SIZE} frame, {TILED_POINTS} gaussians, "
        f"{r['n_spans']} spans (tile budget {budget}, "
        f"{'measured' if tuned else 'model-predicted'})",
        f"{'backend':<14} {'per frame':>10}",
        f"{'packed':<14} {r['packed_ms']:8.1f}ms",
        f"{'packed-tiled':<14} {r['tiled_ms']:8.1f}ms",
        f"speedup: {speedup:.2f}x",
        f"max |packed - tiled|: {r['max_diff']:.2e} (tolerance {TOL})",
        (
            f"working set {model.working_set_bytes(r['n_spans']) >> 20} MiB vs "
            f"LLC {model.llc_bytes >> 20} MiB -> "
            f"{'overflows' if overflows else 'resident'}"
            if model is not None
            else "cache geometry not detectable: overflow status unknown"
        ),
    ]
    report(f"Cache-tiled backend at {TILED_SIZE}^2{tag}", lines)
    # Numerical equivalence is unconditional: tiling must never change
    # the image beyond the backend tolerance.
    assert r["max_diff"] <= TOL
    if r["quick"] or _strict():
        if not overflows:
            pytest.skip(
                "frame working set fits this host's LLC "
                "(tiling has nothing to win here); speedup gate applies "
                "only where the LLC is the bottleneck"
            )
        if not tuned:
            pytest.skip(
                "no measured tile extent active (run `repro.cli tune` or "
                "set REPRO_TILE_SPAN_BUDGET); the analytic fallback's "
                "accuracy is reported by the cost-model table, not gated"
            )
        assert speedup >= 1.1, f"packed-tiled: {speedup:.2f}x"
