"""Fig 3: FPS distribution of five PBNR models across the 13 traces.

Paper shape: 3DGS and Mini-Splatting-D (dense) are slowest; CompactGS,
LightGS and Mini-Splatting (pruned) are faster but still far from the
75-90 FPS real-time bar on the mobile GPU.  A foveated gaze-trajectory
sweep rides along: MetaSapiens frames along a simulated scanpath, rendered
in one batched foveated pass, clear the bar the baselines miss.
"""

import numpy as np
import pytest

from repro.baselines import FIG3_BASELINES
from repro.foveation import render_foveated_batch
from repro.perf import DEFAULT_GPU, mean_workload, workload_from_fr, workload_from_render
from repro.scenes import ALL_TRACES, gaze_trajectory
from repro.splat import render, render_batch

from _report import report

TRACES = ALL_TRACES  # all 13

# Scanpath length of the foveated gaze-trajectory sweep.
GAZE_FRAMES = 12


def model_fps(env, trace: str, name: str) -> float:
    setup = env.setup(trace)
    baseline = env.baselines(trace, FIG3_BASELINES)[name]
    # One batched rasterization pass over the eval poses; the shared cache
    # keeps one PreparedView per (model, pose) across measurement repeats.
    results = render_batch(
        baseline.model,
        setup.eval_cameras,
        baseline.render_config,
        cache=env.view_cache,
    )
    workloads = [
        workload_from_render(result, baseline.render_config) for result in results
    ]
    return DEFAULT_GPU.fps(mean_workload(workloads))


@pytest.fixture(scope="module")
def fps_table(env):
    return {
        name: np.asarray([model_fps(env, trace, name) for trace in TRACES])
        for name in FIG3_BASELINES
    }


@pytest.fixture(scope="module")
def foveated_gaze_fps(env):
    """Per-frame FPS of a MetaSapiens model along a simulated scanpath.

    All gaze samples of the pose go through one `render_foveated_batch`
    call: the view-preparation prefix is shared (one projection for the
    whole trajectory via the session cache) and the frames' span scans are
    batched by the backend.
    """
    setup = env.setup("bicycle")
    fr = env.fr_model("bicycle").model
    cam = setup.eval_cameras[0]
    gazes = [
        tuple(g) for g in gaze_trajectory(cam.width, cam.height, GAZE_FRAMES, seed=0)
    ]
    results = render_foveated_batch(fr, cam, gazes=gazes, cache=env.view_cache)
    return np.asarray(
        [DEFAULT_GPU.fps(workload_from_fr(r.stats)) for r in results]
    )


def test_fig3_fps_distribution(fps_table, benchmark, env):
    # Benchmark the dense render that dominates Fig 3's runtime story.  The
    # pose's PreparedView comes from the shared cache, so the timed loop pays
    # rasterization only — not a fresh projection per measurement repeat.
    setup = env.setup("bicycle")
    dense = env.baselines("bicycle", FIG3_BASELINES)["3DGS"]
    prepared = env.view_cache.get(
        dense.model, setup.eval_cameras[0], dense.render_config
    )
    benchmark(
        lambda: render(
            dense.model, setup.eval_cameras[0], dense.render_config,
            prepared=prepared,
        )
    )

    lines = [f"{'model':<18} {'min':>6} {'q1':>6} {'med':>6} {'q3':>6} {'max':>6}"]
    for name, fps in fps_table.items():
        q = np.percentile(fps, [0, 25, 50, 75, 100])
        lines.append(
            f"{name:<18} " + " ".join(f"{v:6.1f}" for v in q)
        )
    report("Fig 3 FPS distribution (mobile GPU model)", lines)

    # Shape assertions from the paper.
    med = {name: np.median(fps) for name, fps in fps_table.items()}
    assert med["3DGS"] < 15.0  # dense models far from real-time
    assert med["Mini-Splatting-D"] < 15.0
    for pruned in ("CompactGS", "LightGS", "Mini-Splatting"):
        assert med[pruned] > med["3DGS"]  # pruning helps...
        assert med[pruned] < 75.0  # ...but stays below the VR bar


def test_fig3_foveated_gaze_trajectory(foveated_gaze_fps, fps_table):
    fps = foveated_gaze_fps
    q = np.percentile(fps, [0, 25, 50, 75, 100])
    report(
        "Fig 3 foveated gaze-trajectory FPS (batched scanpath, bicycle)",
        [
            f"{GAZE_FRAMES} gaze samples of one pose, one batched foveated pass",
            f"{'frames':<18} {'min':>6} {'q1':>6} {'med':>6} {'q3':>6} {'max':>6}",
            f"{'MetaSapiens (FR)':<18} " + " ".join(f"{v:6.1f}" for v in q),
        ],
    )
    assert np.all(fps > 0)
    # On its own trace, foveation beats every non-foveated model in the
    # figure — the workload follows the gaze but never collapses back to
    # the full frame's cost (paper: MetaSapiens ≈1.9x the fastest baseline).
    trace_idx = TRACES.index("bicycle")
    med = float(np.median(fps))
    for name, base_fps in fps_table.items():
        assert med > base_fps[trace_idx], name
