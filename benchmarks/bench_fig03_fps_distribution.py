"""Fig 3: FPS distribution of five PBNR models across the 13 traces.

Paper shape: 3DGS and Mini-Splatting-D (dense) are slowest; CompactGS,
LightGS and Mini-Splatting (pruned) are faster but still far from the
75-90 FPS real-time bar on the mobile GPU.
"""

import numpy as np
import pytest

from repro.baselines import FIG3_BASELINES
from repro.perf import DEFAULT_GPU, mean_workload, workload_from_render
from repro.scenes import ALL_TRACES
from repro.splat import render, render_batch

from _report import report

TRACES = ALL_TRACES  # all 13


def model_fps(env, trace: str, name: str) -> float:
    setup = env.setup(trace)
    baseline = env.baselines(trace, FIG3_BASELINES)[name]
    # One batched rasterization pass over the eval poses; the shared cache
    # keeps one PreparedView per (model, pose) across measurement repeats.
    results = render_batch(
        baseline.model,
        setup.eval_cameras,
        baseline.render_config,
        cache=env.view_cache,
    )
    workloads = [
        workload_from_render(result, baseline.render_config) for result in results
    ]
    return DEFAULT_GPU.fps(mean_workload(workloads))


@pytest.fixture(scope="module")
def fps_table(env):
    return {
        name: np.asarray([model_fps(env, trace, name) for trace in TRACES])
        for name in FIG3_BASELINES
    }


def test_fig3_fps_distribution(fps_table, benchmark, env):
    # Benchmark the dense render that dominates Fig 3's runtime story.  The
    # pose's PreparedView comes from the shared cache, so the timed loop pays
    # rasterization only — not a fresh projection per measurement repeat.
    setup = env.setup("bicycle")
    dense = env.baselines("bicycle", FIG3_BASELINES)["3DGS"]
    prepared = env.view_cache.get(
        dense.model, setup.eval_cameras[0], dense.render_config
    )
    benchmark(
        lambda: render(
            dense.model, setup.eval_cameras[0], dense.render_config,
            prepared=prepared,
        )
    )

    lines = [f"{'model':<18} {'min':>6} {'q1':>6} {'med':>6} {'q3':>6} {'max':>6}"]
    for name, fps in fps_table.items():
        q = np.percentile(fps, [0, 25, 50, 75, 100])
        lines.append(
            f"{name:<18} " + " ".join(f"{v:6.1f}" for v in q)
        )
    report("Fig 3 FPS distribution (mobile GPU model)", lines)

    # Shape assertions from the paper.
    med = {name: np.median(fps) for name, fps in fps_table.items()}
    assert med["3DGS"] < 15.0  # dense models far from real-time
    assert med["Mini-Splatting-D"] < 15.0
    for pruned in ("CompactGS", "LightGS", "Mini-Splatting"):
        assert med[pruned] > med["3DGS"]  # pruning helps...
        assert med[pruned] < 75.0  # ...but stays below the VR bar
