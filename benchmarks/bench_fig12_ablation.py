"""Fig 12: ablation — Dense → +SD → +SD+CE → +SD+CE+FR.

Paper shape (MetaSapiens-H, averaged over traces): scale decay alone buys
~1.6x, adding CE pruning ~5.8x, adding FR ~7.4x, all at similar PSNR.
Our reproduction uses the same build ladder on the evaluation traces.
"""

import numpy as np
import pytest

from repro.core import compute_ce, make_scale_decay_regularizer, prune_lowest_ce
from repro.core.scale_decay import ScaleDecayConfig
from repro.foveation import FRTrainConfig, build_foveated_model, render_foveated
from repro.harness import EVAL_LEVEL_FRACTIONS, EVAL_REGION_LAYOUT
from repro.hvs.metrics import psnr
from repro.perf import DEFAULT_GPU, workload_from_fr, workload_from_render
from repro.splat import render
from repro.train import TrainConfig, finetune

from _report import report

TRACES = ("room", "truck")


def build_ladder(env, trace):
    """Dense → +SD → +SD+CE → +SD+CE+FR models for one trace."""
    setup = env.setup(trace)
    dense = env.baselines(trace, ("Mini-Splatting-D",))["Mini-Splatting-D"]

    # +SD: fine-tune the dense model with the WS regularizer (no pruning).
    sd_model = dense.model.copy()
    regularizer = make_scale_decay_regularizer(
        setup.train_cameras, ScaleDecayConfig(gamma=3e-2, usage_threshold=3.0)
    )
    finetune(
        sd_model, setup.train_cameras, setup.train_targets,
        TrainConfig(iterations=10, lr_opacity=0.02, lr_sh_dc=0.005, lr_log_scale=0.08),
        regularizer=regularizer,
    )

    # +SD+CE: intersection-aware pruning on top.
    ce = compute_ce(sd_model, setup.train_cameras)
    ce_model = prune_lowest_ce(sd_model, ce.ce, 0.65).model
    finetune(
        ce_model, setup.train_cameras, setup.train_targets,
        TrainConfig(iterations=6), regularizer=regularizer,
    )

    # +SD+CE+FR: foveated hierarchy on the pruned model.
    fr = build_foveated_model(
        ce_model, setup.train_cameras, setup.train_targets, EVAL_REGION_LAYOUT,
        FRTrainConfig(level_fractions=EVAL_LEVEL_FRACTIONS, finetune_iterations=3),
    ).model
    return setup, dense, sd_model, ce_model, fr


def foveal_psnr(setup, image):
    """PSNR on the foveal region (the paper reports gaze-region quality)."""
    from repro.foveation.regions import region_masks

    cam, target = setup.eval_cameras[0], setup.eval_targets[0]
    fovea = region_masks(cam, EVAL_REGION_LAYOUT)[0][:, :, None]
    return psnr(np.where(fovea, target, 0.0), np.where(fovea, image, 0.0))


def measure(setup, model, render_config=None):
    cam = setup.eval_cameras[0]
    result = render(model, cam, render_config)
    fps = DEFAULT_GPU.fps(workload_from_render(result, render_config))
    return fps, foveal_psnr(setup, result.image)


@pytest.fixture(scope="module")
def ladder(env):
    rows = {"Dense": [], "+SD": [], "+SD+CE": [], "+SD+CE+FR": []}
    for trace in TRACES:
        setup, dense, sd_model, ce_model, fr = build_ladder(env, trace)
        rows["Dense"].append(measure(setup, dense.model, dense.render_config))
        rows["+SD"].append(measure(setup, sd_model))
        rows["+SD+CE"].append(measure(setup, ce_model))
        fr_result = render_foveated(fr, setup.eval_cameras[0])
        fr_fps = DEFAULT_GPU.fps(workload_from_fr(fr_result.stats))
        rows["+SD+CE+FR"].append((fr_fps, foveal_psnr(setup, fr_result.image)))
    return rows


def test_fig12_ablation(ladder, benchmark, env):
    setup = env.setup("room")
    dense = env.baselines("room", ("Mini-Splatting-D",))["Mini-Splatting-D"]
    benchmark(lambda: render(dense.model, setup.eval_cameras[0]))

    fps = {k: np.mean([v[0] for v in vals]) for k, vals in ladder.items()}
    quality = {k: np.mean([v[1] for v in vals]) for k, vals in ladder.items()}

    lines = [f"{'config':<12} {'FPS':>7} {'speedup':>8} {'PSNR dB':>8}   (PSNR on foveal region)"]
    for name in ("Dense", "+SD", "+SD+CE", "+SD+CE+FR"):
        lines.append(
            f"{name:<12} {fps[name]:7.1f} {fps[name] / fps['Dense']:7.1f}x "
            f"{quality[name]:8.1f}"
        )
    report("Fig 12 ablation (SD, CE, FR)", lines)

    # Shape: each added technique increases speed.
    assert fps["+SD"] > fps["Dense"]
    assert fps["+SD+CE"] > 2.0 * fps["Dense"]
    assert fps["+SD+CE+FR"] > fps["+SD+CE"]
    # Quality stays in a similar band (paper: PSNRs "similar"; our miniature
    # re-training budget recovers most but not all of the dense PSNR).
    assert quality["+SD+CE+FR"] > quality["Dense"] - 6.0
