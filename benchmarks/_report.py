"""Tiny reporting helper: print paper-style tables and archive them."""

from __future__ import annotations

import os
import sys

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(title: str, lines: list[str]) -> None:
    """Print a table (visible via -s and in captured bench output) and save
    it under benchmarks/results/<slug>.txt for EXPERIMENTS.md."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    slug = title.lower().replace(" ", "_").replace("/", "-")[:60]
    text = "\n".join([f"== {title} ==", *lines, ""])
    # stderr survives pytest capture in most configurations.
    print(text, file=sys.stderr)
    with open(os.path.join(RESULTS_DIR, f"{slug}.txt"), "w") as f:
        f.write(text)
