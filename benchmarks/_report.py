"""Tiny reporting helper: print paper-style tables and archive them."""

from __future__ import annotations

import os
import sys

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def _tuning_stamp() -> str | None:
    """One line describing the knob state a benchmark actually ran under.

    Tuned hosts and untuned hosts produce different numbers for the same
    code; stamping the resolved span budget, cache bytes, batch budget and
    profile source into every archived table makes results comparable
    across machines.  Guarded: a broken tuning stack must never take the
    benchmarks down with it.
    """
    try:
        from repro.serve.regions import resolved_cache_bytes
        from repro.serve.scheduler import resolved_batch_budget
        from repro.splat.backends import span_chunk_budget, tile_span_budget
        from repro.tune import profile_source

        cache = resolved_cache_bytes()
        return (
            f"[tuning: span_budget={span_chunk_budget()} "
            f"tile_spans={tile_span_budget()} "
            f"cache_bytes={'off' if cache is None else cache} "
            f"batch_budget={resolved_batch_budget()} "
            f"profile={profile_source()}]"
        )
    except Exception:
        return None


def report(title: str, lines: list[str]) -> None:
    """Print a table (visible via -s and in captured bench output) and save
    it under benchmarks/results/<slug>.txt for EXPERIMENTS.md."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    slug = title.lower().replace(" ", "_").replace("/", "-")[:60]
    stamp = _tuning_stamp()
    header = [f"== {title} =="] + ([stamp] if stamp else [])
    text = "\n".join([*header, *lines, ""])
    # stderr survives pytest capture in most configurations.
    print(text, file=sys.stderr)
    with open(os.path.join(RESULTS_DIR, f"{slug}.txt"), "w") as f:
        f.write(text)
