"""Fig 5: unequal compute cost of differently-sized ellipses.

Two Gaussians at the same depth, one small and one large: the large one
intersects several times more tiles, so it is responsible for proportionally
more rasterization work — the intuition behind the CE metric.
"""

import numpy as np
import pytest

from repro.splat import Camera, GaussianModel, prepare_view

from _report import report


def two_ellipse_model(small_scale: float, large_scale: float) -> GaussianModel:
    return GaussianModel(
        positions=np.array([[-1.2, 0.0, 0.0], [1.2, 0.0, 0.0]]),
        log_scales=np.log(
            np.array([[small_scale] * 3, [large_scale] * 3])
        ),
        rotations=np.tile([1.0, 0, 0, 0], (2, 1)),
        opacity_logits=np.array([2.0, 2.0]),
        sh=np.zeros((2, 1, 3)),
    )


@pytest.fixture(scope="module")
def camera():
    return Camera.from_fov(
        width=128, height=96, fov_x_deg=60.0,
        position=np.array([0.0, 0.0, -6.0]), look_at=np.zeros(3),
    )


def test_fig5_tile_cost_scales_with_ellipse_size(camera, benchmark):
    model = two_ellipse_model(small_scale=0.08, large_scale=0.6)
    projected, assignment = benchmark(lambda: prepare_view(model, camera))

    tiles_per_splat = assignment.tiles_per_splat(projected.num_visible)
    small_tiles, large_tiles = int(tiles_per_splat[0]), int(tiles_per_splat[1])

    report(
        "Fig 5 ellipse size vs tile intersections",
        [
            f"small ellipse (s=0.08): {small_tiles} tiles",
            f"large ellipse (s=0.60): {large_tiles} tiles",
            f"cost ratio: {large_tiles / max(small_tiles, 1):.1f}x",
        ],
    )
    assert large_tiles >= 4 * small_tiles


def test_fig5_cost_monotone_in_scale(camera, benchmark):
    benchmark(lambda: prepare_view(two_ellipse_model(0.01, 0.4), camera))
    previous = 0
    for scale in (0.05, 0.15, 0.4, 0.8):
        model = two_ellipse_model(small_scale=0.01, large_scale=scale)
        projected, assignment = prepare_view(model, camera)
        tiles = int(assignment.tiles_per_splat(projected.num_visible)[1])
        assert tiles >= previous
        previous = tiles
