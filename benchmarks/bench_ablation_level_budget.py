"""Ablation: foveated level budgets — the speed/quality knob behind H/M/L.

Sweeps the per-level point fractions from conservative to aggressive and
reports FPS vs per-level HVSQ: the mechanism by which the paper's variants
trade peripheral quality for frame rate.
"""

import numpy as np
import pytest

from repro.foveation import (
    FRTrainConfig,
    build_foveated_model,
    measure_level_hvsq,
    render_foveated,
)
from repro.harness import EVAL_REGION_LAYOUT
from repro.perf import DEFAULT_GPU, workload_from_fr

from _report import report

TRACE = "room"
BUDGETS = {
    "conservative": (1.0, 0.7, 0.5, 0.35),
    "paper-like": (1.0, 0.45, 0.22, 0.10),
    "aggressive": (1.0, 0.3, 0.12, 0.05),
}


@pytest.fixture(scope="module")
def sweep(env):
    setup = env.setup(TRACE)
    l1 = env.study_l1(TRACE)
    rows = []
    for name, fractions in BUDGETS.items():
        fm = build_foveated_model(
            l1, setup.train_cameras, setup.train_targets, EVAL_REGION_LAYOUT,
            FRTrainConfig(level_fractions=fractions, finetune_iterations=6),
        ).model
        result = render_foveated(fm, setup.eval_cameras[0])
        fps = DEFAULT_GPU.fps(workload_from_fr(result.stats))
        l4 = measure_level_hvsq(fm, 4, setup.eval_cameras, setup.eval_targets)
        rows.append(dict(name=name, fractions=fractions, fps=fps, l4_hvsq=l4))
    return rows


def test_level_budget_sweep(sweep, benchmark, env):
    setup = env.setup(TRACE)
    fm = env.study_model(TRACE).model
    benchmark(lambda: render_foveated(fm, setup.eval_cameras[0]))

    lines = [f"{'budget':<14} {'fractions':<24} {'FPS':>7} {'L4 HVSQ':>10}"]
    for row in sweep:
        frac = "/".join(f"{f:g}" for f in row["fractions"])
        lines.append(f"{row['name']:<14} {frac:<24} {row['fps']:7.1f} {row['l4_hvsq']:10.2e}")
    report("Ablation foveated level budgets", lines)

    by_name = {row["name"]: row for row in sweep}
    # Aggressive budgets are faster; conservative budgets hold quality.
    assert by_name["aggressive"]["fps"] > by_name["conservative"]["fps"]
    assert by_name["conservative"]["l4_hvsq"] <= by_name["aggressive"]["l4_hvsq"]
    # The paper-like point sits between the extremes on speed.
    assert (
        by_name["conservative"]["fps"]
        < by_name["paper-like"]["fps"]
        <= by_name["aggressive"]["fps"] * 1.01
    )
