"""Fig 13: speed/quality trade-off — 7 baselines vs 3 MetaSapiens variants.

Paper shape: the three MetaSapiens variants sit on the Pareto front of all
three quality metrics vs FPS; MetaSapiens-H is ≈1.9x faster than the fastest
baseline at similar quality, and MetaSapiens-L reaches several times the
FPS of 3DGS.
"""

import numpy as np
import pytest

import repro
from repro.baselines import ALL_BASELINES
from repro.foveation import FRTrainConfig, build_foveated_model
from repro.harness import EVAL_LEVEL_FRACTIONS, EVAL_REGION_LAYOUT, quick_l1_model

from _report import report

TRACES = ("room", "truck", "drjohnson")
VARIANT_KEEP = {"MetaSapiens-H": 0.30, "MetaSapiens-M": 0.22, "MetaSapiens-L": 0.13}


@pytest.fixture(scope="module")
def measurements(env):
    rows: dict[str, list] = {name: [] for name in ALL_BASELINES}
    rows.update({name: [] for name in VARIANT_KEEP})

    for trace in TRACES:
        setup = env.setup(trace)
        baselines = env.baselines(trace, tuple(ALL_BASELINES))
        for name, baseline in baselines.items():
            rows[name].append(repro.measure_baseline(baseline, setup))

        dense = baselines["Mini-Splatting-D"]
        for name, keep in VARIANT_KEEP.items():
            l1 = quick_l1_model(setup, dense, keep_fraction=keep)
            fr = build_foveated_model(
                l1, setup.train_cameras, setup.train_targets, EVAL_REGION_LAYOUT,
                FRTrainConfig(level_fractions=EVAL_LEVEL_FRACTIONS, finetune_iterations=2),
            ).model
            rows[name].append(repro.measure_foveated(name, fr, setup))
    return rows


def test_fig13_tradeoff(measurements, benchmark, env):
    setup = env.setup("room")
    dense = env.baselines("room", tuple(ALL_BASELINES))["3DGS"]
    benchmark(lambda: repro.measure_baseline(dense, setup))

    summary = {}
    for name, ms in measurements.items():
        summary[name] = dict(
            fps=np.mean([m.fps for m in ms]),
            psnr=np.mean([m.psnr for m in ms]),
            ssim=np.mean([m.ssim for m in ms]),
            lpips=np.mean([m.lpips for m in ms]),
        )

    lines = [f"{'method':<18} {'FPS':>7} {'PSNR':>7} {'SSIM':>6} {'LPIPS':>6}"]
    for name, s in summary.items():
        lines.append(
            f"{name:<18} {s['fps']:7.1f} {s['psnr']:7.1f} {s['ssim']:6.3f} {s['lpips']:6.3f}"
        )
    report("Fig 13 speed vs quality (7 baselines + 3 variants)", lines)

    fastest_baseline = max(summary[n]["fps"] for n in ALL_BASELINES)
    # Shape assertions.
    assert summary["MetaSapiens-H"]["fps"] > 1.5 * fastest_baseline
    assert summary["MetaSapiens-L"]["fps"] > summary["MetaSapiens-M"]["fps"]
    assert summary["MetaSapiens-M"]["fps"] > summary["MetaSapiens-H"]["fps"]
    assert summary["MetaSapiens-L"]["fps"] > 4.0 * summary["3DGS"]["fps"]
    # Note: foveated quality is measured on the foveal region (masked
    # comparison), so PSNR values are not directly comparable in absolute
    # terms; SSIM/LPIPS of -H must stay competitive with pruned baselines.
    assert summary["MetaSapiens-H"]["ssim"] > 0.8 * summary["LightGS"]["ssim"]
