"""Fig 4: latency tracks tile–ellipse intersections, not point count.

LightGS pruned to several levels on bicycle: the point-count curve drops
much faster than latency, while the intersection curve moves in lockstep
with latency (correlation ≈ 1).
"""

import numpy as np
import pytest

from repro.baselines import make_3dgs, make_lightgs
from repro.perf import DEFAULT_GPU, workload_from_render
from repro.splat import render

from _report import report

PRUNE_LEVELS = (0.0, 0.75, 0.85, 0.90, 0.95, 0.97)


@pytest.fixture(scope="module")
def sweep(env):
    setup = env.setup("bicycle")
    dense = make_3dgs(setup.scene, seed=0)
    rows = []
    for fraction in PRUNE_LEVELS:
        if fraction == 0.0:
            model = dense.model
        else:
            model = make_lightgs(dense, setup.train_cameras, prune_fraction=fraction).model
        result = render(model, setup.eval_cameras[0])
        workload = workload_from_render(result)
        rows.append(
            dict(
                prune=fraction,
                points=model.num_points,
                intersections=result.stats.total_intersections,
                latency_ms=DEFAULT_GPU.latency_ms(workload),
            )
        )
    return rows


def test_fig4_latency_tracks_intersections(sweep, benchmark, env):
    setup = env.setup("bicycle")
    dense = make_3dgs(setup.scene, seed=0)
    benchmark(lambda: make_lightgs(dense, setup.train_cameras, prune_fraction=0.9))

    lines = [f"{'prune%':>7} {'points':>8} {'intersect':>10} {'latency ms':>11}"]
    for row in sweep:
        lines.append(
            f"{row['prune']*100:7.0f} {row['points']:8d} "
            f"{row['intersections']:10d} {row['latency_ms']:11.1f}"
        )
    report("Fig 4 latency vs points vs intersections (LightGS on bicycle)", lines)

    points = np.asarray([r["points"] for r in sweep], dtype=float)
    ints = np.asarray([r["intersections"] for r in sweep], dtype=float)
    latency = np.asarray([r["latency_ms"] for r in sweep], dtype=float)

    # Latency is near-perfectly correlated with intersections...
    corr_ints = np.corrcoef(ints, latency)[0, 1]
    assert corr_ints > 0.99
    # ...and the point-reduction rate outpaces the latency-reduction rate
    # (the paper's argument for why point-count pruning under-delivers).
    point_drop = 1.0 - points[-1] / points[0]
    latency_drop = 1.0 - latency[-1] / latency[0]
    assert point_drop > latency_drop
