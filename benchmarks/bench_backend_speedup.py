"""Backend speedup: packed intersection-list engine vs the per-tile loop.

Reports reference-vs-packed wall-clock per frame so the perf trajectory is
tracked from the backend refactor onward.  The headline workload is a
256×256 frame over 2k+ gaussians with realistic splat footprints (a few
pixels mean radius, as in real 3DGS captures); a fat-splat variant — the
synthetic generator's default at this point count, where every splat spans
whole tiles and span pruning cannot remove work — is reported alongside for
honesty about the regime where the engines tie.

A second table tracks the batched multi-view path: ``render_batch`` over a
trajectory's poses (one concatenated segmented scan) against the sequential
per-view loop, both on cached ``PreparedView``s so the comparison isolates
the rasterization work that batching amortizes.

A third table tracks the batched *foveated* path: ``render_foveated_batch``
over a gaze trajectory (the pose's projection prefix shared by every
sample, all frames' level passes in one concatenated scan) against the
pre-PR consumer loop of one ``render_foveated`` per gaze.  This comparison
gates in ``--quick`` mode (≥1.15x) — eliminating the per-frame projection
re-run is a structural win, not a timing coin-flip.

Select a backend for the *other* benchmarks with ``REPRO_BACKEND``; run
with ``--quick`` for a CI-sized smoke pass of the same assertions.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.foveation import (
    render_foveated,
    render_foveated_batch,
    uniform_foveated_model,
)
from repro.harness import EVAL_LEVEL_FRACTIONS, EVAL_REGION_LAYOUT
from repro.scenes import gaze_trajectory, generate_scene, trace_cameras
from repro.splat import RenderConfig, ViewCache, prepare_view, render, render_batch
from repro.splat.backends import get_backend
from repro.splat.backends.packed import forward_unpooled

from _report import report

WIDTH = HEIGHT = 256
N_POINTS = 2048  # acceptance scale: >= 2k gaussians at 256x256
REPS = 5

# Batched-path workload: >= 8 trajectory poses sharing one segmented scan.
BATCH_VIEWS = 8
BATCH_SIZE_PX = 160

# Foveated gaze-trajectory workload: one pose, several gaze samples.
FOV_GAZE_FRAMES = 8

QUICK_SCALE = dict(size=96, points=512, reps=4)


def _scene(footprint_scale: float, n_points: int, size: int):
    scene = generate_scene("kitchen", n_points=n_points)
    # The synthetic generator sizes splats for tiny eval frames; rescale to
    # the few-pixel screen footprints real captures exhibit at full size.
    scene.log_scales += np.log(footprint_scale * size / 256.0)
    return scene


def _cameras(size: int, n: int = 1):
    train, evals = trace_cameras(
        "kitchen", n_train=max(n, 1), n_eval=max(n, 1), width=size, height=size
    )
    return (train + evals)[:n]


def _frame_ms(scene, camera, backend: str, reps: int) -> float:
    config = RenderConfig(backend=backend)
    render(scene, camera, config)  # warm-up
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        render(scene, camera, config)
        times.append(time.perf_counter() - t0)
    return min(times) * 1e3


@pytest.fixture(scope="module")
def scale(request):
    # ``tag`` keeps quick-smoke reports in their own results files so a CI
    # smoke run never overwrites the archived acceptance-scale record.
    if request.config.getoption("--quick"):
        return dict(**QUICK_SCALE, tag=" [quick]")
    return dict(size=WIDTH, points=N_POINTS, reps=REPS, tag="")


# The pooled comparison runs FIRST in the module: the later workloads'
# allocation churn leaves the process allocator holding warm pages, which
# hands the unpooled path fault-free buffers and erases the very effect
# (first-touch page faults on fresh multi-MB span matrices) being measured.
@pytest.fixture(scope="module")
def pooled_rows(scale):
    """Pooled vs unpooled single-view forward on repeated renders.

    ``PackedBackend.forward`` routes through the pooled batch-of-one
    kernels, reusing the namespace-owned workspace arena across calls;
    ``forward_unpooled`` is the historical path that allocates fresh span
    matrices every call.  Both run on one cached ``PreparedView`` so the
    comparison isolates exactly what pooling buys on a render loop that
    revisits the same pose (the steady state of trajectory evaluation and
    the serving path).
    """
    scene = _scene(0.15, scale["points"], scale["size"])
    camera = _cameras(scale["size"])[0]
    projected, assignment = prepare_view(scene, camera)
    background = np.zeros(3)
    engine = get_backend("packed")

    def pooled():
        return engine.forward(
            projected, assignment, scene.num_points, background, False, False
        )

    def unpooled():
        return forward_unpooled(
            projected, assignment, scene.num_points, background, False, False
        )

    def block_ms(fn):
        """Steady-state block: consecutive same-path reps, min wall-clock.

        Pooling's win is warm workspace pages across *consecutive* renders
        (the render-loop steady state), so each path is measured in its own
        run of reps — interleaving the paths would let the unpooled path's
        fresh multi-MB allocations churn the pooled arena's cache residency
        and measure a workload nobody runs.
        """
        fn(), fn()  # warm-up (incl. the pooled workspace)
        times = []
        for _ in range(2 * scale["reps"]):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times) * 1e3

    # Alternating rounds of blocks: both paths see early and late machine
    # state, cancelling the slow drift of shared runners.
    pooled_times, unpooled_times = [], []
    for _ in range(3):
        pooled_times.append(block_ms(pooled))
        unpooled_times.append(block_ms(unpooled))
    pooled_ms = min(pooled_times)
    unpooled_ms = min(unpooled_times)
    bitwise = np.array_equal(pooled()[0], unpooled()[0])
    return dict(
        pooled_ms=pooled_ms,
        unpooled_ms=unpooled_ms,
        bitwise=bitwise,
        size=scale["size"],
        tag=scale["tag"],
    )


def test_pooled_single_view_speedup(pooled_rows):
    r = pooled_rows
    speedup = r["unpooled_ms"] / r["pooled_ms"]
    report(
        f"Pooled single-view fast path{r['tag']}",
        [
            f"repeated single-view renders at {r['size']}x{r['size']}, "
            "packed backend, cached PreparedView",
            f"{'path':<28} {'per frame':>10}",
            f"{'unpooled (fresh buffers)':<28} {r['unpooled_ms']:8.1f}ms",
            f"{'pooled (warm workspace)':<28} {r['pooled_ms']:8.1f}ms",
            f"speedup: {speedup:.2f}x",
        ],
    )
    # The pooled batch-of-one path must stay bit-identical to the
    # historical unpooled forward.
    assert r["bitwise"]
    # Wall-clock stays report-only on shared runners; REPRO_BENCH_STRICT=1
    # enforces the acceptance target (>= 1.1x on repeated renders).
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        assert speedup >= 1.1, f"pooled: {speedup:.2f}x"


@pytest.fixture(scope="module")
def rows(scale):
    camera = _cameras(scale["size"])[0]
    out = []
    for label, footprint in (
        ("realistic", 0.15),
        ("medium", 0.3),
        ("fat (generator default)", 1.0),
    ):
        scene = _scene(footprint, scale["points"], scale["size"])
        ref_ms = _frame_ms(scene, camera, "reference", scale["reps"])
        packed_ms = _frame_ms(scene, camera, "packed", scale["reps"])
        ref_img = render(scene, camera, RenderConfig(backend="reference")).image
        packed_img = render(scene, camera, RenderConfig(backend="packed")).image
        out.append(
            (label, ref_ms, packed_ms, float(np.abs(ref_img - packed_img).max()))
        )
    return out


@pytest.fixture(scope="module")
def batch_rows(scale):
    """Batched-vs-sequential multi-view timings, two comparisons.

    - *raster only*: both sides on cached ``PreparedView``s — isolates the
      batched segmented scan against per-view ``forward`` calls.
    - *pipeline*: the pre-PR consumer loop (``render`` per view, which
      re-runs projection/tiling/sorting on every measurement) against
      ``render_batch`` with the shared view cache — what trajectory
      evaluation, CE and the harness actually gained.
    """
    size = min(scale["size"], BATCH_SIZE_PX)
    scene = _scene(0.15, scale["points"], size)
    cameras = _cameras(size, BATCH_VIEWS)
    config = RenderConfig(backend="packed")
    cache = ViewCache()
    # Pre-warm, and keep a fixed prepared list for the sequential side: the
    # timed raster-only loop then pays zero cache lookups or model hashes,
    # so the comparison is not biased toward the batched side (which
    # amortizes one lookup per call).
    prepared_views = cache.get_batch(scene, cameras, config)

    def sequential_warm():
        return [
            render(scene, c, config, prepared=p)
            for c, p in zip(cameras, prepared_views)
        ]

    def sequential_cold():
        return [render(scene, c, config) for c in cameras]

    def batched():
        return render_batch(scene, cameras, config, cache=cache)

    def best_ms(fn):
        fn(), fn()  # warm-up (incl. the batch workspace)
        times = []
        for _ in range(2 * scale["reps"]):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times) * 1e3

    seq_warm_ms = best_ms(sequential_warm)
    seq_cold_ms = best_ms(sequential_cold)
    bat_ms = best_ms(batched)
    seq_images = [r.image for r in sequential_cold()]
    bat_images = [r.image for r in batched()]
    diff = max(float(np.abs(a - b).max()) for a, b in zip(seq_images, bat_images))
    return dict(
        views=len(cameras),
        size=size,
        seq_warm_ms=seq_warm_ms,
        seq_cold_ms=seq_cold_ms,
        bat_ms=bat_ms,
        diff=diff,
        cache_hits=cache.hits,
        tag=scale["tag"],
    )


def test_backend_speedup(rows, scale, benchmark):
    scene = _scene(0.15, scale["points"], scale["size"])
    camera = _cameras(scale["size"])[0]
    benchmark(lambda: render(scene, camera, RenderConfig(backend="packed")))

    lines = [
        f"{scale['points']} gaussians, {scale['size']}x{scale['size']}, "
        f"wall-clock per frame (min of {scale['reps']})",
        f"{'splat footprint':<24} {'reference':>10} {'packed':>10} "
        f"{'speedup':>8} {'max|diff|':>10}",
    ]
    for label, ref_ms, packed_ms, diff in rows:
        lines.append(
            f"{label:<24} {ref_ms:8.1f}ms {packed_ms:8.1f}ms "
            f"{ref_ms / packed_ms:7.2f}x {diff:10.1e}"
        )
    report(f"Backend speedup (packed vs reference){scale['tag']}", lines)

    for label, ref_ms, packed_ms, diff in rows:
        # Equivalence must hold on every workload.
        assert diff < 1e-10, label

    # Wall-clock ratios on shared CI runners are noisy, so by default the
    # report above is the only timing signal and nothing is asserted about
    # it.  Set REPRO_BENCH_STRICT=1 on a quiet machine to enforce the
    # acceptance targets: >= 2x on the realistic-footprint workload (where
    # the packed engine's work-proportional span lists pay off) and no bad
    # regression in the fat-splat regime where span pruning cannot help.
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        label, ref_ms, packed_ms, _ = rows[0]
        assert ref_ms / packed_ms >= 2.0, f"{label}: {ref_ms / packed_ms:.2f}x"
        label, ref_ms, packed_ms, _ = rows[-1]
        assert packed_ms <= ref_ms * 1.6, f"{label}: {ref_ms / packed_ms:.2f}x"


@pytest.fixture(scope="module")
def foveated_rows(scale):
    """Batched gaze-trajectory foveated rendering vs the pre-PR loop.

    The baseline is exactly what every multi-frame foveated consumer ran
    before ``render_foveated_batch`` existed: one ``render_foveated`` call
    per gaze sample, re-running the pose's Projection/Tiling/Sorting prefix
    every frame.  The batched path prepares the pose once and pushes all
    gaze samples' level passes through one concatenated span scan.
    """
    size = min(scale["size"], BATCH_SIZE_PX)
    scene = _scene(0.15, scale["points"], size)
    camera = _cameras(size)[0]
    fmodel = uniform_foveated_model(scene, EVAL_REGION_LAYOUT, EVAL_LEVEL_FRACTIONS)
    gazes = [
        tuple(g) for g in gaze_trajectory(size, size, FOV_GAZE_FRAMES, seed=0)
    ]
    config = RenderConfig(backend="packed")

    def per_frame_loop():
        return [
            render_foveated(fmodel, camera, gaze=gaze, config=config)
            for gaze in gazes
        ]

    def batched():
        return render_foveated_batch(fmodel, camera, gazes=gazes, config=config)

    def best_ms(fn):
        fn(), fn()  # warm-up (incl. the span workspace)
        times = []
        for _ in range(2 * scale["reps"]):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times) * 1e3

    loop_ms = best_ms(per_frame_loop)
    bat_ms = best_ms(batched)
    diff = max(
        float(np.abs(a.image - b.image).max())
        for a, b in zip(per_frame_loop(), batched())
    )
    return dict(
        frames=len(gazes),
        size=size,
        loop_ms=loop_ms,
        bat_ms=bat_ms,
        diff=diff,
        tag=scale["tag"],
    )


def test_foveated_batch_speedup(foveated_rows, quick):
    r = foveated_rows
    speedup = r["loop_ms"] / r["bat_ms"]
    report(
        f"Foveated gaze-trajectory batching{r['tag']}",
        [
            f"{r['frames']} gaze samples of one pose at {r['size']}x{r['size']}, "
            "packed backend",
            f"{'path':<30} {'per trajectory':>14}",
            f"{'per-frame loop (pre-PR)':<30} {r['loop_ms']:12.1f}ms",
            f"{'render_foveated_batch':<30} {r['bat_ms']:12.1f}ms",
            f"speedup: {speedup:.2f}x",
        ],
    )
    # Every batched frame must match its own per-frame render (they run the
    # same staged span kernels; the scan segments are exact per frame).
    assert r["diff"] < 1e-10
    # The gaze-trajectory throughput gate: the batched path shares one
    # projection prefix across the whole scanpath, so the win is structural
    # and holds on shared CI runners — enforced in the --quick smoke step
    # (and under REPRO_BENCH_STRICT at acceptance scale).
    if quick or os.environ.get("REPRO_BENCH_STRICT") == "1":
        assert speedup >= 1.15, f"foveated batch: {speedup:.2f}x"


def test_batched_speedup(batch_rows):
    r = batch_rows
    raster_speedup = r["seq_warm_ms"] / r["bat_ms"]
    pipeline_speedup = r["seq_cold_ms"] / r["bat_ms"]
    # Title kept short: _report slugs are truncated at 60 chars, and the
    # quick tag must survive so smoke runs never clobber the archived file.
    report(
        f"Batched multi-view speedup{r['tag']}",
        [
            f"{r['views']} views, {r['size']}x{r['size']}, packed backend, "
            f"batched path on the shared view cache ({r['cache_hits']} hits)",
            f"{'comparison':<28} {'sequential':>12} {'batched':>10} {'speedup':>8}",
            f"{'raster only (both cached)':<28} {r['seq_warm_ms']:10.1f}ms "
            f"{r['bat_ms']:8.1f}ms {raster_speedup:7.2f}x",
            f"{'pipeline (pre-PR loop)':<28} {r['seq_cold_ms']:10.1f}ms "
            f"{r['bat_ms']:8.1f}ms {pipeline_speedup:7.2f}x",
            f"max|diff| vs sequential: {r['diff']:.1e}",
        ],
    )
    # Batched output must match the sequential per-view path to within the
    # backend-equivalence tolerance on every frame.
    assert r["diff"] < 1e-10
    # The cache really did serve every repeated (model, pose) pair.
    assert r["cache_hits"] > 0
    # Wall-clock ratios stay report-only on shared runners (same policy as
    # test_backend_speedup); REPRO_BENCH_STRICT=1 enforces the acceptance
    # targets on a quiet machine: the consumer-visible pipeline comparison
    # wins clearly, and the raster-only scan does not badly regress.  The
    # sequential baseline of the raster-only comparison routes through the
    # pooled single-view fast path since PR 3 (~1.2x faster than the old
    # per-call-allocating forward), so parity for the batched scan now sits
    # around 0.9 of it rather than the pre-pooling 1.1x.
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        assert pipeline_speedup >= 1.15, f"pipeline: {pipeline_speedup:.2f}x"
        assert raster_speedup >= 0.85, f"raster only: {raster_speedup:.2f}x"
