"""Backend speedup: packed intersection-list engine vs the per-tile loop.

Reports reference-vs-packed wall-clock per frame so the perf trajectory is
tracked from the backend refactor onward.  The headline workload is a
256×256 frame over 2k+ gaussians with realistic splat footprints (a few
pixels mean radius, as in real 3DGS captures); a fat-splat variant — the
synthetic generator's default at this point count, where every splat spans
whole tiles and span pruning cannot remove work — is reported alongside for
honesty about the regime where the engines tie.

Select a backend for the *other* benchmarks with ``REPRO_BACKEND``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.scenes import generate_scene, trace_cameras
from repro.splat import RenderConfig, render

from _report import report

WIDTH = HEIGHT = 256
N_POINTS = 2048  # acceptance scale: >= 2k gaussians at 256x256
REPS = 5


def _scene(footprint_scale: float):
    scene = generate_scene("kitchen", n_points=N_POINTS)
    # The synthetic generator sizes splats for tiny eval frames; rescale to
    # the few-pixel screen footprints real captures exhibit at 256x256.
    scene.log_scales += np.log(footprint_scale)
    return scene


def _camera():
    train, _ = trace_cameras(
        "kitchen", n_train=1, n_eval=1, width=WIDTH, height=HEIGHT
    )
    return train[0]


def _frame_ms(scene, camera, backend: str) -> float:
    config = RenderConfig(backend=backend)
    render(scene, camera, config)  # warm-up
    times = []
    for _ in range(REPS):
        t0 = time.perf_counter()
        render(scene, camera, config)
        times.append(time.perf_counter() - t0)
    return min(times) * 1e3


@pytest.fixture(scope="module")
def rows():
    camera = _camera()
    out = []
    for label, footprint in (
        ("realistic", 0.15),
        ("medium", 0.3),
        ("fat (generator default)", 1.0),
    ):
        scene = _scene(footprint)
        ref_ms = _frame_ms(scene, camera, "reference")
        packed_ms = _frame_ms(scene, camera, "packed")
        ref_img = render(scene, camera, RenderConfig(backend="reference")).image
        packed_img = render(scene, camera, RenderConfig(backend="packed")).image
        out.append(
            (label, ref_ms, packed_ms, float(np.abs(ref_img - packed_img).max()))
        )
    return out


def test_backend_speedup(rows, benchmark):
    scene = _scene(0.15)
    camera = _camera()
    benchmark(lambda: render(scene, camera, RenderConfig(backend="packed")))

    lines = [
        f"{N_POINTS} gaussians, {WIDTH}x{HEIGHT}, wall-clock per frame "
        f"(min of {REPS})",
        f"{'splat footprint':<24} {'reference':>10} {'packed':>10} "
        f"{'speedup':>8} {'max|diff|':>10}",
    ]
    for label, ref_ms, packed_ms, diff in rows:
        lines.append(
            f"{label:<24} {ref_ms:8.1f}ms {packed_ms:8.1f}ms "
            f"{ref_ms / packed_ms:7.2f}x {diff:10.1e}"
        )
    report("Backend speedup (packed vs reference)", lines)

    for label, ref_ms, packed_ms, diff in rows:
        # Equivalence must hold on every workload.
        assert diff < 1e-10, label

    # Wall-clock ratios on shared CI runners are noisy, so by default the
    # report above is the only timing signal and nothing is asserted about
    # it.  Set REPRO_BENCH_STRICT=1 on a quiet machine to enforce the
    # acceptance targets: >= 2x on the realistic-footprint workload (where
    # the packed engine's work-proportional span lists pay off) and no bad
    # regression in the fat-splat regime where span pruning cannot help.
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        label, ref_ms, packed_ms, _ = rows[0]
        assert ref_ms / packed_ms >= 2.0, f"{label}: {ref_ms / packed_ms:.2f}x"
        label, ref_ms, packed_ms, _ = rows[-1]
        assert packed_ms <= ref_ms * 1.6, f"{label}: {ref_ms / packed_ms:.2f}x"
