"""Gaze-region quantization properties and the FrameCache contract."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.foveation import FRRenderResult
from repro.serve import (
    FrameCache,
    GazeGridSpec,
    GazeRegionKey,
    foveated_model_fingerprint,
    gaze_polar,
    polar_gaze,
    quantize_gaze,
    region_bounds,
    region_center,
    ring_area_deg2,
    ring_edges,
    ring_width_deg,
)
from repro.serve.regions import MAX_GAZE_ECC_DEG, result_nbytes
from repro.splat import Camera

WIDTH, HEIGHT = 128, 96


@pytest.fixture(scope="module")
def camera():
    return Camera.from_fov(
        width=WIDTH,
        height=HEIGHT,
        fov_x_deg=70.0,
        position=np.array([0.0, 0.0, -3.0]),
        look_at=np.zeros(3),
    )


gaze_points = st.tuples(
    st.floats(0.0, WIDTH - 1.0, allow_nan=False),
    st.floats(0.0, HEIGHT - 1.0, allow_nan=False),
)


class TestPolarRoundTrip:
    @given(gaze=gaze_points)
    @settings(max_examples=80, deadline=None)
    def test_polar_gaze_inverts_gaze_polar(self, camera, gaze):
        ecc, angle = gaze_polar(camera, gaze)
        x, y = polar_gaze(camera, ecc, angle)
        assert abs(x - gaze[0]) < 1e-6 and abs(y - gaze[1]) < 1e-6

    def test_none_gaze_is_center(self, camera):
        assert gaze_polar(camera, None) == (0.0, 0.0)
        assert quantize_gaze(camera, None) == GazeRegionKey(ring=0, sector=0)
        center = quantize_gaze(camera, (camera.cx, camera.cy))
        assert center == GazeRegionKey(ring=0, sector=0)


class TestQuantizationProperties:
    @given(gaze=gaze_points)
    @settings(max_examples=100, deadline=None)
    def test_deterministic(self, camera, gaze):
        spec = GazeGridSpec()
        assert quantize_gaze(camera, gaze, spec) == quantize_gaze(
            camera, gaze, spec
        )

    @given(gaze=gaze_points, frac=st.floats(-0.35, 0.35))
    @settings(max_examples=100, deadline=None)
    def test_nearby_gazes_share_key(self, camera, gaze, frac):
        """Points near a cell's centre quantize to that cell.

        The guarantee behind cache hits: perturbing a gaze within its
        region (here, toward/past the centre by under half the cell extent
        in both polar coordinates) never changes the key.
        """
        spec = GazeGridSpec()
        key = quantize_gaze(camera, gaze, spec)
        ecc_lo, ecc_hi, ang_lo, ang_hi = region_bounds(spec, key)
        ecc_mid = 0.5 * (ecc_lo + ecc_hi)
        ang_mid = 0.5 * (ang_lo + ang_hi)
        probe = polar_gaze(
            camera,
            ecc_mid + frac * (ecc_hi - ecc_lo),
            ang_mid + frac * (ang_hi - ang_lo) if key.ring > 0 else ang_mid,
        )
        assert quantize_gaze(camera, probe, spec) == key

    @given(gaze=gaze_points)
    @settings(max_examples=100, deadline=None)
    def test_center_of_key_quantizes_back(self, camera, gaze):
        spec = GazeGridSpec()
        key = quantize_gaze(camera, gaze, spec)
        assert quantize_gaze(camera, region_center(camera, spec, key), spec) == key

    @given(gaze=gaze_points)
    @settings(max_examples=100, deadline=None)
    def test_key_within_grid(self, camera, gaze):
        spec = GazeGridSpec(n_sectors=7)
        key = quantize_gaze(camera, gaze, spec)
        assert key.ring >= 0
        assert 0 <= key.sector < spec.n_sectors
        ecc, _ = gaze_polar(camera, gaze)
        ecc_lo, ecc_hi, _, _ = region_bounds(spec, key)
        assert ecc_lo <= ecc < ecc_hi


class TestEccentricityGrowth:
    @given(
        ring=st.integers(0, 10),
        gain=st.floats(0.5, 4.0),
        sectors=st.integers(1, 32),
    )
    @settings(max_examples=60, deadline=None)
    def test_ring_width_grows_monotonically(self, ring, gain, sectors):
        """Cells get coarser toward the periphery, whatever the spec."""
        spec = GazeGridSpec(ring_gain=gain, n_sectors=sectors)
        # Steep gains reach MAX_GAZE_ECC_DEG in a handful of rings; clamp
        # the probe to the grid's last full ring pair.
        ring = min(ring, len(ring_edges(spec)) - 3)
        assert ring_width_deg(spec, ring + 1) > ring_width_deg(spec, ring)

    @given(ring=st.integers(0, 10), gain=st.floats(0.5, 4.0))
    @settings(max_examples=60, deadline=None)
    def test_ring_area_grows_monotonically(self, ring, gain):
        spec = GazeGridSpec(ring_gain=gain)
        ring = min(ring, len(ring_edges(spec)) - 3)
        assert ring_area_deg2(spec, ring + 1) > ring_area_deg2(spec, ring)

    def test_out_of_grid_ring_rejected(self):
        spec = GazeGridSpec()
        with pytest.raises(ValueError, match="beyond"):
            ring_width_deg(spec, len(ring_edges(spec)))

    def test_region_center_round_trips_every_reachable_ring(self, camera):
        # Regression: the outermost ring's generated edge overshoots 90°;
        # its representative eccentricity must be clamped below the gaze
        # bound or the tangent-plane inverse lands on the opposite side of
        # the screen (and in a different ring).
        spec = GazeGridSpec()
        edges = ring_edges(spec)
        for ring in range(len(edges) - 1):
            if edges[ring] >= MAX_GAZE_ECC_DEG:
                break  # unreachable by quantize_gaze
            for sector in (0, spec.n_sectors // 2, spec.n_sectors - 1):
                key = GazeRegionKey(ring=ring, sector=0 if ring == 0 else sector)
                center = region_center(camera, spec, key)
                assert quantize_gaze(camera, center, spec) == key

    def test_ring_edges_cached_and_read_only(self):
        spec = GazeGridSpec()
        a = ring_edges(spec)
        assert ring_edges(spec) is a  # memoized per spec
        with pytest.raises(ValueError):
            a[0] = 1.0

    def test_edges_cover_visual_field(self):
        edges = ring_edges(GazeGridSpec())
        assert edges[0] == 0.0
        assert edges[-1] >= MAX_GAZE_ECC_DEG
        assert np.all(np.diff(edges) > 0)

    def test_ring_width_follows_pooling_falloff(self):
        # The grid inherits the HVS pooling-model falloff: ring width is
        # ring_gain × the pooling diameter at the ring's inner edge.
        spec = GazeGridSpec(ring_gain=2.0)
        edges = ring_edges(spec)
        for i in range(min(6, len(edges) - 1)):
            expected = spec.ring_gain * spec.pooling.diameter_deg(edges[i])
            assert np.isclose(edges[i + 1] - edges[i], expected)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError, match="ring_gain"):
            GazeGridSpec(ring_gain=0.0)
        with pytest.raises(ValueError, match="n_sectors"):
            GazeGridSpec(n_sectors=0)


# ----------------------------------------------------------------------
# FrameCache
# ----------------------------------------------------------------------
def _fake_frame(px: int = 8) -> FRRenderResult:
    """A minimal cached value with a known byte footprint."""
    return FRRenderResult(
        image=np.zeros((px, px, 3)), stats=None, maps=None, level_spans=None
    )


class TestFrameCache:
    def test_miss_then_hit(self):
        cache = FrameCache(max_bytes=1 << 20)
        key = ("model", "camera", GazeRegionKey(0, 0), "config")
        assert cache.get(key) is None
        frame = _fake_frame()
        cache.put(key, frame)
        assert cache.get(key) is frame
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_peek_is_counter_neutral(self):
        cache = FrameCache(max_bytes=1 << 20)
        key = ("k",)
        assert cache.peek(key) is None
        cache.put(key, _fake_frame())
        assert cache.peek(key) is not None
        assert cache.hits == 0 and cache.misses == 0

    def test_byte_budget_evicts_lru(self):
        frame = _fake_frame(8)
        nbytes = result_nbytes(frame)
        cache = FrameCache(max_bytes=3 * nbytes)
        for i in range(3):
            cache.put((i,), _fake_frame(8))
        assert len(cache) == 3 and cache.evictions == 0
        # Touch key 0 so key 1 is the LRU entry, then overflow.
        assert cache.get((0,)) is not None
        cache.put((3,), _fake_frame(8))
        assert cache.evictions == 1
        assert cache.peek((1,)) is None  # the LRU entry went
        assert cache.peek((0,)) is not None
        assert cache.current_bytes == 3 * nbytes

    def test_oversized_frame_not_cached(self):
        frame = _fake_frame(64)
        cache = FrameCache(max_bytes=result_nbytes(frame) - 1)
        cache.put(("k",), frame)
        assert len(cache) == 0 and cache.current_bytes == 0

    def test_replacing_a_key_adjusts_bytes(self):
        cache = FrameCache(max_bytes=1 << 20)
        cache.put(("k",), _fake_frame(8))
        cache.put(("k",), _fake_frame(16))
        assert len(cache) == 1
        assert cache.current_bytes == result_nbytes(_fake_frame(16))

    def test_stats_snapshot(self):
        cache = FrameCache(max_bytes=1 << 20)
        cache.get(("missing",))
        cache.put(("k",), _fake_frame())
        cache.get(("k",))
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == 1 and stats["bytes"] > 0
        assert stats["hit_rate"] == 0.5

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError, match="max_bytes"):
            FrameCache(max_bytes=0)


class TestCacheKeys:
    def test_key_distinguishes_gaze_regions_not_nearby_gazes(self, camera):
        from repro.foveation import uniform_foveated_model
        from repro.harness import EVAL_LEVEL_FRACTIONS, EVAL_REGION_LAYOUT
        from repro.splat import random_model

        fmodel = uniform_foveated_model(
            random_model(30, np.random.default_rng(0)), EVAL_REGION_LAYOUT, EVAL_LEVEL_FRACTIONS
        )
        cache = FrameCache()
        spec = cache.spec
        near = quantize_gaze(camera, (30.0, 30.0), spec)
        center_gaze = region_center(camera, spec, near)
        assert cache.key(fmodel, camera, (30.0, 30.0)) == cache.key(
            fmodel, camera, center_gaze
        )
        # A gaze in a different ring must produce a different key.
        far_gaze = polar_gaze(
            camera, region_bounds(spec, near)[1] + 5.0, 0.0
        )
        assert cache.key(fmodel, camera, (30.0, 30.0)) != cache.key(
            fmodel, camera, far_gaze
        )

    def test_fingerprint_tracks_every_mutable_surface(self):
        from repro.foveation import uniform_foveated_model
        from repro.harness import EVAL_LEVEL_FRACTIONS, EVAL_REGION_LAYOUT
        from repro.splat import random_model

        fmodel = uniform_foveated_model(
            random_model(30, np.random.default_rng(0)), EVAL_REGION_LAYOUT, EVAL_LEVEL_FRACTIONS
        )
        fp = foveated_model_fingerprint(fmodel)
        assert fp == foveated_model_fingerprint(fmodel)
        fmodel.base.positions[0, 0] += 1.0
        fp_base = foveated_model_fingerprint(fmodel)
        assert fp_base != fp
        fmodel.mv_opacity_logits[0, 0] += 0.5
        assert foveated_model_fingerprint(fmodel) != fp_base

    def test_shared_helpers_with_view_cache(self):
        # The satellite contract: ViewCache and FrameCache build keys from
        # the same cachekey helpers, so fingerprint semantics cannot drift.
        import repro.serve.regions as serve_regions
        import repro.splat.renderer as renderer
        from repro.splat import cachekey

        assert renderer.model_fingerprint is cachekey.model_fingerprint
        assert renderer.camera_fingerprint is cachekey.camera_fingerprint
        assert serve_regions.model_fingerprint is cachekey.model_fingerprint
        assert serve_regions.camera_fingerprint is cachekey.camera_fingerprint
