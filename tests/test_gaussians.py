"""GaussianModel: validation, derived quantities, structure ops, I/O."""

import numpy as np
import pytest

from repro.splat.gaussians import (
    GaussianModel,
    inverse_sigmoid,
    normalize_quaternions,
    quaternions_to_matrices,
    random_model,
    sigmoid,
)


@pytest.fixture()
def model():
    return random_model(25, np.random.default_rng(0))


class TestValidation:
    def test_shape_checks(self):
        n = 4
        good = dict(
            positions=np.zeros((n, 3)),
            log_scales=np.zeros((n, 3)),
            rotations=np.tile([1.0, 0, 0, 0], (n, 1)),
            opacity_logits=np.zeros(n),
            sh=np.zeros((n, 1, 3)),
        )
        GaussianModel(**good)  # must not raise
        for field, bad in [
            ("positions", np.zeros((n, 2))),
            ("log_scales", np.zeros((n + 1, 3))),
            ("rotations", np.zeros((n, 3))),
            ("opacity_logits", np.zeros((n, 1))),
            ("sh", np.zeros((n, 3))),
        ]:
            kwargs = dict(good)
            kwargs[field] = bad
            with pytest.raises(ValueError):
                GaussianModel(**kwargs)

    def test_invalid_sh_count_rejected(self):
        with pytest.raises(ValueError):
            GaussianModel(
                positions=np.zeros((2, 3)),
                log_scales=np.zeros((2, 3)),
                rotations=np.tile([1.0, 0, 0, 0], (2, 1)),
                opacity_logits=np.zeros(2),
                sh=np.zeros((2, 5, 3)),
            )


class TestDerived:
    def test_scales_positive(self, model):
        assert np.all(model.scales > 0)

    def test_opacities_in_unit_interval(self, model):
        assert np.all((model.opacities > 0) & (model.opacities < 1))

    def test_max_scales_matches_scales(self, model):
        assert np.allclose(model.max_scales, model.scales.max(axis=1))

    def test_sh_dc_view_is_writable(self, model):
        model.sh_dc[0, :] = 3.0
        assert np.all(model.sh[0, 0, :] == 3.0)

    def test_covariances_symmetric_psd(self, model):
        cov = model.covariances()
        assert np.allclose(cov, cov.transpose(0, 2, 1))
        eigvals = np.linalg.eigvalsh(cov)
        assert np.all(eigvals > -1e-12)

    def test_covariance_eigenvalues_are_squared_scales(self):
        # Axis-aligned case: identity rotation.
        model = GaussianModel(
            positions=np.zeros((1, 3)),
            log_scales=np.log([[0.5, 1.0, 2.0]]),
            rotations=np.array([[1.0, 0, 0, 0]]),
            opacity_logits=np.zeros(1),
            sh=np.zeros((1, 1, 3)),
        )
        cov = model.covariances()[0]
        assert np.allclose(np.sort(np.diag(cov)), [0.25, 1.0, 4.0])

    def test_storage_bytes(self, model):
        per_point = (3 + 3 + 4 + 1 + model.sh.shape[1] * 3) * 4
        assert model.storage_bytes() == model.num_points * per_point


class TestStructure:
    def test_copy_is_independent(self, model):
        clone = model.copy()
        clone.positions[0, 0] += 100.0
        assert model.positions[0, 0] != clone.positions[0, 0]

    def test_subset_by_mask(self, model):
        mask = model.opacities > np.median(model.opacities)
        sub = model.subset(mask)
        assert sub.num_points == int(mask.sum())
        assert np.allclose(sub.positions, model.positions[mask])

    def test_subset_by_indices_preserves_order(self, model):
        idx = np.array([5, 2, 9])
        sub = model.subset(idx)
        assert np.allclose(sub.positions, model.positions[idx])

    def test_concatenate_counts(self, model):
        other = random_model(10, np.random.default_rng(1))
        combined = GaussianModel.concatenate([model, other])
        assert combined.num_points == model.num_points + other.num_points

    def test_concatenate_empty_rejected(self):
        with pytest.raises(ValueError):
            GaussianModel.concatenate([])


class TestSerialization:
    def test_npz_round_trip(self, model):
        restored = GaussianModel.from_npz_bytes(model.to_npz_bytes())
        assert restored.num_points == model.num_points
        assert np.allclose(restored.positions, model.positions, atol=1e-5)
        assert np.allclose(restored.sh, model.sh, atol=1e-5)

    def test_save_load(self, model, tmp_path):
        path = str(tmp_path / "model.npz")
        model.save(path)
        restored = GaussianModel.load(path)
        assert np.allclose(restored.opacity_logits, model.opacity_logits, atol=1e-5)


class TestQuaternionHelpers:
    def test_normalize_unit_norm(self):
        quats = np.random.default_rng(2).normal(size=(30, 4))
        norms = np.linalg.norm(normalize_quaternions(quats), axis=1)
        assert np.allclose(norms, 1.0)

    def test_zero_quaternion_survives(self):
        out = normalize_quaternions(np.zeros((1, 4)))
        assert np.all(np.isfinite(out))

    def test_matrices_are_rotations(self):
        quats = normalize_quaternions(np.random.default_rng(3).normal(size=(20, 4)))
        mats = quaternions_to_matrices(quats)
        eye = mats @ mats.transpose(0, 2, 1)
        assert np.allclose(eye, np.eye(3), atol=1e-10)
        assert np.allclose(np.linalg.det(mats), 1.0)

    def test_identity_quaternion(self):
        mat = quaternions_to_matrices(np.array([[1.0, 0, 0, 0]]))[0]
        assert np.allclose(mat, np.eye(3))


class TestSigmoid:
    def test_matches_reference(self):
        x = np.linspace(-20, 20, 101)
        assert np.allclose(sigmoid(x), 1.0 / (1.0 + np.exp(-x)))

    def test_extreme_values_stable(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert np.all(np.isfinite(out))
        assert out[0] < 1e-10 and out[1] > 1 - 1e-10

    def test_inverse_round_trip(self):
        p = np.linspace(0.01, 0.99, 50)
        assert np.allclose(sigmoid(inverse_sigmoid(p)), p)
