"""Batched multi-view rendering: ``forward_batch`` / ``render_batch``.

The batched ``packed`` path must match per-view ``reference`` rendering
within 1e-10 on images and Val_i statistics — including batches that mix
frame sizes and contain zero-splat views — and a batch of size 1 must be
bit-identical to the unbatched forward pass.
"""

import numpy as np
import pytest

from repro.splat import (
    Camera,
    RenderConfig,
    ViewCache,
    get_backend,
    prepare_view,
    render,
    render_batch,
    render_views,
)
from repro.splat.rasterizer import rasterize_batch

TOL = 1e-10


@pytest.fixture(scope="module")
def mixed_cameras():
    """Three frame geometries plus one pose that sees no splats at all."""
    return [
        Camera.from_fov(
            width=96, height=64, fov_x_deg=70.0,
            position=np.array([0.0, -0.5, -3.0]), look_at=np.zeros(3),
        ),
        Camera.from_fov(
            width=48, height=80, fov_x_deg=60.0,
            position=np.array([2.0, -0.5, -2.5]), look_at=np.zeros(3),
        ),
        Camera.from_fov(  # looks away from every scene: zero projected splats
            width=64, height=64, fov_x_deg=70.0,
            position=np.array([0.0, 0.0, -500.0]),
            look_at=np.array([0.0, 0.0, -1000.0]),
        ),
        Camera.from_fov(
            width=80, height=48, fov_x_deg=80.0,
            position=np.array([-1.5, -1.0, -2.0]), look_at=np.zeros(3),
        ),
    ]


def _reference_per_view(model, cameras, **config_kwargs):
    config = RenderConfig(backend="reference", **config_kwargs)
    return [render(model, camera, config) for camera in cameras]


class TestBatchedEquivalence:
    def test_matches_reference_per_view(self, small_scene, mixed_cameras):
        batched = render_batch(small_scene, mixed_cameras, RenderConfig(backend="packed"))
        reference = _reference_per_view(small_scene, mixed_cameras)
        for ref, bat in zip(reference, batched):
            assert np.abs(ref.image - bat.image).max() < TOL
            assert np.array_equal(
                ref.stats.dominated_pixels, bat.stats.dominated_pixels
            )
            assert np.array_equal(
                ref.stats.tiles_per_point, bat.stats.tiles_per_point
            )
            assert np.array_equal(
                ref.stats.intersections_per_tile, bat.stats.intersections_per_tile
            )

    def test_mixed_view_sizes_shapes(self, small_scene, mixed_cameras):
        batched = render_batch(small_scene, mixed_cameras)
        for camera, result in zip(mixed_cameras, batched):
            assert result.image.shape == (camera.height, camera.width, 3)

    def test_zero_splat_view_is_background(self, small_scene, mixed_cameras):
        background = (0.2, 0.4, 0.6)
        batched = render_batch(
            small_scene, mixed_cameras, RenderConfig(background=background)
        )
        empty = batched[2]
        assert empty.projected.num_visible == 0
        assert np.allclose(empty.image, np.asarray(background))
        assert empty.stats.dominated_pixels.sum() == 0

    def test_all_views_empty(self, small_scene, mixed_cameras):
        batched = render_batch(small_scene, [mixed_cameras[2]] * 3)
        for result in batched:
            assert np.all(result.image == 0.0)
            assert result.stats.dominated_pixels.sum() == 0

    def test_per_pixel_sort_matches_reference(self, small_scene, mixed_cameras):
        batched = render_batch(
            small_scene,
            mixed_cameras,
            RenderConfig(backend="packed", per_pixel_sort=True),
        )
        reference = _reference_per_view(small_scene, mixed_cameras, per_pixel_sort=True)
        for ref, bat in zip(reference, batched):
            assert np.abs(ref.image - bat.image).max() < TOL
            assert np.array_equal(
                ref.stats.dominated_pixels, bat.stats.dominated_pixels
            )


class TestBatchSize:
    def test_batch_size_one_is_bitwise_unbatched(self, small_scene, mixed_cameras):
        config = RenderConfig(backend="packed")
        batched = render_batch(small_scene, mixed_cameras, config, batch_size=1)
        solo = [render(small_scene, camera, config) for camera in mixed_cameras]
        for one, ref in zip(batched, solo):
            assert np.array_equal(one.image, ref.image)
            assert np.array_equal(
                one.stats.dominated_pixels, ref.stats.dominated_pixels
            )

    def test_chunking_matches_full_batch(self, small_scene, mixed_cameras):
        full = render_batch(small_scene, mixed_cameras)
        pairs = render_batch(small_scene, mixed_cameras, batch_size=2)
        for a, b in zip(full, pairs):
            assert np.abs(a.image - b.image).max() < TOL

    def test_invalid_batch_size_rejected(self, small_scene, mixed_cameras):
        with pytest.raises(ValueError):
            render_batch(small_scene, mixed_cameras, batch_size=0)

    def test_empty_camera_list(self, small_scene):
        assert render_batch(small_scene, []) == []


class TestBackendLayer:
    def test_reference_forward_batch_loops(self, small_scene, mixed_cameras):
        views = [tuple(prepare_view(small_scene, c)) for c in mixed_cameras]
        batched = rasterize_batch(
            views, num_points=small_scene.num_points, backend="reference"
        )
        engine = get_backend("reference")
        for (projected, assignment), (image, stats) in zip(views, batched):
            solo_img, solo_dom = engine.forward(
                projected, assignment, small_scene.num_points, np.zeros(3),
                True, False,
            )
            assert np.array_equal(image, np.clip(solo_img, 0.0, 1.0))
            assert np.array_equal(stats.dominated_pixels, solo_dom)

    def test_mixed_tile_sizes_rejected(self, small_scene, mixed_cameras):
        v16 = prepare_view(small_scene, mixed_cameras[0], RenderConfig(tile_size=16))
        v8 = prepare_view(small_scene, mixed_cameras[1], RenderConfig(tile_size=8))
        with pytest.raises(ValueError):
            rasterize_batch(
                [tuple(v16), tuple(v8)], num_points=small_scene.num_points,
                backend="packed",
            )

    def test_collect_stats_off(self, small_scene, mixed_cameras):
        results = render_batch(
            small_scene, mixed_cameras, RenderConfig(collect_stats=False)
        )
        assert all(r.stats is None for r in results)

    def test_render_views_uses_batch(self, small_scene, mixed_cameras):
        views = render_views(small_scene, mixed_cameras)
        reference = _reference_per_view(small_scene, mixed_cameras)
        for ref, got in zip(reference, views):
            assert np.abs(ref.image - got.image).max() < TOL


class TestViewCache:
    def test_cache_hits_on_repeat(self, small_scene, mixed_cameras):
        cache = ViewCache()
        render_batch(small_scene, mixed_cameras, cache=cache)
        assert cache.hits == 0
        assert cache.misses == len(mixed_cameras)
        render_batch(small_scene, mixed_cameras, cache=cache)
        assert cache.hits == len(mixed_cameras)
        assert cache.misses == len(mixed_cameras)

    def test_cached_results_identical(self, small_scene, mixed_cameras):
        cache = ViewCache()
        first = render_batch(small_scene, mixed_cameras, cache=cache)
        second = render_batch(small_scene, mixed_cameras, cache=cache)
        for a, b in zip(first, second):
            assert np.array_equal(a.image, b.image)
            assert a.projected is b.projected  # the prepared view was shared

    def test_model_mutation_invalidates(self, small_scene, mixed_cameras):
        cache = ViewCache()
        model = small_scene.copy()
        cache.get(model, mixed_cameras[0])
        model.positions[:] += 0.25
        cache.get(model, mixed_cameras[0])
        assert cache.misses == 2
        assert cache.hits == 0

    def test_prepared_view_skips_prefix_in_render(self, small_scene, mixed_cameras):
        cache = ViewCache()
        prepared = cache.get(small_scene, mixed_cameras[0])
        via_prepared = render(small_scene, mixed_cameras[0], prepared=prepared)
        direct = render(small_scene, mixed_cameras[0])
        assert np.array_equal(via_prepared.image, direct.image)
        assert via_prepared.projected is prepared.projected


class TestViewCacheEviction:
    """LRU behaviour under ``maxsize`` pressure and counter correctness."""

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            ViewCache(maxsize=0)

    def test_size_never_exceeds_maxsize(self, small_scene, mixed_cameras):
        cache = ViewCache(maxsize=2)
        cache.get_batch(small_scene, mixed_cameras)  # 4 poses through size 2
        assert len(cache) == 2
        assert cache.misses == len(mixed_cameras)
        assert cache.hits == 0

    def test_fifo_pressure_evicts_oldest(self, small_scene, mixed_cameras):
        cache = ViewCache(maxsize=2)
        a, b, c = mixed_cameras[:3]
        cache.get(small_scene, a)
        cache.get(small_scene, b)
        cache.get(small_scene, c)  # evicts a (oldest, never re-used)
        assert len(cache) == 2
        cache.get(small_scene, b)
        cache.get(small_scene, c)
        assert cache.hits == 2  # b and c survived
        cache.get(small_scene, a)
        assert cache.misses == 4  # a was evicted and re-prepared

    def test_lru_hit_refreshes_recency(self, small_scene, mixed_cameras):
        cache = ViewCache(maxsize=2)
        a, b, c = mixed_cameras[:3]
        cache.get(small_scene, a)
        cache.get(small_scene, b)
        cache.get(small_scene, a)  # refresh a: b becomes the LRU entry
        cache.get(small_scene, c)  # evicts b, not a
        assert cache.hits == 1
        cache.get(small_scene, a)
        assert cache.hits == 2  # a survived the eviction
        cache.get(small_scene, b)
        assert cache.misses == 4  # b did not

    def test_hit_returns_same_prepared_view_across_evictions(
        self, small_scene, mixed_cameras
    ):
        cache = ViewCache(maxsize=2)
        a, b, c = mixed_cameras[:3]
        first = cache.get(small_scene, a)
        cache.get(small_scene, b)
        assert cache.get(small_scene, a) is first  # refreshed, same object
        cache.get(small_scene, c)  # evicts b
        assert cache.get(small_scene, a) is first  # still resident
        assert cache.get(small_scene, b) is not first

    def test_counters_across_repeated_pressure(self, small_scene, mixed_cameras):
        cache = ViewCache(maxsize=2)
        for _ in range(3):
            cache.get_batch(small_scene, mixed_cameras)  # 4 poses, size 2
        # Every pass misses all four poses: each batch pushes the previous
        # entries out before they can be re-used (classic cycling).
        assert cache.misses == 12
        assert cache.hits == 0
        assert len(cache) == 2
