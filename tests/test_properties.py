"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.accel.tile_merge import identity_merge, merge_tiles
from repro.core.ce import frame_ce
from repro.core.pruning import prune_lowest_ce
from repro.foveation.regions import RegionLayout
from repro.splat.gaussians import (
    normalize_quaternions,
    quaternions_to_matrices,
    random_model,
    sigmoid,
)
from repro.splat.backends.segments import (
    SegmentIndex,
    segment_transmittance_exclusive,
    segmented_cumsum_exclusive,
)
from repro.splat.rasterizer import composite
from repro.splat.sh import sh_basis
from repro.splat.tiling import TileGrid

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestCompositingProperties:
    @given(
        alphas=hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 12), st.integers(1, 6)),
            elements=st.floats(0.0, 0.999),
        ),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_energy_conservation(self, alphas, seed):
        """Weights + final transmittance always partition unit energy."""
        rng = np.random.default_rng(seed)
        colors = rng.uniform(size=(alphas.shape[0], 3))
        _, weights, final_t = composite(alphas, colors, np.zeros(3))
        total = weights.sum(axis=0) + final_t
        assert np.all(total <= 1.0 + 1e-9)
        assert np.all(weights >= 0)
        assert np.all(final_t >= 0)

    @given(
        alphas=hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 10), st.integers(1, 4)),
            elements=st.floats(0.0, 0.999),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_pixel_color_bounded_by_max_splat_color(self, alphas):
        """With colours in [0,1] and black background, outputs stay in [0,1]."""
        colors = np.full((alphas.shape[0], 3), 1.0)
        out, _, _ = composite(alphas, colors, np.zeros(3))
        assert np.all(out <= 1.0 + 1e-9)
        assert np.all(out >= 0.0)


class TestQuaternionProperties:
    @given(
        quats=hnp.arrays(
            np.float64, st.tuples(st.integers(1, 20), st.just(4)),
            elements=st.floats(-10, 10),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_rotation_matrices_orthonormal(self, quats):
        mats = quaternions_to_matrices(quats)
        identity = mats @ mats.transpose(0, 2, 1)
        assert np.allclose(identity, np.eye(3), atol=1e-8)

    @given(
        quats=hnp.arrays(
            np.float64, st.tuples(st.integers(1, 20), st.just(4)),
            elements=st.floats(-5, 5),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_normalization_idempotent(self, quats):
        once = normalize_quaternions(quats)
        twice = normalize_quaternions(once)
        assert np.allclose(once, twice)


class TestSHProperties:
    @given(
        dirs=hnp.arrays(
            np.float64, st.tuples(st.integers(1, 30), st.just(3)),
            elements=st.floats(-3, 3),
        ),
        degree=st.integers(0, 3),
    )
    @settings(max_examples=50, deadline=None)
    def test_basis_finite_and_scale_invariant(self, dirs, degree):
        basis = sh_basis(dirs, degree)
        assert np.all(np.isfinite(basis))
        assert np.allclose(basis, sh_basis(dirs * 3.0, degree), atol=1e-9)


class TestPruningProperties:
    @given(
        n=st.integers(2, 60),
        fraction=st.floats(0.0, 1.0),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_prune_partition(self, n, fraction, seed):
        rng = np.random.default_rng(seed)
        model = random_model(n, rng)
        ce = rng.uniform(size=n)
        result = prune_lowest_ce(model, ce, fraction)
        # Kept ∪ removed is a partition; at least one point survives.
        union = np.sort(np.concatenate([result.kept_indices, result.removed_indices]))
        assert np.array_equal(union, np.arange(n))
        assert result.model.num_points >= 1
        # Every removed point has CE <= every kept point.
        if result.removed_indices.size and result.kept_indices.size:
            assert ce[result.removed_indices].max() <= ce[result.kept_indices].min() + 1e-12


class TestCEProperties:
    @given(
        val=hnp.arrays(np.int64, st.integers(1, 50), elements=st.integers(0, 100)),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_frame_ce_nonnegative_and_zero_for_unused(self, val, seed):
        rng = np.random.default_rng(seed)
        comp = rng.integers(0, 20, size=val.shape[0])
        ce = frame_ce(val, comp)
        assert np.all(ce >= 0)
        assert np.all(ce[comp == 0] == 0)


class TestTileMergeProperties:
    @given(
        counts=hnp.arrays(
            np.float64, st.integers(1, 200), elements=st.floats(0.0, 500.0)
        ),
        threshold=st.floats(1.0, 1000.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_conserves_work_and_tiles(self, counts, threshold):
        merged = merge_tiles(counts, threshold)
        assert merged.group_counts.sum() == pytest.approx(counts.sum(), rel=1e-9, abs=1e-9)
        assert merged.group_sizes.sum() == counts.size
        assert merged.num_groups <= counts.size
        # Group indices of consecutive tiles never decrease.
        assert np.all(np.diff(merged.group_of_tile) >= 0)

    @given(
        counts=hnp.arrays(
            np.float64, st.integers(2, 100), elements=st.floats(0.1, 100.0)
        ),
        threshold=st.floats(1.0, 500.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_group_work_bounded(self, counts, threshold):
        """No merged group exceeds β unless a single tile already does."""
        merged = merge_tiles(counts, threshold)
        bound = max(threshold, counts.max()) + 1e-9
        assert np.all(merged.group_counts <= bound)


class TestRegionProperties:
    @given(
        ecc=hnp.arrays(np.float64, st.integers(1, 100), elements=st.floats(0.0, 90.0)),
        b1=st.floats(5.0, 20.0),
        gap=st.floats(1.0, 20.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_levels_monotone_in_eccentricity(self, ecc, b1, gap):
        layout = RegionLayout(boundaries_deg=(0.0, b1, b1 + gap), blend_band_deg=0.5)
        levels = layout.level_of(np.sort(ecc))
        assert np.all(np.diff(levels) >= 0)
        assert levels.min() >= 1 and levels.max() <= 3


class TestTileGridProperties:
    @given(
        width=st.integers(1, 300),
        height=st.integers(1, 300),
        tile=st.integers(1, 64),
    )
    @settings(max_examples=60, deadline=None)
    def test_tiles_cover_image_exactly(self, width, height, tile):
        grid = TileGrid(width=width, height=height, tile_size=tile)
        area = 0
        for tid in range(grid.num_tiles):
            x0, y0, x1, y1 = grid.tile_pixel_bounds(tid)
            assert 0 <= x0 < x1 <= width
            assert 0 <= y0 < y1 <= height
            area += (x1 - x0) * (y1 - y0)
        assert area == width * height


# Segment length vectors: empty batches, empty segments, and singletons all
# occur in practice once several views concatenate into one batch scan.
segment_lens = hnp.arrays(
    np.int64, st.integers(0, 12), elements=st.integers(0, 6)
)


def _naive_exclusive_cumsum(values, lens):
    """Per-segment exclusive scan + totals via an explicit Python loop."""
    excl = np.zeros_like(values)
    totals = np.zeros(values.shape[:-1] + (lens.shape[0],))
    start = 0
    for s, n in enumerate(lens):
        seg = values[..., start : start + n]
        excl[..., start : start + n] = np.cumsum(seg, axis=-1) - seg
        totals[..., s] = seg.sum(axis=-1)
        start += n
    return excl, totals


class TestSegmentIndexProperties:
    @given(lens=segment_lens)
    @settings(max_examples=60, deadline=None)
    def test_from_lengths_invariants(self, lens):
        index = SegmentIndex.from_lengths(lens)
        total = int(lens.sum())
        assert index.num_segments == lens.shape[0]
        assert np.array_equal(index.lens, lens)
        # Starts are the exclusive prefix sum of the lengths.
        assert np.array_equal(index.starts, np.cumsum(lens) - lens)
        # of_item covers every row, in segment order, matching the lengths.
        assert index.of_item.shape == (total,)
        assert np.all(np.diff(index.of_item) >= 0)
        assert np.array_equal(
            np.bincount(index.of_item, minlength=lens.shape[0]), lens
        )

    @given(lens=segment_lens, seed=st.integers(0, 2**16))
    @settings(max_examples=80, deadline=None)
    def test_cumsum_matches_naive(self, lens, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=int(lens.sum()))
        index = SegmentIndex.from_lengths(lens)
        excl, totals = segmented_cumsum_exclusive(values, index)
        naive_excl, naive_totals = _naive_exclusive_cumsum(values, lens)
        assert np.allclose(excl, naive_excl, atol=1e-12)
        assert np.allclose(totals, naive_totals, atol=1e-12)
        # Empty segments own no items and report an exact zero total.
        assert np.all(totals[lens == 0] == 0.0)

    @given(lens=segment_lens, seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_cumsum_2d_lanes(self, lens, seed):
        """The scan runs along the last axis of a lanes-first matrix."""
        rng = np.random.default_rng(seed)
        values = rng.normal(size=(3, int(lens.sum())))
        index = SegmentIndex.from_lengths(lens)
        excl, totals = segmented_cumsum_exclusive(values, index)
        naive_excl, naive_totals = _naive_exclusive_cumsum(values, lens)
        assert np.allclose(excl, naive_excl, atol=1e-12)
        assert np.allclose(totals, naive_totals, atol=1e-12)

    @given(lens=segment_lens, seed=st.integers(0, 2**16))
    @settings(max_examples=80, deadline=None)
    def test_transmittance_matches_naive_cumprod(self, lens, seed):
        rng = np.random.default_rng(seed)
        alphas = rng.uniform(0.0, 0.999, size=int(lens.sum()))
        index = SegmentIndex.from_lengths(lens)
        trans = segment_transmittance_exclusive(alphas.copy(), index)
        start = 0
        for n in lens:
            seg = alphas[start : start + n]
            naive = np.concatenate([[1.0], np.cumprod(1.0 - seg)[:-1]])
            assert np.allclose(trans[start : start + n], naive, atol=1e-12)
            start += n
        # Every segment starts at an exact 1.0 and never exceeds it.
        if index.starts.size and alphas.size:
            nonzero = index.lens > 0
            assert np.all(trans[index.starts[nonzero]] == 1.0)
        assert np.all((trans >= 0.0) & (trans <= 1.0))

    def test_length_zero_batch(self):
        index = SegmentIndex.from_lengths(np.empty(0, dtype=np.int64))
        excl, totals = segmented_cumsum_exclusive(np.empty(0), index)
        assert excl.shape == (0,)
        assert totals.shape == (0,)
        trans = segment_transmittance_exclusive(np.empty(0), index)
        assert trans.shape == (0,)

    def test_all_segments_empty(self):
        index = SegmentIndex.from_lengths(np.zeros(4, dtype=np.int64))
        excl, totals = segmented_cumsum_exclusive(np.empty(0), index)
        assert excl.shape == (0,)
        assert np.array_equal(totals, np.zeros(4))


class TestSigmoidProperties:
    @given(x=hnp.arrays(np.float64, st.integers(1, 50), elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_bounded_and_monotone(self, x):
        out = sigmoid(x)
        assert np.all((out >= 0) & (out <= 1))
        xs = np.sort(x)
        assert np.all(np.diff(sigmoid(xs)) >= -1e-15)
