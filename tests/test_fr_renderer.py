"""Foveated rendering pipeline: filtering, blending, workload accounting."""

import numpy as np
import pytest

from repro.foveation import (
    RegionLayout,
    make_mmfr,
    make_smfr,
    render_foveated,
    render_multi_model,
    uniform_foveated_model,
)
from repro.splat import render


@pytest.fixture(scope="module")
def layout():
    return RegionLayout(boundaries_deg=(0.0, 12.0, 20.0, 28.0), blend_band_deg=1.5)


@pytest.fixture(scope="module")
def fmodel(small_scene, layout):
    return make_smfr(small_scene, layout, level_fractions=(1.0, 0.5, 0.25, 0.1), seed=0)


@pytest.fixture(scope="module")
def fr_result(fmodel, train_cameras):
    return render_foveated(fmodel, train_cameras[0])


class TestRenderFoveated:
    def test_image_valid(self, fr_result, train_cameras):
        cam = train_cameras[0]
        assert fr_result.image.shape == (cam.height, cam.width, 3)
        assert fr_result.image.min() >= 0.0 and fr_result.image.max() <= 1.0

    def test_projection_runs_once(self, fr_result):
        assert fr_result.stats.projection_runs == 1

    def test_fr_reduces_raster_work(self, fmodel, small_scene, train_cameras):
        dense = render(small_scene, train_cameras[0])
        fr = render_foveated(fmodel, train_cameras[0])
        assert (
            fr.stats.total_raster_intersections
            < dense.stats.total_intersections
        )

    def test_foveal_region_matches_full_render(self, fmodel, small_scene, train_cameras):
        """Level 1 keeps all points and base parameters, so the foveal tiles
        must be pixel-identical to the non-foveated render."""
        cam = train_cameras[0]
        full = render(small_scene, cam).image
        fr = render_foveated(fmodel, cam)
        grid_ts = 16
        foveal_tiles = np.flatnonzero(fr.maps.tile_level == 1)
        assert foveal_tiles.size > 0
        tiles_x = (cam.width + grid_ts - 1) // grid_ts
        checked = 0
        for tid in foveal_tiles:
            tx, ty = tid % tiles_x, tid // tiles_x
            y0, x0 = ty * grid_ts, tx * grid_ts
            y1, x1 = min(y0 + grid_ts, cam.height), min(x0 + grid_ts, cam.width)
            # Band pixels are legitimately blended; compare the rest.
            clean = ~fr.maps.needs_blend[y0:y1, x0:x1]
            if not clean.any():
                continue
            patch_fr = fr.image[y0:y1, x0:x1][clean]
            patch_full = full[y0:y1, x0:x1][clean]
            assert np.allclose(patch_fr, patch_full, atol=1e-9)
            checked += 1
        assert checked > 0

    def test_gaze_shifts_workload(self, fmodel, train_cameras):
        center = render_foveated(fmodel, train_cameras[0])
        corner = render_foveated(fmodel, train_cameras[0], gaze=(0.0, 0.0))
        assert not np.array_equal(
            center.stats.tile_levels, corner.stats.tile_levels
        )

    def test_blend_pixels_counted(self, fr_result):
        assert fr_result.stats.blend_pixels > 0
        h, w = fr_result.image.shape[:2]
        assert fr_result.stats.blend_pixels < h * w

    def test_blending_smooths_boundaries(self, fmodel, train_cameras):
        """With blending, band pixels lie between the two level renders."""
        fr = render_foveated(fmodel, train_cameras[0])
        no_blend_layout = RegionLayout(
            boundaries_deg=fmodel.layout.boundaries_deg, blend_band_deg=0.0
        )
        hard = uniform_foveated_model(
            fmodel.base,
            no_blend_layout,
        )
        # Same point set, no blend: stats report zero blend pixels.
        hard.quality_bounds[:] = fmodel.quality_bounds
        result = render_foveated(hard, train_cameras[0])
        assert result.stats.blend_pixels == 0

    def test_sort_le_raster_intersections(self, fr_result):
        # Sorting happens once per tile on the union level; rasterization
        # may add band-pixel work on top.
        assert (
            fr_result.stats.total_sort_intersections
            <= fr_result.stats.total_raster_intersections
            + fr_result.stats.sort_intersections_per_tile.sum()
        )


class TestRenderMultiModel:
    @pytest.fixture(scope="class")
    def mmfr_models(self, small_scene, train_cameras, train_targets, layout):
        return make_mmfr(
            small_scene,
            train_cameras[:2],
            train_targets[:2],
            layout,
            level_fractions=(1.0, 0.5, 0.25, 0.1),
            finetune_iterations=0,
        )

    def test_projection_runs_per_level(self, mmfr_models, layout, train_cameras):
        result = render_multi_model(mmfr_models, layout, train_cameras[0])
        assert result.stats.projection_runs == layout.num_levels

    def test_image_valid(self, mmfr_models, layout, train_cameras):
        result = render_multi_model(mmfr_models, layout, train_cameras[0])
        assert result.image.min() >= 0.0 and result.image.max() <= 1.0

    def test_wrong_model_count_rejected(self, mmfr_models, layout, train_cameras):
        with pytest.raises(ValueError):
            render_multi_model(mmfr_models[:2], layout, train_cameras[0])

    def test_mmfr_projects_more_than_subsetting(
        self, mmfr_models, fmodel, layout, train_cameras
    ):
        """The compute overhead the paper attributes to MMFR (Sec 4.1)."""
        ours = render_foveated(fmodel, train_cameras[0])
        mmfr = render_multi_model(mmfr_models, layout, train_cameras[0])
        assert mmfr.stats.num_projected > ours.stats.num_projected
