"""Workload generation and deterministic trace replay."""

import numpy as np
import pytest

from repro.foveation import render_foveated, uniform_foveated_model
from repro.harness import EVAL_LEVEL_FRACTIONS, EVAL_REGION_LAYOUT
from repro.scenes import trace_cameras
from repro.serve import (
    ServeConfig,
    WorkloadSpec,
    generate_serve_trace,
    pose_request_counts,
    replay_naive,
    replay_trace,
    zipf_weights,
)
from repro.splat import random_model

WIDTH, HEIGHT = 64, 48


@pytest.fixture(scope="module")
def cameras():
    _, evals = trace_cameras(
        "kitchen", n_train=6, n_eval=6, width=WIDTH, height=HEIGHT
    )
    return evals


@pytest.fixture(scope="module")
def fmodel():
    return uniform_foveated_model(
        random_model(80, np.random.default_rng(5)),
        EVAL_REGION_LAYOUT,
        EVAL_LEVEL_FRACTIONS,
    )


@pytest.fixture(scope="module")
def trace(cameras):
    return generate_serve_trace(
        cameras, WorkloadSpec(n_clients=3, frames_per_client=10, seed=2)
    )


class TestWorkloadGeneration:
    def test_zipf_weights_normalized_and_decreasing(self):
        w = zipf_weights(8, 1.1)
        assert np.isclose(w.sum(), 1.0)
        assert np.all(np.diff(w) < 0)
        assert np.allclose(zipf_weights(5, 0.0), 0.2)

    def test_trace_is_deterministic(self, cameras):
        spec = WorkloadSpec(n_clients=3, frames_per_client=8, seed=7)
        a = generate_serve_trace(cameras, spec)
        b = generate_serve_trace(cameras, spec)
        assert a.requests == b.requests

    def test_seed_changes_trace(self, cameras):
        a = generate_serve_trace(cameras, WorkloadSpec(seed=1))
        b = generate_serve_trace(cameras, WorkloadSpec(seed=2))
        assert a.requests != b.requests

    def test_every_client_gets_its_frames(self, trace):
        spec = trace.spec
        assert trace.n_requests == spec.n_clients * spec.frames_per_client
        for client in range(spec.n_clients):
            frames = sorted(
                r.frame_index for r in trace.requests if r.client_id == client
            )
            assert frames == list(range(spec.frames_per_client))

    def test_requests_time_sorted_and_within_bounds(self, trace, cameras):
        times = [r.time_s for r in trace.requests]
        assert times == sorted(times)
        for r in trace.requests:
            assert 0 <= r.pose_index < len(cameras)
            assert 0 <= r.gaze[0] <= WIDTH - 1
            assert 0 <= r.gaze[1] <= HEIGHT - 1

    def test_popularity_is_zipf_skewed(self, cameras):
        # Aggregate enough draws that the skew is statistical, not luck.
        trace = generate_serve_trace(
            cameras,
            WorkloadSpec(n_clients=8, frames_per_client=64, zipf_s=1.2, seed=0),
        )
        counts = pose_request_counts(trace)
        assert counts.sum() == trace.n_requests
        # The hot half of the pose set dominates the cold half.
        half = len(cameras) // 2
        assert counts[:half].sum() > 1.5 * counts[half:].sum()

    def test_bad_specs_rejected(self, cameras):
        with pytest.raises(ValueError, match="n_clients"):
            WorkloadSpec(n_clients=0)
        with pytest.raises(ValueError, match="pose_dwell_frames"):
            WorkloadSpec(pose_dwell_frames=(3, 2))
        with pytest.raises(ValueError, match="camera"):
            generate_serve_trace([], WorkloadSpec())


class TestReplay:
    def test_replay_is_deterministic(self, fmodel, trace):
        _, a = replay_trace(fmodel, trace)
        _, b = replay_trace(fmodel, trace)
        assert a.frames_checksum == b.frames_checksum
        assert a.cache_hit_rate == b.cache_hit_rate
        assert a.batch_histogram == b.batch_histogram

    def test_responses_in_request_order(self, fmodel, trace):
        responses, _ = replay_trace(fmodel, trace)
        assert len(responses) == trace.n_requests
        for request, response in zip(trace.requests, responses):
            assert response.request.client_id == request.client_id
            assert response.request.gaze == request.gaze

    def test_misses_match_per_request_renders(self, fmodel, trace):
        responses, _ = replay_trace(fmodel, trace)
        misses = [r for r in responses if not r.cache_hit][:4]
        assert misses
        for response in misses:
            ref = render_foveated(
                fmodel, response.request.camera, gaze=response.request.gaze
            )
            assert np.array_equal(ref.image, response.result.image)

    def test_naive_matches_trace_order_and_counts(self, fmodel, trace):
        results, report = replay_naive(fmodel, trace)
        assert len(results) == trace.n_requests
        assert report.cache_hit_rate == 0.0
        assert report.batch_histogram == {}
        assert report.n_requests == trace.n_requests
        # First request's frame is a plain per-request render.
        ref = render_foveated(
            fmodel,
            trace.camera_of(trace.requests[0]),
            gaze=trace.requests[0].gaze,
        )
        assert np.array_equal(ref.image, results[0].image)

    def test_report_fields_populated(self, fmodel, trace):
        _, report = replay_trace(fmodel, trace)
        assert report.n_requests == trace.n_requests
        assert report.wall_s > 0 and report.throughput_rps > 0
        assert report.latency_p50_ms <= report.latency_p90_ms <= report.latency_p99_ms
        assert 0.0 <= report.cache_hit_rate <= 1.0
        rendered = sum(size * n for size, n in report.batch_histogram.items())
        hits = round(report.cache_hit_rate * report.n_requests)
        assert rendered + hits == report.n_requests
        assert report.cache_stats is not None
        assert any("cache-stats" in line for line in report.lines())

    def test_paced_replay_respects_timestamps(self, fmodel, cameras):
        # A tiny paced replay: wall time must at least span the scaled
        # trace duration, and frames must match the drain-mode replay.
        trace = generate_serve_trace(
            cameras, WorkloadSpec(n_clients=2, frames_per_client=3, seed=4)
        )
        span = trace.requests[-1].time_s
        _, fast = replay_trace(fmodel, trace)
        _, paced = replay_trace(fmodel, trace, time_scale=1.0)
        assert paced.wall_s >= span
        assert paced.frames_checksum == fast.frames_checksum

    def test_bad_time_scale_rejected(self, fmodel, trace):
        with pytest.raises(ValueError, match="time_scale"):
            replay_trace(fmodel, trace, time_scale=-1.0)

    def test_cacheless_serve_still_bit_identical(self, fmodel, trace):
        responses, report = replay_trace(
            fmodel, trace, serve_config=ServeConfig(cache_max_bytes=None)
        )
        assert report.cache_stats is None
        _, naive_report = replay_naive(fmodel, trace)
        # In-batch dedup can still serve exact-duplicate keys, but every
        # *rendered* frame equals its per-request counterpart, so a
        # cacheless serve of the trace reproduces the naive frame stream
        # whenever no duplicates collapse; spot-check the misses instead.
        for response in [r for r in responses if not r.cache_hit][:4]:
            ref = render_foveated(
                fmodel, response.request.camera, gaze=response.request.gaze
            )
            assert np.array_equal(ref.image, response.result.image)
